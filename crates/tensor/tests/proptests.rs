//! Property tests for tensor kernels: range-form = whole-form, back-end
//! agreement, and partitioning index coverage.

use pp_tensor::ops::{
    conv2d, conv2d_range, conv_input_indices_for_range, fully_connected, fully_connected_range,
    max_pool2d, Conv2dSpec,
};
use pp_tensor::{PlainF64, PlainI128, PlainI64, Shape, Tensor};
use proptest::prelude::*;

fn arb_conv_case() -> impl Strategy<Value = (Conv2dSpec, usize, usize, Vec<i64>, Vec<i64>, Vec<i64>)>
{
    (1usize..3, 1usize..3, 1usize..3, 1usize..3, 0usize..2, 4usize..7, 4usize..7).prop_flat_map(
        |(ic, oc, k, stride, pad, h, w)| {
            let spec = Conv2dSpec {
                in_channels: ic,
                out_channels: oc,
                kernel: k,
                stride,
                padding: pad,
            };
            let input_len = ic * h * w;
            let weight_len = oc * ic * k * k;
            (
                Just(spec),
                Just(h),
                Just(w),
                proptest::collection::vec(-50i64..50, input_len),
                proptest::collection::vec(-50i64..50, weight_len),
                proptest::collection::vec(-50i64..50, oc),
            )
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conv_ranges_concatenate_to_full((spec, h, w, input, weights, bias) in arb_conv_case()) {
        let input = Tensor::from_vec(vec![spec.in_channels, h, w], input).unwrap();
        let weights = Tensor::from_vec(
            vec![spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
            weights,
        )
        .unwrap();
        let full = conv2d(&PlainI64, &input, &weights, &bias, &spec).unwrap();
        let n = full.len();
        // Split at an arbitrary midpoint.
        let mid = n / 2;
        let lo = conv2d_range(&PlainI64, &input, &weights, &bias, &spec, 0..mid).unwrap();
        let hi = conv2d_range(&PlainI64, &input, &weights, &bias, &spec, mid..n).unwrap();
        prop_assert_eq!([lo, hi].concat(), full.data());
    }

    #[test]
    fn conv_receptive_fields_cover_all_reads((spec, h, w, input, weights, bias) in arb_conv_case()) {
        // Computing a range using ONLY the indices reported by
        // conv_input_indices_for_range must give the same answer as using
        // the full input — i.e. the index set is sufficient.
        let shape = Shape::new(vec![spec.in_channels, h, w]);
        let input_t = Tensor::from_vec(shape.clone(), input.clone()).unwrap();
        let weights = Tensor::from_vec(
            vec![spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
            weights,
        )
        .unwrap();
        let out_len = spec.output_shape(&shape).unwrap().len();
        let range = 0..out_len.div_ceil(2);
        let needed = conv_input_indices_for_range(&shape, &spec, range.clone()).unwrap();
        // Poison every unneeded element; result must be unchanged.
        let poisoned: Vec<i64> = input
            .iter()
            .enumerate()
            .map(|(i, &v)| if needed.contains(&i) { v } else { 9999 })
            .collect();
        let poisoned_t = Tensor::from_vec(shape, poisoned).unwrap();
        let a = conv2d_range(&PlainI64, &input_t, &weights, &bias, &spec, range.clone()).unwrap();
        let b = conv2d_range(&PlainI64, &poisoned_t, &weights, &bias, &spec, range).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fc_ranges_concatenate(
        input in proptest::collection::vec(-100i64..100, 1..12),
        rows in 1usize..8,
    ) {
        let in_f = input.len();
        let weights: Vec<i64> = (0..rows * in_f).map(|i| (i as i64 % 7) - 3).collect();
        let bias: Vec<i64> = (0..rows).map(|i| i as i64).collect();
        let input = Tensor::from_flat(input);
        let weights = Tensor::from_vec(vec![rows, in_f], weights).unwrap();
        let full = fully_connected(&PlainI64, &input, &weights, &bias).unwrap();
        let per_row: Vec<i64> = (0..rows)
            .flat_map(|j| {
                fully_connected_range(&PlainI64, &input, &weights, &bias, j..j + 1).unwrap()
            })
            .collect();
        prop_assert_eq!(per_row, full.data());
    }

    #[test]
    fn i64_and_i128_backends_agree((spec, h, w, input, weights, bias) in arb_conv_case()) {
        let input64 = Tensor::from_vec(vec![spec.in_channels, h, w], input.clone()).unwrap();
        let input128 = input64.map(|&v| v as i128);
        let weights = Tensor::from_vec(
            vec![spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
            weights,
        )
        .unwrap();
        let o64 = conv2d(&PlainI64, &input64, &weights, &bias, &spec).unwrap();
        let o128 = conv2d(&PlainI128, &input128, &weights, &bias, &spec).unwrap();
        for (a, b) in o64.data().iter().zip(o128.data()) {
            prop_assert_eq!(*a as i128, *b);
        }
    }

    #[test]
    fn f64_matches_integer_backend_on_integer_data(
        input in proptest::collection::vec(-40i64..40, 6),
        weights in proptest::collection::vec(-40i64..40, 12),
    ) {
        let wi = Tensor::from_vec(vec![2, 6], weights.clone()).unwrap();
        let wf = wi.map(|&v| v as f64);
        let xi = Tensor::from_flat(input.clone());
        let xf = xi.map(|&v| v as f64);
        let oi = fully_connected(&PlainI64, &xi, &wi, &[1, -1]).unwrap();
        let of = fully_connected(&PlainF64, &xf, &wf, &[1.0, -1.0]).unwrap();
        for (a, b) in oi.data().iter().zip(of.data()) {
            prop_assert_eq!(*a as f64, *b);
        }
    }

    #[test]
    fn maxpool_output_bounded_by_input(
        data in proptest::collection::vec(-1000i64..1000, 16),
    ) {
        let t = Tensor::from_vec(vec![1, 4, 4], data.clone()).unwrap();
        let out = max_pool2d(&t, 2, 2).unwrap();
        let max = data.iter().max().unwrap();
        for v in out.data() {
            prop_assert!(v <= max);
            prop_assert!(data.contains(v));
        }
    }

    #[test]
    fn reshape_roundtrip(data in proptest::collection::vec(any::<i64>(), 1..64)) {
        let n = data.len();
        let t = Tensor::from_flat(data.clone());
        // Any factorization reshapes losslessly.
        for d in 1..=n {
            if n % d == 0 {
                let r = t.clone().reshape(vec![d, n / d]).unwrap().flatten();
                prop_assert_eq!(r.data(), &data[..]);
            }
        }
    }
}
