//! Layer kernels, written once against [`LinearAlgebra`] and shared by the
//! plaintext, scaled-integer, and homomorphic back-ends.
//!
//! Every linear kernel comes in two forms:
//!
//! * a whole-tensor form (`conv2d`, `fully_connected`, `affine`), and
//! * a *range* form (`conv2d_range`, `fully_connected_range`) that computes
//!   only output elements `[start, end)` — the unit of work PP-Stream's
//!   tensor partitioning assigns to one thread (paper Sec. IV-D, Fig. 5).
//!
//! The index helpers (`conv_input_indices_for_range`) report which input
//!   elements a range actually needs, which is what makes *input* tensor
//!   partitioning possible for convolutions: a thread is sent only the
//!   sub-tensor covering its receptive fields instead of the whole input.

use crate::{DotRow, LinearAlgebra, Shape, Tensor, TensorError};
use std::collections::BTreeSet;
use std::ops::Range;

/// Configuration of a 2-D convolution over `[C_in, H, W]` inputs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Conv2dSpec {
    pub in_channels: usize,
    pub out_channels: usize,
    pub kernel: usize,
    pub stride: usize,
    pub padding: usize,
}

impl Conv2dSpec {
    /// Output spatial size for an `h × w` input.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding - self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding - self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Output shape for a given input shape.
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, TensorError> {
        let dims = input.dims();
        if dims.len() != 3 || dims[0] != self.in_channels {
            return Err(TensorError::IncompatibleShapes(format!(
                "conv2d expects [{}, H, W], got {input}",
                self.in_channels
            )));
        }
        let (oh, ow) = self.output_hw(dims[1], dims[2]);
        Ok(Shape::new(vec![self.out_channels, oh, ow]))
    }
}

/// 2-D convolution. `weights` has shape `[C_out, C_in, K, K]`; `bias` one
/// entry per output channel.
pub fn conv2d<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    weights: &Tensor<L::Weight>,
    bias: &[L::Weight],
    spec: &Conv2dSpec,
) -> Result<Tensor<L::Elem>, TensorError> {
    let out_shape = spec.output_shape(input.shape())?;
    let data = conv2d_range(ctx, input, weights, bias, spec, 0..out_shape.len())?;
    Tensor::from_vec(out_shape, data)
}

/// Computes convolution output elements with flat indices in `range`.
///
/// Out-of-bounds taps (zero padding) are simply skipped — adding an
/// encrypted zero would cost a homomorphic operation for no effect.
pub fn conv2d_range<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    weights: &Tensor<L::Weight>,
    bias: &[L::Weight],
    spec: &Conv2dSpec,
    range: Range<usize>,
) -> Result<Vec<L::Elem>, TensorError> {
    let out_shape = spec.output_shape(input.shape())?;
    let w_dims = weights.shape().dims();
    if w_dims != [spec.out_channels, spec.in_channels, spec.kernel, spec.kernel] {
        return Err(TensorError::IncompatibleShapes(format!(
            "conv2d weights {} do not match spec",
            weights.shape()
        )));
    }
    if bias.len() != spec.out_channels {
        return Err(TensorError::IncompatibleShapes("bias length".into()));
    }
    if range.end > out_shape.len() {
        return Err(TensorError::IndexOutOfBounds);
    }
    let in_dims = input.shape().dims();
    let (h, w) = (in_dims[1], in_dims[2]);

    let mut rows = Vec::with_capacity(range.len());
    for flat in range {
        let idx = out_shape.unravel(flat);
        let (oc, oy, ox) = (idx[0], idx[1], idx[2]);
        let mut terms = Vec::with_capacity(spec.in_channels * spec.kernel * spec.kernel);
        for ic in 0..spec.in_channels {
            for ky in 0..spec.kernel {
                for kx in 0..spec.kernel {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                        continue; // zero-padded tap
                    }
                    let off = input
                        .shape()
                        .offset(&[ic, iy as usize, ix as usize])
                        .expect("bounds checked");
                    let wv = *weights.get(&[oc, ic, ky, kx]).expect("shape checked");
                    terms.push((off, wv));
                }
            }
        }
        rows.push(DotRow { bias: bias[oc], terms });
    }
    Ok(ctx.dot_rows(input.data(), &rows))
}

/// The set of flat input indices a convolution output range reads — the
/// "sub-tensor" PP-Stream sends to a thread under input tensor
/// partitioning (Fig. 5(b)).
pub fn conv_input_indices_for_range(
    input_shape: &Shape,
    spec: &Conv2dSpec,
    range: Range<usize>,
) -> Result<BTreeSet<usize>, TensorError> {
    let out_shape = spec.output_shape(input_shape)?;
    if range.end > out_shape.len() {
        return Err(TensorError::IndexOutOfBounds);
    }
    let in_dims = input_shape.dims();
    let (h, w) = (in_dims[1], in_dims[2]);
    let mut needed = BTreeSet::new();
    for flat in range {
        let idx = out_shape.unravel(flat);
        let (oy, ox) = (idx[1], idx[2]);
        for ic in 0..spec.in_channels {
            for ky in 0..spec.kernel {
                for kx in 0..spec.kernel {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                    if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                        continue;
                    }
                    needed.insert(
                        input_shape
                            .offset(&[ic, iy as usize, ix as usize])
                            .expect("bounds checked"),
                    );
                }
            }
        }
    }
    Ok(needed)
}

/// Fully-connected layer: `out[j] = Σᵢ w[j,i]·x[i] + b[j]`.
/// `weights` has shape `[out_features, in_features]`.
pub fn fully_connected<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    weights: &Tensor<L::Weight>,
    bias: &[L::Weight],
) -> Result<Tensor<L::Elem>, TensorError> {
    let out_features = weights.shape().dims()[0];
    let data = fully_connected_range(ctx, input, weights, bias, 0..out_features)?;
    Tensor::from_vec(vec![out_features], data)
}

/// Computes fully-connected output elements `[start, end)` — PP-Stream's
/// *output* tensor partitioning unit for dense layers.
pub fn fully_connected_range<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    weights: &Tensor<L::Weight>,
    bias: &[L::Weight],
    range: Range<usize>,
) -> Result<Vec<L::Elem>, TensorError> {
    let w_dims = weights.shape().dims();
    if w_dims.len() != 2 {
        return Err(TensorError::IncompatibleShapes("weights must be rank 2".into()));
    }
    let (out_features, in_features) = (w_dims[0], w_dims[1]);
    if input.len() != in_features {
        return Err(TensorError::IncompatibleShapes(format!(
            "input {} vs in_features {in_features}",
            input.len()
        )));
    }
    if bias.len() != out_features {
        return Err(TensorError::IncompatibleShapes("bias length".into()));
    }
    if range.end > out_features {
        return Err(TensorError::IndexOutOfBounds);
    }
    let rows: Vec<DotRow<L::Weight>> = range
        .map(|j| DotRow {
            bias: bias[j],
            terms: (0..in_features)
                .map(|i| (i, *weights.get(&[j, i]).expect("shape checked")))
                .collect(),
        })
        .collect();
    Ok(ctx.dot_rows(input.data(), &rows))
}

/// Per-channel affine transform `y = a[c]·x + b[c]` over `[C, H, W]` (or
/// per-element over rank-1) — the inference-time form of batch
/// normalization, which PP-Stream classifies as a linear layer (Fig. 2).
pub fn affine<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    scale: &[L::Weight],
    shift: &[L::Weight],
) -> Result<Tensor<L::Elem>, TensorError> {
    if scale.len() != shift.len() {
        return Err(TensorError::IncompatibleShapes("scale/shift length".into()));
    }
    let dims = input.shape().dims();
    let channels = dims[0];
    if channels != scale.len() {
        return Err(TensorError::IncompatibleShapes(format!(
            "{channels} channels vs {} affine params",
            scale.len()
        )));
    }
    let per_channel = input.len() / channels;
    let mut data = Vec::with_capacity(input.len());
    for (i, x) in input.data().iter().enumerate() {
        let c = i / per_channel;
        let y = ctx.add(&ctx.mul(scale[c], x), &ctx.constant(shift[c]));
        data.push(y);
    }
    Tensor::from_vec(input.shape().clone(), data)
}

/// Output shape of a `[C, H, W]` pooling op.
pub fn pool_output_shape(
    input: &Shape,
    window: usize,
    stride: usize,
) -> Result<Shape, TensorError> {
    let dims = input.dims();
    if dims.len() != 3 {
        return Err(TensorError::IncompatibleShapes("pooling expects [C, H, W]".into()));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if window == 0 || stride == 0 || h < window || w < window {
        return Err(TensorError::IncompatibleShapes("pool window".into()));
    }
    Ok(Shape::new(vec![c, (h - window) / stride + 1, (w - window) / stride + 1]))
}

/// 2-D *sum* pooling — the linear half of average pooling. Unlike
/// MaxPooling (which PP-Stream must replace, Sec. III-C), summation is a
/// linear operation, so it runs homomorphically at the model provider;
/// the `1/window²` divisor folds into the data provider's next rescale.
pub fn sum_pool2d<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    window: usize,
    stride: usize,
) -> Result<Tensor<L::Elem>, TensorError> {
    let out_shape = pool_output_shape(input.shape(), window, stride)?;
    let data = sum_pool2d_range(ctx, input, window, stride, 0..out_shape.len())?;
    Tensor::from_vec(out_shape, data)
}

/// Sum-pooling output elements `[start, end)` (the tensor-partitioning
/// unit, like `conv2d_range`).
pub fn sum_pool2d_range<L: LinearAlgebra>(
    ctx: &L,
    input: &Tensor<L::Elem>,
    window: usize,
    stride: usize,
    range: Range<usize>,
) -> Result<Vec<L::Elem>, TensorError> {
    let out_shape = pool_output_shape(input.shape(), window, stride)?;
    if range.end > out_shape.len() {
        return Err(TensorError::IndexOutOfBounds);
    }
    let mut out = Vec::with_capacity(range.len());
    for flat in range {
        let idx = out_shape.unravel(flat);
        let (c, oy, ox) = (idx[0], idx[1], idx[2]);
        let mut acc: Option<L::Elem> = None;
        for ky in 0..window {
            for kx in 0..window {
                let x = input
                    .get(&[c, oy * stride + ky, ox * stride + kx])
                    .expect("bounds checked");
                acc = Some(match acc {
                    None => x.clone(),
                    Some(a) => ctx.add(&a, x),
                });
            }
        }
        out.push(acc.expect("window non-empty"));
    }
    Ok(out)
}

/// Flat input indices a sum-pooling output range reads (for input tensor
/// partitioning).
pub fn pool_input_indices_for_range(
    input_shape: &Shape,
    window: usize,
    stride: usize,
    range: Range<usize>,
) -> Result<BTreeSet<usize>, TensorError> {
    let out_shape = pool_output_shape(input_shape, window, stride)?;
    if range.end > out_shape.len() {
        return Err(TensorError::IndexOutOfBounds);
    }
    let mut needed = BTreeSet::new();
    for flat in range {
        let idx = out_shape.unravel(flat);
        let (c, oy, ox) = (idx[0], idx[1], idx[2]);
        for ky in 0..window {
            for kx in 0..window {
                needed.insert(
                    input_shape
                        .offset(&[c, oy * stride + ky, ox * stride + kx])
                        .expect("bounds checked"),
                );
            }
        }
    }
    Ok(needed)
}

/// 2-D average pooling over floats: `sum / window²`.
pub fn avg_pool2d(
    input: &Tensor<f64>,
    window: usize,
    stride: usize,
) -> Result<Tensor<f64>, TensorError> {
    let sum = sum_pool2d(&crate::PlainF64, input, window, stride)?;
    let div = (window * window) as f64;
    Ok(sum.map(|&v| v / div))
}

/// 2-D max pooling over `[C, H, W]` with a square window and equal stride.
/// Non-linear: only defined for ordered plaintext elements (the data
/// provider's side of the protocol).
pub fn max_pool2d<T: PartialOrd + Clone>(
    input: &Tensor<T>,
    window: usize,
    stride: usize,
) -> Result<Tensor<T>, TensorError> {
    let dims = input.shape().dims();
    if dims.len() != 3 {
        return Err(TensorError::IncompatibleShapes("max_pool2d expects [C, H, W]".into()));
    }
    let (c, h, w) = (dims[0], dims[1], dims[2]);
    if window == 0 || stride == 0 || h < window || w < window {
        return Err(TensorError::IncompatibleShapes("pool window".into()));
    }
    let oh = (h - window) / stride + 1;
    let ow = (w - window) / stride + 1;
    let mut data = Vec::with_capacity(c * oh * ow);
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best: Option<T> = None;
                for ky in 0..window {
                    for kx in 0..window {
                        let v = input
                            .get(&[ch, oy * stride + ky, ox * stride + kx])
                            .expect("bounds checked");
                        match &best {
                            Some(b) if b >= v => {}
                            _ => best = Some(v.clone()),
                        }
                    }
                }
                data.push(best.expect("window non-empty"));
            }
        }
    }
    Tensor::from_vec(vec![c, oh, ow], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PlainF64, PlainI64};

    fn spec_3x3_to_2x2() -> Conv2dSpec {
        Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 }
    }

    #[test]
    fn conv2d_paper_figure5_example() {
        // The 3×3 input / 2×2 filter example from Fig. 5(a).
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|v| v as f64).collect()).unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        let out = conv2d(&PlainF64, &input, &weights, &[0.0], &spec_3x3_to_2x2()).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        // m11+m22, m12+m23, m21+m32, m22+m33
        assert_eq!(out.data(), &[6.0, 8.0, 12.0, 14.0]);
    }

    #[test]
    fn conv2d_with_padding() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 3, 3], vec![0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0]).unwrap();
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 3, stride: 1, padding: 1 };
        let out = conv2d(&PlainF64, &input, &weights, &[0.0], &spec).unwrap();
        // Identity kernel centered: output equals input.
        assert_eq!(out.data(), input.data());
    }

    #[test]
    fn conv2d_stride_two() {
        let input = Tensor::from_vec(vec![1, 4, 4], (0..16).map(|v| v as f64).collect()).unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap();
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 2, padding: 0 };
        let out = conv2d(&PlainF64, &input, &weights, &[0.0], &spec).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.data(), &[10.0, 18.0, 42.0, 50.0]);
    }

    #[test]
    fn conv2d_multi_channel_with_bias() {
        // 2 input channels, 2 output channels, 1×1 kernels = channel mixing.
        let input = Tensor::from_vec(vec![2, 1, 1], vec![3.0, 5.0]).unwrap();
        let weights =
            Tensor::from_vec(vec![2, 2, 1, 1], vec![1.0, 1.0, 2.0, -1.0]).unwrap();
        let spec = Conv2dSpec { in_channels: 2, out_channels: 2, kernel: 1, stride: 1, padding: 0 };
        let out = conv2d(&PlainF64, &input, &weights, &[10.0, 20.0], &spec).unwrap();
        assert_eq!(out.data(), &[3.0 + 5.0 + 10.0, 6.0 - 5.0 + 20.0]);
    }

    #[test]
    fn conv2d_range_matches_full() {
        let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|v| v as f64).collect()).unwrap();
        let weights = Tensor::from_vec(vec![1, 1, 2, 2], vec![0.5, -1.0, 2.0, 0.25]).unwrap();
        let spec = spec_3x3_to_2x2();
        let full = conv2d(&PlainF64, &input, &weights, &[1.0], &spec).unwrap();
        let lo = conv2d_range(&PlainF64, &input, &weights, &[1.0], &spec, 0..2).unwrap();
        let hi = conv2d_range(&PlainF64, &input, &weights, &[1.0], &spec, 2..4).unwrap();
        assert_eq!([lo, hi].concat(), full.data());
    }

    #[test]
    fn conv_input_indices_fig5b() {
        // Fig. 5(b): with two threads each producing 2 of the 4 outputs,
        // each thread needs only 6 of the 9 input elements.
        let shape = Shape::new(vec![1, 3, 3]);
        let spec = spec_3x3_to_2x2();
        let first = conv_input_indices_for_range(&shape, &spec, 0..2).unwrap();
        assert_eq!(first.len(), 6);
        // Outputs (0,0) and (0,1) read rows 0–1, all columns.
        assert_eq!(first.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5]);
        let second = conv_input_indices_for_range(&shape, &spec, 2..4).unwrap();
        assert_eq!(second.iter().copied().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn fully_connected_basic() {
        let input = Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let weights = Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        let out = fully_connected(&PlainF64, &input, &weights, &[0.0, 1.0]).unwrap();
        assert_eq!(out.data(), &[-2.0, 4.0]);
    }

    #[test]
    fn fully_connected_range_matches_full() {
        let input = Tensor::from_flat(vec![2i64, -3, 4]);
        let weights = Tensor::from_vec(vec![4, 3], (0..12).map(|v| v as i64 - 5).collect()).unwrap();
        let bias = [1i64, 2, 3, 4];
        let full = fully_connected(&PlainI64, &input, &weights, &bias).unwrap();
        let parts: Vec<i64> = (0..4)
            .flat_map(|j| {
                fully_connected_range(&PlainI64, &input, &weights, &bias, j..j + 1).unwrap()
            })
            .collect();
        assert_eq!(parts, full.data());
    }

    #[test]
    fn fully_connected_shape_errors() {
        let input = Tensor::from_flat(vec![1.0, 2.0]);
        let weights = Tensor::from_vec(vec![2, 3], vec![0.0; 6]).unwrap();
        assert!(fully_connected(&PlainF64, &input, &weights, &[0.0, 0.0]).is_err());
        let weights = Tensor::from_vec(vec![2, 2], vec![0.0; 4]).unwrap();
        assert!(fully_connected(&PlainF64, &input, &weights, &[0.0]).is_err());
    }

    #[test]
    fn affine_per_channel() {
        let input = Tensor::from_vec(vec![2, 1, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let out = affine(&PlainF64, &input, &[2.0, -1.0], &[0.5, 0.0]).unwrap();
        assert_eq!(out.data(), &[2.5, 4.5, -3.0, -4.0]);
    }

    #[test]
    fn affine_rank1() {
        let input = Tensor::from_flat(vec![10i64, 20, 30]);
        let out = affine(&PlainI64, &input, &[1, 2, 3], &[0, 0, -90]).unwrap();
        assert_eq!(out.data(), &[10, 40, 0]);
    }

    #[test]
    fn max_pool_basic() {
        let input = Tensor::from_vec(vec![1, 4, 4], (0..16).collect::<Vec<i64>>()).unwrap();
        let out = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.data(), &[5, 7, 13, 15]);
    }

    #[test]
    fn max_pool_overlapping() {
        let input = Tensor::from_vec(vec![1, 3, 3], vec![1, 9, 2, 3, 4, 5, 8, 7, 6]).unwrap();
        let out = max_pool2d(&input, 2, 1).unwrap();
        assert_eq!(out.data(), &[9, 9, 8, 7]);
    }

    #[test]
    fn max_pool_errors() {
        let input = Tensor::from_flat(vec![1, 2, 3]);
        assert!(max_pool2d(&input, 2, 2).is_err());
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1, 2, 3, 4]).unwrap();
        assert!(max_pool2d(&input, 3, 1).is_err());
    }

    #[test]
    fn sum_pool_basic() {
        let input = Tensor::from_vec(vec![1, 4, 4], (0..16).collect::<Vec<i64>>()).unwrap();
        let out = sum_pool2d(&PlainI64, &input, 2, 2).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2]);
        assert_eq!(out.data(), &[1 + 4 + 5, 2 + 3 + 6 + 7, 8 + 9 + 12 + 13, 10 + 11 + 14 + 15]);
    }

    #[test]
    fn avg_pool_is_sum_over_window_area() {
        let input = Tensor::from_vec(vec![1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let out = avg_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[3.0]);
    }

    #[test]
    fn sum_pool_range_matches_full() {
        let input = Tensor::from_vec(vec![2, 3, 3], (0..18).collect::<Vec<i64>>()).unwrap();
        let full = sum_pool2d(&PlainI64, &input, 2, 1).unwrap();
        let n = full.len();
        let parts: Vec<i64> = (0..n)
            .flat_map(|e| sum_pool2d_range(&PlainI64, &input, 2, 1, e..e + 1).unwrap())
            .collect();
        assert_eq!(parts, full.data());
    }

    #[test]
    fn pool_indices_sufficient() {
        let shape = Shape::new(vec![1, 4, 4]);
        let needed = pool_input_indices_for_range(&shape, 2, 2, 0..1).unwrap();
        assert_eq!(needed.iter().copied().collect::<Vec<_>>(), vec![0, 1, 4, 5]);
        // Non-overlapping stride-2 windows partition the input.
        let all = pool_input_indices_for_range(&shape, 2, 2, 0..4).unwrap();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn pool_shape_errors() {
        assert!(pool_output_shape(&Shape::new(vec![4]), 2, 2).is_err());
        assert!(pool_output_shape(&Shape::new(vec![1, 2, 2]), 3, 1).is_err());
        assert!(pool_output_shape(&Shape::new(vec![1, 4, 4]), 2, 0).is_err());
    }

    #[test]
    fn i64_and_f64_agree_on_integer_data() {
        // The scaled-integer path must track the float path exactly when all
        // values are integers — the core of PP-Stream's correctness claim.
        let input_f = Tensor::from_vec(vec![1, 3, 3], (1..=9).map(|v| v as f64).collect()).unwrap();
        let input_i = Tensor::from_vec(vec![1, 3, 3], (1..=9).collect::<Vec<i64>>()).unwrap();
        let wf = Tensor::from_vec(vec![1, 1, 2, 2], vec![2.0, -1.0, 3.0, 0.0]).unwrap();
        let wi = Tensor::from_vec(vec![1, 1, 2, 2], vec![2i64, -1, 3, 0]).unwrap();
        let spec = spec_3x3_to_2x2();
        let of = conv2d(&PlainF64, &input_f, &wf, &[5.0], &spec).unwrap();
        let oi = conv2d(&PlainI64, &input_i, &wi, &[5], &spec).unwrap();
        for (a, b) in of.data().iter().zip(oi.data()) {
            assert_eq!(*a, *b as f64);
        }
    }
}
