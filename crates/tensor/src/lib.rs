//! # pp-tensor
//!
//! Minimal n-dimensional tensor algebra for the PP-Stream reproduction.
//!
//! The crate provides:
//!
//! * [`Tensor`] — a dense, row-major, n-dimensional array generic over the
//!   element type. PP-Stream moves tensors of `f64` (plain inference),
//!   `i64` (scaled-integer inference), and Paillier ciphertexts (encrypted
//!   inference) through the same layer algorithms.
//! * [`LinearAlgebra`] — the abstraction that makes that sharing possible:
//!   a context supplying `weight × element` and `element + element`. The
//!   convolution and fully-connected kernels in [`ops`] are written once
//!   against this trait and reused verbatim for plaintext and homomorphic
//!   arithmetic (where `×` is `E(m)^w` and `+` is `E(m₁)·E(m₂)`).
//! * [`ops`] — conv2d, fully-connected, batch-norm (affine), and pooling
//!   kernels, plus the index bookkeeping used by PP-Stream's tensor
//!   partitioning (paper Sec. IV-D).
//!
//! ```
//! use pp_tensor::{ops, PlainI64, Tensor};
//!
//! // The 3×3 ⊛ 2×2 example of paper Fig. 5(a).
//! let input = Tensor::from_vec(vec![1, 3, 3], (1..=9).collect::<Vec<i64>>()).unwrap();
//! let filt = Tensor::from_vec(vec![1, 1, 2, 2], vec![1, 0, 0, 1]).unwrap();
//! let spec = ops::Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
//! let out = ops::conv2d(&PlainI64, &input, &filt, &[0], &spec).unwrap();
//! assert_eq!(out.data(), &[6, 8, 12, 14]);
//! ```

mod linalg;
pub mod ops;
mod shape;
mod tensor;

pub use linalg::{DotRow, LinearAlgebra, PlainF64, PlainI128, PlainI64};
pub use shape::Shape;
pub use tensor::Tensor;

/// Errors from tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The requested shape does not match the element count.
    ShapeMismatch { expected: usize, got: usize },
    /// Operand shapes are incompatible for the operation.
    IncompatibleShapes(String),
    /// An index was out of bounds.
    IndexOutOfBounds,
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected} elements, got {got}")
            }
            TensorError::IncompatibleShapes(s) => write!(f, "incompatible shapes: {s}"),
            TensorError::IndexOutOfBounds => write!(f, "index out of bounds"),
        }
    }
}

impl std::error::Error for TensorError {}
