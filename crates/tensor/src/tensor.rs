//! The dense tensor container.

use crate::{Shape, TensorError};

/// A dense, row-major, n-dimensional array.
#[derive(Clone, PartialEq, Debug)]
pub struct Tensor<T> {
    shape: Shape,
    data: Vec<T>,
}

impl<T> Tensor<T> {
    /// Creates a tensor from a flat row-major buffer.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<T>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.len() != data.len() {
            return Err(TensorError::ShapeMismatch { expected: shape.len(), got: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a rank-1 tensor from a flat buffer.
    pub fn from_flat(data: Vec<T>) -> Self {
        Tensor { shape: Shape::vector(data.len()), data }
    }

    /// The shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the elements.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat view.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning the flat buffer.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    /// Element at a multi-index.
    pub fn get(&self, index: &[usize]) -> Result<&T, TensorError> {
        Ok(&self.data[self.shape.offset(index)?])
    }

    /// Mutable element at a multi-index.
    pub fn get_mut(&mut self, index: &[usize]) -> Result<&mut T, TensorError> {
        let off = self.shape.offset(index)?;
        Ok(&mut self.data[off])
    }

    /// Reinterprets with a new shape of the same element count. The paper's
    /// obfuscation step reshapes every tensor to rank 1 before permuting
    /// (Sec. III-C); this is that operation.
    pub fn reshape(self, shape: impl Into<Shape>) -> Result<Self, TensorError> {
        let shape = shape.into();
        if shape.len() != self.data.len() {
            return Err(TensorError::ShapeMismatch { expected: shape.len(), got: self.data.len() });
        }
        Ok(Tensor { shape, data: self.data })
    }

    /// Flattens to rank 1 (lexicographic element order — "reshape T into a
    /// one-dimensional vector v" in the paper).
    pub fn flatten(self) -> Self {
        let len = self.data.len();
        Tensor { shape: Shape::vector(len), data: self.data }
    }

    /// Applies `f` to every element, producing a new tensor of the same
    /// shape.
    pub fn map<U>(&self, mut f: impl FnMut(&T) -> U) -> Tensor<U> {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(&mut f).collect() }
    }

    /// Combines two same-shaped tensors element-wise.
    pub fn zip_map<U, V>(
        &self,
        other: &Tensor<U>,
        mut f: impl FnMut(&T, &U) -> V,
    ) -> Result<Tensor<V>, TensorError> {
        if self.shape != other.shape {
            return Err(TensorError::IncompatibleShapes(format!(
                "{} vs {}",
                self.shape, other.shape
            )));
        }
        let data = self.data.iter().zip(&other.data).map(|(a, b)| f(a, b)).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }
}

impl<T: Clone> Tensor<T> {
    /// A tensor filled with copies of `value`.
    pub fn full(shape: impl Into<Shape>, value: T) -> Self {
        let shape = shape.into();
        let len = shape.len();
        Tensor { shape, data: vec![value; len] }
    }
}

impl<T: Default + Clone> Tensor<T> {
    /// A tensor of default-valued elements (zeros for numeric types).
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::full(shape, T::default())
    }
}

impl Tensor<f64> {
    /// Converts to scaled integers: `round(x · factor)` per element
    /// (paper Sec. IV-A parameter scaling).
    pub fn scale_to_i64(&self, factor: f64) -> Tensor<i64> {
        self.map(|&x| (x * factor).round() as i64)
    }
}

impl Tensor<i64> {
    /// Converts scaled integers back to floats: `x / factor`.
    pub fn unscale_to_f64(&self, factor: f64) -> Tensor<f64> {
        self.map(|&x| x as f64 / factor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tensor::from_vec(vec![2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        assert_eq!(*t.get(&[0, 0]).unwrap(), 1);
        assert_eq!(*t.get(&[1, 2]).unwrap(), 6);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1, 2, 3]).is_err());
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_vec(vec![2, 3], vec![1, 2, 3, 4, 5, 6]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(*r.get(&[0, 1]).unwrap(), 2);
        assert_eq!(*r.get(&[2, 1]).unwrap(), 6);
        assert!(r.clone().reshape(vec![7]).is_err());
    }

    #[test]
    fn flatten_is_lexicographic() {
        let t = Tensor::from_vec(vec![2, 2], vec![10, 20, 30, 40]).unwrap();
        let f = t.flatten();
        assert_eq!(f.shape().dims(), &[4]);
        assert_eq!(f.data(), &[10, 20, 30, 40]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let b = a.map(|x| x * 2.0);
        assert_eq!(b.data(), &[2.0, 4.0, 6.0, 8.0]);
        let c = a.zip_map(&b, |x, y| x + y).unwrap();
        assert_eq!(c.data(), &[3.0, 6.0, 9.0, 12.0]);
        let d = Tensor::from_vec(vec![4], vec![0.0; 4]).unwrap();
        assert!(a.zip_map(&d, |x, _| *x).is_err());
    }

    #[test]
    fn scaling_roundtrip() {
        let t = Tensor::from_vec(vec![3], vec![0.5, -1.25, 3.333333]).unwrap();
        let s = t.scale_to_i64(1e6);
        assert_eq!(s.data(), &[500_000, -1_250_000, 3_333_333]);
        let back = s.unscale_to_f64(1e6);
        for (a, b) in back.data().iter().zip(t.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn zeros_and_full() {
        let z: Tensor<i64> = Tensor::zeros(vec![2, 2]);
        assert_eq!(z.data(), &[0, 0, 0, 0]);
        let f = Tensor::full(vec![3], 7u8);
        assert_eq!(f.data(), &[7, 7, 7]);
    }
}
