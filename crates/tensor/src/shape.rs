//! Tensor shapes and row-major index arithmetic.

use crate::TensorError;

/// The dimensions of a tensor, outermost first.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// A 1-dimensional shape.
    pub fn vector(len: usize) -> Self {
        Shape(vec![len])
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count (product of dimension sizes; `1` for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Returns `true` when the shape holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Row-major linear offset for a multi-index.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.0.len() {
            return Err(TensorError::IndexOutOfBounds);
        }
        let mut off = 0;
        for (i, (&ix, &dim)) in index.iter().zip(&self.0).enumerate() {
            if ix >= dim {
                return Err(TensorError::IndexOutOfBounds);
            }
            off = off * dim + ix;
            let _ = i;
        }
        Ok(off)
    }

    /// Inverse of [`Shape::offset`]: the multi-index of a linear offset.
    pub fn unravel(&self, mut offset: usize) -> Vec<usize> {
        let mut idx = vec![0; self.0.len()];
        for i in (0..self.0.len()).rev() {
            idx[i] = offset % self.0[i];
            offset /= self.0[i];
        }
        idx
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "×")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(vec![3, 4, 5]);
        assert_eq!(s.len(), 60);
        assert_eq!(s.rank(), 3);
        assert!(!s.is_empty());
        assert!(Shape::new(vec![3, 0]).is_empty());
    }

    #[test]
    fn offset_row_major() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[0, 2]).unwrap(), 2);
        assert_eq!(s.offset(&[1, 0]).unwrap(), 3);
        assert_eq!(s.offset(&[1, 2]).unwrap(), 5);
    }

    #[test]
    fn offset_bounds() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[2, 0]), Err(TensorError::IndexOutOfBounds));
        assert_eq!(s.offset(&[0]), Err(TensorError::IndexOutOfBounds));
    }

    #[test]
    fn unravel_inverts_offset() {
        let s = Shape::new(vec![2, 3, 4]);
        for off in 0..s.len() {
            let idx = s.unravel(off);
            assert_eq!(s.offset(&idx).unwrap(), off);
        }
    }

    #[test]
    fn display() {
        assert_eq!(Shape::new(vec![28, 28]).to_string(), "[28×28]");
    }
}
