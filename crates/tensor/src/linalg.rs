//! The [`LinearAlgebra`] abstraction: one set of layer kernels, three
//! arithmetic back-ends (float, scaled integer, Paillier ciphertext).

/// One output element of a linear layer, described as a sparse dot
/// product over the layer's input elements: `bias + Σ terms[k].1 ·
/// x[terms[k].0]`. The range kernels in [`crate::ops`] lower every
/// fully-connected / convolution output to this shape so back-ends can
/// fuse whole dot products (see [`LinearAlgebra::dot_rows`]).
#[derive(Clone, Debug)]
pub struct DotRow<W> {
    /// The additive constant of this output element.
    pub bias: W,
    /// `(input index, weight)` pairs in evaluation order.
    pub terms: Vec<(usize, W)>,
}

impl DotRow<i64> {
    /// The packed-ciphertext offset weight this row's dot product
    /// accumulates over inputs of weight `input_weight`:
    /// `1 + Σ|wᵢ|·input_weight` (one unit for the bias slot). Saturating,
    /// so an overflowing row can only *over*-estimate — sizing against an
    /// op budget stays safe.
    pub fn packed_weight(&self, input_weight: u64) -> u64 {
        self.terms.iter().fold(1u64, |acc, &(_, w)| {
            acc.saturating_add(w.unsigned_abs().saturating_mul(input_weight))
        })
    }
}

/// Arithmetic context for the linear-layer kernels in [`crate::ops`].
///
/// PP-Stream executes the *same* convolution / fully-connected /
/// batch-norm computations in three domains:
///
/// * plaintext floats (the `PlainBase` baseline and accuracy evaluation),
/// * scaled integers (the reference the encrypted path must match exactly),
/// * Paillier ciphertexts (the model provider's homomorphic evaluation,
///   where multiplication-by-weight is `E(m)^w mod n²` and addition is
///   `E(m₁)·E(m₂) mod n²`).
///
/// Implementations supply those two operations plus a way to introduce a
/// bias constant. Weights are always plaintext `i64`/`f64` values held by
/// the model provider — homomorphic encryption is only applied to the data
/// provider's activations (paper Sec. III-B).
pub trait LinearAlgebra {
    /// Activation element (e.g. `f64`, `i64`, `Ciphertext`).
    type Elem: Clone;
    /// Weight scalar (e.g. `f64` or scaled `i64`).
    type Weight: Copy;

    /// `weight × element`.
    fn mul(&self, w: Self::Weight, x: &Self::Elem) -> Self::Elem;
    /// `a + b`.
    fn add(&self, a: &Self::Elem, b: &Self::Elem) -> Self::Elem;
    /// Introduces a constant (bias) into the element domain.
    fn constant(&self, w: Self::Weight) -> Self::Elem;

    /// One sparse dot product `bias + Σ wₖ·x[iₖ]`.
    ///
    /// The default is the plain mul/add fold, so scalar back-ends get
    /// exactly their historical element-by-element semantics. Back-ends
    /// with a cheaper fused form (the Paillier context's interleaved
    /// multi-exponentiation) override this hook.
    fn dot(&self, elems: &[Self::Elem], terms: &[(usize, Self::Weight)], bias: Self::Weight) -> Self::Elem {
        let mut acc = self.constant(bias);
        for &(i, w) in terms {
            acc = self.add(&acc, &self.mul(w, &elems[i]));
        }
        acc
    }

    /// A batch of dot products over one shared input slice — a layer's
    /// worth of output elements. Overriding back-ends can hoist
    /// per-input preparation (e.g. Montgomery conversion of each
    /// ciphertext) across all rows; the default just evaluates each row.
    fn dot_rows(&self, elems: &[Self::Elem], rows: &[DotRow<Self::Weight>]) -> Vec<Self::Elem> {
        rows.iter().map(|r| self.dot(elems, &r.terms, r.bias)).collect()
    }
}

/// Plaintext `f64` arithmetic.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainF64;

impl LinearAlgebra for PlainF64 {
    type Elem = f64;
    type Weight = f64;

    fn mul(&self, w: f64, x: &f64) -> f64 {
        w * x
    }
    fn add(&self, a: &f64, b: &f64) -> f64 {
        a + b
    }
    fn constant(&self, w: f64) -> f64 {
        w
    }
}

/// Scaled-integer arithmetic (`i64` activations, `i64` weights).
/// Overflow panics in debug builds, mirroring the plaintext-space bound of
/// the Paillier encoding in release semantics as well via `checked_*` —
/// an overflow here means the scaling factor is too large for the model.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainI64;

impl LinearAlgebra for PlainI64 {
    type Elem = i64;
    type Weight = i64;

    fn mul(&self, w: i64, x: &i64) -> i64 {
        w.checked_mul(*x).expect("scaled-integer multiply overflow: reduce scaling factor")
    }
    fn add(&self, a: &i64, b: &i64) -> i64 {
        a.checked_add(*b).expect("scaled-integer add overflow: reduce scaling factor")
    }
    fn constant(&self, w: i64) -> i64 {
        w
    }
}

/// Scaled-integer arithmetic with `i128` accumulation, for deep layers
/// whose dot products overflow 64 bits at large scaling factors.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlainI128;

impl LinearAlgebra for PlainI128 {
    type Elem = i128;
    type Weight = i64;

    fn mul(&self, w: i64, x: &i128) -> i128 {
        w as i128 * x
    }
    fn add(&self, a: &i128, b: &i128) -> i128 {
        a + b
    }
    fn constant(&self, w: i64) -> i128 {
        w as i128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_f64_semantics() {
        let ctx = PlainF64;
        assert_eq!(ctx.mul(2.0, &3.5), 7.0);
        assert_eq!(ctx.add(&1.0, &2.0), 3.0);
        assert_eq!(ctx.constant(5.0), 5.0);
    }

    #[test]
    fn plain_i64_semantics() {
        let ctx = PlainI64;
        assert_eq!(ctx.mul(-4, &25), -100);
        assert_eq!(ctx.add(&7, &-9), -2);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn plain_i64_overflow_panics() {
        PlainI64.mul(i64::MAX, &2);
    }

    #[test]
    fn plain_i128_widens() {
        let ctx = PlainI128;
        assert_eq!(ctx.mul(i64::MAX, &2), i64::MAX as i128 * 2);
    }

    #[test]
    fn packed_weight_counts_abs_mass() {
        let row = DotRow { bias: 7i64, terms: vec![(0, 3), (1, -4), (2, 0)] };
        assert_eq!(row.packed_weight(1), 1 + 3 + 4);
        assert_eq!(row.packed_weight(10), 1 + 30 + 40);
        // Bias-only (and even zero-bias) rows still carry the bias slot.
        assert_eq!(DotRow { bias: 0i64, terms: vec![] }.packed_weight(5), 1);
        // Overflow saturates instead of wrapping to a small value.
        let big = DotRow { bias: 0i64, terms: vec![(0, i64::MIN), (1, i64::MAX)] };
        assert_eq!(big.packed_weight(u64::MAX), u64::MAX);
    }

    #[test]
    fn default_dot_matches_mul_add_fold() {
        let ctx = PlainI64;
        let elems = [2i64, -3, 4, 7];
        let terms = [(0usize, 5i64), (2, -1), (3, 0)];
        assert_eq!(ctx.dot(&elems, &terms, 10), 10 + 10 - 4);
        let rows = vec![
            DotRow { bias: 1, terms: vec![(1, 2)] },
            DotRow { bias: 0, terms: vec![] },
        ];
        assert_eq!(ctx.dot_rows(&elems, &rows), vec![-5, 0]);
    }
}
