//! Property tests for pp-nn: scaled-integer inference tracks float
//! inference, rounding behaviour, and activation invariants.

use pp_nn::activation::{argmax, argmax_i64, relu, sigmoid_scalar, softmax};
use pp_nn::scaling::div_round;
use pp_nn::{round_params, zoo, ScaledModel};
use pp_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scaled_classification_matches_float_when_margin_large(
        seed in 0u64..500,
        xs in proptest::collection::vec(-1.0f64..1.0, 5),
    ) {
        // With a generous scaling factor, scaled inference must agree with
        // float inference whenever the float decision has real margin.
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp("p", &[5, 7, 3], &mut rng).unwrap();
        let x = Tensor::from_flat(xs);
        let out = model.forward(&x).unwrap();
        let sorted = {
            let mut v = out.data().to_vec();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v
        };
        prop_assume!(sorted[0] - sorted[1] > 1e-3); // skip knife-edge cases
        let scaled = ScaledModel::from_model(&model, 1_000_000);
        prop_assert_eq!(
            scaled.classify_scaled(&x).unwrap(),
            argmax(&out)
        );
    }

    #[test]
    fn rounding_error_bounded(seed in 0u64..200, f in 0u32..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp("p", &[4, 6, 2], &mut rng).unwrap();
        let rounded = round_params(&model, f);
        let tol = 0.5 * 10f64.powi(-(f as i32));
        for (a, b) in model.parameters().iter().zip(rounded.parameters()) {
            prop_assert!((a - b).abs() <= tol + 1e-12, "f={f}: {a} vs {b}");
        }
    }

    #[test]
    fn div_round_error_at_most_half(x in any::<i64>(), d in 1i64..1_000_000) {
        let q = div_round(x as i128, d as i128);
        let back = q * d as i128;
        prop_assert!((back - x as i128).abs() * 2 <= d as i128, "x={x} d={d} q={q}");
    }

    #[test]
    fn relu_idempotent_and_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..20)) {
        let t = Tensor::from_flat(xs);
        let r1 = relu(&t);
        let r2 = relu(&r1);
        prop_assert_eq!(&r1, &r2);
        for (a, b) in t.data().iter().zip(r1.data()) {
            prop_assert!(b >= &0.0);
            prop_assert!(b >= a || *b == 0.0);
        }
    }

    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f64..50.0, 1..12)) {
        let s = softmax(&Tensor::from_flat(xs.clone()));
        let sum: f64 = s.data().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
        // Monotone: argmax is preserved.
        prop_assert_eq!(argmax(&s), argmax(&Tensor::from_flat(xs)));
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let (sa, sb) = (sigmoid_scalar(a), sigmoid_scalar(b));
        prop_assert!((0.0..=1.0).contains(&sa));
        if a < b {
            prop_assert!(sa <= sb);
        }
    }

    #[test]
    fn argmax_agrees_between_domains(xs in proptest::collection::vec(-1000i64..1000, 1..10)) {
        // Unique-max inputs only.
        let max = xs.iter().max().unwrap();
        prop_assume!(xs.iter().filter(|&&v| v == *max).count() == 1);
        let fi = argmax(&Tensor::from_flat(xs.iter().map(|&v| v as f64).collect::<Vec<_>>()));
        let ii = argmax_i64(&Tensor::from_flat(xs));
        prop_assert_eq!(fi, ii);
    }

    #[test]
    fn scaled_reference_deterministic(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let model = zoo::mlp("p", &[3, 4, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 1_000);
        let x = Tensor::from_flat(vec![0.1, -0.2, 0.3]);
        let a = scaled.forward_scaled(&scaled.scale_input(&x)).unwrap();
        let b = scaled.forward_scaled(&scaled.scale_input(&x)).unwrap();
        prop_assert_eq!(a, b);
    }
}
