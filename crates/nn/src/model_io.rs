//! Model persistence: a self-describing binary format for trained models,
//! so the model provider can train once and deploy many sessions (the
//! paper's workflow trains externally and imports weights; this is the
//! equivalent import/export path).
//!
//! Format (all little-endian):
//! `magic u32 | version u8 | name | input shape | layer count u32 | layers`
//! where strings and arrays are length-prefixed and floats are IEEE-754
//! bits.

use crate::{Layer, Model, NnError};
use pp_tensor::ops::Conv2dSpec;
use pp_tensor::Tensor;

const MAGIC: u32 = 0x5050_4D31; // "PPM1"
const VERSION: u8 = 1;

// Layer tags.
const TAG_CONV: u8 = 1;
const TAG_DENSE: u8 = 2;
const TAG_BATCHNORM: u8 = 3;
const TAG_RELU: u8 = 4;
const TAG_SIGMOID: u8 = 5;
const TAG_SOFTMAX: u8 = 6;
const TAG_MAXPOOL: u8 = 7;
const TAG_AVGPOOL: u8 = 8;
const TAG_FLATTEN: u8 = 9;

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn usizes(&mut self, v: &[usize]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.u32(x as u32);
        }
    }
    fn f64s(&mut self, v: &[f64]) {
        self.u32(v.len() as u32);
        for &x in v {
            self.f64(x);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], NnError> {
        if self.pos + n > self.buf.len() {
            return Err(NnError::InvalidModel(format!(
                "model file truncated at offset {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, NnError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, NnError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn f64(&mut self) -> Result<f64, NnError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn len(&mut self, limit: usize) -> Result<usize, NnError> {
        let n = self.u32()? as usize;
        if n > limit {
            return Err(NnError::InvalidModel(format!("length {n} exceeds limit {limit}")));
        }
        Ok(n)
    }
    fn str(&mut self) -> Result<String, NnError> {
        let n = self.len(1 << 16)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|e| NnError::InvalidModel(format!("invalid utf8: {e}")))
    }
    fn usizes(&mut self) -> Result<Vec<usize>, NnError> {
        let n = self.len(1 << 16)?;
        (0..n).map(|_| Ok(self.u32()? as usize)).collect()
    }
    fn f64s(&mut self) -> Result<Vec<f64>, NnError> {
        let n = self.len(1 << 28)?;
        (0..n).map(|_| self.f64()).collect()
    }
}

impl Model {
    /// Serializes the model (architecture + parameters).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer { buf: Vec::new() };
        w.u32(MAGIC);
        w.u8(VERSION);
        w.str(self.name());
        w.usizes(self.input_shape().dims());
        w.u32(self.layers().len() as u32);
        for layer in self.layers() {
            match layer {
                Layer::Conv2d { spec, weights, bias } => {
                    w.u8(TAG_CONV);
                    w.usizes(&[
                        spec.in_channels,
                        spec.out_channels,
                        spec.kernel,
                        spec.stride,
                        spec.padding,
                    ]);
                    w.f64s(weights.data());
                    w.f64s(bias);
                }
                Layer::Dense { weights, bias } => {
                    w.u8(TAG_DENSE);
                    w.usizes(weights.shape().dims());
                    w.f64s(weights.data());
                    w.f64s(bias);
                }
                Layer::BatchNorm { scale, shift } => {
                    w.u8(TAG_BATCHNORM);
                    w.f64s(scale);
                    w.f64s(shift);
                }
                Layer::ReLU => w.u8(TAG_RELU),
                Layer::ScaledSigmoid { alpha } => {
                    w.u8(TAG_SIGMOID);
                    w.f64(*alpha);
                }
                Layer::SoftMax => w.u8(TAG_SOFTMAX),
                Layer::MaxPool { window, stride } => {
                    w.u8(TAG_MAXPOOL);
                    w.usizes(&[*window, *stride]);
                }
                Layer::AvgPool { window, stride } => {
                    w.u8(TAG_AVGPOOL);
                    w.usizes(&[*window, *stride]);
                }
                Layer::Flatten => w.u8(TAG_FLATTEN),
            }
        }
        w.buf
    }

    /// Deserializes a model, re-validating layer shape compatibility.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, NnError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.u32()? != MAGIC {
            return Err(NnError::InvalidModel("bad magic".into()));
        }
        if r.u8()? != VERSION {
            return Err(NnError::InvalidModel("unsupported version".into()));
        }
        let name = r.str()?;
        let input_shape = r.usizes()?;
        let n_layers = r.len(10_000)?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let layer = match r.u8()? {
                TAG_CONV => {
                    let dims = r.usizes()?;
                    if dims.len() != 5 {
                        return Err(NnError::InvalidModel("conv spec".into()));
                    }
                    let spec = Conv2dSpec {
                        in_channels: dims[0],
                        out_channels: dims[1],
                        kernel: dims[2],
                        stride: dims[3],
                        padding: dims[4],
                    };
                    let weights = Tensor::from_vec(
                        vec![spec.out_channels, spec.in_channels, spec.kernel, spec.kernel],
                        r.f64s()?,
                    )
                    .map_err(|e| NnError::InvalidModel(e.to_string()))?;
                    Layer::Conv2d { spec, weights, bias: r.f64s()? }
                }
                TAG_DENSE => {
                    let dims = r.usizes()?;
                    let weights = Tensor::from_vec(dims, r.f64s()?)
                        .map_err(|e| NnError::InvalidModel(e.to_string()))?;
                    Layer::Dense { weights, bias: r.f64s()? }
                }
                TAG_BATCHNORM => Layer::BatchNorm { scale: r.f64s()?, shift: r.f64s()? },
                TAG_RELU => Layer::ReLU,
                TAG_SIGMOID => Layer::ScaledSigmoid { alpha: r.f64()? },
                TAG_SOFTMAX => Layer::SoftMax,
                TAG_MAXPOOL => {
                    let d = r.usizes()?;
                    if d.len() != 2 {
                        return Err(NnError::InvalidModel("maxpool spec".into()));
                    }
                    Layer::MaxPool { window: d[0], stride: d[1] }
                }
                TAG_AVGPOOL => {
                    let d = r.usizes()?;
                    if d.len() != 2 {
                        return Err(NnError::InvalidModel("avgpool spec".into()));
                    }
                    Layer::AvgPool { window: d[0], stride: d[1] }
                }
                TAG_FLATTEN => Layer::Flatten,
                t => return Err(NnError::InvalidModel(format!("unknown layer tag {t}"))),
            };
            layers.push(layer);
        }
        // Model::new revalidates the whole shape chain.
        Model::new(name, input_shape, layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_roundtrip() {
        let mut rng = StdRng::seed_from_u64(70);
        let model = zoo::mlp("io-mlp", &[5, 8, 3], &mut rng).unwrap();
        let restored = Model::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn all_layer_types_roundtrip() {
        let mut rng = StdRng::seed_from_u64(71);
        let model = Model::new(
            "everything",
            vec![2, 8, 8],
            vec![
                zoo::conv_layer(&mut rng, 2, 3, 3, 1, 1),
                zoo::batchnorm_layer(3),
                Layer::ReLU,
                Layer::AvgPool { window: 2, stride: 2 },
                Layer::MaxPool { window: 2, stride: 2 },
                Layer::Flatten,
                zoo::dense_layer(&mut rng, 3 * 2 * 2, 6),
                Layer::ScaledSigmoid { alpha: 0.75 },
                zoo::dense_layer(&mut rng, 6, 2),
                Layer::SoftMax,
            ],
        )
        .unwrap();
        let restored = Model::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(restored, model);
        // And it still runs.
        let x = Tensor::zeros(vec![2, 8, 8]);
        assert_eq!(restored.forward(&x).unwrap(), model.forward(&x).unwrap());
    }

    #[test]
    fn corruption_rejected() {
        let mut rng = StdRng::seed_from_u64(72);
        let model = zoo::mlp("c", &[3, 4, 2], &mut rng).unwrap();
        let bytes = model.to_bytes();
        assert!(Model::from_bytes(&bytes[..bytes.len() - 4]).is_err());
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(Model::from_bytes(&bad).is_err());
        assert!(Model::from_bytes(&[]).is_err());
    }

    #[test]
    fn trained_model_survives_roundtrip() {
        // Weights (not just structure) must be preserved exactly.
        let mut rng = StdRng::seed_from_u64(73);
        let mut model = zoo::mlp("t", &[2, 6, 2], &mut rng).unwrap();
        let data: Vec<_> = (0..40)
            .map(|i| {
                let x = i as f64 / 20.0 - 1.0;
                (Tensor::from_flat(vec![x, -x]), usize::from(x > 0.0))
            })
            .collect();
        let mut trainer = crate::Trainer::new(crate::TrainConfig::default());
        trainer.train(&mut model, &data, &mut rng).unwrap();
        let restored = Model::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(restored.parameters(), model.parameters());
        assert_eq!(restored.accuracy(&data).unwrap(), model.accuracy(&data).unwrap());
    }
}
