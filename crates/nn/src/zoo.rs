//! The paper's nine evaluation model architectures (Table III), plus small
//! helpers used in tests.
//!
//! | Dataset        | Model      | Builder |
//! |----------------|------------|---------|
//! | Breast         | 3FC        | [`healthcare_3fc`] (30 features) |
//! | Heart          | 3FC        | [`healthcare_3fc`] (13 features) |
//! | Cardio         | 3FC        | [`healthcare_3fc`] (11 features) |
//! | MNIST-1        | 3FC        | [`mnist1_3fc`] |
//! | MNIST-2        | 1Conv+2FC  | [`mnist2_1conv2fc`] |
//! | MNIST-3        | 2Conv+2FC  | [`mnist3_2conv2fc`] |
//! | CIFAR-10-1/2/3 | VGG13/16/19| [`vgg`] |
//!
//! VGG models accept a `width_div` divisor that shrinks every channel
//! count; the paper's own obfuscated tensors top out at `32·32·8 = 8192`
//! elements (Sec. III-D), which corresponds to 8-channel activations at
//! 32×32 — i.e. `width_div = 8` — so the reduced widths match the tensor
//! sizes the paper reports while keeping the exact VGG depth/structure.

use crate::{Layer, Model, NnError};
use pp_tensor::ops::Conv2dSpec;
use pp_tensor::Tensor;
use rand::Rng;

/// Samples a standard normal via Box–Muller (rand 0.8 has no normal
/// distribution without the `rand_distr` crate, which is outside our
/// dependency policy).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen::<f64>();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// He-normal initialisation: `N(0, sqrt(2 / fan_in))`.
fn he_init<R: Rng + ?Sized>(rng: &mut R, count: usize, fan_in: usize) -> Vec<f64> {
    let std = (2.0 / fan_in as f64).sqrt();
    (0..count).map(|_| normal(rng) * std).collect()
}

/// A dense layer with He initialisation.
pub fn dense_layer<R: Rng + ?Sized>(rng: &mut R, in_f: usize, out_f: usize) -> Layer {
    Layer::Dense {
        weights: Tensor::from_vec(vec![out_f, in_f], he_init(rng, out_f * in_f, in_f))
            .expect("sized buffer"),
        bias: vec![0.0; out_f],
    }
}

/// A square-kernel conv layer with He initialisation.
pub fn conv_layer<R: Rng + ?Sized>(
    rng: &mut R,
    in_c: usize,
    out_c: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Layer {
    let fan_in = in_c * kernel * kernel;
    Layer::Conv2d {
        spec: Conv2dSpec { in_channels: in_c, out_channels: out_c, kernel, stride, padding },
        weights: Tensor::from_vec(
            vec![out_c, in_c, kernel, kernel],
            he_init(rng, out_c * fan_in, fan_in),
        )
        .expect("sized buffer"),
        bias: vec![0.0; out_c],
    }
}

/// An identity-initialised batch-norm (affine) layer.
pub fn batchnorm_layer(channels: usize) -> Layer {
    Layer::BatchNorm { scale: vec![1.0; channels], shift: vec![0.0; channels] }
}

/// A multi-layer perceptron: `sizes = [in, hidden…, out]`, ReLU between
/// layers, SoftMax output.
pub fn mlp<R: Rng + ?Sized>(name: &str, sizes: &[usize], rng: &mut R) -> Result<Model, NnError> {
    if sizes.len() < 2 {
        return Err(NnError::InvalidModel("mlp needs at least 2 sizes".into()));
    }
    let mut layers = Vec::new();
    for i in 0..sizes.len() - 1 {
        layers.push(dense_layer(rng, sizes[i], sizes[i + 1]));
        if i + 2 < sizes.len() {
            layers.push(Layer::ReLU);
        }
    }
    layers.push(Layer::SoftMax);
    Model::new(name, vec![sizes[0]], layers)
}

/// A tiny conv + dense classifier used in unit tests.
pub fn small_convnet<R: Rng + ?Sized>(
    name: &str,
    input: (usize, usize, usize),
    filters: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Model, NnError> {
    let (c, h, w) = input;
    let conv = conv_layer(rng, c, filters, 3, 1, 0);
    let (oh, ow) = (h - 2, w - 2);
    let layers = vec![
        conv,
        Layer::ReLU,
        Layer::Flatten,
        dense_layer(rng, filters * oh * ow, classes),
        Layer::SoftMax,
    ];
    Model::new(name, vec![c, h, w], layers)
}

/// 3FC model for the healthcare datasets (Breast: 30, Heart: 13,
/// Cardio: 11 input features; binary output).
pub fn healthcare_3fc<R: Rng + ?Sized>(
    name: &str,
    in_features: usize,
    rng: &mut R,
) -> Result<Model, NnError> {
    mlp(name, &[in_features, 32, 16, 2], rng)
}

/// MNIST-1: three fully-connected layers over flattened 28×28 input.
pub fn mnist1_3fc<R: Rng + ?Sized>(rng: &mut R) -> Result<Model, NnError> {
    let mut layers = vec![Layer::Flatten];
    layers.push(dense_layer(rng, 28 * 28, 128));
    layers.push(Layer::ReLU);
    layers.push(dense_layer(rng, 128, 64));
    layers.push(Layer::ReLU);
    layers.push(dense_layer(rng, 64, 10));
    layers.push(Layer::SoftMax);
    Model::new("MNIST-1", vec![1, 28, 28], layers)
}

/// MNIST-2: one convolution + two fully-connected layers.
pub fn mnist2_1conv2fc<R: Rng + ?Sized>(rng: &mut R) -> Result<Model, NnError> {
    let layers = vec![
        conv_layer(rng, 1, 8, 3, 2, 1), // → [8, 14, 14]
        Layer::ReLU,
        Layer::Flatten,
        dense_layer(rng, 8 * 14 * 14, 64),
        Layer::ReLU,
        dense_layer(rng, 64, 10),
        Layer::SoftMax,
    ];
    Model::new("MNIST-2", vec![1, 28, 28], layers)
}

/// MNIST-3: two convolutions + two fully-connected layers.
pub fn mnist3_2conv2fc<R: Rng + ?Sized>(rng: &mut R) -> Result<Model, NnError> {
    let layers = vec![
        conv_layer(rng, 1, 8, 3, 2, 1), // → [8, 14, 14]
        Layer::ReLU,
        conv_layer(rng, 8, 16, 3, 2, 1), // → [16, 7, 7]
        Layer::ReLU,
        Layer::Flatten,
        dense_layer(rng, 16 * 7 * 7, 64),
        Layer::ReLU,
        dense_layer(rng, 64, 10),
        Layer::SoftMax,
    ];
    Model::new("MNIST-3", vec![1, 28, 28], layers)
}

/// VGG-13/16/19 over `[3, 32, 32]` inputs (the CIFAR-10 variants),
/// channels divided by `width_div` (min 1 per layer). `depth` must be
/// 13, 16, or 19.
pub fn vgg<R: Rng + ?Sized>(
    name: &str,
    depth: usize,
    width_div: usize,
    rng: &mut R,
) -> Result<Model, NnError> {
    // Convs per block for each VGG variant.
    let blocks: &[usize] = match depth {
        13 => &[2, 2, 2, 2, 2],
        16 => &[2, 2, 3, 3, 3],
        19 => &[2, 2, 4, 4, 4],
        _ => return Err(NnError::InvalidModel(format!("unsupported VGG depth {depth}"))),
    };
    let base = [64usize, 128, 256, 512, 512];
    assert!(width_div >= 1, "width_div must be >= 1");
    let mut layers = Vec::new();
    let mut in_c = 3;
    for (b, &convs) in blocks.iter().enumerate() {
        let out_c = (base[b] / width_div).max(1);
        for _ in 0..convs {
            layers.push(conv_layer(rng, in_c, out_c, 3, 1, 1));
            layers.push(batchnorm_layer(out_c));
            layers.push(Layer::ReLU);
            in_c = out_c;
        }
        layers.push(Layer::MaxPool { window: 2, stride: 2 });
    }
    // After five 2× poolings a 32×32 input is 1×1.
    layers.push(Layer::Flatten);
    layers.push(dense_layer(rng, in_c, 10));
    layers.push(Layer::SoftMax);
    Model::new(name, vec![3, 32, 32], layers)
}

/// A small conv net using *average* pooling — fully linear pooling, so
/// the whole network (minus activations) runs homomorphically. Used to
/// exercise the AvgPool/SumPool path end-to-end.
pub fn avgpool_convnet<R: Rng + ?Sized>(
    name: &str,
    input: (usize, usize, usize),
    filters: usize,
    classes: usize,
    rng: &mut R,
) -> Result<Model, NnError> {
    let (c, h, w) = input;
    let conv = conv_layer(rng, c, filters, 3, 1, 1);
    let (ph, pw) = (h / 2, w / 2);
    let layers = vec![
        conv,
        Layer::AvgPool { window: 2, stride: 2 },
        Layer::ReLU,
        Layer::Flatten,
        dense_layer(rng, filters * ph * pw, classes),
        Layer::SoftMax,
    ];
    Model::new(name, vec![c, h, w], layers)
}

/// VGG variant with each MaxPool replaced by a stride-2 convolution plus
/// ReLU (Springenberg et al. [62]) — the transformation the paper
/// prescribes so every non-linearity is element-wise and thus compatible
/// with permutation obfuscation (Sec. III-C). This is the form PP-Stream
/// executes; [`vgg`] is the reference form.
pub fn vgg_streamable<R: Rng + ?Sized>(
    name: &str,
    depth: usize,
    width_div: usize,
    rng: &mut R,
) -> Result<Model, NnError> {
    let blocks: &[usize] = match depth {
        13 => &[2, 2, 2, 2, 2],
        16 => &[2, 2, 3, 3, 3],
        19 => &[2, 2, 4, 4, 4],
        _ => return Err(NnError::InvalidModel(format!("unsupported VGG depth {depth}"))),
    };
    let base = [64usize, 128, 256, 512, 512];
    assert!(width_div >= 1, "width_div must be >= 1");
    let mut layers = Vec::new();
    let mut in_c = 3;
    for (b, &convs) in blocks.iter().enumerate() {
        let out_c = (base[b] / width_div).max(1);
        for _ in 0..convs {
            layers.push(conv_layer(rng, in_c, out_c, 3, 1, 1));
            layers.push(batchnorm_layer(out_c));
            layers.push(Layer::ReLU);
            in_c = out_c;
        }
        // Down-sampling conv (stride 2) + ReLU in place of MaxPool.
        layers.push(conv_layer(rng, in_c, in_c, 2, 2, 0));
        layers.push(Layer::ReLU);
    }
    layers.push(Layer::Flatten);
    layers.push(dense_layer(rng, in_c, 10));
    layers.push(Layer::SoftMax);
    Model::new(name, vec![3, 32, 32], layers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn paper_models_construct_and_run() {
        let mut rng = rng();
        let models = [
            healthcare_3fc("Breast", 30, &mut rng).unwrap(),
            healthcare_3fc("Heart", 13, &mut rng).unwrap(),
            healthcare_3fc("Cardio", 11, &mut rng).unwrap(),
            mnist1_3fc(&mut rng).unwrap(),
            mnist2_1conv2fc(&mut rng).unwrap(),
            mnist3_2conv2fc(&mut rng).unwrap(),
        ];
        for m in &models {
            let x = Tensor::zeros(m.input_shape().clone());
            let out = m.forward(&x).unwrap();
            let classes = if m.name().starts_with("MNIST") { 10 } else { 2 };
            assert_eq!(out.len(), classes, "{}", m.name());
            let sum: f64 = out.data().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{} softmax sum", m.name());
        }
    }

    #[test]
    fn vgg_variants_have_expected_conv_counts() {
        let mut rng = rng();
        for (depth, convs) in [(13usize, 10usize), (16, 13), (19, 16)] {
            let m = vgg("v", depth, 16, &mut rng).unwrap();
            let conv_count = m
                .layers()
                .iter()
                .filter(|l| matches!(l, Layer::Conv2d { .. }))
                .count();
            assert_eq!(conv_count, convs, "VGG{depth}");
            let out = m.forward(&Tensor::zeros(vec![3, 32, 32])).unwrap();
            assert_eq!(out.len(), 10);
        }
    }

    #[test]
    fn vgg_width_divisor_shrinks_params() {
        let mut rng = rng();
        let wide = vgg("w", 13, 8, &mut rng).unwrap();
        let thin = vgg("t", 13, 16, &mut rng).unwrap();
        assert!(thin.param_count() < wide.param_count());
    }

    #[test]
    fn avgpool_net_constructs_and_runs() {
        let mut rng = rng();
        let m = avgpool_convnet("avg", (1, 8, 8), 3, 4, &mut rng).unwrap();
        assert_eq!(m.output_shape().dims(), &[4]);
        // AvgPool is a *linear* layer in the paper taxonomy.
        assert!(m.layers().iter().any(|l| matches!(l, Layer::AvgPool { .. })));
        assert_eq!(Layer::AvgPool { window: 2, stride: 2 }.kind(), crate::LayerKind::Linear);
        let out = m.forward(&Tensor::zeros(vec![1, 8, 8])).unwrap();
        let sum: f64 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn vgg_streamable_has_no_maxpool() {
        let mut rng = rng();
        let m = vgg_streamable("vs", 13, 16, &mut rng).unwrap();
        assert!(!m.layers().iter().any(|l| matches!(l, Layer::MaxPool { .. })));
        let out = m.forward(&Tensor::zeros(vec![3, 32, 32])).unwrap();
        assert_eq!(out.len(), 10);
        // Stride-2 convs shrink 32→16→8→4→2→1 just like the pools.
        assert_eq!(m.output_shape().dims(), &[10]);
    }

    #[test]
    fn vgg_rejects_bad_depth() {
        let mut rng = rng();
        assert!(vgg("x", 11, 8, &mut rng).is_err());
    }

    #[test]
    fn he_init_statistics() {
        let mut rng = rng();
        let vals = he_init(&mut rng, 10_000, 50);
        let mean: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
        let var: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 2.0 / 50.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn mlp_validation() {
        let mut rng = rng();
        assert!(mlp("bad", &[5], &mut rng).is_err());
        let m = mlp("ok", &[4, 3, 2], &mut rng).unwrap();
        assert_eq!(m.layers().len(), 4); // dense, relu, dense, softmax
    }
}
