//! Layer definitions, the linear/non-linear taxonomy of paper Sec. II-A,
//! and the decomposition into primitive operations consumed by PP-Stream's
//! operation encapsulation (Sec. IV-B).

use crate::activation;
use crate::NnError;
use pp_tensor::ops::{self, Conv2dSpec};
use pp_tensor::{PlainF64, Shape, Tensor};

/// Classification of a hidden layer by its operations (paper Sec. II-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayerKind {
    /// Only linear operations — executed under homomorphic encryption by
    /// the model provider.
    Linear,
    /// Only non-linear operations — executed in the clear (on permuted
    /// tensors) by the data provider.
    NonLinear,
    /// A mix of both; decomposed into one linear and one non-linear
    /// primitive layer.
    Mixed,
}

/// A neural-network layer with `f64` parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum Layer {
    /// 2-D convolution (linear).
    Conv2d {
        spec: Conv2dSpec,
        /// `[C_out, C_in, K, K]`
        weights: Tensor<f64>,
        bias: Vec<f64>,
    },
    /// Fully-connected layer (linear). Weights are `[out, in]`.
    Dense { weights: Tensor<f64>, bias: Vec<f64> },
    /// Inference-time batch normalization folded to a per-channel affine
    /// transform (linear).
    BatchNorm { scale: Vec<f64>, shift: Vec<f64> },
    /// Rectified linear unit (non-linear, element-wise — commutes with
    /// permutation obfuscation).
    ReLU,
    /// Scaled sigmoid `σ(α·x)` — the paper's *mixed* layer example: a
    /// scalar multiplication (linear, model parameter `α`) followed by the
    /// sigmoid (non-linear).
    ScaledSigmoid { alpha: f64 },
    /// SoftMax (non-linear; only valid on non-permuted tensors, so it is
    /// restricted to the final round of the protocol).
    SoftMax,
    /// Max pooling (non-linear). The paper notes it can be replaced by a
    /// stride-2 convolution + ReLU [62]; we support it natively.
    MaxPool { window: usize, stride: usize },
    /// Average pooling. Summation is *linear*, so unlike MaxPool this
    /// pooling runs homomorphically at the model provider (the `1/w²`
    /// divisor folds into the data provider's next rescale) — a
    /// generality extension beyond the paper's MaxPool replacement.
    AvgPool { window: usize, stride: usize },
    /// Reshape to rank 1 (free; attaches to the adjacent linear stage).
    Flatten,
}

/// One primitive operation after decomposing mixed layers
/// (paper Sec. IV-B). Linear ops carry their parameters.
#[derive(Clone, Debug, PartialEq)]
pub enum PrimitiveOp {
    Conv2d { spec: Conv2dSpec, weights: Tensor<f64>, bias: Vec<f64> },
    Dense { weights: Tensor<f64>, bias: Vec<f64> },
    Affine { scale: Vec<f64>, shift: Vec<f64> },
    /// Uniform scalar multiplication (the linear half of a mixed layer).
    Scale { alpha: f64 },
    ReLU,
    Sigmoid,
    SoftMax,
    MaxPool { window: usize, stride: usize },
    /// Linear sum pooling (the divisor is handled at scaling time).
    SumPool { window: usize, stride: usize },
    Flatten,
}

impl PrimitiveOp {
    /// Whether the primitive is linear (model-provider side) or non-linear
    /// (data-provider side). `Flatten` is metadata-only and counts as
    /// linear so it rides along with the adjacent encrypted stage.
    pub fn kind(&self) -> LayerKind {
        match self {
            PrimitiveOp::Conv2d { .. }
            | PrimitiveOp::Dense { .. }
            | PrimitiveOp::Affine { .. }
            | PrimitiveOp::Scale { .. }
            | PrimitiveOp::SumPool { .. }
            | PrimitiveOp::Flatten => LayerKind::Linear,
            PrimitiveOp::ReLU
            | PrimitiveOp::Sigmoid
            | PrimitiveOp::SoftMax
            | PrimitiveOp::MaxPool { .. } => LayerKind::NonLinear,
        }
    }
}

impl Layer {
    /// The paper's layer taxonomy.
    pub fn kind(&self) -> LayerKind {
        match self {
            Layer::Conv2d { .. } | Layer::Dense { .. } | Layer::BatchNorm { .. } | Layer::Flatten => {
                LayerKind::Linear
            }
            Layer::ReLU | Layer::SoftMax | Layer::MaxPool { .. } => LayerKind::NonLinear,
            Layer::AvgPool { .. } => LayerKind::Linear,
            Layer::ScaledSigmoid { .. } => LayerKind::Mixed,
        }
    }

    /// Decomposes into primitive layers: linear layers map to one linear
    /// primitive, non-linear to one non-linear primitive, and mixed layers
    /// split into a linear + a non-linear primitive (paper Sec. IV-B).
    pub fn primitive_layers(&self) -> Vec<PrimitiveOp> {
        match self {
            Layer::Conv2d { spec, weights, bias } => vec![PrimitiveOp::Conv2d {
                spec: spec.clone(),
                weights: weights.clone(),
                bias: bias.clone(),
            }],
            Layer::Dense { weights, bias } => {
                vec![PrimitiveOp::Dense { weights: weights.clone(), bias: bias.clone() }]
            }
            Layer::BatchNorm { scale, shift } => {
                vec![PrimitiveOp::Affine { scale: scale.clone(), shift: shift.clone() }]
            }
            Layer::ReLU => vec![PrimitiveOp::ReLU],
            Layer::ScaledSigmoid { alpha } => {
                vec![PrimitiveOp::Scale { alpha: *alpha }, PrimitiveOp::Sigmoid]
            }
            Layer::SoftMax => vec![PrimitiveOp::SoftMax],
            Layer::MaxPool { window, stride } => {
                vec![PrimitiveOp::MaxPool { window: *window, stride: *stride }]
            }
            Layer::AvgPool { window, stride } => {
                vec![PrimitiveOp::SumPool { window: *window, stride: *stride }]
            }
            Layer::Flatten => vec![PrimitiveOp::Flatten],
        }
    }

    /// Plaintext forward pass.
    pub fn forward(&self, input: &Tensor<f64>) -> Result<Tensor<f64>, NnError> {
        match self {
            Layer::Conv2d { spec, weights, bias } => {
                Ok(ops::conv2d(&PlainF64, input, weights, bias, spec)?)
            }
            Layer::Dense { weights, bias } => {
                Ok(ops::fully_connected(&PlainF64, input, weights, bias)?)
            }
            Layer::BatchNorm { scale, shift } => Ok(ops::affine(&PlainF64, input, scale, shift)?),
            Layer::ReLU => Ok(activation::relu(input)),
            Layer::ScaledSigmoid { alpha } => {
                Ok(activation::sigmoid(&input.map(|&x| alpha * x)))
            }
            Layer::SoftMax => Ok(activation::softmax(input)),
            Layer::MaxPool { window, stride } => Ok(ops::max_pool2d(input, *window, *stride)?),
            Layer::AvgPool { window, stride } => Ok(ops::avg_pool2d(input, *window, *stride)?),
            Layer::Flatten => Ok(input.clone().flatten()),
        }
    }

    /// Output shape for a given input shape (without running the layer).
    pub fn output_shape(&self, input: &Shape) -> Result<Shape, NnError> {
        match self {
            Layer::Conv2d { spec, .. } => Ok(spec.output_shape(input)?),
            Layer::Dense { weights, .. } => {
                let dims = weights.shape().dims();
                if input.len() != dims[1] {
                    return Err(NnError::Shape(format!(
                        "dense expects {} inputs, got {input}",
                        dims[1]
                    )));
                }
                Ok(Shape::vector(dims[0]))
            }
            Layer::BatchNorm { .. } | Layer::ReLU | Layer::ScaledSigmoid { .. } | Layer::SoftMax => {
                Ok(input.clone())
            }
            Layer::MaxPool { window, stride } | Layer::AvgPool { window, stride } => {
                Ok(ops::pool_output_shape(input, *window, *stride)?)
            }
            Layer::Flatten => Ok(Shape::vector(input.len())),
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        match self {
            Layer::Conv2d { weights, bias, .. } => weights.len() + bias.len(),
            Layer::Dense { weights, bias } => weights.len() + bias.len(),
            Layer::BatchNorm { scale, shift } => scale.len() + shift.len(),
            Layer::ScaledSigmoid { .. } => 1,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_tensor::Tensor;

    fn dense_2x3() -> Layer {
        Layer::Dense {
            weights: Tensor::from_vec(vec![2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]).unwrap(),
            bias: vec![0.0, 1.0],
        }
    }

    #[test]
    fn kinds_follow_paper_taxonomy() {
        assert_eq!(dense_2x3().kind(), LayerKind::Linear);
        assert_eq!(Layer::ReLU.kind(), LayerKind::NonLinear);
        assert_eq!(Layer::SoftMax.kind(), LayerKind::NonLinear);
        assert_eq!(Layer::ScaledSigmoid { alpha: 2.0 }.kind(), LayerKind::Mixed);
        assert_eq!(
            Layer::BatchNorm { scale: vec![1.0], shift: vec![0.0] }.kind(),
            LayerKind::Linear
        );
    }

    #[test]
    fn mixed_layer_decomposes_into_two_primitives() {
        let prims = Layer::ScaledSigmoid { alpha: 0.5 }.primitive_layers();
        assert_eq!(prims.len(), 2);
        assert_eq!(prims[0].kind(), LayerKind::Linear);
        assert_eq!(prims[1].kind(), LayerKind::NonLinear);
    }

    #[test]
    fn simple_layers_decompose_into_one() {
        assert_eq!(dense_2x3().primitive_layers().len(), 1);
        assert_eq!(Layer::ReLU.primitive_layers().len(), 1);
    }

    #[test]
    fn dense_forward_and_shape() {
        let l = dense_2x3();
        let out = l.forward(&Tensor::from_flat(vec![3.0, 4.0, 5.0])).unwrap();
        assert_eq!(out.data(), &[3.0, 5.0]);
        assert_eq!(
            l.output_shape(&Shape::vector(3)).unwrap().dims(),
            &[2]
        );
        assert!(l.output_shape(&Shape::vector(4)).is_err());
    }

    #[test]
    fn scaled_sigmoid_forward() {
        let l = Layer::ScaledSigmoid { alpha: 2.0 };
        let out = l.forward(&Tensor::from_flat(vec![0.0])).unwrap();
        assert!((out.data()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn flatten_shape() {
        let l = Layer::Flatten;
        let s = l.output_shape(&Shape::new(vec![2, 3, 4])).unwrap();
        assert_eq!(s.dims(), &[24]);
    }

    #[test]
    fn param_counts() {
        assert_eq!(dense_2x3().param_count(), 8);
        assert_eq!(Layer::ReLU.param_count(), 0);
        assert_eq!(Layer::ScaledSigmoid { alpha: 1.0 }.param_count(), 1);
    }
}
