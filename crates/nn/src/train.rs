//! From-scratch SGD training with backpropagation.
//!
//! The paper trains its models in PyTorch/Matlab and imports the weights;
//! we train in-workspace so the reproduction has no external artifacts.
//! Supported trainable layers: `Dense`, `Conv2d`, `BatchNorm`,
//! `ScaledSigmoid`; pass-through gradients for `ReLU`, `MaxPool`,
//! `Flatten`. Models must end with `SoftMax`, trained against
//! cross-entropy (the standard classification setup of all nine paper
//! models).

use crate::activation::{sigmoid_scalar, softmax};
use crate::{Layer, Model, NnError};
use pp_tensor::ops::Conv2dSpec;
use pp_tensor::Tensor;
use rand::seq::SliceRandom;
use rand::Rng;

/// Hyper-parameters for [`Trainer`].
#[derive(Clone, Debug)]
pub struct TrainConfig {
    pub learning_rate: f64,
    pub epochs: usize,
    pub batch_size: usize,
    pub momentum: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig { learning_rate: 0.05, epochs: 10, batch_size: 32, momentum: 0.9 }
    }
}

/// Per-layer parameter gradients (same flat layout as the layer's params).
#[derive(Clone, Debug, Default)]
struct LayerGrad {
    weights: Vec<f64>,
    bias: Vec<f64>,
}

/// Mini-batch SGD trainer with momentum.
pub struct Trainer {
    cfg: TrainConfig,
    velocity: Vec<LayerGrad>,
}

impl Trainer {
    /// Creates a trainer with the given hyper-parameters.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg, velocity: Vec::new() }
    }

    /// Trains `model` in place; returns the mean cross-entropy loss per
    /// epoch.
    pub fn train<R: Rng + ?Sized>(
        &mut self,
        model: &mut Model,
        data: &[(Tensor<f64>, usize)],
        rng: &mut R,
    ) -> Result<Vec<f64>, NnError> {
        if data.is_empty() {
            return Err(NnError::InvalidModel("empty training set".into()));
        }
        if !matches!(model.layers().last(), Some(Layer::SoftMax)) {
            return Err(NnError::InvalidModel("trainer requires a final SoftMax layer".into()));
        }
        self.velocity = model
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Conv2d { weights, bias, .. } => LayerGrad {
                    weights: vec![0.0; weights.len()],
                    bias: vec![0.0; bias.len()],
                },
                Layer::Dense { weights, bias } => LayerGrad {
                    weights: vec![0.0; weights.len()],
                    bias: vec![0.0; bias.len()],
                },
                Layer::BatchNorm { scale, shift } => LayerGrad {
                    weights: vec![0.0; scale.len()],
                    bias: vec![0.0; shift.len()],
                },
                Layer::ScaledSigmoid { .. } => LayerGrad { weights: vec![0.0; 1], bias: vec![] },
                _ => LayerGrad::default(),
            })
            .collect();

        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for _epoch in 0..self.cfg.epochs {
            order.shuffle(rng);
            let mut epoch_loss = 0.0;
            for batch in order.chunks(self.cfg.batch_size) {
                let mut grads: Vec<LayerGrad> = self
                    .velocity
                    .iter()
                    .map(|v| LayerGrad {
                        weights: vec![0.0; v.weights.len()],
                        bias: vec![0.0; v.bias.len()],
                    })
                    .collect();
                for &i in batch {
                    let (x, y) = &data[i];
                    epoch_loss += backprop(model, x, *y, &mut grads)?;
                }
                self.apply(model, &grads, batch.len());
            }
            losses.push(epoch_loss / data.len() as f64);
        }
        Ok(losses)
    }

    /// SGD + momentum parameter update.
    fn apply(&mut self, model: &mut Model, grads: &[LayerGrad], batch: usize) {
        let lr = self.cfg.learning_rate / batch as f64;
        let mu = self.cfg.momentum;
        for ((layer, grad), vel) in
            model.layers_mut().iter_mut().zip(grads).zip(&mut self.velocity)
        {
            let update = |p: &mut f64, g: f64, v: &mut f64| {
                *v = mu * *v - lr * g;
                *p += *v;
            };
            match layer {
                Layer::Conv2d { weights, bias, .. } => {
                    for ((p, &g), v) in weights
                        .data_mut()
                        .iter_mut()
                        .zip(&grad.weights)
                        .zip(&mut vel.weights)
                    {
                        update(p, g, v);
                    }
                    for ((p, &g), v) in bias.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                        update(p, g, v);
                    }
                }
                Layer::Dense { weights, bias } => {
                    for ((p, &g), v) in weights
                        .data_mut()
                        .iter_mut()
                        .zip(&grad.weights)
                        .zip(&mut vel.weights)
                    {
                        update(p, g, v);
                    }
                    for ((p, &g), v) in bias.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                        update(p, g, v);
                    }
                }
                Layer::BatchNorm { scale, shift } => {
                    for ((p, &g), v) in scale.iter_mut().zip(&grad.weights).zip(&mut vel.weights) {
                        update(p, g, v);
                    }
                    for ((p, &g), v) in shift.iter_mut().zip(&grad.bias).zip(&mut vel.bias) {
                        update(p, g, v);
                    }
                }
                Layer::ScaledSigmoid { alpha } => {
                    if let (Some(&g), Some(v)) = (grad.weights.first(), vel.weights.first_mut()) {
                        update(alpha, g, v);
                    }
                }
                _ => {}
            }
        }
    }
}

/// Runs one forward+backward pass, accumulating parameter gradients into
/// `grads`; returns the sample's cross-entropy loss.
fn backprop(
    model: &Model,
    x: &Tensor<f64>,
    y: usize,
    grads: &mut [LayerGrad],
) -> Result<f64, NnError> {
    // Forward with cached activations: acts[i] is the input to layer i.
    let mut acts: Vec<Tensor<f64>> = Vec::with_capacity(model.layers().len() + 1);
    acts.push(x.clone());
    for layer in model.layers() {
        let next = layer.forward(acts.last().expect("non-empty"))?;
        acts.push(next);
    }

    // Final layer is SoftMax: combined softmax+cross-entropy gradient.
    let logits = &acts[acts.len() - 2];
    let probs = softmax(logits);
    let loss = -(probs.data()[y].max(1e-12)).ln();
    let mut delta: Vec<f64> = probs.data().to_vec();
    delta[y] -= 1.0;
    let mut delta = Tensor::from_vec(logits.shape().clone(), delta).expect("same shape");

    // Backward through the remaining layers.
    for i in (0..model.layers().len() - 1).rev() {
        let layer = &model.layers()[i];
        let input = &acts[i];
        let output = &acts[i + 1];
        delta = match layer {
            Layer::Dense { weights, .. } => {
                dense_backward(weights, input, &delta, &mut grads[i])
            }
            Layer::Conv2d { spec, weights, .. } => {
                conv_backward(spec, weights, input, &delta, &mut grads[i])
            }
            Layer::BatchNorm { scale, .. } => {
                batchnorm_backward(scale, input, &delta, &mut grads[i])
            }
            Layer::ReLU => input
                .zip_map(&delta, |&x, &d| if x > 0.0 { d } else { 0.0 })
                .expect("same shape"),
            Layer::ScaledSigmoid { alpha } => {
                scaled_sigmoid_backward(*alpha, input, output, &delta, &mut grads[i])
            }
            Layer::MaxPool { window, stride } => {
                maxpool_backward(input, &delta, *window, *stride)
            }
            Layer::AvgPool { window, stride } => {
                avgpool_backward(input, &delta, *window, *stride)
            }
            Layer::Flatten => delta.reshape(input.shape().clone()).expect("same length"),
            Layer::SoftMax => {
                return Err(NnError::InvalidModel("SoftMax only supported as final layer".into()))
            }
        };
    }
    Ok(loss)
}

fn dense_backward(
    weights: &Tensor<f64>,
    input: &Tensor<f64>,
    delta: &Tensor<f64>,
    grad: &mut LayerGrad,
) -> Tensor<f64> {
    let dims = weights.shape().dims();
    let (out_f, in_f) = (dims[0], dims[1]);
    let x = input.data();
    let d = delta.data();
    for (j, &dj) in d.iter().enumerate().take(out_f) {
        grad.bias[j] += dj;
        for (i, &xi) in x.iter().enumerate().take(in_f) {
            grad.weights[j * in_f + i] += dj * xi;
        }
    }
    let mut dx = vec![0.0; in_f];
    for (j, &dj) in d.iter().enumerate().take(out_f) {
        for (i, dxi) in dx.iter_mut().enumerate() {
            *dxi += dj * weights.data()[j * in_f + i];
        }
    }
    Tensor::from_vec(input.shape().clone(), dx).expect("same length")
}

fn conv_backward(
    spec: &Conv2dSpec,
    weights: &Tensor<f64>,
    input: &Tensor<f64>,
    delta: &Tensor<f64>,
    grad: &mut LayerGrad,
) -> Tensor<f64> {
    let in_dims = input.shape().dims();
    let (h, w) = (in_dims[1], in_dims[2]);
    let out_dims = delta.shape().dims();
    let (oh, ow) = (out_dims[1], out_dims[2]);
    let k = spec.kernel;
    let mut dx = Tensor::zeros(input.shape().clone());
    for oc in 0..spec.out_channels {
        for oy in 0..oh {
            for ox in 0..ow {
                let d = *delta.get(&[oc, oy, ox]).expect("in range");
                grad.bias[oc] += d;
                for ic in 0..spec.in_channels {
                    for ky in 0..k {
                        for kx in 0..k {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                continue;
                            }
                            let (iy, ix) = (iy as usize, ix as usize);
                            let widx = ((oc * spec.in_channels + ic) * k + ky) * k + kx;
                            grad.weights[widx] += d * input.get(&[ic, iy, ix]).expect("in range");
                            *dx.get_mut(&[ic, iy, ix]).expect("in range") +=
                                d * weights.data()[widx];
                        }
                    }
                }
            }
        }
    }
    dx
}

fn batchnorm_backward(
    scale: &[f64],
    input: &Tensor<f64>,
    delta: &Tensor<f64>,
    grad: &mut LayerGrad,
) -> Tensor<f64> {
    let channels = scale.len();
    let per_channel = input.len() / channels;
    let mut dx = vec![0.0; input.len()];
    for (i, (&x, &d)) in input.data().iter().zip(delta.data()).enumerate() {
        let c = i / per_channel;
        grad.weights[c] += d * x; // d scale
        grad.bias[c] += d; // d shift
        dx[i] = d * scale[c];
    }
    Tensor::from_vec(input.shape().clone(), dx).expect("same length")
}

fn scaled_sigmoid_backward(
    alpha: f64,
    input: &Tensor<f64>,
    output: &Tensor<f64>,
    delta: &Tensor<f64>,
    grad: &mut LayerGrad,
) -> Tensor<f64> {
    // y = σ(αx); dy/dx = α·y(1−y); dy/dα = x·y(1−y)
    let mut dalpha = 0.0;
    let mut dx = vec![0.0; input.len()];
    for (i, ((&x, &y), &d)) in input
        .data()
        .iter()
        .zip(output.data())
        .zip(delta.data())
        .enumerate()
    {
        let s = y * (1.0 - y);
        dx[i] = d * alpha * s;
        dalpha += d * x * s;
        debug_assert!((y - sigmoid_scalar(alpha * x)).abs() < 1e-9);
    }
    if let Some(g) = grad.weights.first_mut() {
        *g += dalpha;
    }
    Tensor::from_vec(input.shape().clone(), dx).expect("same length")
}

/// AvgPool backward: each input tap receives `delta / window²` from every
/// window it participates in.
fn avgpool_backward(
    input: &Tensor<f64>,
    delta: &Tensor<f64>,
    window: usize,
    stride: usize,
) -> Tensor<f64> {
    let out_dims = delta.shape().dims();
    let (c, oh, ow) = (out_dims[0], out_dims[1], out_dims[2]);
    let inv_area = 1.0 / (window * window) as f64;
    let mut dx = Tensor::zeros(input.shape().clone());
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                let d = *delta.get(&[ch, oy, ox]).expect("in range") * inv_area;
                for ky in 0..window {
                    for kx in 0..window {
                        *dx.get_mut(&[ch, oy * stride + ky, ox * stride + kx])
                            .expect("in range") += d;
                    }
                }
            }
        }
    }
    dx
}

fn maxpool_backward(
    input: &Tensor<f64>,
    delta: &Tensor<f64>,
    window: usize,
    stride: usize,
) -> Tensor<f64> {
    let in_dims = input.shape().dims();
    let out_dims = delta.shape().dims();
    let (c, oh, ow) = (out_dims[0], out_dims[1], out_dims[2]);
    let mut dx = Tensor::zeros(input.shape().clone());
    for ch in 0..c {
        for oy in 0..oh {
            for ox in 0..ow {
                // Find the argmax tap and route the gradient to it.
                let (mut by, mut bx) = (oy * stride, ox * stride);
                let mut best = f64::NEG_INFINITY;
                for ky in 0..window {
                    for kx in 0..window {
                        let (iy, ix) = (oy * stride + ky, ox * stride + kx);
                        let v = *input.get(&[ch, iy, ix]).expect("in range");
                        if v > best {
                            best = v;
                            (by, bx) = (iy, ix);
                        }
                    }
                }
                *dx.get_mut(&[ch, by, bx]).expect("in range") +=
                    *delta.get(&[ch, oy, ox]).expect("in range");
            }
        }
    }
    let _ = in_dims;
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A linearly separable 2-class problem in 2-D.
    fn toy_data(n: usize, seed: u64) -> Vec<(Tensor<f64>, usize)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(-1.0..1.0);
                let y: f64 = rng.gen_range(-1.0..1.0);
                let label = usize::from(x + y > 0.0);
                (Tensor::from_flat(vec![x, y]), label)
            })
            .collect()
    }

    #[test]
    fn trains_linearly_separable_problem() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut model = zoo::mlp("toy", &[2, 8, 2], &mut rng).unwrap();
        let data = toy_data(200, 7);
        let mut trainer = Trainer::new(TrainConfig {
            learning_rate: 0.5,
            epochs: 30,
            batch_size: 16,
            momentum: 0.9,
        });
        let losses = trainer.train(&mut model, &data, &mut rng).unwrap();
        assert!(losses.last().unwrap() < &0.2, "final loss {:?}", losses.last());
        let acc = model.accuracy(&data).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn loss_decreases() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = zoo::mlp("toy", &[2, 4, 2], &mut rng).unwrap();
        let data = toy_data(100, 3);
        let mut trainer = Trainer::new(TrainConfig {
            learning_rate: 0.3,
            epochs: 15,
            batch_size: 10,
            momentum: 0.0,
        });
        let losses = trainer.train(&mut model, &data, &mut rng).unwrap();
        assert!(losses.last().unwrap() < losses.first().unwrap());
    }

    #[test]
    fn requires_final_softmax() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = Model::new(
            "no-softmax",
            vec![2],
            vec![Layer::Dense {
                weights: Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: vec![0.0, 0.0],
            }],
        )
        .unwrap();
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(trainer.train(&mut model, &toy_data(10, 1), &mut rng).is_err());
    }

    #[test]
    fn numerical_gradient_check_dense() {
        // Finite-difference check of the dense-layer weight gradient.
        let mut rng = StdRng::seed_from_u64(3);
        let model = zoo::mlp("gc", &[3, 4, 2], &mut rng).unwrap();
        let x = Tensor::from_flat(vec![0.3, -0.8, 0.5]);
        let y = 1usize;

        let mut grads: Vec<LayerGrad> = model
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Dense { weights, bias } => LayerGrad {
                    weights: vec![0.0; weights.len()],
                    bias: vec![0.0; bias.len()],
                },
                _ => LayerGrad::default(),
            })
            .collect();
        backprop(&model, &x, y, &mut grads).unwrap();

        // Perturb weight (0,0) of layer 0 and compare numerical gradient.
        let eps = 1e-5;
        let loss_at = |m: &Model| {
            let out = m.forward(&x).unwrap();
            -(out.data()[y].max(1e-12)).ln()
        };
        for widx in [0usize, 3, 7] {
            let mut mp = model.clone();
            if let Layer::Dense { weights, .. } = &mut mp.layers_mut()[0] {
                weights.data_mut()[widx] += eps;
            }
            let mut mm = model.clone();
            if let Layer::Dense { weights, .. } = &mut mm.layers_mut()[0] {
                weights.data_mut()[widx] -= eps;
            }
            let num = (loss_at(&mp) - loss_at(&mm)) / (2.0 * eps);
            let ana = grads[0].weights[widx];
            assert!((num - ana).abs() < 1e-4, "widx={widx}: num={num} ana={ana}");
        }
    }

    #[test]
    fn numerical_gradient_check_conv() {
        let mut rng = StdRng::seed_from_u64(4);
        let model = zoo::small_convnet("gc-conv", (1, 5, 5), 2, 2, &mut rng).unwrap();
        let x = Tensor::from_vec(
            vec![1, 5, 5],
            (0..25).map(|i| ((i * 7) % 11) as f64 / 11.0 - 0.5).collect(),
        )
        .unwrap();
        let y = 0usize;
        let mut grads: Vec<LayerGrad> = model
            .layers()
            .iter()
            .map(|l| match l {
                Layer::Conv2d { weights, bias, .. } | Layer::Dense { weights, bias } => {
                    LayerGrad { weights: vec![0.0; weights.len()], bias: vec![0.0; bias.len()] }
                }
                _ => LayerGrad::default(),
            })
            .collect();
        backprop(&model, &x, y, &mut grads).unwrap();

        let eps = 1e-5;
        let loss_at = |m: &Model| {
            let out = m.forward(&x).unwrap();
            -(out.data()[y].max(1e-12)).ln()
        };
        for widx in [0usize, 2] {
            let mut mp = model.clone();
            if let Layer::Conv2d { weights, .. } = &mut mp.layers_mut()[0] {
                weights.data_mut()[widx] += eps;
            }
            let mut mm = model.clone();
            if let Layer::Conv2d { weights, .. } = &mut mm.layers_mut()[0] {
                weights.data_mut()[widx] -= eps;
            }
            let num = (loss_at(&mp) - loss_at(&mm)) / (2.0 * eps);
            let ana = grads[0].weights[widx];
            assert!((num - ana).abs() < 1e-4, "widx={widx}: num={num} ana={ana}");
        }
    }
}
