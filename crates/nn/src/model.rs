//! Sequential models: the unit PP-Stream deploys across providers.

use crate::activation::argmax;
use crate::{Layer, NnError, PrimitiveOp};
use pp_tensor::{Shape, Tensor};

/// A feed-forward neural network as an ordered sequence of layers.
#[derive(Clone, Debug, PartialEq)]
pub struct Model {
    name: String,
    input_shape: Shape,
    layers: Vec<Layer>,
}

impl Model {
    /// Creates a model, validating that consecutive layer shapes agree.
    pub fn new(
        name: impl Into<String>,
        input_shape: impl Into<Shape>,
        layers: Vec<Layer>,
    ) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidModel("no layers".into()));
        }
        let input_shape = input_shape.into();
        let mut shape = input_shape.clone();
        for (i, layer) in layers.iter().enumerate() {
            shape = layer
                .output_shape(&shape)
                .map_err(|e| NnError::InvalidModel(format!("layer {i}: {e}")))?;
        }
        Ok(Model { name: name.into(), input_shape, layers })
    }

    /// Model name (e.g. `"MNIST-2"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The layers in order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the trainer).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Output shape of the final layer.
    pub fn output_shape(&self) -> Shape {
        let mut shape = self.input_shape.clone();
        for layer in &self.layers {
            shape = layer.output_shape(&shape).expect("validated at construction");
        }
        shape
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Plaintext forward pass through all layers.
    pub fn forward(&self, input: &Tensor<f64>) -> Result<Tensor<f64>, NnError> {
        if input.shape() != &self.input_shape {
            return Err(NnError::Shape(format!(
                "expected input {}, got {}",
                self.input_shape,
                input.shape()
            )));
        }
        let mut t = input.clone();
        for layer in &self.layers {
            t = layer.forward(&t)?;
        }
        Ok(t)
    }

    /// Predicted class: argmax of the final output.
    pub fn classify(&self, input: &Tensor<f64>) -> Result<usize, NnError> {
        Ok(argmax(&self.forward(input)?))
    }

    /// Accuracy over a labelled set, as defined in paper Sec. IV-A:
    /// `(TP+TN) / (TP+TN+FP+FN)` — for multi-class data this is exactly the
    /// fraction of correct predictions.
    pub fn accuracy(&self, samples: &[(Tensor<f64>, usize)]) -> Result<f64, NnError> {
        if samples.is_empty() {
            return Err(NnError::InvalidModel("empty evaluation set".into()));
        }
        let mut correct = 0usize;
        for (x, y) in samples {
            if self.classify(x)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Decomposes the whole model into primitive layers (paper Sec. IV-B,
    /// step 1 of operation encapsulation).
    pub fn primitive_layers(&self) -> Vec<PrimitiveOp> {
        self.layers.iter().flat_map(Layer::primitive_layers).collect()
    }

    /// All flat parameter values (used by the scaling-factor search).
    pub fn parameters(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.param_count());
        for layer in &self.layers {
            match layer {
                Layer::Conv2d { weights, bias, .. } => {
                    out.extend_from_slice(weights.data());
                    out.extend_from_slice(bias);
                }
                Layer::Dense { weights, bias } => {
                    out.extend_from_slice(weights.data());
                    out.extend_from_slice(bias);
                }
                Layer::BatchNorm { scale, shift } => {
                    out.extend_from_slice(scale);
                    out.extend_from_slice(shift);
                }
                Layer::ScaledSigmoid { alpha } => out.push(*alpha),
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_tensor::ops::Conv2dSpec;

    fn tiny_model() -> Model {
        Model::new(
            "tiny",
            vec![3],
            vec![
                Layer::Dense {
                    weights: Tensor::from_vec(vec![2, 3], vec![1.0, -1.0, 0.0, 0.5, 0.5, 0.5])
                        .unwrap(),
                    bias: vec![0.0, 0.0],
                },
                Layer::ReLU,
                Layer::SoftMax,
            ],
        )
        .unwrap()
    }

    #[test]
    fn forward_pipeline() {
        let m = tiny_model();
        let out = m.forward(&Tensor::from_flat(vec![2.0, 1.0, 1.0])).unwrap();
        let sum: f64 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(m.classify(&Tensor::from_flat(vec![10.0, 0.0, 0.0])).unwrap(), 0);
    }

    #[test]
    fn shape_validation_at_construction() {
        // Dense expects 3 inputs but gets a 4-vector input shape.
        let bad = Model::new(
            "bad",
            vec![4],
            vec![Layer::Dense {
                weights: Tensor::from_vec(vec![2, 3], vec![0.0; 6]).unwrap(),
                bias: vec![0.0; 2],
            }],
        );
        assert!(bad.is_err());
        assert!(Model::new("empty", vec![1], vec![]).is_err());
    }

    #[test]
    fn input_shape_enforced_at_inference() {
        let m = tiny_model();
        assert!(m.forward(&Tensor::from_flat(vec![1.0, 2.0])).is_err());
    }

    #[test]
    fn accuracy_counts_correct() {
        let m = tiny_model();
        // Class 0 wins when x0 is large; class 1 when all equal positives.
        let samples = vec![
            (Tensor::from_flat(vec![10.0, 0.0, 0.0]), 0),
            (Tensor::from_flat(vec![0.0, 2.0, 2.0]), 1),
            (Tensor::from_flat(vec![10.0, 0.0, 0.0]), 1), // wrong on purpose
        ];
        let acc = m.accuracy(&samples).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn primitive_decomposition_counts() {
        let spec = Conv2dSpec { in_channels: 1, out_channels: 1, kernel: 2, stride: 1, padding: 0 };
        let m = Model::new(
            "conv-mixed",
            vec![1, 3, 3],
            vec![
                Layer::Conv2d {
                    spec,
                    weights: Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0; 4]).unwrap(),
                    bias: vec![0.0],
                },
                Layer::ScaledSigmoid { alpha: 1.0 },
                Layer::Flatten,
                Layer::SoftMax,
            ],
        )
        .unwrap();
        // Conv=1, ScaledSigmoid=2, Flatten=1, SoftMax=1 → 5 primitives.
        assert_eq!(m.primitive_layers().len(), 5);
    }

    #[test]
    fn output_shape_and_params() {
        let m = tiny_model();
        assert_eq!(m.output_shape().dims(), &[2]);
        assert_eq!(m.param_count(), 8);
        assert_eq!(m.parameters().len(), 8);
    }
}
