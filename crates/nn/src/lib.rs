//! # pp-nn
//!
//! Neural-network substrate for the PP-Stream reproduction: layer types,
//! sequential models, plaintext inference, from-scratch SGD training, and
//! the paper's *parameter scaling* scheme (Sec. IV-A) that converts
//! floating-point models to scaled integers for Paillier arithmetic.
//!
//! The paper trains its nine evaluation models externally (PyTorch /
//! Matlab) and feeds them to the C++ prototype; this crate replaces that
//! pipeline with a self-contained trainer so the whole reproduction runs
//! offline (see DESIGN.md §3 for the substitution rationale).
//!
//! Layer taxonomy follows paper Sec. II-A: each hidden layer is *linear*
//! (convolution, fully-connected, batch-norm), *non-linear* (ReLU,
//! SoftMax, MaxPooling), or *mixed* (scaled Sigmoid). The
//! [`Layer::primitive_layers`] decomposition into linear/non-linear
//! primitive layers is what PP-Stream's operation encapsulation
//! (Sec. IV-B) consumes.

pub mod activation;
mod layer;
mod model;
mod model_io;
pub mod scaling;
pub mod train;
pub mod zoo;

pub use layer::{Layer, LayerKind, PrimitiveOp};
pub use model::Model;
pub use scaling::{choose_scaling_factor, round_params, ScaledModel, ScalingReport};
pub use train::{Trainer, TrainConfig};

/// Errors from model construction or inference.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// A layer received an input of the wrong shape.
    Shape(String),
    /// The model is structurally invalid (e.g. empty).
    InvalidModel(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Shape(s) => write!(f, "shape error: {s}"),
            NnError::InvalidModel(s) => write!(f, "invalid model: {s}"),
        }
    }
}

impl std::error::Error for NnError {}

impl From<pp_tensor::TensorError> for NnError {
    fn from(e: pp_tensor::TensorError) -> Self {
        NnError::Shape(e.to_string())
    }
}
