//! Non-linear activation functions, executed by the *data provider* on
//! decrypted (possibly permuted) tensors.
//!
//! ReLU and Sigmoid are element-wise, so they commute with PP-Stream's
//! permutation obfuscation; SoftMax does not, which is why the protocol
//! skips obfuscation in the final round (paper Sec. III-C).

use pp_tensor::Tensor;

/// `max(0, x)` element-wise.
pub fn relu(t: &Tensor<f64>) -> Tensor<f64> {
    t.map(|&x| x.max(0.0))
}

/// ReLU on scaled integers — sign is scale-invariant, so the scaled domain
/// applies it directly.
pub fn relu_i64(t: &Tensor<i64>) -> Tensor<i64> {
    t.map(|&x| x.max(0))
}

/// Logistic sigmoid `1 / (1 + e^{-x})` element-wise.
pub fn sigmoid(t: &Tensor<f64>) -> Tensor<f64> {
    t.map(|&x| sigmoid_scalar(x))
}

/// Scalar sigmoid.
pub fn sigmoid_scalar(x: f64) -> f64 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Sigmoid in the scaled-integer domain: converts to floats at scale
/// `factor`, applies the sigmoid, and re-scales. This is what the data
/// provider does for mixed layers after decryption.
pub fn sigmoid_i64(t: &Tensor<i64>, factor: f64) -> Tensor<i64> {
    t.map(|&x| (sigmoid_scalar(x as f64 / factor) * factor).round() as i64)
}

/// Numerically stable softmax over a rank-1 tensor.
pub fn softmax(t: &Tensor<f64>) -> Tensor<f64> {
    let max = t.data().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = t.data().iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    Tensor::from_vec(t.shape().clone(), exps.into_iter().map(|e| e / sum).collect())
        .expect("same length")
}

/// Index of the maximum element (the predicted class).
pub fn argmax(t: &Tensor<f64>) -> usize {
    t.data()
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN in logits"))
        .map(|(i, _)| i)
        .expect("non-empty tensor")
}

/// Argmax on scaled integers.
pub fn argmax_i64(t: &Tensor<i64>) -> usize {
    t.data()
        .iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(i, _)| i)
        .expect("non-empty tensor")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_tensor::Tensor;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_flat(vec![-2.0, -0.5, 0.0, 0.5, 2.0]);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 0.0, 0.5, 2.0]);
        let ti = Tensor::from_flat(vec![-3i64, 0, 7]);
        assert_eq!(relu_i64(&ti).data(), &[0, 0, 7]);
    }

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid_scalar(10.0) > 0.9999);
        assert!(sigmoid_scalar(-10.0) < 0.0001);
        // Symmetry: σ(-x) = 1 - σ(x)
        for x in [-3.0, -0.7, 0.3, 2.5] {
            assert!((sigmoid_scalar(-x) - (1.0 - sigmoid_scalar(x))).abs() < 1e-12);
        }
        // Stable at extreme inputs.
        assert_eq!(sigmoid_scalar(-1000.0), 0.0);
        assert_eq!(sigmoid_scalar(1000.0), 1.0);
    }

    #[test]
    fn sigmoid_i64_tracks_float() {
        let f = 1e4;
        let t = Tensor::from_flat(vec![-20_000i64, 0, 5_000, 30_000]);
        let out = sigmoid_i64(&t, f);
        for (&scaled, &raw) in out.data().iter().zip(t.data()) {
            let want = sigmoid_scalar(raw as f64 / f);
            assert!((scaled as f64 / f - want).abs() < 1.0 / f, "raw={raw}");
        }
    }

    #[test]
    fn softmax_sums_to_one() {
        let t = Tensor::from_flat(vec![1.0, 2.0, 3.0]);
        let s = softmax(&t);
        let sum: f64 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(s.data()[2] > s.data()[1] && s.data()[1] > s.data()[0]);
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = softmax(&Tensor::from_flat(vec![1.0, 2.0, 3.0]));
        let b = softmax(&Tensor::from_flat(vec![1001.0, 1002.0, 1003.0]));
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn argmax_variants() {
        assert_eq!(argmax(&Tensor::from_flat(vec![0.1, 0.7, 0.2])), 1);
        assert_eq!(argmax_i64(&Tensor::from_flat(vec![5i64, -2, 9, 3])), 2);
    }
}
