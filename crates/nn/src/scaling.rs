//! Parameter scaling (paper Sec. IV-A): converting floating-point models
//! to scaled integers for Paillier arithmetic, and choosing the scaling
//! factor `F = 10^f` that preserves accuracy.
//!
//! ## Fixed-point semantics
//!
//! * The data provider scales inputs by `F` and rounds to integers.
//! * Every linear primitive's weights are scaled by `F`, so each linear
//!   op raises the value scale by one power of `F`; biases are scaled to
//!   the *output* scale of their op.
//! * At every non-linear primitive the data provider — who holds the
//!   decrypted values — divides by the accumulated extra powers of `F`
//!   (round-half-away-from-zero), returning activations to scale `F`.
//!
//! The scaled integer pipeline here is the bit-exact reference the
//! encrypted pipeline in `pp-stream` must match (the paper's correctness
//! guarantee, Sec. II-C).

use crate::activation::sigmoid_scalar;
use crate::{Layer, Model, NnError, PrimitiveOp};
use pp_tensor::ops::{self, Conv2dSpec};
use pp_tensor::{PlainI128, Shape, Tensor};

/// Rounds `x` to `f` decimal places.
fn round_decimals(x: f64, f: u32) -> f64 {
    let p = 10f64.powi(f as i32);
    (x * p).round() / p
}

/// Returns a copy of `model` with every parameter rounded to `f` decimal
/// places (Step 2 of the paper's scaling-factor search).
pub fn round_params(model: &Model, f: u32) -> Model {
    let layers = model
        .layers()
        .iter()
        .map(|layer| match layer {
            Layer::Conv2d { spec, weights, bias } => Layer::Conv2d {
                spec: spec.clone(),
                weights: weights.map(|&w| round_decimals(w, f)),
                bias: bias.iter().map(|&b| round_decimals(b, f)).collect(),
            },
            Layer::Dense { weights, bias } => Layer::Dense {
                weights: weights.map(|&w| round_decimals(w, f)),
                bias: bias.iter().map(|&b| round_decimals(b, f)).collect(),
            },
            Layer::BatchNorm { scale, shift } => Layer::BatchNorm {
                scale: scale.iter().map(|&s| round_decimals(s, f)).collect(),
                shift: shift.iter().map(|&s| round_decimals(s, f)).collect(),
            },
            Layer::ScaledSigmoid { alpha } => {
                Layer::ScaledSigmoid { alpha: round_decimals(*alpha, f) }
            }
            other => other.clone(),
        })
        .collect();
    Model::new(model.name(), model.input_shape().clone(), layers)
        .expect("rounding preserves shapes")
}

/// Result of the scaling-factor search.
#[derive(Clone, Debug, PartialEq)]
pub struct ScalingReport {
    /// Chosen number of decimal places `f`.
    pub f: u32,
    /// The scaling factor `F = 10^f`.
    pub factor: i64,
    /// Accuracy of the original (unrounded) model on the search set.
    pub baseline_accuracy: f64,
    /// Accuracy of the rounded model at each `f` tried (index = `f`).
    pub accuracies: Vec<f64>,
}

/// Chooses the scaling factor per paper Sec. IV-A: starting from `f = 0`,
/// round parameters to `f` decimals and accept the first `f` whose
/// accuracy is within `threshold` (default 0.01% = `1e-4`) of the
/// original, bounded by `max_f` (default 6).
pub fn choose_scaling_factor(
    model: &Model,
    train_set: &[(Tensor<f64>, usize)],
    threshold: f64,
    max_f: u32,
) -> Result<ScalingReport, NnError> {
    let baseline = model.accuracy(train_set)?;
    let mut accuracies = Vec::new();
    for f in 0..=max_f {
        let rounded = round_params(model, f);
        let acc = rounded.accuracy(train_set)?;
        accuracies.push(acc);
        if (baseline - acc).abs() < threshold || f == max_f {
            return Ok(ScalingReport {
                f,
                factor: 10i64.pow(f),
                baseline_accuracy: baseline,
                accuracies,
            });
        }
    }
    unreachable!("loop always returns at f == max_f")
}

/// Integer division rounding half away from zero — the rounding used at
/// every data-provider rescale so the plaintext and encrypted paths agree
/// bit-for-bit.
pub fn div_round(x: i128, d: i128) -> i128 {
    debug_assert!(d > 0);
    if x >= 0 {
        (x + d / 2) / d
    } else {
        -((-x + d / 2) / d)
    }
}

/// One primitive operation of a scaled-integer model.
///
/// Linear ops carry `i64` parameters (weights at scale `F`, biases at the
/// op's output scale). Non-linear ops carry the divisor that returns the
/// incoming values to scale `F` before the function is applied.
#[derive(Clone, Debug, PartialEq)]
pub enum ScaledOp {
    Conv2d { spec: Conv2dSpec, weights: Tensor<i64>, bias: Vec<i64> },
    Dense { weights: Tensor<i64>, bias: Vec<i64> },
    Affine { scale: Vec<i64>, shift: Vec<i64> },
    /// Scalar multiplication by a scaled constant (linear half of a mixed
    /// layer).
    ScaleMul { alpha: i64 },
    ReLU { rescale: i128 },
    Sigmoid { rescale: i128 },
    /// SoftMax never changes the argmax, so the scaled pipeline only
    /// rescales; the float probabilities are recovered via `factor`.
    SoftMax { rescale: i128 },
    MaxPool { window: usize, stride: usize, rescale: i128 },
    /// Linear sum pooling (homomorphic-friendly average pooling; the
    /// `window²` divisor is folded into the next non-linear rescale).
    SumPool { window: usize, stride: usize },
    Flatten,
}

impl ScaledOp {
    /// Linear (model-provider) vs non-linear (data-provider) assignment.
    pub fn is_linear(&self) -> bool {
        matches!(
            self,
            ScaledOp::Conv2d { .. }
                | ScaledOp::Dense { .. }
                | ScaledOp::Affine { .. }
                | ScaledOp::ScaleMul { .. }
                | ScaledOp::SumPool { .. }
                | ScaledOp::Flatten
        )
    }
}

/// A neural network with parameters scaled to integers, ready for
/// homomorphic evaluation.
#[derive(Clone, Debug)]
pub struct ScaledModel {
    name: String,
    input_shape: Shape,
    factor: i64,
    ops: Vec<ScaledOp>,
}

impl ScaledModel {
    /// Scales `model`'s parameters by `factor` (a power of ten chosen by
    /// [`choose_scaling_factor`]).
    pub fn from_model(model: &Model, factor: i64) -> Self {
        assert!(factor >= 1, "scaling factor must be positive");
        let f = factor as f64;
        let mut ops = Vec::new();
        // Extra scale beyond the base F: each linear op multiplies by F,
        // sum pooling by window²; non-linear rescales divide it back out.
        let mut extra: i128 = 1;
        for prim in model.primitive_layers() {
            match prim {
                PrimitiveOp::Conv2d { spec, weights, bias } => {
                    let out_scale = f * f * extra as f64;
                    ops.push(ScaledOp::Conv2d {
                        spec,
                        weights: weights.scale_to_i64(f),
                        bias: bias.iter().map(|&b| (b * out_scale).round() as i64).collect(),
                    });
                    extra *= factor as i128;
                }
                PrimitiveOp::Dense { weights, bias } => {
                    let out_scale = f * f * extra as f64;
                    ops.push(ScaledOp::Dense {
                        weights: weights.scale_to_i64(f),
                        bias: bias.iter().map(|&b| (b * out_scale).round() as i64).collect(),
                    });
                    extra *= factor as i128;
                }
                PrimitiveOp::Affine { scale, shift } => {
                    let out_scale = f * f * extra as f64;
                    ops.push(ScaledOp::Affine {
                        scale: scale.iter().map(|&s| (s * f).round() as i64).collect(),
                        shift: shift.iter().map(|&s| (s * out_scale).round() as i64).collect(),
                    });
                    extra *= factor as i128;
                }
                PrimitiveOp::Scale { alpha } => {
                    ops.push(ScaledOp::ScaleMul { alpha: (alpha * f).round() as i64 });
                    extra *= factor as i128;
                }
                PrimitiveOp::SumPool { window, stride } => {
                    ops.push(ScaledOp::SumPool { window, stride });
                    extra *= (window * window) as i128;
                }
                PrimitiveOp::ReLU => {
                    ops.push(ScaledOp::ReLU { rescale: extra });
                    extra = 1;
                }
                PrimitiveOp::Sigmoid => {
                    ops.push(ScaledOp::Sigmoid { rescale: extra });
                    extra = 1;
                }
                PrimitiveOp::SoftMax => {
                    ops.push(ScaledOp::SoftMax { rescale: extra });
                    extra = 1;
                }
                PrimitiveOp::MaxPool { window, stride } => {
                    ops.push(ScaledOp::MaxPool { window, stride, rescale: extra });
                    extra = 1;
                }
                PrimitiveOp::Flatten => ops.push(ScaledOp::Flatten),
            }
        }
        ScaledModel {
            name: model.name().to_string(),
            input_shape: model.input_shape().clone(),
            factor,
            ops,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scaling factor `F`.
    pub fn factor(&self) -> i64 {
        self.factor
    }

    /// Expected input shape.
    pub fn input_shape(&self) -> &Shape {
        &self.input_shape
    }

    /// The scaled primitive operations in execution order.
    pub fn ops(&self) -> &[ScaledOp] {
        &self.ops
    }

    /// Scales a float input tensor to integers at scale `F`.
    pub fn scale_input(&self, input: &Tensor<f64>) -> Tensor<i64> {
        input.scale_to_i64(self.factor as f64)
    }

    /// Reference scaled-integer forward pass (plaintext; this is exactly
    /// the computation the encrypted pipeline must reproduce).
    pub fn forward_scaled(&self, input: &Tensor<i64>) -> Result<Tensor<i64>, NnError> {
        let ctx = PlainI128;
        let mut t: Tensor<i128> = input.map(|&x| x as i128);
        for op in &self.ops {
            t = match op {
                ScaledOp::Conv2d { spec, weights, bias } => {
                    let bias128: Vec<i64> = bias.clone();
                    let w = weights.clone();
                    ops::conv2d(&ctx, &t, &w, &bias128, spec)?
                }
                ScaledOp::Dense { weights, bias } => {
                    ops::fully_connected(&ctx, &t, weights, bias)?
                }
                ScaledOp::Affine { scale, shift } => ops::affine(&ctx, &t, scale, shift)?,
                ScaledOp::ScaleMul { alpha } => t.map(|&x| x * *alpha as i128),
                ScaledOp::ReLU { rescale } => t.map(|&x| div_round(x, *rescale).max(0)),
                ScaledOp::Sigmoid { rescale } => {
                    let f = self.factor as f64;
                    t.map(|&x| {
                        let v = div_round(x, *rescale) as f64 / f;
                        (sigmoid_scalar(v) * f).round() as i128
                    })
                }
                ScaledOp::SoftMax { rescale } => t.map(|&x| div_round(x, *rescale)),
                ScaledOp::MaxPool { window, stride, rescale } => {
                    let rescaled = t.map(|&x| div_round(x, *rescale));
                    ops::max_pool2d(&rescaled, *window, *stride)?
                }
                ScaledOp::SumPool { window, stride } => {
                    ops::sum_pool2d(&ctx, &t, *window, *stride)?
                }
                ScaledOp::Flatten => t.flatten(),
            };
        }
        Ok(t.map(|&x| i64::try_from(x).expect("output fits i64 after rescale")))
    }

    /// Classifies via the scaled-integer pipeline.
    pub fn classify_scaled(&self, input: &Tensor<f64>) -> Result<usize, NnError> {
        let out = self.forward_scaled(&self.scale_input(input))?;
        Ok(crate::activation::argmax_i64(&out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_decimals_behaviour() {
        assert_eq!(round_decimals(0.123456, 2), 0.12);
        assert_eq!(round_decimals(-0.555, 1), -0.6);
        assert_eq!(round_decimals(1.9, 0), 2.0);
    }

    #[test]
    fn div_round_half_away() {
        assert_eq!(div_round(5, 2), 3);
        assert_eq!(div_round(-5, 2), -3);
        assert_eq!(div_round(4, 2), 2);
        assert_eq!(div_round(14, 10), 1);
        assert_eq!(div_round(15, 10), 2);
        assert_eq!(div_round(-15, 10), -2);
        assert_eq!(div_round(0, 7), 0);
    }

    #[test]
    fn rounding_at_high_f_is_near_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = zoo::mlp("m", &[4, 8, 2], &mut rng).unwrap();
        let rounded = round_params(&model, 6);
        for (a, b) in model.parameters().iter().zip(rounded.parameters()) {
            assert!((a - b).abs() < 5e-7);
        }
    }

    #[test]
    fn rounding_at_f0_makes_integers() {
        let mut rng = StdRng::seed_from_u64(6);
        let model = zoo::mlp("m", &[4, 8, 2], &mut rng).unwrap();
        let rounded = round_params(&model, 0);
        for p in rounded.parameters() {
            assert_eq!(p, p.round());
        }
    }

    #[test]
    fn choose_factor_stops_at_threshold() {
        let mut rng = StdRng::seed_from_u64(7);
        let model = zoo::mlp("m", &[2, 6, 2], &mut rng).unwrap();
        let data: Vec<(Tensor<f64>, usize)> = (0..50)
            .map(|i| {
                let x = (i as f64 / 25.0) - 1.0;
                (Tensor::from_flat(vec![x, -x]), usize::from(x > 0.0))
            })
            .collect();
        let report = choose_scaling_factor(&model, &data, 1e-4, 6).unwrap();
        assert!(report.f <= 6);
        assert_eq!(report.factor, 10i64.pow(report.f));
        assert_eq!(report.accuracies.len(), report.f as usize + 1);
        // Accuracy at the chosen f matches baseline within threshold
        // (unless the cap was hit).
        if report.f < 6 {
            assert!((report.baseline_accuracy - report.accuracies[report.f as usize]).abs() < 1e-4);
        }
    }

    #[test]
    fn scaled_model_matches_float_classification() {
        let mut rng = StdRng::seed_from_u64(8);
        let model = zoo::mlp("m", &[4, 10, 3], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 10_000);
        for i in 0..20 {
            let x = Tensor::from_flat(vec![
                (i as f64 * 0.37).sin(),
                (i as f64 * 0.11).cos(),
                i as f64 / 20.0 - 0.5,
                -0.3,
            ]);
            let plain = model.classify(&x).unwrap();
            let scaled_class = scaled.classify_scaled(&x).unwrap();
            assert_eq!(plain, scaled_class, "sample {i}");
        }
    }

    #[test]
    fn scaled_model_conv_pipeline() {
        let mut rng = StdRng::seed_from_u64(9);
        let model = zoo::small_convnet("c", (1, 6, 6), 3, 4, &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 1_000);
        let x = Tensor::from_vec(
            vec![1, 6, 6],
            (0..36).map(|i| ((i % 7) as f64 - 3.0) / 3.0).collect(),
        )
        .unwrap();
        assert_eq!(model.classify(&x).unwrap(), scaled.classify_scaled(&x).unwrap());
    }

    #[test]
    fn scaled_ops_alternate_structure() {
        let mut rng = StdRng::seed_from_u64(10);
        let model = zoo::mnist3_2conv2fc(&mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 100);
        // Conv, ReLU, Conv, ReLU, Flatten, Dense, ReLU, Dense, SoftMax
        assert_eq!(scaled.ops().len(), 9);
        assert!(scaled.ops()[0].is_linear());
        assert!(!scaled.ops()[1].is_linear());
        assert!(scaled.ops()[4].is_linear()); // Flatten rides with linear
    }

    #[test]
    fn rescale_divisors_reset_after_nonlinear() {
        let mut rng = StdRng::seed_from_u64(11);
        let model = zoo::mlp("m", &[3, 4, 4, 2], &mut rng).unwrap();
        let scaled = ScaledModel::from_model(&model, 10);
        // Each Dense is followed by a non-linear op whose rescale is F¹
        // (one extra power per linear op since the last reset).
        for op in scaled.ops() {
            if let ScaledOp::ReLU { rescale } | ScaledOp::SoftMax { rescale } = op {
                assert_eq!(*rescale, 10);
            }
        }
    }

    #[test]
    fn low_factor_degrades_small_weights_to_zero() {
        // With factor 1, sub-0.5 weights vanish — the Table IV/V effect.
        let model = Model::new(
            "tiny",
            vec![1],
            vec![
                Layer::Dense {
                    weights: Tensor::from_vec(vec![1, 1], vec![0.3]).unwrap(),
                    bias: vec![0.0],
                },
                Layer::SoftMax,
            ],
        )
        .unwrap();
        let scaled = ScaledModel::from_model(&model, 1);
        if let ScaledOp::Dense { weights, .. } = &scaled.ops()[0] {
            assert_eq!(weights.data(), &[0]);
        } else {
            panic!("expected dense op");
        }
    }
}
