//! # pp-datasets
//!
//! Deterministic synthetic datasets standing in for the paper's evaluation
//! data (MNIST [10], CIFAR-10 [3], Breast [1], Heart [7], Cardio [2]),
//! which are external downloads unavailable in this offline reproduction.
//!
//! Each generator produces a labelled classification problem with the
//! *same tensor shapes, class counts, and sample counts* as the original
//! (see DESIGN.md §3): the latency experiments depend only on tensor
//! shapes, and the accuracy-vs-scaling experiments (Tables IV/V) depend
//! only on having a trained model whose parameters degrade under rounding
//! — both properties are preserved.
//!
//! Samples are drawn from per-class Gaussian clusters over class-specific
//! template patterns, with enough noise that models must actually learn
//! the structure. All generators are seeded and reproducible.
//!
//! ```
//! let data = pp_datasets::breast(42);
//! assert_eq!(data.input_shape.dims(), &[30]);          // paper Table III
//! assert_eq!((data.train.len(), data.test.len()), (456, 113));
//! let small = pp_datasets::heart(1).subsample(0.1);
//! assert_eq!(small.train.len(), 82);
//! ```

use pp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labelled dataset split into train and test sets.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Dataset name, matching the paper's Table III.
    pub name: String,
    /// Shape of each sample tensor.
    pub input_shape: Shape,
    /// Number of classes.
    pub classes: usize,
    /// Training samples `(input, label)`.
    pub train: Vec<(Tensor<f64>, usize)>,
    /// Test samples.
    pub test: Vec<(Tensor<f64>, usize)>,
}

impl Dataset {
    /// Rescaled sample counts: the paper's sets (up to 60 000 samples) are
    /// too large for in-test training; `fraction` trims both splits while
    /// keeping the train/test ratio.
    pub fn subsample(mut self, fraction: f64) -> Self {
        let keep = |v: &mut Vec<(Tensor<f64>, usize)>| {
            let n = ((v.len() as f64 * fraction).ceil() as usize).max(1);
            v.truncate(n);
        };
        keep(&mut self.train);
        keep(&mut self.test);
        self
    }
}

/// Box–Muller standard normal.
fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    }
}

/// Generates a Gaussian-cluster classification problem over flat feature
/// vectors: each class has a random template in `[-1, 1]^d`; samples are
/// the template plus `noise`-scaled Gaussian noise.
fn tabular(
    name: &str,
    features: usize,
    classes: usize,
    train_n: usize,
    test_n: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let templates: Vec<Vec<f64>> = (0..classes)
        .map(|_| (0..features).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let sample = |rng: &mut StdRng| {
        let label = rng.gen_range(0..classes);
        let data: Vec<f64> = templates[label]
            .iter()
            .map(|&t| t + noise * normal(rng))
            .collect();
        (Tensor::from_flat(data), label)
    };
    let train = (0..train_n).map(|_| sample(&mut rng)).collect();
    let test = (0..test_n).map(|_| sample(&mut rng)).collect();
    Dataset {
        name: name.into(),
        input_shape: Shape::vector(features),
        classes,
        train,
        test,
    }
}

/// Generates an image-shaped problem `[c, h, w]`: each class has a smooth
/// random template image; samples add pixel noise. The smoothness gives
/// convolutions local structure to exploit.
fn images(
    name: &str,
    (c, h, w): (usize, usize, usize),
    classes: usize,
    train_n: usize,
    test_n: usize,
    noise: f64,
    seed: u64,
) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    // Smooth templates: random low-frequency sinusoids per class/channel.
    let templates: Vec<Tensor<f64>> = (0..classes)
        .map(|_| {
            let (fx, fy, phase): (f64, f64, f64) = (
                rng.gen_range(0.5..2.5),
                rng.gen_range(0.5..2.5),
                rng.gen_range(0.0..std::f64::consts::TAU),
            );
            let mut data = Vec::with_capacity(c * h * w);
            for ch in 0..c {
                for y in 0..h {
                    for x in 0..w {
                        let v = ((x as f64 / w as f64) * fx * std::f64::consts::TAU
                            + (y as f64 / h as f64) * fy * std::f64::consts::TAU
                            + phase
                            + ch as f64)
                            .sin();
                        data.push(v * 0.5);
                    }
                }
            }
            Tensor::from_vec(vec![c, h, w], data).expect("sized")
        })
        .collect();
    let sample = |rng: &mut StdRng| {
        let label = rng.gen_range(0..classes);
        let data: Vec<f64> = templates[label]
            .data()
            .iter()
            .map(|&t| (t + noise * normal(rng)).clamp(-1.0, 1.0))
            .collect();
        (
            Tensor::from_vec(vec![c, h, w], data).expect("sized"),
            label,
        )
    };
    let train = (0..train_n).map(|_| sample(&mut rng)).collect();
    let test = (0..test_n).map(|_| sample(&mut rng)).collect();
    Dataset {
        name: name.into(),
        input_shape: Shape::new(vec![c, h, w]),
        classes,
        train,
        test,
    }
}

/// Breast cancer stand-in: 30 features, 2 classes, 456/113 split
/// (paper Table III).
pub fn breast(seed: u64) -> Dataset {
    tabular("Breast", 30, 2, 456, 113, 0.35, seed)
}

/// Heart disease stand-in: 13 features, 2 classes, 820/205 split.
pub fn heart(seed: u64) -> Dataset {
    tabular("Heart", 13, 2, 820, 205, 0.35, seed)
}

/// Cardio disease stand-in: 11 features, 2 classes. The paper uses
/// 60 000/10 000 samples; pass a smaller `scale` (e.g. `0.02`) via
/// [`Dataset::subsample`] for in-test training.
pub fn cardio(seed: u64) -> Dataset {
    // Higher noise: the paper's Cardio models only reach ~71% accuracy.
    tabular("Cardio", 11, 2, 60_000, 10_000, 1.1, seed)
}

/// MNIST stand-in: `[1, 28, 28]` images, 10 classes, 60 000/10 000 split.
pub fn mnist(seed: u64) -> Dataset {
    images("MNIST", (1, 28, 28), 10, 60_000, 10_000, 0.25, seed)
}

/// CIFAR-10 stand-in: `[3, 32, 32]` images, 10 classes, 50 000/10 000
/// split.
pub fn cifar10(seed: u64) -> Dataset {
    images("CIFAR-10", (3, 32, 32), 10, 50_000, 10_000, 0.3, seed)
}

/// Small pre-subsampled variants for tests and CI-speed experiments.
pub fn mnist_small(seed: u64) -> Dataset {
    images("MNIST", (1, 28, 28), 10, 600, 150, 0.25, seed)
}

/// Small CIFAR-10 variant.
pub fn cifar10_small(seed: u64) -> Dataset {
    images("CIFAR-10", (3, 32, 32), 10, 400, 100, 0.3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper_table_iii() {
        let b = breast(1);
        assert_eq!(b.input_shape.dims(), &[30]);
        assert_eq!((b.train.len(), b.test.len()), (456, 113));
        let h = heart(1);
        assert_eq!(h.input_shape.dims(), &[13]);
        assert_eq!((h.train.len(), h.test.len()), (820, 205));
        let m = mnist_small(1);
        assert_eq!(m.input_shape.dims(), &[1, 28, 28]);
        assert_eq!(m.classes, 10);
        let c = cifar10_small(1);
        assert_eq!(c.input_shape.dims(), &[3, 32, 32]);
    }

    #[test]
    fn deterministic_generation() {
        let a = breast(42);
        let b = breast(42);
        assert_eq!(a.train[0].0, b.train[0].0);
        assert_eq!(a.train[0].1, b.train[0].1);
        let c = breast(43);
        assert_ne!(a.train[0].0, c.train[0].0);
    }

    #[test]
    fn all_classes_present() {
        let d = mnist_small(7);
        let mut seen = vec![false; d.classes];
        for (_, y) in &d.train {
            seen[*y] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn subsample_trims_both_splits() {
        let d = heart(3).subsample(0.1);
        assert_eq!(d.train.len(), 82);
        assert_eq!(d.test.len(), 21);
        // Never empties a split.
        let tiny = heart(3).subsample(1e-9);
        assert_eq!(tiny.train.len(), 1);
    }

    #[test]
    fn classes_are_separable_by_nearest_template() {
        // Nearest-centroid classification on the train split should beat
        // chance by a wide margin — otherwise models could not learn.
        let d = breast(5);
        let mut centroids = vec![vec![0.0; 30]; 2];
        let mut counts = [0usize; 2];
        for (x, y) in &d.train {
            counts[*y] += 1;
            for (c, v) in centroids[*y].iter_mut().zip(x.data()) {
                *c += v;
            }
        }
        for (c, n) in centroids.iter_mut().zip(counts) {
            for v in c.iter_mut() {
                *v /= n as f64;
            }
        }
        let mut correct = 0;
        for (x, y) in &d.test {
            let dist = |c: &[f64]| -> f64 {
                c.iter().zip(x.data()).map(|(a, b)| (a - b).powi(2)).sum()
            };
            let pred = usize::from(dist(&centroids[1]) < dist(&centroids[0]));
            if pred == *y {
                correct += 1;
            }
        }
        let acc = correct as f64 / d.test.len() as f64;
        assert!(acc > 0.9, "nearest-centroid accuracy {acc}");
    }

    #[test]
    fn image_values_bounded() {
        let d = mnist_small(9);
        for (x, _) in d.train.iter().take(10) {
            for &v in x.data() {
                assert!((-1.0..=1.0).contains(&v));
            }
        }
    }
}
