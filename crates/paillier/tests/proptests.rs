//! Property tests for Paillier homomorphic semantics (paper Eqs. 1–3).

use pp_paillier::packing::{PackedCiphertext, PackedMontInputs, PackingSpec};
use pp_paillier::Keypair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared small keypair — keygen dominates test time otherwise.
fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        Keypair::generate(192, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip(m in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(m as u64);
        let c = kp.public().encrypt_i64(m as i64, &mut rng);
        prop_assert_eq!(kp.private().decrypt_i64(&c), m as i64);
    }

    #[test]
    fn additive_homomorphism(a in any::<i32>(), b in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(a as u64 ^ (b as u64) << 1);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.add(&pk.encrypt_i64(a as i64, &mut rng), &pk.encrypt_i64(b as i64, &mut rng));
        prop_assert_eq!(sk.decrypt_i64(&c), a as i64 + b as i64);
    }

    #[test]
    fn scalar_homomorphism(m in -1_000_000i64..1_000_000, w in -10_000i64..10_000) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64((m ^ w) as u64);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.mul_scalar_i64(&pk.encrypt_i64(m, &mut rng), w);
        prop_assert_eq!(sk.decrypt_i64(&c), m * w);
    }

    #[test]
    fn linear_form(ms in proptest::collection::vec(-1000i64..1000, 1..8),
                   ws in proptest::collection::vec(-1000i64..1000, 8),
                   b in -1000i64..1000) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(b as u64);
        let (pk, sk) = (kp.public(), kp.private());
        let mut acc = pk.encrypt_i64(b, &mut rng);
        for (m, w) in ms.iter().zip(&ws) {
            let c = pk.encrypt_i64(*m, &mut rng);
            acc = pk.add(&acc, &pk.mul_scalar_i64(&c, *w));
        }
        let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + b;
        prop_assert_eq!(sk.decrypt_i64(&acc), want);
    }

    #[test]
    fn add_plain_matches_encrypted_add(m in any::<i32>(), k in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(m as u64 ^ (k as u64).rotate_left(7));
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.encrypt_i64(m as i64, &mut rng);
        prop_assert_eq!(sk.decrypt_i64(&pk.add_plain_i64(&c, k as i64)), m as i64 + k as i64);
    }

    /// The fused multi-exponentiation dot kernel must be *bit-for-bit*
    /// identical to the naive mul/add fold — not just decrypt-equal —
    /// for arbitrary signed weights (zeros included) and biases.
    #[test]
    fn fused_dot_bit_identical_to_naive(
        pairs in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..10),
        bias in -1000i64..1000,
    ) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(bias as u64 ^ (pairs.len() as u64) << 32);
        let pk = kp.public();
        let cts: Vec<_> =
            pairs.iter().map(|(m, _)| pk.encrypt_i64(*m, &mut rng)).collect();
        let terms: Vec<(usize, i64)> =
            pairs.iter().enumerate().map(|(i, (_, w))| (i, *w)).collect();

        let fused = pp_paillier::MontInputs::new(&pk, &cts).dot_i64(&terms, bias);

        let mut naive = pk.encrypt_constant_i64(bias);
        for &(i, w) in &terms {
            naive = pk.add(&naive, &pk.mul_scalar_i64(&cts[i], w));
        }
        prop_assert_eq!(fused.raw(), naive.raw());

        let want: i64 =
            pairs.iter().map(|(m, w)| m * w).sum::<i64>() + bias;
        prop_assert_eq!(kp.private().decrypt_i64(&fused), want);
    }

    /// Packed encrypt → decrypt is the identity at every slot width and
    /// occupancy the key supports.
    #[test]
    fn packed_roundtrip_at_random_slot_counts(
        slot_bits in 24usize..=40,
        values in proptest::collection::vec(-1000i64..1000, 0..8),
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let pk = kp.public();
        let spec = PackingSpec::for_key(&pk, slot_bits).unwrap();
        prop_assume!(values.len() <= spec.slots);
        let mut rng = StdRng::seed_from_u64(seed);
        let packed = PackedCiphertext::encrypt(&pk, spec, &values, &mut rng).unwrap();
        prop_assert_eq!(packed.used(), values.len());
        prop_assert_eq!(packed.weight(), 1);
        prop_assert_eq!(packed.decrypt(&kp.private()).unwrap(), values);
    }

    /// A packed batched dot (batch in the slots) must decode
    /// bit-identical to `used` independent unpacked `dot_i64` calls —
    /// signed weights, all-negative rows, and zero-weight rows included.
    #[test]
    fn packed_dot_matches_unpacked_dot_per_slot(
        // acts[i][j]: activation i of batch item j.
        acts in proptest::collection::vec(
            proptest::collection::vec(-1000i64..1000, 3), 1..6),
        ws in proptest::collection::vec(-50i64..=50, 6),
        bias in -1000i64..1000,
        negate_all in any::<bool>(),
    ) {
        let kp = keypair();
        let pk = kp.public();
        let spec = PackingSpec::for_key(&pk, 32).unwrap().with_budget(512);
        let mut rng = StdRng::seed_from_u64(bias as u64 ^ (acts.len() as u64) << 48);

        let terms: Vec<(usize, i64)> = acts
            .iter()
            .enumerate()
            .map(|(i, _)| (i, if negate_all { -ws[i].abs() } else { ws[i] }))
            .collect();

        let packs: Vec<PackedCiphertext> = acts
            .iter()
            .map(|row| PackedCiphertext::encrypt(&pk, spec, row, &mut rng).unwrap())
            .collect();
        let packed = PackedMontInputs::new(&pk, &packs)
            .unwrap()
            .dot_i64(&terms, bias)
            .unwrap();
        let got = packed.decrypt(&kp.private()).unwrap();
        prop_assert_eq!(got.len(), 3);

        for (j, &g) in got.iter().enumerate() {
            let cts: Vec<_> = acts
                .iter()
                .map(|row| pk.encrypt_i64(row[j], &mut rng))
                .collect();
            let unpacked = pp_paillier::MontInputs::new(&pk, &cts).dot_i64(&terms, bias);
            prop_assert_eq!(g, kp.private().decrypt_i64(&unpacked), "batch item {}", j);
        }
    }

    /// The parallel CRT split must be bit-identical to the sequential
    /// decrypt for every message, and batch decrypt must agree with
    /// item-at-a-time decryption in order.
    #[test]
    fn parallel_crt_decrypt_matches_sequential(
        ms in proptest::collection::vec(any::<i32>(), 1..5),
    ) {
        let kp = keypair();
        let (pk, sk) = (kp.public(), kp.private());
        let mut rng = StdRng::seed_from_u64(ms[0] as u64 ^ (ms.len() as u64) << 40);
        let workers = pp_stream_runtime::WorkerPool::new(2);
        let cts: Vec<_> = ms.iter().map(|&m| pk.encrypt_i64(m as i64, &mut rng)).collect();
        for (c, &m) in cts.iter().zip(&ms) {
            prop_assert_eq!(sk.decrypt(c), sk.decrypt_crt_parallel(c, &workers));
            prop_assert_eq!(sk.try_decrypt_i64(c).unwrap(), m as i64);
        }
        let batch = sk.decrypt_batch(&cts, &workers);
        let seq: Vec<_> = cts.iter().map(|c| sk.decrypt(c)).collect();
        prop_assert_eq!(batch, seq);
    }

    /// A pool refilled through the fixed-base comb must hand out factors
    /// that blind correctly — every pooled encryption decrypts to its
    /// message — and the per-key refill base must be identical no matter
    /// which pool instance derives it.
    #[test]
    fn fixed_base_refill_factors_blind_correctly(
        ms in proptest::collection::vec(-100_000i64..100_000, 1..5),
        seed in any::<u64>(),
    ) {
        let kp = keypair();
        let (pk, sk) = (kp.public(), kp.private());
        let mut rng = StdRng::seed_from_u64(seed);
        let base_a = pp_paillier::RefillBase::for_key(&pk);
        let base_b = pp_paillier::RefillBase::for_key(&pk);
        prop_assert_eq!(base_a.fingerprint(), base_b.fingerprint());
        prop_assert_eq!(base_a.h(), base_b.h());

        let mut pool = pp_paillier::RandomnessPool::with_base(
            pk.clone(),
            std::sync::Arc::new(base_a),
        );
        pool.refill(ms.len(), &mut rng);
        for &m in &ms {
            let c = pool.encrypt_i64(m, &mut rng);
            prop_assert_eq!(sk.try_decrypt_i64(&c).unwrap(), m);
        }
        prop_assert_eq!(pool.misses(), 0);
    }
}
