//! Property tests for Paillier homomorphic semantics (paper Eqs. 1–3).

use pp_paillier::Keypair;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::OnceLock;

/// One shared small keypair — keygen dominates test time otherwise.
fn keypair() -> &'static Keypair {
    static KP: OnceLock<Keypair> = OnceLock::new();
    KP.get_or_init(|| {
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        Keypair::generate(192, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn roundtrip(m in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(m as u64);
        let c = kp.public().encrypt_i64(m as i64, &mut rng);
        prop_assert_eq!(kp.private().decrypt_i64(&c), m as i64);
    }

    #[test]
    fn additive_homomorphism(a in any::<i32>(), b in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(a as u64 ^ (b as u64) << 1);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.add(&pk.encrypt_i64(a as i64, &mut rng), &pk.encrypt_i64(b as i64, &mut rng));
        prop_assert_eq!(sk.decrypt_i64(&c), a as i64 + b as i64);
    }

    #[test]
    fn scalar_homomorphism(m in -1_000_000i64..1_000_000, w in -10_000i64..10_000) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64((m ^ w) as u64);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.mul_scalar_i64(&pk.encrypt_i64(m, &mut rng), w);
        prop_assert_eq!(sk.decrypt_i64(&c), m * w);
    }

    #[test]
    fn linear_form(ms in proptest::collection::vec(-1000i64..1000, 1..8),
                   ws in proptest::collection::vec(-1000i64..1000, 8),
                   b in -1000i64..1000) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(b as u64);
        let (pk, sk) = (kp.public(), kp.private());
        let mut acc = pk.encrypt_i64(b, &mut rng);
        for (m, w) in ms.iter().zip(&ws) {
            let c = pk.encrypt_i64(*m, &mut rng);
            acc = pk.add(&acc, &pk.mul_scalar_i64(&c, *w));
        }
        let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + b;
        prop_assert_eq!(sk.decrypt_i64(&acc), want);
    }

    #[test]
    fn add_plain_matches_encrypted_add(m in any::<i32>(), k in any::<i32>()) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(m as u64 ^ (k as u64).rotate_left(7));
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.encrypt_i64(m as i64, &mut rng);
        prop_assert_eq!(sk.decrypt_i64(&pk.add_plain_i64(&c, k as i64)), m as i64 + k as i64);
    }

    /// The fused multi-exponentiation dot kernel must be *bit-for-bit*
    /// identical to the naive mul/add fold — not just decrypt-equal —
    /// for arbitrary signed weights (zeros included) and biases.
    #[test]
    fn fused_dot_bit_identical_to_naive(
        pairs in proptest::collection::vec((-1000i64..1000, -1000i64..1000), 0..10),
        bias in -1000i64..1000,
    ) {
        let kp = keypair();
        let mut rng = StdRng::seed_from_u64(bias as u64 ^ (pairs.len() as u64) << 32);
        let pk = kp.public();
        let cts: Vec<_> =
            pairs.iter().map(|(m, _)| pk.encrypt_i64(*m, &mut rng)).collect();
        let terms: Vec<(usize, i64)> =
            pairs.iter().enumerate().map(|(i, (_, w))| (i, *w)).collect();

        let fused = pp_paillier::MontInputs::new(&pk, &cts).dot_i64(&terms, bias);

        let mut naive = pk.encrypt_constant_i64(bias);
        for &(i, w) in &terms {
            naive = pk.add(&naive, &pk.mul_scalar_i64(&cts[i], w));
        }
        prop_assert_eq!(fused.raw(), naive.raw());

        let want: i64 =
            pairs.iter().map(|(m, w)| m * w).sum::<i64>() + bias;
        prop_assert_eq!(kp.private().decrypt_i64(&fused), want);
    }
}
