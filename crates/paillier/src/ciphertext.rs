//! Ciphertext wrapper with byte serialization for the stream wire format.

use pp_bigint::BigUint;

/// A Paillier ciphertext: an element of `Z*_{n²}`.
///
/// The wrapper type keeps ciphertexts from being confused with plaintext
/// residues in the PP-Stream protocol code — only the data provider may
/// turn one back into a plaintext.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Ciphertext(BigUint);

impl Ciphertext {
    /// Wraps a raw residue. Callers are expected to have produced it via an
    /// encryption or homomorphic operation.
    pub fn new(raw: BigUint) -> Self {
        Ciphertext(raw)
    }

    /// The underlying residue.
    pub fn raw(&self) -> &BigUint {
        &self.0
    }

    /// Consumes the wrapper, returning the residue.
    pub fn into_raw(self) -> BigUint {
        self.0
    }

    /// Big-endian byte serialization (used by the stream wire codec).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.0.to_bytes_be()
    }

    /// Deserializes from big-endian bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        Ciphertext(BigUint::from_bytes_be(bytes))
    }
}

impl std::fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print full ciphertexts in logs; show a short fingerprint.
        let hex = self.0.to_hex();
        let head = &hex[..hex.len().min(12)];
        write!(f, "Ciphertext({head}…, {} bits)", self.0.bit_len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_roundtrip() {
        let c = Ciphertext::new(BigUint::from_decimal_str("123456789012345678901234567890").unwrap());
        let bytes = c.to_bytes();
        assert_eq!(Ciphertext::from_bytes(&bytes), c);
    }

    #[test]
    fn debug_is_truncated() {
        let c = Ciphertext::new(BigUint::from_hex_str("deadbeefdeadbeefdeadbeefdeadbeef").unwrap());
        let s = format!("{c:?}");
        assert!(s.contains("…"));
        assert!(!s.contains("deadbeefdeadbeefdeadbeefdeadbeef"));
    }
}
