//! Key serialization: export/import of public and private keys as
//! self-describing byte strings, for key distribution (the data provider
//! ships its public key to the model provider at session setup — see the
//! `distributed_inference` example) and for at-rest persistence.
//!
//! Format: `magic u32 | version u8 | field count u8 | (len u32 | bytes)*`
//! with all integers little-endian and field bytes big-endian magnitude.

use crate::{Keypair, PaillierError, PrivateKey, PublicKey};
use pp_bigint::BigUint;

const MAGIC_PUBLIC: u32 = 0x5050_4B31; // "PPK1"
const MAGIC_PRIVATE: u32 = 0x5050_5331; // "PPS1"
const VERSION: u8 = 1;

fn put_field(out: &mut Vec<u8>, v: &BigUint) {
    let bytes = v.to_bytes_be();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&bytes);
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PaillierError> {
        if self.pos + n > self.buf.len() {
            return Err(PaillierError::Decode(format!(
                "need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PaillierError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn u8(&mut self) -> Result<u8, PaillierError> {
        Ok(self.take(1)?[0])
    }

    fn field(&mut self) -> Result<BigUint, PaillierError> {
        let len = self.u32()? as usize;
        if len > 1 << 20 {
            return Err(PaillierError::Decode(format!("field too large: {len}")));
        }
        Ok(BigUint::from_bytes_be(self.take(len)?))
    }
}

fn check_header(c: &mut Cursor<'_>, magic: u32, fields: u8) -> Result<(), PaillierError> {
    if c.u32()? != magic {
        return Err(PaillierError::Decode("bad magic".into()));
    }
    if c.u8()? != VERSION {
        return Err(PaillierError::Decode("unsupported version".into()));
    }
    if c.u8()? != fields {
        return Err(PaillierError::Decode("unexpected field count".into()));
    }
    Ok(())
}

impl PublicKey {
    /// Serializes the public key (the modulus `n`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_PUBLIC.to_le_bytes());
        out.push(VERSION);
        out.push(1);
        put_field(&mut out, self.n());
        out
    }

    /// Deserializes a public key, rebuilding the Montgomery context.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PaillierError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        check_header(&mut c, MAGIC_PUBLIC, 1)?;
        let n = c.field()?;
        if n.bit_len() < 16 {
            return Err(PaillierError::Decode("modulus too small".into()));
        }
        Ok(PublicKey::from_n(n))
    }
}

impl PrivateKey {
    /// Serializes the private key as `(n, p, q)`. **Handle with care** —
    /// this is the data provider's secret material.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC_PRIVATE.to_le_bytes());
        out.push(VERSION);
        out.push(3);
        put_field(&mut out, self.public().n());
        put_field(&mut out, self.p());
        put_field(&mut out, self.q());
        out
    }

    /// Deserializes and validates a private key (`p·q` must equal `n`).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PaillierError> {
        let mut c = Cursor { buf: bytes, pos: 0 };
        check_header(&mut c, MAGIC_PRIVATE, 3)?;
        let n = c.field()?;
        let p = c.field()?;
        let q = c.field()?;
        if p.mul_ref(&q) != n {
            return Err(PaillierError::Decode("p·q ≠ n: corrupted key".into()));
        }
        Ok(PrivateKey::from_primes(PublicKey::from_n(n), p, q))
    }
}

impl Keypair {
    /// Serializes the whole keypair (same format as the private key —
    /// it determines everything).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.private().to_bytes()
    }

    /// Deserializes a keypair.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, PaillierError> {
        let private = PrivateKey::from_bytes(bytes)?;
        Ok(Keypair::from_private(private))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn keypair() -> Keypair {
        let mut rng = StdRng::seed_from_u64(50);
        Keypair::generate(128, &mut rng)
    }

    #[test]
    fn public_key_roundtrip() {
        let kp = keypair();
        let pk = kp.public();
        let restored = PublicKey::from_bytes(&pk.to_bytes()).unwrap();
        assert_eq!(restored.n(), pk.n());
        // The restored key encrypts; the original private key decrypts.
        let mut rng = StdRng::seed_from_u64(51);
        let c = restored.encrypt_i64(-1234, &mut rng);
        assert_eq!(kp.private().decrypt_i64(&c), -1234);
    }

    #[test]
    fn private_key_roundtrip() {
        let kp = keypair();
        let restored = PrivateKey::from_bytes(&kp.private().to_bytes()).unwrap();
        let mut rng = StdRng::seed_from_u64(52);
        let c = kp.public().encrypt_i64(777, &mut rng);
        assert_eq!(restored.decrypt_i64(&c), 777);
    }

    #[test]
    fn keypair_roundtrip() {
        let kp = keypair();
        let restored = Keypair::from_bytes(&kp.to_bytes()).unwrap();
        let mut rng = StdRng::seed_from_u64(53);
        let c = restored.public().encrypt_i64(9, &mut rng);
        assert_eq!(restored.private().decrypt_i64(&c), 9);
    }

    #[test]
    fn corruption_detected() {
        let kp = keypair();
        let mut bytes = kp.private().to_bytes();
        // Flip a bit inside the q field.
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert!(PrivateKey::from_bytes(&bytes).is_err());
        // Wrong magic.
        let mut bytes = kp.public().to_bytes();
        bytes[0] ^= 0xFF;
        assert!(PublicKey::from_bytes(&bytes).is_err());
        // Truncation.
        let bytes = kp.public().to_bytes();
        assert!(PublicKey::from_bytes(&bytes[..bytes.len() - 2]).is_err());
    }
}
