//! # pp-paillier
//!
//! Paillier's partially homomorphic public-key cryptosystem
//! (EUROCRYPT '99), built on [`pp_bigint`]. This is the cryptographic
//! primitive PP-Stream uses to protect *linear* neural-network operations:
//! the model provider computes `∏ E(mᵢ)^wᵢ · E(b) mod n²` over encrypted
//! tensor elements, which decrypts to `Σ wᵢ·mᵢ + b` (paper Eq. 3).
//!
//! Supported homomorphic operations:
//!
//! * **Addition** — `D(E(m₁) · E(m₂) mod n²) = m₁ + m₂` (paper Eq. 1)
//! * **Scalar multiplication** — `D(E(m)^w mod n²) = w · m` (paper Eq. 2),
//!   including negative scalars via ciphertext inversion.
//!
//! Messages are signed 64-bit integers (PP-Stream's scaled parameters),
//! encoded into `[0, n)` by splitting the message space at `n/2`.
//!
//! ## Example
//!
//! ```
//! use pp_paillier::Keypair;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let kp = Keypair::generate(256, &mut rng); // tests use small keys
//! let (pk, sk) = (kp.public(), kp.private());
//!
//! let c1 = pk.encrypt_i64(20, &mut rng);
//! let c2 = pk.encrypt_i64(22, &mut rng);
//! let sum = pk.add(&c1, &c2);
//! assert_eq!(sk.decrypt_i64(&sum), 42);
//!
//! let scaled = pk.mul_scalar_i64(&c1, -3);
//! assert_eq!(sk.decrypt_i64(&scaled), -60);
//! ```

mod ciphertext;
mod dot;
mod encoding;
mod keys;
pub mod packing;
mod pool;
mod serde;

pub use ciphertext::Ciphertext;
pub use dot::MontInputs;
pub use encoding::{decode_i64, encode_i64, try_encode_i64};
pub use keys::{Keypair, PrivateKey, PublicKey};
pub use packing::{PackedCiphertext, PackedMontInputs, PackingSpec};
pub use pool::{shared_refill_cache, RandomnessPool, RefillBase, RefillCache};

/// Errors from Paillier operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PaillierError {
    /// The message does not fit in the plaintext space `(-n/2, n/2)`.
    MessageOutOfRange,
    /// A ciphertext is not a valid element of `Z*_{n²}`.
    InvalidCiphertext,
    /// Byte decoding failed.
    Decode(String),
    /// A packed operation would exceed the spec's operation budget (or
    /// overflow the weight arithmetic itself, reported saturated).
    BudgetExceeded { weight: u64, budget: u64 },
    /// Packed operands disagree on spec or active slot count.
    PackingMismatch,
    /// A packing layout is invalid for the key or operation.
    InvalidPacking(String),
}

impl std::fmt::Display for PaillierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PaillierError::MessageOutOfRange => write!(f, "message out of plaintext range"),
            PaillierError::InvalidCiphertext => write!(f, "invalid ciphertext"),
            PaillierError::Decode(s) => write!(f, "decode error: {s}"),
            PaillierError::BudgetExceeded { weight, budget } => {
                write!(f, "packed op weight {weight} exceeds budget {budget}")
            }
            PaillierError::PackingMismatch => write!(f, "packed operands mismatch"),
            PaillierError::InvalidPacking(s) => write!(f, "invalid packing: {s}"),
        }
    }
}

impl std::error::Error for PaillierError {}
