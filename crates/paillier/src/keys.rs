//! Key generation, encryption, and decryption.
//!
//! Decryption uses the CRT split over `p²` and `q²` (the classic ~4×
//! speedup from Paillier's original paper); the `abl_crt` bench in
//! `pp-bench` quantifies the gain against the direct `λ, μ` method.

use crate::ciphertext::Ciphertext;
use crate::encoding::{decode_i64, encode_i64};
use crate::PaillierError;
use pp_bigint::{gen_prime, random_coprime, BigUint, MontgomeryCtx};
use pp_stream_runtime::pool::WorkerPool;
use rand::Rng;
use std::sync::{Arc, OnceLock};

/// Paillier public key: the modulus `n`, with precomputed `n²` and a shared
/// Montgomery context for `n²` (built once per key, reused for every tensor
/// element).
#[derive(Clone, Debug)]
pub struct PublicKey {
    n: BigUint,
    n_squared: BigUint,
    half_n: BigUint,
    ctx_n2: Arc<MontgomeryCtx>,
}

/// Paillier private key with CRT precomputations.
#[derive(Clone, Debug)]
pub struct PrivateKey {
    public: PublicKey,
    p: BigUint,
    q: BigUint,
    p_squared: BigUint,
    q_squared: BigUint,
    /// `p^{-1} mod q` for CRT recombination.
    p_inv_q: BigUint,
    /// `hp = L_p(g^{p-1} mod p²)^{-1} mod p`.
    hp: BigUint,
    /// `hq = L_q(g^{q-1} mod q²)^{-1} mod q`.
    hq: BigUint,
    ctx_p2: Arc<MontgomeryCtx>,
    ctx_q2: Arc<MontgomeryCtx>,
}

/// A freshly generated public/private key pair.
#[derive(Clone, Debug)]
pub struct Keypair {
    public: PublicKey,
    private: PrivateKey,
}

impl Keypair {
    /// Generates a keypair with an `n` of `bits` bits (so `p` and `q` are
    /// `bits/2`-bit primes). The paper uses 2048-bit keys per NIST
    /// guidance [16]; tests use much smaller keys for speed.
    ///
    /// Panics if `bits < 16`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 16, "key size too small");
        let half = bits / 2;
        loop {
            let p = gen_prime(half, rng);
            let q = gen_prime(bits - half, rng);
            if p == q {
                continue;
            }
            // gcd(n, (p-1)(q-1)) == 1 holds automatically when p, q have the
            // same bit length; re-sample defensively when it does not.
            let n = &p * &q;
            let p_minus_1 = &p - &BigUint::one();
            let q_minus_1 = &q - &BigUint::one();
            if !n.gcd(&p_minus_1.mul_ref(&q_minus_1)).is_one() {
                continue;
            }
            if n.bit_len() != bits {
                continue;
            }
            let public = PublicKey::from_n(n);
            let private = PrivateKey::from_primes(public.clone(), p, q);
            return Keypair { public, private };
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public.clone()
    }

    /// The private half.
    pub fn private(&self) -> PrivateKey {
        self.private.clone()
    }

    /// Rebuilds a keypair from its private half.
    pub fn from_private(private: PrivateKey) -> Self {
        Keypair { public: private.public().clone(), private }
    }
}

/// `L(x) = (x - 1) / n` — Paillier's quotient function, defined on
/// `x ≡ 1 (mod n)`.
fn l_function(x: &BigUint, n: &BigUint) -> BigUint {
    let x_minus_1 = x - &BigUint::one();
    &x_minus_1 / n
}

impl PublicKey {
    /// Builds a public key from a modulus `n` (uses `g = n + 1`).
    pub fn from_n(n: BigUint) -> Self {
        let n_squared = n.square();
        let ctx_n2 = Arc::new(MontgomeryCtx::new(&n_squared).expect("n² odd"));
        let half_n = n.shr_bits(1);
        PublicKey { n, n_squared, half_n, ctx_n2 }
    }

    /// The modulus `n`.
    pub fn n(&self) -> &BigUint {
        &self.n
    }

    /// `n²`, the ciphertext modulus.
    pub fn n_squared(&self) -> &BigUint {
        &self.n_squared
    }

    /// `⌊n/2⌋`, the positive/negative split of the signed encoding.
    pub fn half_n(&self) -> &BigUint {
        &self.half_n
    }

    /// Key size in bits (bit length of `n`).
    pub fn bits(&self) -> usize {
        self.n.bit_len()
    }

    /// FNV-1a-64 fingerprint of the modulus — a stable per-key cache
    /// and routing handle (also what the wire handshake hashes).
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &limb in self.n.limbs() {
            for byte in limb.to_le_bytes() {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    pub(crate) fn ctx(&self) -> &MontgomeryCtx {
        &self.ctx_n2
    }

    /// `g^m = 1 + m·n mod n²` for an already-encoded residue `m < n`.
    ///
    /// No reduction is needed: `1 + m·n ≤ 1 + (n−1)·n = n² − n + 1 < n²`
    /// whenever `m < n`, which `encode_i64` guarantees.
    pub(crate) fn g_pow_encoded(&self, encoded: &BigUint) -> BigUint {
        debug_assert!(encoded < &self.n, "encoded message must be reduced mod n");
        &BigUint::one() + &encoded.mul_ref(&self.n)
    }

    /// Encrypts a non-negative message `m < n` with fresh randomness.
    ///
    /// With `g = n + 1`, `g^m = 1 + m·n (mod n²)`, so encryption costs one
    /// modular exponentiation (`r^n`) plus one multiplication.
    pub fn encrypt<R: Rng + ?Sized>(&self, m: &BigUint, rng: &mut R) -> Ciphertext {
        let r = random_coprime(rng, &self.n);
        self.encrypt_with_randomness(m, &r)
    }

    /// Encrypts with caller-provided randomness `r ∈ Z*_n` (used by
    /// [`crate::RandomnessPool`] and by deterministic tests).
    pub fn encrypt_with_randomness(&self, m: &BigUint, r: &BigUint) -> Ciphertext {
        let gm = self.g_pow_encoded(m);
        let rn = self.ctx_n2.pow_mod(r, &self.n);
        Ciphertext::new(self.ctx_n2.mul_mod(&gm, &rn))
    }

    /// Encrypts a signed message with a **precomputed** blinding factor
    /// `rn = r^n mod n²` (the expensive half of encryption), as produced
    /// by [`crate::RandomnessPool`]. This is the request-path entry
    /// point when the exponentiation already happened off-path.
    pub fn encrypt_i64_with_factor(&self, m: i64, rn: &BigUint) -> Ciphertext {
        let gm = self.g_pow_encoded(&encode_i64(m, &self.n));
        Ciphertext::new(self.ctx_n2.mul_mod(&gm, rn))
    }

    /// Encrypts a signed 64-bit message (PP-Stream's scaled values).
    pub fn encrypt_i64<R: Rng + ?Sized>(&self, m: i64, rng: &mut R) -> Ciphertext {
        let encoded = encode_i64(m, &self.n);
        self.encrypt(&encoded, rng)
    }

    /// Deterministic encryption with unit randomness: `c = 1 + m·n mod n²`.
    ///
    /// **Not semantically secure on its own** — used only for the model
    /// provider's *own* bias constants, which are immediately multiplied
    /// into data-derived ciphertexts (whose randomness re-randomizes the
    /// product) and never sent bare. Avoids one modular exponentiation per
    /// bias term.
    pub fn encrypt_constant_i64(&self, m: i64) -> Ciphertext {
        Ciphertext::new(self.g_pow_encoded(&encode_i64(m, &self.n)))
    }

    /// Homomorphic addition: `D(add(c₁, c₂)) = m₁ + m₂` (paper Eq. 1).
    pub fn add(&self, c1: &Ciphertext, c2: &Ciphertext) -> Ciphertext {
        Ciphertext::new(self.ctx_n2.mul_mod(c1.raw(), c2.raw()))
    }

    /// Homomorphic addition of a plaintext constant (no encryption of the
    /// constant needed): `D(add_plain(c, k)) = m + k`.
    pub fn add_plain_i64(&self, c: &Ciphertext, k: i64) -> Ciphertext {
        // c · g^k = c · (1 + k·n) mod n²
        let gk = self.g_pow_encoded(&encode_i64(k, &self.n));
        Ciphertext::new(self.ctx_n2.mul_mod(c.raw(), &gk))
    }

    /// Homomorphic scalar multiplication by a non-negative scalar:
    /// `D(mul_scalar(c, w)) = w·m` (paper Eq. 2).
    pub fn mul_scalar(&self, c: &Ciphertext, w: &BigUint) -> Ciphertext {
        Ciphertext::new(self.ctx_n2.pow_mod(c.raw(), w))
    }

    /// Homomorphic scalar multiplication by a signed scalar. Negative
    /// scalars invert the ciphertext in `Z*_{n²}` first
    /// (`D(c^{-1}) = -m`), then raise to `|w|`.
    pub fn mul_scalar_i64(&self, c: &Ciphertext, w: i64) -> Ciphertext {
        if w >= 0 {
            self.mul_scalar(c, &BigUint::from(w as u64))
        } else {
            let inv = c
                .raw()
                .modinv(&self.n_squared)
                .expect("ciphertexts are units mod n²");
            self.mul_scalar(&Ciphertext::new(inv), &BigUint::from(w.unsigned_abs()))
        }
    }

    /// The additive identity `E(0)` with fresh randomness — useful for
    /// re-randomizing a ciphertext.
    pub fn encrypt_zero<R: Rng + ?Sized>(&self, rng: &mut R) -> Ciphertext {
        self.encrypt(&BigUint::zero(), rng)
    }

    /// Re-randomizes `c` so it is unlinkable to its origin while decrypting
    /// to the same message.
    pub fn rerandomize<R: Rng + ?Sized>(&self, c: &Ciphertext, rng: &mut R) -> Ciphertext {
        self.add(c, &self.encrypt_zero(rng))
    }

    /// Checks that a ciphertext lies in `Z*_{n²}`.
    pub fn validate(&self, c: &Ciphertext) -> bool {
        !c.raw().is_zero() && c.raw() < &self.n_squared && c.raw().gcd(&self.n_squared).is_one()
    }
}

impl PrivateKey {
    /// Builds a private key from the prime factorization of `n`.
    pub fn from_primes(public: PublicKey, p: BigUint, q: BigUint) -> Self {
        let p_squared = p.square();
        let q_squared = q.square();
        let ctx_p2 = Arc::new(MontgomeryCtx::new(&p_squared).expect("p² odd"));
        let ctx_q2 = Arc::new(MontgomeryCtx::new(&q_squared).expect("q² odd"));
        let p_minus_1 = &p - &BigUint::one();
        let q_minus_1 = &q - &BigUint::one();

        // hp = L_p(g^{p-1} mod p²)^{-1} mod p, with g = n+1.
        let g = &public.n + &BigUint::one();
        let gp = ctx_p2.pow_mod(&g, &p_minus_1);
        let hp = l_function(&gp, &p)
            .modinv(&p)
            .expect("hp invertible for valid key");
        let gq = ctx_q2.pow_mod(&g, &q_minus_1);
        let hq = l_function(&gq, &q)
            .modinv(&q)
            .expect("hq invertible for valid key");

        let p_inv_q = p.modinv(&q).expect("p, q distinct primes");

        PrivateKey {
            public,
            p,
            q,
            p_squared,
            q_squared,
            p_inv_q,
            hp,
            hq,
            ctx_p2,
            ctx_q2,
        }
    }

    /// The associated public key.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }

    /// The prime factor `p` (secret).
    pub fn p(&self) -> &BigUint {
        &self.p
    }

    /// The prime factor `q` (secret).
    pub fn q(&self) -> &BigUint {
        &self.q
    }

    /// The `p²` half of a CRT decryption:
    /// `mp = L_p(c^{p−1} mod p²)·hp mod p`.
    fn crt_half_p(&self, c: &Ciphertext) -> BigUint {
        let p_minus_1 = &self.p - &BigUint::one();
        let cp = c.raw().rem_ref(&self.p_squared).expect("p² non-zero");
        l_function(&self.ctx_p2.pow_mod(&cp, &p_minus_1), &self.p)
            .mulmod(&self.hp, &self.p)
            .expect("p non-zero")
    }

    /// The `q²` half of a CRT decryption:
    /// `mq = L_q(c^{q−1} mod q²)·hq mod q`.
    fn crt_half_q(&self, c: &Ciphertext) -> BigUint {
        let q_minus_1 = &self.q - &BigUint::one();
        let cq = c.raw().rem_ref(&self.q_squared).expect("q² non-zero");
        l_function(&self.ctx_q2.pow_mod(&cq, &q_minus_1), &self.q)
            .mulmod(&self.hq, &self.q)
            .expect("q non-zero")
    }

    /// CRT recombination: `m = mp + p·((mq − mp)·p^{-1} mod q)`.
    fn crt_combine(&self, mp: &BigUint, mq: &BigUint) -> BigUint {
        let diff = mq.submod(mp, &self.q).expect("q non-zero");
        let t = diff.mulmod(&self.p_inv_q, &self.q).expect("q non-zero");
        mp + &t.mul_ref(&self.p)
    }

    /// Decrypts to the raw residue in `[0, n)` using the CRT split.
    pub fn decrypt(&self, c: &Ciphertext) -> BigUint {
        self.crt_combine(&self.crt_half_p(c), &self.crt_half_q(c))
    }

    /// Decrypts with the two CRT halves on separate workers. The halves
    /// are fully independent `~bits/2` exponentiations, so on two cores
    /// this approaches 2× the sequential CRT path. Falls back to
    /// sequential below [`decrypt_par_min_bits`] (the spawn/park
    /// overhead dwarfs a small-key exponentiation) or when `workers`
    /// has no real parallelism.
    pub fn decrypt_crt_parallel(&self, c: &Ciphertext, workers: &WorkerPool) -> BigUint {
        if workers.size() < 2 || self.public.bits() < decrypt_par_min_bits() {
            return self.decrypt(c);
        }
        self.decrypt_crt_parallel_unchecked(c, workers)
    }

    /// The parallel two-half split without the size gate (benches and
    /// tests drive it directly; production goes through the gated entry).
    pub(crate) fn decrypt_crt_parallel_unchecked(
        &self,
        c: &Ciphertext,
        workers: &WorkerPool,
    ) -> BigUint {
        let sk = self.clone();
        let ct = c.clone();
        let halves = workers.map_ranges(2, move |range| {
            range
                .map(|i| if i == 0 { sk.crt_half_p(&ct) } else { sk.crt_half_q(&ct) })
                .collect()
        });
        self.crt_combine(&halves[0], &halves[1])
    }

    /// Decrypts a batch, spreading the `2·len` independent CRT half
    /// exponentiations across the worker pool — twice the schedulable
    /// units of a per-ciphertext split, which matters when the batch is
    /// smaller than the pool. Sequential below the same cutoff as
    /// [`PrivateKey::decrypt_crt_parallel`].
    pub fn decrypt_batch(&self, cts: &[Ciphertext], workers: &WorkerPool) -> Vec<BigUint> {
        if workers.size() < 2 || self.public.bits() < decrypt_par_min_bits() {
            return cts.iter().map(|c| self.decrypt(c)).collect();
        }
        if cts.len() == 1 {
            return vec![self.decrypt_crt_parallel_unchecked(&cts[0], workers)];
        }
        self.decrypt_batch_unchecked(cts, workers)
    }

    /// The batch half-split without the size gate.
    pub(crate) fn decrypt_batch_unchecked(
        &self,
        cts: &[Ciphertext],
        workers: &WorkerPool,
    ) -> Vec<BigUint> {
        let sk = self.clone();
        let cts_shared: Arc<[Ciphertext]> = Arc::from(cts.to_vec());
        let halves = workers.map_ranges(2 * cts.len(), move |range| {
            range
                .map(|i| {
                    let c = &cts_shared[i / 2];
                    if i % 2 == 0 {
                        sk.crt_half_p(c)
                    } else {
                        sk.crt_half_q(c)
                    }
                })
                .collect()
        });
        halves.chunks_exact(2).map(|h| self.crt_combine(&h[0], &h[1])).collect()
    }

    /// Batch decryption to signed 128-bit messages, with per-batch error
    /// reporting instead of a panic on out-of-range plaintexts.
    pub fn try_decrypt_batch_i128(
        &self,
        cts: &[Ciphertext],
        workers: &WorkerPool,
    ) -> Result<Vec<i128>, PaillierError> {
        self.decrypt_batch(cts, workers)
            .iter()
            .map(|m| crate::encoding::decode_i128(m, &self.public.n))
            .collect()
    }

    /// Decrypts without CRT (directly via `λ = lcm(p-1, q-1)`). Kept for
    /// cross-validation and the `abl_crt` ablation bench.
    pub fn decrypt_direct(&self, c: &Ciphertext) -> BigUint {
        let p_minus_1 = &self.p - &BigUint::one();
        let q_minus_1 = &self.q - &BigUint::one();
        let lambda = p_minus_1.lcm(&q_minus_1);
        let n = &self.public.n;
        let u = self.public.ctx_n2.pow_mod(c.raw(), &lambda);
        let l = l_function(&u, n);
        let g = n + &BigUint::one();
        let mu = l_function(&self.public.ctx_n2.pow_mod(&g, &lambda), n)
            .modinv(n)
            .expect("valid key");
        l.mulmod(&mu, n).expect("n non-zero")
    }

    /// Decrypts to a signed 64-bit message, or an error when the
    /// decoded value does not fit `i64` — the recoverable form for
    /// paths fed by untrusted peers, where an out-of-range plaintext
    /// means a corrupt (but well-formed) reply, not a local bug.
    pub fn try_decrypt_i64(&self, c: &Ciphertext) -> Result<i64, PaillierError> {
        decode_i64(&self.decrypt(c), &self.public.n)
    }

    /// Decrypts to a signed 128-bit message, or an error when the
    /// decoded value does not fit `i128`.
    pub fn try_decrypt_i128(&self, c: &Ciphertext) -> Result<i128, PaillierError> {
        crate::encoding::decode_i128(&self.decrypt(c), &self.public.n)
    }

    /// Decrypts to a signed 64-bit message.
    ///
    /// Panics if the decoded value does not fit in `i64` (indicates the
    /// plaintext grew beyond the scaled-integer space — a parameter-scaling
    /// configuration error in PP-Stream terms).
    pub fn decrypt_i64(&self, c: &Ciphertext) -> i64 {
        self.try_decrypt_i64(c)
            .expect("decrypted value exceeds i64 message space")
    }

    /// Decrypts to a signed 128-bit message, for accumulations that
    /// overflow 64 bits before rescaling.
    pub fn decrypt_i128(&self, c: &Ciphertext) -> i128 {
        self.try_decrypt_i128(c)
            .expect("decrypted value exceeds i128 message space")
    }
}

/// Key size (bits of `n`) below which parallel CRT decryption is not
/// worth the hand-off: the two half exponentiations must each outweigh
/// a worker wake-up. Override with `PP_DECRYPT_PAR_MIN_BITS`.
fn decrypt_par_min_bits() -> usize {
    static V: OnceLock<usize> = OnceLock::new();
    *V.get_or_init(|| {
        std::env::var("PP_DECRYPT_PAR_MIN_BITS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1024)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_keypair(seed: u64) -> Keypair {
        let mut rng = StdRng::seed_from_u64(seed);
        Keypair::generate(128, &mut rng)
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let kp = small_keypair(1);
        for m in [0u64, 1, 42, 1_000_000, u32::MAX as u64] {
            let c = kp.public().encrypt(&BigUint::from(m), &mut rng);
            assert_eq!(kp.private().decrypt(&c).to_u64(), Some(m), "m={m}");
        }
    }

    #[test]
    fn crt_matches_direct_decryption() {
        let mut rng = StdRng::seed_from_u64(2);
        let kp = small_keypair(2);
        for m in [0u64, 7, 123_456_789] {
            let c = kp.public().encrypt(&BigUint::from(m), &mut rng);
            assert_eq!(kp.private().decrypt(&c), kp.private().decrypt_direct(&c));
        }
    }

    #[test]
    fn homomorphic_addition() {
        let mut rng = StdRng::seed_from_u64(3);
        let kp = small_keypair(3);
        let (pk, sk) = (kp.public(), kp.private());
        let c1 = pk.encrypt_i64(1234, &mut rng);
        let c2 = pk.encrypt_i64(-234, &mut rng);
        assert_eq!(sk.decrypt_i64(&pk.add(&c1, &c2)), 1000);
    }

    #[test]
    fn homomorphic_scalar_multiplication() {
        let mut rng = StdRng::seed_from_u64(4);
        let kp = small_keypair(4);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.encrypt_i64(37, &mut rng);
        assert_eq!(sk.decrypt_i64(&pk.mul_scalar_i64(&c, 100)), 3700);
        assert_eq!(sk.decrypt_i64(&pk.mul_scalar_i64(&c, -2)), -74);
        assert_eq!(sk.decrypt_i64(&pk.mul_scalar_i64(&c, 0)), 0);
    }

    #[test]
    fn linear_combination_matches_plaintext() {
        // The exact Eq. 3 shape: Σ wᵢmᵢ + b.
        let mut rng = StdRng::seed_from_u64(5);
        let kp = small_keypair(5);
        let (pk, sk) = (kp.public(), kp.private());
        let ms = [13i64, -7, 250, 0, -99];
        let ws = [2i64, -3, 10, 7, 1];
        let b = -5i64;
        let cts: Vec<_> = ms.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let mut acc = pk.encrypt_i64(b, &mut rng);
        for (c, &w) in cts.iter().zip(&ws) {
            acc = pk.add(&acc, &pk.mul_scalar_i64(c, w));
        }
        let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + b;
        assert_eq!(sk.decrypt_i64(&acc), want);
    }

    #[test]
    fn add_plain_constant() {
        let mut rng = StdRng::seed_from_u64(6);
        let kp = small_keypair(6);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.encrypt_i64(-50, &mut rng);
        assert_eq!(sk.decrypt_i64(&pk.add_plain_i64(&c, 92)), 42);
        assert_eq!(sk.decrypt_i64(&pk.add_plain_i64(&c, -1)), -51);
    }

    #[test]
    fn semantic_security_randomness() {
        // Two encryptions of the same message differ (probabilistic
        // encryption), yet decrypt identically.
        let mut rng = StdRng::seed_from_u64(7);
        let kp = small_keypair(7);
        let pk = kp.public();
        let c1 = pk.encrypt_i64(5, &mut rng);
        let c2 = pk.encrypt_i64(5, &mut rng);
        assert_ne!(c1.raw(), c2.raw());
        assert_eq!(kp.private().decrypt_i64(&c1), kp.private().decrypt_i64(&c2));
    }

    #[test]
    fn rerandomize_preserves_message() {
        let mut rng = StdRng::seed_from_u64(8);
        let kp = small_keypair(8);
        let pk = kp.public();
        let c = pk.encrypt_i64(777, &mut rng);
        let r = pk.rerandomize(&c, &mut rng);
        assert_ne!(c.raw(), r.raw());
        assert_eq!(kp.private().decrypt_i64(&r), 777);
    }

    #[test]
    fn validate_ciphertexts() {
        let mut rng = StdRng::seed_from_u64(9);
        let kp = small_keypair(9);
        let pk = kp.public();
        let c = pk.encrypt_i64(1, &mut rng);
        assert!(pk.validate(&c));
        assert!(!pk.validate(&Ciphertext::new(BigUint::zero())));
        assert!(!pk.validate(&Ciphertext::new(pk.n_squared().clone())));
    }

    #[test]
    fn parallel_crt_matches_sequential() {
        let mut rng = StdRng::seed_from_u64(40);
        let kp = small_keypair(40);
        let (pk, sk) = (kp.public(), kp.private());
        let workers = WorkerPool::new(2);
        for m in [0i64, 1, -1, 987_654_321, -123_456_789] {
            let c = pk.encrypt_i64(m, &mut rng);
            // Direct parallel body (128-bit keys sit below the gate).
            assert_eq!(sk.decrypt_crt_parallel_unchecked(&c, &workers), sk.decrypt(&c));
            // Gated entry falls back below the cutoff but stays correct.
            assert_eq!(sk.decrypt_crt_parallel(&c, &workers), sk.decrypt(&c));
        }
    }

    #[test]
    fn batch_decrypt_matches_individual() {
        let mut rng = StdRng::seed_from_u64(41);
        let kp = small_keypair(41);
        let (pk, sk) = (kp.public(), kp.private());
        let workers = WorkerPool::new(3);
        let ms = [5i64, -6, 0, i32::MAX as i64, -40_000];
        let cts: Vec<_> = ms.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let want: Vec<_> = cts.iter().map(|c| sk.decrypt(c)).collect();
        assert_eq!(sk.decrypt_batch_unchecked(&cts, &workers), want);
        assert_eq!(sk.decrypt_batch(&cts, &workers), want);
        assert!(sk.decrypt_batch(&[], &workers).is_empty());
        // Inline pool (size 0) takes the sequential path.
        assert_eq!(sk.decrypt_batch(&cts, &WorkerPool::inline()), want);
    }

    #[test]
    fn try_decrypt_reports_out_of_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let kp = small_keypair(42);
        let (pk, sk) = (kp.public(), kp.private());
        let c = pk.encrypt_i64(1234, &mut rng);
        assert_eq!(sk.try_decrypt_i64(&c).unwrap(), 1234);
        assert_eq!(sk.try_decrypt_i128(&c).unwrap(), 1234);
        // A plaintext near n/2 decodes outside i64: clean Err, no panic.
        let big = pk.half_n() - &BigUint::from(1u64);
        let c_big = pk.encrypt(&big, &mut rng);
        assert!(sk.try_decrypt_i64(&c_big).is_err());
        // i128 overflow needs a key wider than 129 bits (a 128-bit n
        // decodes entirely inside i128).
        let kp_wide = Keypair::generate(160, &mut rng);
        let (pkw, skw) = (kp_wide.public(), kp_wide.private());
        let big_w = pkw.half_n() - &BigUint::from(1u64);
        let c_big_w = pkw.encrypt(&big_w, &mut rng);
        assert!(skw.try_decrypt_i128(&c_big_w).is_err());
        // Batch form surfaces the same error.
        let workers = WorkerPool::new(2);
        let c_ok = pkw.encrypt_i64(1234, &mut rng);
        assert!(skw.try_decrypt_batch_i128(&[c_ok.clone(), c_big_w], &workers).is_err());
        assert_eq!(skw.try_decrypt_batch_i128(&[c_ok], &workers).unwrap(), vec![1234]);
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let kp1 = small_keypair(43);
        let kp2 = small_keypair(44);
        assert_eq!(kp1.public().fingerprint(), kp1.public().fingerprint());
        assert_ne!(kp1.public().fingerprint(), kp2.public().fingerprint());
    }

    #[test]
    fn keypair_bits() {
        let kp = small_keypair(10);
        assert_eq!(kp.public().bits(), 128);
    }

    #[test]
    fn encrypt_at_message_space_boundary() {
        // m = n − 1 maximizes g^m = 1 + m·n; since 1 + (n−1)·n < n²,
        // the reduction-free g_pow_encoded stays valid at the boundary.
        let mut rng = StdRng::seed_from_u64(11);
        let kp = small_keypair(11);
        let (pk, sk) = (kp.public(), kp.private());
        let m = pk.n() - &BigUint::one();
        assert!(pk.g_pow_encoded(&m) < *pk.n_squared());
        let c = pk.encrypt(&m, &mut rng);
        assert_eq!(sk.decrypt(&c), m);
        // The signed view of n − 1 is −1.
        assert_eq!(sk.decrypt_i64(&c), -1);
    }

    #[test]
    fn encrypt_with_precomputed_factor_matches_inline() {
        let mut rng = StdRng::seed_from_u64(12);
        let kp = small_keypair(12);
        let (pk, sk) = (kp.public(), kp.private());
        let r = pp_bigint::random_coprime(&mut rng, pk.n());
        let rn = pk.ctx().pow_mod(&r, pk.n());
        let via_factor = pk.encrypt_i64_with_factor(-1234, &rn);
        let inline = pk.encrypt_with_randomness(&encode_i64(-1234, pk.n()), &r);
        assert_eq!(via_factor.raw(), inline.raw());
        assert_eq!(sk.decrypt_i64(&via_factor), -1234);
    }
}
