//! Pre-computed encryption randomness.
//!
//! Paillier encryption cost is dominated by `r^n mod n²`, which is
//! independent of the message. A [`RandomnessPool`] computes a batch of
//! `r^n` factors ahead of time (e.g. while the pipeline is idle), turning
//! each online encryption into a single modular multiplication. This is a
//! standard PHE deployment optimization and one of the "optional
//! extensions" we implement beyond the paper's prototype.
//!
//! A drained pool never degrades *silently*: every fallback to inline
//! exponentiation bumps [`RandomnessPool::misses`], which the pipeline
//! surfaces through its run report so an undersized pool shows up in
//! telemetry instead of as a mystery latency cliff.

use crate::packing::{pack_values, PackedCiphertext, PackingSpec};
use crate::{Ciphertext, PaillierError, PublicKey};
use pp_bigint::{random_coprime, BigUint};
use pp_stream_runtime::pool::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// A pool of precomputed `r^n mod n²` factors for fast online encryption.
pub struct RandomnessPool {
    pk: PublicKey,
    factors: VecDeque<BigUint>,
    misses: u64,
}

impl RandomnessPool {
    /// Creates an empty pool for `pk`.
    pub fn new(pk: PublicKey) -> Self {
        RandomnessPool { pk, factors: VecDeque::new(), misses: 0 }
    }

    /// Precomputes `count` randomness factors.
    pub fn refill<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        for _ in 0..count {
            let r = random_coprime(rng, self.pk.n());
            let rn = self.pk.ctx().pow_mod(&r, self.pk.n());
            self.factors.push_back(rn);
        }
    }

    /// Precomputes `count` factors across a [`WorkerPool`], keeping the
    /// `r^n` exponentiations off the request path. Each worker chunk
    /// derives its own deterministic RNG from `seed` and its start
    /// index, so the refill is reproducible regardless of how the pool
    /// splits the range.
    pub fn refill_parallel(&mut self, count: usize, workers: &WorkerPool, seed: u64) {
        let pk = self.pk.clone();
        let factors = workers.map_ranges(count, move |range| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (range.start as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            range
                .map(|_| {
                    let r = random_coprime(&mut rng, pk.n());
                    pk.ctx().pow_mod(&r, pk.n())
                })
                .collect()
        });
        self.factors.extend(factors);
    }

    /// Number of factors currently available.
    pub fn available(&self) -> usize {
        self.factors.len()
    }

    /// Number of times an encryption found the pool empty and had to
    /// pay an inline `r^n` exponentiation on the request path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pops a precomputed `r^n` factor, recording a miss when drained.
    pub fn take_factor(&mut self) -> Option<BigUint> {
        let f = self.factors.pop_front();
        if f.is_none() {
            self.misses += 1;
        }
        f
    }

    /// Encrypts a signed message using a pooled factor; falls back to a
    /// fresh exponentiation when the pool is empty, counting the miss.
    pub fn encrypt_i64<R: Rng + ?Sized>(&mut self, m: i64, rng: &mut R) -> Ciphertext {
        match self.take_factor() {
            Some(rn) => self.pk.encrypt_i64_with_factor(m, &rn),
            None => self.pk.encrypt_i64(m, rng),
        }
    }

    /// Packs and encrypts a batch of values using a pooled factor,
    /// falling back (and counting the miss) when the pool is drained.
    /// Packing is validated *before* a factor is consumed, so a rejected
    /// batch neither spends nor miscounts pool state.
    pub fn encrypt_packed<R: Rng + ?Sized>(
        &mut self,
        spec: PackingSpec,
        values: &[i64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, PaillierError> {
        spec.check_key(&self.pk)?;
        let m = pack_values(&spec, values)?;
        match self.take_factor() {
            Some(rn) => {
                Ok(PackedCiphertext::from_plain_with_factor(&self.pk, spec, values.len(), &m, &rn))
            }
            None => PackedCiphertext::encrypt(&self.pk, spec, values, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pooled_encryption_decrypts_correctly() {
        let mut rng = StdRng::seed_from_u64(20);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(4, &mut rng);
        assert_eq!(pool.available(), 4);
        for m in [5i64, -17, 0, 123_456] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.misses(), 0);
        // Fallback path when drained is counted, not silent.
        let c = pool.encrypt_i64(-1, &mut rng);
        assert_eq!(kp.private().decrypt_i64(&c), -1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        let mut rng = StdRng::seed_from_u64(21);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(2, &mut rng);
        let c1 = pool.encrypt_i64(9, &mut rng);
        let c2 = pool.encrypt_i64(9, &mut rng);
        assert_ne!(c1.raw(), c2.raw());
    }

    #[test]
    fn parallel_refill_is_deterministic_and_valid() {
        let mut rng = StdRng::seed_from_u64(22);
        let kp = Keypair::generate(128, &mut rng);
        let workers = WorkerPool::new(4);

        let mut a = RandomnessPool::new(kp.public());
        a.refill_parallel(16, &workers, 0x5EED);
        let mut b = RandomnessPool::new(kp.public());
        b.refill_parallel(16, &workers, 0x5EED);
        assert_eq!(a.available(), 16);
        // Same seed → identical factor stream, independent of scheduling.
        let fa: Vec<_> = (0..16).map(|_| a.take_factor().unwrap()).collect();
        let fb: Vec<_> = (0..16).map(|_| b.take_factor().unwrap()).collect();
        assert_eq!(fa, fb);

        // Factors from the parallel path encrypt correctly.
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill_parallel(3, &workers, 99);
        for m in [7i64, -42, 0] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.misses(), 0);
    }

    #[test]
    fn packed_encrypts_draw_pooled_factors() {
        let mut rng = StdRng::seed_from_u64(24);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(2, &mut rng);

        let a = pool.encrypt_packed(spec, &[4, -4, 44], &mut rng).unwrap();
        assert_eq!(a.decrypt(&kp.private()).unwrap(), vec![4, -4, 44]);
        assert_eq!(pool.available(), 1, "a packed encrypt consumes exactly one factor");
        assert_eq!(pool.misses(), 0);

        // A rejected batch consumes nothing and records no miss.
        let too_big = spec.value_bound();
        assert!(pool.encrypt_packed(spec, &[too_big], &mut rng).is_err());
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.misses(), 0);

        // Draining the pool falls back inline and counts the miss.
        pool.encrypt_packed(spec, &[1], &mut rng).unwrap();
        let b = pool.encrypt_packed(spec, &[2, 3], &mut rng).unwrap();
        assert_eq!(b.decrypt(&kp.private()).unwrap(), vec![2, 3]);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn pooled_packed_matches_factor_encryption() {
        // The pooled path must produce exactly encrypt_with_factor's
        // ciphertext for the factor at the head of the pool.
        let mut rng = StdRng::seed_from_u64(25);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(1, &mut rng);
        let rn = pool.factors.front().unwrap().clone();
        let via_pool = pool.encrypt_packed(spec, &[7, -8], &mut rng).unwrap();
        let direct =
            PackedCiphertext::encrypt_with_factor(&kp.public(), spec, &[7, -8], &rn).unwrap();
        assert_eq!(via_pool.ct.raw(), direct.ct.raw());
    }

    #[test]
    fn take_factor_counts_misses() {
        let mut rng = StdRng::seed_from_u64(23);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        assert!(pool.take_factor().is_none());
        assert!(pool.take_factor().is_none());
        assert_eq!(pool.misses(), 2);
        pool.refill(1, &mut rng);
        assert!(pool.take_factor().is_some());
        assert_eq!(pool.misses(), 2);
    }
}
