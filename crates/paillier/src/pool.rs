//! Pre-computed encryption randomness.
//!
//! Paillier encryption cost is dominated by `r^n mod n²`, which is
//! independent of the message. A [`RandomnessPool`] computes a batch of
//! `r^n` factors ahead of time (e.g. while the pipeline is idle), turning
//! each online encryption into a single modular multiplication. This is a
//! standard PHE deployment optimization and one of the "optional
//! extensions" we implement beyond the paper's prototype.
//!
//! A drained pool never degrades *silently*: every fallback to inline
//! exponentiation bumps [`RandomnessPool::misses`], which the pipeline
//! surfaces through its run report so an undersized pool shows up in
//! telemetry instead of as a mystery latency cliff.

use crate::packing::{pack_values, PackedCiphertext, PackingSpec};
use crate::{Ciphertext, PaillierError, PublicKey};
use pp_bigint::{random_bits, random_coprime, BigUint, FixedBaseTable};
use pp_stream_runtime::pool::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Bits of the short exponent `a` in the fixed-base refill `h^a`.
/// 128 bits of exponent entropy at minimum (the usual short-exponent
/// indistinguishability margin), growing with the key so bigger keys
/// keep a proportional margin — 256 bits at the paper's 2048-bit keys.
pub(crate) fn short_exp_bits(key_bits: usize) -> usize {
    (key_bits / 8).max(128).min(key_bits)
}

/// Samples a short exponent with its top bit pinned (exact bit length,
/// never zero) so every factor walks the same number of table windows.
fn sample_exponent<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    random_bits(rng, bits)
}

/// Per-key fixed-base refill state: one full-width `h = x^n mod n²`
/// exponentiation plus a comb table over `h`, after which every pool
/// factor is a short fixed-base walk `h^a = (x^a)^n` instead of a
/// full-width `pow_mod`.
///
/// `x` is derived deterministically from the key — the base (like a
/// group generator) carries no secret; the blinding entropy lives
/// entirely in the per-factor exponent `a`. Determinism keeps the
/// factor stream a pure function of `(key, seed, seq)`, which
/// exactly-once replay depends on.
pub struct RefillBase {
    fingerprint: u64,
    exp_bits: usize,
    h: BigUint,
    table: FixedBaseTable,
}

impl RefillBase {
    /// Builds the per-key state: one `pow_mod` for `h` plus the comb
    /// table. Costs on the order of a few hundred Montgomery multiplies
    /// — amortized away after a handful of factors, and shared across
    /// sessions via [`RefillCache`].
    pub fn for_key(pk: &PublicKey) -> Self {
        let fingerprint = pk.fingerprint();
        let mut rng = StdRng::seed_from_u64(fingerprint ^ 0x5F1D_BA5E_0000_0001);
        let x = random_coprime(&mut rng, pk.n());
        let h = pk.ctx().pow_mod(&x, pk.n());
        let exp_bits = short_exp_bits(pk.bits());
        let table = pk.ctx().fixed_base_table(&h, exp_bits);
        RefillBase { fingerprint, exp_bits, h, table }
    }

    /// Fingerprint of the key this state belongs to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Bit length of the short exponents drawn per factor.
    pub fn exp_bits(&self) -> usize {
        self.exp_bits
    }

    /// The precomputed base `h = x^n mod n²`.
    pub fn h(&self) -> &BigUint {
        &self.h
    }

    /// Approximate table footprint in bytes.
    pub fn table_bytes(&self) -> usize {
        self.table.bytes()
    }

    /// One blinding factor `h^a mod n²` for a given short exponent.
    pub fn factor_for(&self, pk: &PublicKey, a: &BigUint) -> BigUint {
        pk.ctx().pow_fixed_base(&self.table, a)
    }

    /// Draws a fresh short exponent from `rng` and returns its factor.
    pub fn sample_factor<R: Rng + ?Sized>(&self, pk: &PublicKey, rng: &mut R) -> BigUint {
        let a = sample_exponent(rng, self.exp_bits);
        self.factor_for(pk, &a)
    }
}

/// Process-wide LRU cache of [`RefillBase`] tables keyed by key
/// fingerprint, so multi-tenant servers build each key's table once
/// instead of once per session. Bounded: evicting beyond `cap` tenants
/// drops the least-recently-used table (it rebuilds on next use).
pub struct RefillCache {
    cap: usize,
    entries: Mutex<VecDeque<(u64, Arc<RefillBase>)>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl RefillCache {
    /// Creates a cache holding at most `cap` per-key tables.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "refill cache needs capacity");
        RefillCache {
            cap,
            entries: Mutex::new(VecDeque::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The table for `pk`, building (and caching) it on first use.
    pub fn get(&self, pk: &PublicKey) -> Arc<RefillBase> {
        let fp = pk.fingerprint();
        {
            let mut entries = self.entries.lock().expect("refill cache poisoned");
            if let Some(pos) = entries.iter().position(|(k, _)| *k == fp) {
                let entry = entries.remove(pos).expect("position is valid");
                let base = entry.1.clone();
                entries.push_front(entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return base;
            }
        }
        // Build outside the lock: a 2048-bit table costs real time and
        // must not block other tenants' lookups. Two racing builders
        // produce identical state (the derivation is deterministic), so
        // whichever inserts second simply reuses the first's entry.
        let built = Arc::new(RefillBase::for_key(pk));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.entries.lock().expect("refill cache poisoned");
        if let Some(pos) = entries.iter().position(|(k, _)| *k == fp) {
            let entry = entries.remove(pos).expect("position is valid");
            let base = entry.1.clone();
            entries.push_front(entry);
            return base;
        }
        entries.push_front((fp, built.clone()));
        entries.truncate(self.cap);
        built
    }

    /// Number of cached per-key tables.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("refill cache poisoned").len()
    }

    /// True when no table is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build a table.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// The process-global refill cache shared by every session. Capacity
/// defaults to 16 tenants; `PP_REFILL_CACHE_CAP` overrides.
pub fn shared_refill_cache() -> &'static RefillCache {
    static CACHE: OnceLock<RefillCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let cap = std::env::var("PP_REFILL_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(16);
        RefillCache::new(cap)
    })
}

/// A pool of precomputed `r^n mod n²` factors for fast online encryption.
pub struct RandomnessPool {
    pk: PublicKey,
    base: Option<Arc<RefillBase>>,
    factors: VecDeque<BigUint>,
    misses: u64,
}

impl RandomnessPool {
    /// Creates an empty pool for `pk`. The per-key fixed-base table is
    /// fetched from the shared [`RefillCache`] on first refill.
    pub fn new(pk: PublicKey) -> Self {
        RandomnessPool { pk, base: None, factors: VecDeque::new(), misses: 0 }
    }

    /// Creates an empty pool with an explicit per-key table — for
    /// callers that manage their own cache (or pre-warmed handshakes).
    pub fn with_base(pk: PublicKey, base: Arc<RefillBase>) -> Self {
        debug_assert_eq!(base.fingerprint(), pk.fingerprint(), "table belongs to another key");
        RandomnessPool { pk, base: Some(base), factors: VecDeque::new(), misses: 0 }
    }

    /// The per-key fixed-base state, resolving through the shared cache
    /// on first use.
    pub fn base(&mut self) -> &Arc<RefillBase> {
        if self.base.is_none() {
            self.base = Some(shared_refill_cache().get(&self.pk));
        }
        self.base.as_ref().expect("just initialized")
    }

    /// Precomputes `count` randomness factors via the fixed-base walk.
    pub fn refill<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        let base = self.base().clone();
        for _ in 0..count {
            let f = base.sample_factor(&self.pk, rng);
            self.factors.push_back(f);
        }
    }

    /// Precomputes `count` factors the pre-fixed-base way: a fresh
    /// `r ∈ Z*_n` and a full-width `pow_mod` per factor. Kept as the
    /// reference implementation the benches race against and the
    /// conservative fallback for callers that refuse the
    /// short-exponent assumption.
    pub fn refill_pow_mod<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        for _ in 0..count {
            let r = random_coprime(rng, self.pk.n());
            let rn = self.pk.ctx().pow_mod(&r, self.pk.n());
            self.factors.push_back(rn);
        }
    }

    /// Precomputes `count` factors across a [`WorkerPool`], keeping the
    /// exponentiations off the request path. Each worker chunk derives
    /// its own deterministic RNG from `seed` and its start index, so
    /// the refill is reproducible regardless of how the pool splits the
    /// range.
    pub fn refill_parallel(&mut self, count: usize, workers: &WorkerPool, seed: u64) {
        let base = self.base().clone();
        let pk = self.pk.clone();
        let factors = workers.map_ranges(count, move |range| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (range.start as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
            range.map(|_| base.sample_factor(&pk, &mut rng)).collect()
        });
        self.factors.extend(factors);
    }

    /// Number of factors currently available.
    pub fn available(&self) -> usize {
        self.factors.len()
    }

    /// Number of times an encryption found the pool empty and had to
    /// pay an inline `r^n` exponentiation on the request path.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pops a precomputed `r^n` factor, recording a miss when drained.
    pub fn take_factor(&mut self) -> Option<BigUint> {
        let f = self.factors.pop_front();
        if f.is_none() {
            self.misses += 1;
        }
        f
    }

    /// Encrypts a signed message using a pooled factor; falls back to a
    /// fresh exponentiation when the pool is empty, counting the miss.
    pub fn encrypt_i64<R: Rng + ?Sized>(&mut self, m: i64, rng: &mut R) -> Ciphertext {
        match self.take_factor() {
            Some(rn) => self.pk.encrypt_i64_with_factor(m, &rn),
            None => self.pk.encrypt_i64(m, rng),
        }
    }

    /// Packs and encrypts a batch of values using a pooled factor,
    /// falling back (and counting the miss) when the pool is drained.
    /// Packing is validated *before* a factor is consumed, so a rejected
    /// batch neither spends nor miscounts pool state.
    pub fn encrypt_packed<R: Rng + ?Sized>(
        &mut self,
        spec: PackingSpec,
        values: &[i64],
        rng: &mut R,
    ) -> Result<PackedCiphertext, PaillierError> {
        spec.check_key(&self.pk)?;
        let m = pack_values(&spec, values)?;
        match self.take_factor() {
            Some(rn) => {
                Ok(PackedCiphertext::from_plain_with_factor(&self.pk, spec, values.len(), &m, &rn))
            }
            None => PackedCiphertext::encrypt(&self.pk, spec, values, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pooled_encryption_decrypts_correctly() {
        let mut rng = StdRng::seed_from_u64(20);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(4, &mut rng);
        assert_eq!(pool.available(), 4);
        for m in [5i64, -17, 0, 123_456] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.available(), 0);
        assert_eq!(pool.misses(), 0);
        // Fallback path when drained is counted, not silent.
        let c = pool.encrypt_i64(-1, &mut rng);
        assert_eq!(kp.private().decrypt_i64(&c), -1);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        let mut rng = StdRng::seed_from_u64(21);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(2, &mut rng);
        let c1 = pool.encrypt_i64(9, &mut rng);
        let c2 = pool.encrypt_i64(9, &mut rng);
        assert_ne!(c1.raw(), c2.raw());
    }

    #[test]
    fn parallel_refill_is_deterministic_and_valid() {
        let mut rng = StdRng::seed_from_u64(22);
        let kp = Keypair::generate(128, &mut rng);
        let workers = WorkerPool::new(4);

        let mut a = RandomnessPool::new(kp.public());
        a.refill_parallel(16, &workers, 0x5EED);
        let mut b = RandomnessPool::new(kp.public());
        b.refill_parallel(16, &workers, 0x5EED);
        assert_eq!(a.available(), 16);
        // Same seed → identical factor stream, independent of scheduling.
        let fa: Vec<_> = (0..16).map(|_| a.take_factor().unwrap()).collect();
        let fb: Vec<_> = (0..16).map(|_| b.take_factor().unwrap()).collect();
        assert_eq!(fa, fb);

        // Factors from the parallel path encrypt correctly.
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill_parallel(3, &workers, 99);
        for m in [7i64, -42, 0] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.misses(), 0);
    }

    #[test]
    fn packed_encrypts_draw_pooled_factors() {
        let mut rng = StdRng::seed_from_u64(24);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(2, &mut rng);

        let a = pool.encrypt_packed(spec, &[4, -4, 44], &mut rng).unwrap();
        assert_eq!(a.decrypt(&kp.private()).unwrap(), vec![4, -4, 44]);
        assert_eq!(pool.available(), 1, "a packed encrypt consumes exactly one factor");
        assert_eq!(pool.misses(), 0);

        // A rejected batch consumes nothing and records no miss.
        let too_big = spec.value_bound();
        assert!(pool.encrypt_packed(spec, &[too_big], &mut rng).is_err());
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.misses(), 0);

        // Draining the pool falls back inline and counts the miss.
        pool.encrypt_packed(spec, &[1], &mut rng).unwrap();
        let b = pool.encrypt_packed(spec, &[2, 3], &mut rng).unwrap();
        assert_eq!(b.decrypt(&kp.private()).unwrap(), vec![2, 3]);
        assert_eq!(pool.misses(), 1);
    }

    #[test]
    fn pooled_packed_matches_factor_encryption() {
        // The pooled path must produce exactly encrypt_with_factor's
        // ciphertext for the factor at the head of the pool.
        let mut rng = StdRng::seed_from_u64(25);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap();
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(1, &mut rng);
        let rn = pool.factors.front().unwrap().clone();
        let via_pool = pool.encrypt_packed(spec, &[7, -8], &mut rng).unwrap();
        let direct =
            PackedCiphertext::encrypt_with_factor(&kp.public(), spec, &[7, -8], &rn).unwrap();
        assert_eq!(via_pool.ct.raw(), direct.ct.raw());
    }

    #[test]
    fn fixed_base_factor_is_bit_identical_to_pow_mod() {
        // The comb walk must produce exactly pow_mod's h^a — same bits,
        // not just the same residue class.
        let mut rng = StdRng::seed_from_u64(26);
        let kp = Keypair::generate(256, &mut rng);
        let pk = kp.public();
        let base = RefillBase::for_key(&pk);
        for bits in [1usize, 17, 64, base.exp_bits()] {
            let a = pp_bigint::random_bits(&mut rng, bits);
            assert_eq!(
                base.factor_for(&pk, &a),
                pk.ctx().pow_mod(base.h(), &a),
                "bits={bits}"
            );
        }
    }

    #[test]
    fn fixed_base_factors_are_valid_blinding() {
        // h^a is a valid r^n with r = x^a: pooled encryptions decrypt.
        let mut rng = StdRng::seed_from_u64(27);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(6, &mut rng);
        for m in [0i64, 1, -1, 123_456, -98_765, i32::MAX as i64] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.misses(), 0);
        // Distinct exponents → distinct factors.
        pool.refill(2, &mut rng);
        let f1 = pool.take_factor().unwrap();
        let f2 = pool.take_factor().unwrap();
        assert_ne!(f1, f2);
    }

    #[test]
    fn refill_base_is_deterministic_per_key() {
        let mut rng = StdRng::seed_from_u64(28);
        let kp = Keypair::generate(128, &mut rng);
        let a = RefillBase::for_key(&kp.public());
        let b = RefillBase::for_key(&kp.public());
        assert_eq!(a.h(), b.h());
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.exp_bits(), b.exp_bits());
        assert!(a.table_bytes() > 0);
    }

    #[test]
    fn refill_cache_is_lru_bounded() {
        let mut rng = StdRng::seed_from_u64(29);
        let cache = RefillCache::new(2);
        let kps: Vec<_> = (0..3).map(|_| Keypair::generate(64, &mut rng)).collect();

        let b0 = cache.get(&kps[0].public());
        let _b1 = cache.get(&kps[1].public());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
        // Hit refreshes recency.
        let b0_again = cache.get(&kps[0].public());
        assert!(Arc::ptr_eq(&b0, &b0_again));
        assert_eq!(cache.hits(), 1);
        // Third key evicts the LRU entry (key 1).
        cache.get(&kps[2].public());
        assert_eq!(cache.len(), 2);
        cache.get(&kps[1].public());
        assert_eq!(cache.misses(), 4, "evicted entry rebuilds");
    }

    #[test]
    fn with_base_shares_one_table() {
        let mut rng = StdRng::seed_from_u64(30);
        let kp = Keypair::generate(128, &mut rng);
        let base = Arc::new(RefillBase::for_key(&kp.public()));
        let mut p1 = RandomnessPool::with_base(kp.public(), base.clone());
        let mut p2 = RandomnessPool::with_base(kp.public(), base.clone());
        assert!(Arc::ptr_eq(p1.base(), p2.base()));
        p1.refill(1, &mut rng);
        let c = p1.encrypt_i64(7, &mut rng);
        assert_eq!(kp.private().decrypt_i64(&c), 7);
    }

    #[test]
    fn refill_pow_mod_still_produces_valid_factors() {
        let mut rng = StdRng::seed_from_u64(31);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill_pow_mod(2, &mut rng);
        for m in [42i64, -42] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
    }

    #[test]
    fn take_factor_counts_misses() {
        let mut rng = StdRng::seed_from_u64(23);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        assert!(pool.take_factor().is_none());
        assert!(pool.take_factor().is_none());
        assert_eq!(pool.misses(), 2);
        pool.refill(1, &mut rng);
        assert!(pool.take_factor().is_some());
        assert_eq!(pool.misses(), 2);
    }
}
