//! Pre-computed encryption randomness.
//!
//! Paillier encryption cost is dominated by `r^n mod n²`, which is
//! independent of the message. A [`RandomnessPool`] computes a batch of
//! `r^n` factors ahead of time (e.g. while the pipeline is idle), turning
//! each online encryption into a single modular multiplication. This is a
//! standard PHE deployment optimization and one of the "optional
//! extensions" we implement beyond the paper's prototype.

use crate::{Ciphertext, PublicKey};
use pp_bigint::{random_coprime, BigUint};
use rand::Rng;
use std::collections::VecDeque;

/// A pool of precomputed `r^n mod n²` factors for fast online encryption.
pub struct RandomnessPool {
    pk: PublicKey,
    factors: VecDeque<BigUint>,
}

impl RandomnessPool {
    /// Creates an empty pool for `pk`.
    pub fn new(pk: PublicKey) -> Self {
        RandomnessPool { pk, factors: VecDeque::new() }
    }

    /// Precomputes `count` randomness factors.
    pub fn refill<R: Rng + ?Sized>(&mut self, count: usize, rng: &mut R) {
        for _ in 0..count {
            let r = random_coprime(rng, self.pk.n());
            let rn = self.pk.ctx().pow_mod(&r, self.pk.n());
            self.factors.push_back(rn);
        }
    }

    /// Number of factors currently available.
    pub fn available(&self) -> usize {
        self.factors.len()
    }

    /// Encrypts a signed message using a pooled factor; falls back to a
    /// fresh exponentiation when the pool is empty.
    pub fn encrypt_i64<R: Rng + ?Sized>(&mut self, m: i64, rng: &mut R) -> Ciphertext {
        match self.factors.pop_front() {
            Some(rn) => {
                let encoded = crate::encoding::encode_i64(m, self.pk.n());
                let gm = (&BigUint::one() + &encoded.mul_ref(self.pk.n()))
                    .rem_ref(self.pk.n_squared())
                    .expect("n² non-zero");
                Ciphertext::new(self.pk.ctx().mul_mod(&gm, &rn))
            }
            None => self.pk.encrypt_i64(m, rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pooled_encryption_decrypts_correctly() {
        let mut rng = StdRng::seed_from_u64(20);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(4, &mut rng);
        assert_eq!(pool.available(), 4);
        for m in [5i64, -17, 0, 123_456] {
            let c = pool.encrypt_i64(m, &mut rng);
            assert_eq!(kp.private().decrypt_i64(&c), m);
        }
        assert_eq!(pool.available(), 0);
        // Fallback path when drained.
        let c = pool.encrypt_i64(-1, &mut rng);
        assert_eq!(kp.private().decrypt_i64(&c), -1);
    }

    #[test]
    fn pooled_ciphertexts_are_distinct() {
        let mut rng = StdRng::seed_from_u64(21);
        let kp = Keypair::generate(128, &mut rng);
        let mut pool = RandomnessPool::new(kp.public());
        pool.refill(2, &mut rng);
        let c1 = pool.encrypt_i64(9, &mut rng);
        let c2 = pool.encrypt_i64(9, &mut rng);
        assert_ne!(c1.raw(), c2.raw());
    }
}
