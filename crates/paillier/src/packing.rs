//! Ciphertext packing: batching many small values into one Paillier
//! plaintext (the BatchCrypt technique — the paper's reference [66]).
//!
//! A 2048-bit plaintext has room for dozens of 32-bit activations; packing
//! them into slots makes one encryption/decryption/transfer carry a whole
//! sub-tensor. Homomorphic slot-wise **addition** and **uniform scalar
//! multiplication** work directly on the packed ciphertext:
//!
//! ```text
//!   pack(v) = Σᵢ enc(vᵢ) · 2^(i·s)
//!   pack(v) + pack(w)  →  slot-wise vᵢ + wᵢ
//!   pack(v) · k        →  slot-wise vᵢ · k      (k ≥ 0, uniform)
//! ```
//!
//! Per-slot *distinct* weights do not distribute over slots, so packing
//! accelerates transport, bias addition, and uniform scaling — not
//! general matrix products.
//!
//! ## Slot arithmetic and the operation budget
//!
//! Values are offset-encoded (`v + 2·B` for bound `|v| < B`) so slot
//! contents stay positive, and every homomorphic operation grows the
//! content. A slot must never spill into its neighbour, so each spec
//! carries an **operation budget** `W`: the total `Σ adds·scale` weight a
//! ciphertext may accumulate. The value bound is sized as
//! `B = 2^(s-2-⌈log₂W⌉)`, which guarantees `content ≤ 3·W·B < 2^s`.
//! [`PackedCiphertext::add`] and [`PackedCiphertext::mul_uniform`] enforce
//! the budget and fail rather than silently corrupt slots.

use crate::{Ciphertext, PaillierError, PrivateKey, PublicKey};
use pp_bigint::BigUint;
use rand::Rng;

/// Layout and operation budget of a packed ciphertext.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackingSpec {
    /// Bits per slot (including offset/guard headroom). 32 is a good
    /// default for PP-Stream's scaled activations.
    pub slot_bits: usize,
    /// Number of slots per ciphertext.
    pub slots: usize,
    /// Maximum accumulated `adds · scale` weight (see module docs).
    pub op_budget: u64,
}

impl PackingSpec {
    /// Largest spec with `slot_bits`-wide slots that fits the key's
    /// plaintext space, with a default operation budget of 16.
    pub fn for_key(pk: &PublicKey, slot_bits: usize) -> Self {
        let usable = pk.bits().saturating_sub(2);
        PackingSpec { slot_bits, slots: (usable / slot_bits).max(1), op_budget: 16 }
    }

    /// Adjusts the operation budget (shrinks the per-value bound).
    pub fn with_budget(mut self, op_budget: u64) -> Self {
        self.op_budget = op_budget.max(1);
        self
    }

    fn budget_bits(&self) -> u32 {
        64 - (self.op_budget.max(1) - 1).leading_zeros().min(63)
    }

    /// Magnitude bound for a slot value: `|v| < 2^(s - 2 - ⌈log₂W⌉)`.
    pub fn value_bound(&self) -> i64 {
        let shift = self.slot_bits.saturating_sub(2 + self.budget_bits() as usize);
        1i64 << shift.clamp(1, 62)
    }

    fn offset(&self) -> u64 {
        2 * self.value_bound() as u64
    }
}

/// A ciphertext holding `spec.slots` packed values, with the bookkeeping
/// needed to strip offsets at decode time.
#[derive(Clone, Debug)]
pub struct PackedCiphertext {
    pub ct: Ciphertext,
    pub spec: PackingSpec,
    /// How many packed ciphertexts were summed into this one.
    adds: u64,
    /// Uniform scalar applied.
    scale: u64,
    /// How many of the slots actually carry values.
    used: usize,
}

impl PackedCiphertext {
    /// Packs and encrypts up to `spec.slots` values, each `|v| <
    /// spec.value_bound()`.
    pub fn encrypt<R: Rng + ?Sized>(
        pk: &PublicKey,
        spec: PackingSpec,
        values: &[i64],
        rng: &mut R,
    ) -> Result<Self, PaillierError> {
        if values.len() > spec.slots {
            return Err(PaillierError::MessageOutOfRange);
        }
        let bound = spec.value_bound();
        let mut m = BigUint::zero();
        // Highest slot first: m = ((v_{k-1}) << s | … ) | v_0.
        for &v in values.iter().rev() {
            if v.abs() >= bound {
                return Err(PaillierError::MessageOutOfRange);
            }
            let encoded = (v + spec.offset() as i64) as u64;
            m = m.shl_bits(spec.slot_bits);
            m = &m + &BigUint::from(encoded);
        }
        Ok(PackedCiphertext {
            ct: pk.encrypt(&m, rng),
            spec,
            adds: 1,
            scale: 1,
            used: values.len(),
        })
    }

    /// Accumulated operation weight (`adds · scale`).
    pub fn weight(&self) -> u64 {
        self.adds.saturating_mul(self.scale)
    }

    /// Slot-wise homomorphic addition. Both operands must share the spec
    /// and uniform scale; fails if the operation budget would be exceeded.
    pub fn add(&self, pk: &PublicKey, other: &Self) -> Result<Self, PaillierError> {
        if self.spec != other.spec || self.scale != other.scale {
            return Err(PaillierError::MessageOutOfRange);
        }
        let out = PackedCiphertext {
            ct: pk.add(&self.ct, &other.ct),
            spec: self.spec,
            adds: self.adds + other.adds,
            scale: self.scale,
            used: self.used.max(other.used),
        };
        if out.weight() > self.spec.op_budget {
            return Err(PaillierError::MessageOutOfRange);
        }
        Ok(out)
    }

    /// Uniform positive scalar multiplication across all slots; fails if
    /// the operation budget would be exceeded.
    pub fn mul_uniform(&self, pk: &PublicKey, k: u64) -> Result<Self, PaillierError> {
        if k == 0 {
            return Err(PaillierError::MessageOutOfRange);
        }
        let out = PackedCiphertext {
            ct: pk.mul_scalar(&self.ct, &BigUint::from(k)),
            spec: self.spec,
            adds: self.adds,
            scale: self.scale * k,
            used: self.used,
        };
        if out.weight() > self.spec.op_budget {
            return Err(PaillierError::MessageOutOfRange);
        }
        Ok(out)
    }

    /// Decrypts and unpacks: slot `i` yields `scale · Σ vᵢ` over every
    /// ciphertext summed in.
    pub fn decrypt(&self, sk: &PrivateKey) -> Result<Vec<i64>, PaillierError> {
        let m = sk.decrypt(&self.ct);
        let offset_total =
            self.adds as i128 * self.scale as i128 * self.spec.offset() as i128;
        let mut out = Vec::with_capacity(self.used);
        let mut rest = m;
        for _ in 0..self.used {
            // The budget guarantees slot contents never spill, so the low
            // `slot_bits` are exactly this slot.
            let slot = rest.low_bits(self.spec.slot_bits);
            let raw = slot.to_u128().ok_or(PaillierError::MessageOutOfRange)? as i128;
            let v = raw - offset_total;
            out.push(i64::try_from(v).map_err(|_| PaillierError::MessageOutOfRange)?);
            rest = rest.shr_bits(self.spec.slot_bits);
        }
        Ok(out)
    }

    /// Number of meaningful slots.
    pub fn used(&self) -> usize {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(budget: u64) -> (Keypair, PackingSpec, StdRng) {
        let mut rng = StdRng::seed_from_u64(80);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).with_budget(budget);
        (kp, spec, rng)
    }

    #[test]
    fn spec_capacity_and_bounds() {
        let (_, spec, _) = setup(16);
        assert!(spec.slots >= 5, "slots = {}", spec.slots);
        // s=32, W=16 → bound 2^(32-2-4) = 2^26.
        assert_eq!(spec.value_bound(), 1 << 26);
        let tight = spec.with_budget(1024);
        assert_eq!(tight.value_bound(), 1 << 20);
    }

    #[test]
    fn pack_roundtrip() {
        let (kp, spec, mut rng) = setup(16);
        let values = vec![0i64, 1, -1, 123_456, -654_321];
        let packed = PackedCiphertext::encrypt(&kp.public(), spec, &values, &mut rng).unwrap();
        assert_eq!(packed.decrypt(&kp.private()).unwrap(), values);
    }

    #[test]
    fn packed_addition_is_slotwise() {
        let (kp, spec, mut rng) = setup(16);
        let a = vec![10i64, -20, 30];
        let b = vec![1i64, 2, -3];
        let pa = PackedCiphertext::encrypt(&kp.public(), spec, &a, &mut rng).unwrap();
        let pb = PackedCiphertext::encrypt(&kp.public(), spec, &b, &mut rng).unwrap();
        let sum = pa.add(&kp.public(), &pb).unwrap();
        assert_eq!(sum.decrypt(&kp.private()).unwrap(), vec![11, -18, 27]);
    }

    #[test]
    fn packed_uniform_scaling() {
        let (kp, spec, mut rng) = setup(1024);
        let v = vec![5i64, -7, 0, 100];
        let p = PackedCiphertext::encrypt(&kp.public(), spec, &v, &mut rng).unwrap();
        let scaled = p.mul_uniform(&kp.public(), 1000).unwrap();
        assert_eq!(scaled.decrypt(&kp.private()).unwrap(), vec![5000, -7000, 0, 100_000]);
    }

    #[test]
    fn add_then_scale_composes() {
        let (kp, spec, mut rng) = setup(16);
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[3, -4], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), spec, &[10, 20], &mut rng).unwrap();
        let r = a
            .add(&kp.public(), &b)
            .unwrap()
            .mul_uniform(&kp.public(), 7)
            .unwrap();
        assert_eq!(r.decrypt(&kp.private()).unwrap(), vec![91, 112]);
    }

    #[test]
    fn many_additions_within_budget() {
        let (kp, spec, mut rng) = setup(16);
        let mut acc = PackedCiphertext::encrypt(&kp.public(), spec, &[1, -1], &mut rng).unwrap();
        for i in 2..=10i64 {
            let next =
                PackedCiphertext::encrypt(&kp.public(), spec, &[i, -i], &mut rng).unwrap();
            acc = acc.add(&kp.public(), &next).unwrap();
        }
        // Σ 1..10 = 55.
        assert_eq!(acc.decrypt(&kp.private()).unwrap(), vec![55, -55]);
    }

    #[test]
    fn budget_enforced() {
        let (kp, spec, mut rng) = setup(2);
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[1], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), spec, &[2], &mut rng).unwrap();
        let sum = a.add(&kp.public(), &b).unwrap(); // weight 2 == budget
        let c = PackedCiphertext::encrypt(&kp.public(), spec, &[3], &mut rng).unwrap();
        assert!(sum.add(&kp.public(), &c).is_err(), "third add exceeds the budget");
        assert!(a.mul_uniform(&kp.public(), 3).is_err(), "scale 3 exceeds the budget");
    }

    #[test]
    fn out_of_range_rejected() {
        let (kp, spec, mut rng) = setup(16);
        let too_big = spec.value_bound();
        assert!(PackedCiphertext::encrypt(&kp.public(), spec, &[too_big], &mut rng).is_err());
        let too_many = vec![1i64; spec.slots + 1];
        assert!(PackedCiphertext::encrypt(&kp.public(), spec, &too_many, &mut rng).is_err());
    }

    #[test]
    fn mismatched_specs_rejected() {
        let (kp, spec, mut rng) = setup(16);
        let other_spec = PackingSpec { slot_bits: 16, slots: 4, op_budget: 16 };
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[1], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), other_spec, &[1], &mut rng).unwrap();
        assert!(a.add(&kp.public(), &b).is_err());
    }

    #[test]
    fn packing_saves_ciphertexts() {
        // The point of the exercise: one ciphertext instead of `slots`.
        let (kp, spec, mut rng) = setup(16);
        let values: Vec<i64> = (0..spec.slots as i64).collect();
        let packed = PackedCiphertext::encrypt(&kp.public(), spec, &values, &mut rng).unwrap();
        let packed_bytes = packed.ct.to_bytes().len();
        let individual_bytes: usize = values
            .iter()
            .map(|&v| kp.public().encrypt_i64(v, &mut rng).to_bytes().len())
            .sum();
        assert!(
            packed_bytes * 2 < individual_bytes,
            "packed {packed_bytes} vs individual {individual_bytes}"
        );
    }
}
