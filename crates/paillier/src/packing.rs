//! Ciphertext packing: batching many small values into one Paillier
//! plaintext (the BatchCrypt technique — the paper's reference [66]).
//!
//! A 2048-bit plaintext has room for dozens of 32-bit activations; packing
//! them into slots makes one encryption/decryption/transfer carry a whole
//! sub-tensor. Homomorphic slot-wise **addition** and **uniform scalar
//! multiplication** work directly on the packed ciphertext:
//!
//! ```text
//!   pack(v) = Σⱼ enc(vⱼ) · 2^(j·s)
//!   pack(v) + pack(w)  →  slot-wise vⱼ + wⱼ
//!   pack(v) · k        →  slot-wise vⱼ · k      (uniform k)
//! ```
//!
//! Per-slot *distinct* weights do not distribute over slots — but a dot
//! product whose **batch dimension lives in the slots** applies each
//! weight uniformly across slots. [`PackedMontInputs::dot_i64`] exploits
//! this: slot `j` of input ciphertext `i` holds activation `i` of request
//! `j`, so one Straus multi-exponentiation (the same kernel as
//! [`crate::MontInputs`]) evaluates the whole batch's `Σᵢ wᵢ·xᵢ + b` at
//! once, negative weights folded into a single inversion.
//!
//! ## Slot arithmetic, offsets, and the operation budget
//!
//! Values are offset-encoded so slot contents stay non-negative. Every
//! packed ciphertext carries a **weight** `w`: the invariant is
//!
//! ```text
//!   slot content = v + w·2B,   |v| ≤ w·(B−1),   w ≤ W (the op budget)
//! ```
//!
//! A fresh encryption has `w = 1`; addition sums weights; uniform
//! multiplication by `k` scales the weight by `k`; signed/negative
//! operations re-center by multiplying in `g^{δ·ones}` (a plaintext
//! constant added to every active slot) so contents never wrap. The value
//! bound is sized as `B = 2^(s−2−⌈log₂W⌉)`, which guarantees
//! `content < 3·W·B ≤ 2^s`: a slot can never spill into its neighbour
//! while the weight stays within budget. Every operation **checks** the
//! budget and returns a typed [`PaillierError`] instead of corrupting
//! slots.

use crate::ciphertext::Ciphertext;
use crate::{PaillierError, PrivateKey, PublicKey};
use pp_bigint::{BigUint, Limb};
use pp_stream_runtime::pool::WorkerPool;
use rand::Rng;
use std::cell::OnceCell;

/// Layout and operation budget of a packed ciphertext.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PackingSpec {
    /// Bits per slot (including offset/guard headroom).
    pub slot_bits: usize,
    /// Number of slots per ciphertext.
    pub slots: usize,
    /// Maximum accumulated operation weight (see module docs).
    pub op_budget: u64,
}

impl PackingSpec {
    /// Largest spec with `slot_bits`-wide slots that fits the key's
    /// plaintext space, with a default operation budget of 16.
    ///
    /// Fails with a typed error when `slot_bits` is zero, wider than the
    /// key's usable plaintext bits, or too narrow to leave headroom for
    /// the offset encoding.
    pub fn for_key(pk: &PublicKey, slot_bits: usize) -> Result<Self, PaillierError> {
        let usable = pk.bits().saturating_sub(2);
        if slot_bits == 0 || slot_bits > usable {
            return Err(PaillierError::InvalidPacking(format!(
                "slot_bits {slot_bits} outside usable plaintext bits 1..={usable}"
            )));
        }
        let spec = PackingSpec { slot_bits, slots: usable / slot_bits, op_budget: 16 };
        spec.check()?;
        Ok(spec)
    }

    /// Adjusts the operation budget (shrinks the per-value bound). The
    /// combination is re-validated by every packing operation, so a
    /// budget too large for the slot width fails typed, not silently.
    pub fn with_budget(mut self, op_budget: u64) -> Self {
        self.op_budget = op_budget.max(1);
        self
    }

    /// `⌈log₂ op_budget⌉`, conservatively (≥ 1).
    fn budget_bits(&self) -> u32 {
        64 - (self.op_budget.max(1) - 1).leading_zeros().min(63)
    }

    /// Validates the layout: the slot must hold `2 + ⌈log₂W⌉` guard bits
    /// *and* at least one value bit, and slot extraction must fit `u128`.
    pub fn check(&self) -> Result<(), PaillierError> {
        if self.slot_bits > 120 {
            return Err(PaillierError::InvalidPacking(format!(
                "slot_bits {} exceeds the 120-bit slot extraction limit",
                self.slot_bits
            )));
        }
        if self.slots == 0 {
            return Err(PaillierError::InvalidPacking("zero slots".into()));
        }
        let need = 3 + self.budget_bits() as usize;
        if self.slot_bits < need {
            return Err(PaillierError::InvalidPacking(format!(
                "slot_bits {} too narrow for op budget {} (needs ≥ {need})",
                self.slot_bits, self.op_budget
            )));
        }
        Ok(())
    }

    /// Magnitude bound for a slot value: `|v| < 2^(s − 2 − ⌈log₂W⌉)`.
    pub fn value_bound(&self) -> i64 {
        let shift = self.slot_bits.saturating_sub(2 + self.budget_bits() as usize);
        1i64 << shift.min(62)
    }

    /// The per-unit-weight slot offset `2B`.
    pub fn offset(&self) -> u64 {
        2 * self.value_bound() as u64
    }

    /// `Σ_{j<used} 2^{j·s}` — the mask that broadcasts a per-slot
    /// constant across the first `used` slots.
    pub fn ones_mask(&self, used: usize) -> BigUint {
        let mut m = BigUint::zero();
        for _ in 0..used {
            m = m.shl_bits(self.slot_bits);
            m = &m + &BigUint::one();
        }
        m
    }

    /// Capacity check against a key: all slots must fit the usable
    /// plaintext space (the encoding never reduces mod `n`).
    pub(crate) fn check_key(&self, pk: &PublicKey) -> Result<(), PaillierError> {
        let usable = pk.bits().saturating_sub(2);
        match self.slots.checked_mul(self.slot_bits) {
            Some(total) if total <= usable => Ok(()),
            _ => Err(PaillierError::InvalidPacking(format!(
                "{} slots × {} bits exceed the key's usable {usable} plaintext bits",
                self.slots, self.slot_bits
            ))),
        }
    }
}

/// Packs `values` into one plaintext with the fresh-encryption offset
/// (`v + 2B` per slot), validating range and capacity.
pub(crate) fn pack_values(spec: &PackingSpec, values: &[i64]) -> Result<BigUint, PaillierError> {
    spec.check()?;
    if values.len() > spec.slots {
        return Err(PaillierError::InvalidPacking(format!(
            "{} values exceed {} slots",
            values.len(),
            spec.slots
        )));
    }
    let bound = spec.value_bound();
    let mut m = BigUint::zero();
    // Highest slot first: m = ((v_{k-1}) << s | … ) | v_0.
    for &v in values.iter().rev() {
        if v <= -bound || v >= bound {
            return Err(PaillierError::MessageOutOfRange);
        }
        let encoded = (v + spec.offset() as i64) as u64;
        m = m.shl_bits(spec.slot_bits);
        m = &m + &BigUint::from(encoded);
    }
    Ok(m)
}

/// `magnitude · ones(used)` reduced mod `n`, negated in `Z_n` when
/// `negative` — the encoded per-slot correction constant `δ`.
fn signed_broadcast_residue(
    pk: &PublicKey,
    spec: &PackingSpec,
    used: usize,
    magnitude: u128,
    negative: bool,
) -> Result<BigUint, PaillierError> {
    let plain = BigUint::from(magnitude).mul_ref(&spec.ones_mask(used));
    let r = plain
        .rem_ref(pk.n())
        .map_err(|_| PaillierError::InvalidPacking("zero modulus".into()))?;
    if negative && !r.is_zero() {
        Ok(pk.n() - &r)
    } else {
        Ok(r)
    }
}

/// A ciphertext holding up to `spec.slots` packed values, with the weight
/// bookkeeping needed to strip offsets at decode time.
#[derive(Clone, Debug)]
pub struct PackedCiphertext {
    pub ct: Ciphertext,
    pub spec: PackingSpec,
    /// How many of the slots actually carry values.
    used: usize,
    /// Accumulated operation weight: every slot holds `v + weight·2B`.
    weight: u64,
}

impl PackedCiphertext {
    /// Packs and encrypts up to `spec.slots` values, each `|v| <
    /// spec.value_bound()`, with fresh randomness.
    pub fn encrypt<R: Rng + ?Sized>(
        pk: &PublicKey,
        spec: PackingSpec,
        values: &[i64],
        rng: &mut R,
    ) -> Result<Self, PaillierError> {
        spec.check_key(pk)?;
        let m = pack_values(&spec, values)?;
        Ok(PackedCiphertext { ct: pk.encrypt(&m, rng), spec, used: values.len(), weight: 1 })
    }

    /// Packs and encrypts with a **precomputed** blinding factor
    /// `rn = r^n mod n²` (see [`crate::RandomnessPool`]) — the packed
    /// analogue of [`PublicKey::encrypt_i64_with_factor`].
    pub fn encrypt_with_factor(
        pk: &PublicKey,
        spec: PackingSpec,
        values: &[i64],
        rn: &BigUint,
    ) -> Result<Self, PaillierError> {
        spec.check_key(pk)?;
        let m = pack_values(&spec, values)?;
        Ok(PackedCiphertext::from_plain_with_factor(pk, spec, values.len(), &m, rn))
    }

    pub(crate) fn from_plain_with_factor(
        pk: &PublicKey,
        spec: PackingSpec,
        used: usize,
        m: &BigUint,
        rn: &BigUint,
    ) -> Self {
        let ct = Ciphertext::new(pk.ctx().mul_mod(&pk.g_pow_encoded(m), rn));
        PackedCiphertext { ct, spec, used, weight: 1 }
    }

    /// The deterministic packed constant `k` in every active slot
    /// (weight 1, unit randomness — the packed analogue of
    /// [`PublicKey::encrypt_constant_i64`], with the same caveat: only
    /// for model-side constants that get multiplied into data-derived
    /// ciphertexts).
    pub fn constant(
        pk: &PublicKey,
        spec: PackingSpec,
        used: usize,
        k: i64,
    ) -> Result<Self, PaillierError> {
        spec.check()?;
        spec.check_key(pk)?;
        if used > spec.slots {
            return Err(PaillierError::InvalidPacking(format!(
                "{used} used slots exceed {}",
                spec.slots
            )));
        }
        let bound = spec.value_bound();
        if k <= -bound || k >= bound {
            return Err(PaillierError::MessageOutOfRange);
        }
        let per_slot = (k + spec.offset() as i64) as u128;
        let residue = signed_broadcast_residue(pk, &spec, used, per_slot, false)?;
        Ok(PackedCiphertext {
            ct: Ciphertext::new(pk.g_pow_encoded(&residue)),
            spec,
            used,
            weight: 1,
        })
    }

    /// Reassembles a packed ciphertext received off the wire, validating
    /// the metadata against the key and budget before it can be used.
    pub fn from_parts(
        pk: &PublicKey,
        ct: Ciphertext,
        spec: PackingSpec,
        used: usize,
        weight: u64,
    ) -> Result<Self, PaillierError> {
        spec.check()?;
        spec.check_key(pk)?;
        if used > spec.slots {
            return Err(PaillierError::InvalidPacking(format!(
                "{used} used slots exceed {}",
                spec.slots
            )));
        }
        if weight > spec.op_budget {
            return Err(PaillierError::BudgetExceeded { weight, budget: spec.op_budget });
        }
        Ok(PackedCiphertext { ct, spec, used, weight })
    }

    /// Accumulated operation weight.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Number of meaningful slots.
    pub fn used(&self) -> usize {
        self.used
    }

    fn checked_weight(&self, weight: Option<u64>) -> Result<u64, PaillierError> {
        match weight {
            Some(w) if w <= self.spec.op_budget => Ok(w),
            Some(w) => Err(PaillierError::BudgetExceeded { weight: w, budget: self.spec.op_budget }),
            // Arithmetic overflow: report the saturated weight.
            None => Err(PaillierError::BudgetExceeded {
                weight: u64::MAX,
                budget: self.spec.op_budget,
            }),
        }
    }

    /// Slot-wise homomorphic addition. Both operands must share the spec
    /// **and** active slot count; fails typed when the operation budget
    /// would be exceeded.
    pub fn add(&self, pk: &PublicKey, other: &Self) -> Result<Self, PaillierError> {
        if self.spec != other.spec || self.used != other.used {
            return Err(PaillierError::PackingMismatch);
        }
        let weight = self.checked_weight(self.weight.checked_add(other.weight))?;
        Ok(PackedCiphertext {
            ct: pk.add(&self.ct, &other.ct),
            spec: self.spec,
            used: self.used,
            weight,
        })
    }

    /// Uniform positive scalar multiplication across all slots; fails
    /// typed when the operation budget would be exceeded.
    pub fn mul_uniform(&self, pk: &PublicKey, k: u64) -> Result<Self, PaillierError> {
        if k == 0 {
            return Err(PaillierError::MessageOutOfRange);
        }
        let weight = self.checked_weight(self.weight.checked_mul(k))?;
        Ok(PackedCiphertext {
            ct: pk.mul_scalar(&self.ct, &BigUint::from(k)),
            spec: self.spec,
            used: self.used,
            weight,
        })
    }

    /// Uniform **signed** scalar multiplication. A negative scalar
    /// inverts the ciphertext (slot contents go to `k·v + k·w·2B` mod
    /// `n`), then re-centers every active slot by `+2|k|·w·2B` so the
    /// invariant `content = k·v + |k|·w·2B ∈ (0, 2^s)` is restored.
    pub fn mul_signed(&self, pk: &PublicKey, k: i64) -> Result<Self, PaillierError> {
        if k > 0 {
            return self.mul_uniform(pk, k as u64);
        }
        if k == 0 {
            return Ok(PackedCiphertext {
                ct: pk.mul_scalar_i64(&self.ct, 0),
                spec: self.spec,
                used: self.used,
                weight: 0,
            });
        }
        let weight = self.checked_weight(self.weight.checked_mul(k.unsigned_abs()))?;
        let raw = pk.mul_scalar_i64(&self.ct, k);
        // δ = (|k| − k)·w·2B = 2·|k|·w·2B per active slot.
        let delta = 2 * weight as u128 * self.spec.offset() as u128;
        let residue = signed_broadcast_residue(pk, &self.spec, self.used, delta, false)?;
        let ct = Ciphertext::new(pk.ctx().mul_mod(raw.raw(), &pk.g_pow_encoded(&residue)));
        Ok(PackedCiphertext { ct, spec: self.spec, used: self.used, weight })
    }

    /// Lifts the ciphertext to a larger weight without changing slot
    /// values, by adding `(target − w)·2B` to every active slot. Used to
    /// give every element of a packed round the same decode offset.
    pub fn raise_weight(&self, pk: &PublicKey, target: u64) -> Result<Self, PaillierError> {
        if target < self.weight {
            return Err(PaillierError::InvalidPacking(format!(
                "cannot lower weight {} to {target}",
                self.weight
            )));
        }
        let target = self.checked_weight(Some(target))?;
        if target == self.weight {
            return Ok(self.clone());
        }
        let delta = (target - self.weight) as u128 * self.spec.offset() as u128;
        let residue = signed_broadcast_residue(pk, &self.spec, self.used, delta, false)?;
        let ct = Ciphertext::new(pk.ctx().mul_mod(self.ct.raw(), &pk.g_pow_encoded(&residue)));
        Ok(PackedCiphertext { ct, spec: self.spec, used: self.used, weight: target })
    }

    /// Decrypts and unpacks the active slots, stripping `weight·2B` from
    /// each.
    pub fn decrypt(&self, sk: &PrivateKey) -> Result<Vec<i64>, PaillierError> {
        self.unpack_residue(sk.decrypt(&self.ct))
    }

    /// Like [`PackedCiphertext::decrypt`], but splits the one big
    /// decryption's CRT halves across `workers` — the packed path
    /// carries a whole batch in a single ciphertext, so this is where
    /// parallel CRT pays even when there is nothing else to batch with.
    pub fn decrypt_parallel(
        &self,
        sk: &PrivateKey,
        workers: &WorkerPool,
    ) -> Result<Vec<i64>, PaillierError> {
        self.unpack_residue(sk.decrypt_crt_parallel(&self.ct, workers))
    }

    /// Unpacks a decrypted residue into the active slots.
    fn unpack_residue(&self, m: BigUint) -> Result<Vec<i64>, PaillierError> {
        let offset_total = (self.weight as u128)
            .checked_mul(self.spec.offset() as u128)
            .and_then(|o| i128::try_from(o).ok())
            .ok_or(PaillierError::MessageOutOfRange)?;
        let mut out = Vec::with_capacity(self.used);
        let mut rest = m;
        for _ in 0..self.used {
            // The budget guarantees slot contents never spill, so the low
            // `slot_bits` are exactly this slot.
            let slot = rest.low_bits(self.spec.slot_bits);
            let raw = slot.to_u128().ok_or(PaillierError::MessageOutOfRange)? as i128;
            let v = raw - offset_total;
            out.push(i64::try_from(v).map_err(|_| PaillierError::MessageOutOfRange)?);
            rest = rest.shr_bits(self.spec.slot_bits);
        }
        Ok(out)
    }
}

/// A batch's packed inputs with per-ciphertext Montgomery residues,
/// converted lazily and cached — the packed counterpart of
/// [`crate::MontInputs`]. Slot `j` of input `i` holds activation `i` of
/// batch item `j`, so one fused dot product evaluates all items at once.
pub struct PackedMontInputs<'a> {
    pk: &'a PublicKey,
    cts: &'a [PackedCiphertext],
    monts: Vec<OnceCell<Vec<Limb>>>,
    spec: PackingSpec,
    used: usize,
}

impl<'a> PackedMontInputs<'a> {
    /// Wraps a batch's packed input ciphertexts. All inputs must share
    /// one spec and active slot count. No Montgomery conversion happens
    /// yet: each input converts the first time a dot product reads it.
    pub fn new(pk: &'a PublicKey, cts: &'a [PackedCiphertext]) -> Result<Self, PaillierError> {
        let first = cts.first().ok_or(PaillierError::PackingMismatch)?;
        if cts.iter().any(|c| c.spec != first.spec || c.used != first.used) {
            return Err(PaillierError::PackingMismatch);
        }
        first.spec.check()?;
        first.spec.check_key(pk)?;
        let monts = (0..cts.len()).map(|_| OnceCell::new()).collect();
        Ok(PackedMontInputs { pk, cts, monts, spec: first.spec, used: first.used })
    }

    /// Number of wrapped inputs.
    pub fn len(&self) -> usize {
        self.cts.len()
    }

    /// True when the batch has no inputs.
    pub fn is_empty(&self) -> bool {
        self.cts.is_empty()
    }

    fn mont(&self, i: usize) -> &[Limb] {
        self.monts[i].get_or_init(|| self.pk.ctx().to_mont(self.cts[i].ct.raw()))
    }

    /// The smallest weight a dot product over `terms` (plus a bias slot)
    /// can carry: `1 + Σ|wᵢ|·weight(ctᵢ)`, checked against the budget.
    pub fn natural_weight(&self, terms: &[(usize, i64)]) -> Result<u64, PaillierError> {
        let mut acc: u64 = 1;
        for &(i, w) in terms {
            let contrib = w
                .unsigned_abs()
                .checked_mul(self.cts[i].weight)
                .ok_or(PaillierError::BudgetExceeded {
                    weight: u64::MAX,
                    budget: self.spec.op_budget,
                })?;
            acc = acc.checked_add(contrib).ok_or(PaillierError::BudgetExceeded {
                weight: u64::MAX,
                budget: self.spec.op_budget,
            })?;
        }
        if acc > self.spec.op_budget {
            return Err(PaillierError::BudgetExceeded { weight: acc, budget: self.spec.op_budget });
        }
        Ok(acc)
    }

    /// Fused batched `Σᵢ wᵢ·xᵢ + bias`: slot `j` of the result decodes
    /// to the dot product of batch item `j` — bit-identical to `used`
    /// independent unpacked [`crate::MontInputs::dot_i64`] evaluations.
    pub fn dot_i64(&self, terms: &[(usize, i64)], bias: i64) -> Result<PackedCiphertext, PaillierError> {
        let weight = self.natural_weight(terms)?;
        self.dot_i64_with_weight(terms, bias, weight)
    }

    /// [`Self::dot_i64`] re-centered to a caller-chosen `target` weight
    /// (≥ the natural weight), so every output of a layer can share one
    /// uniform decode offset regardless of its row's weight mass.
    pub fn dot_i64_with_weight(
        &self,
        terms: &[(usize, i64)],
        bias: i64,
        target: u64,
    ) -> Result<PackedCiphertext, PaillierError> {
        let natural = self.natural_weight(terms)?;
        if target < natural {
            return Err(PaillierError::InvalidPacking(format!(
                "target weight {target} below natural weight {natural}"
            )));
        }
        if target > self.spec.op_budget {
            return Err(PaillierError::BudgetExceeded {
                weight: target,
                budget: self.spec.op_budget,
            });
        }
        let bound = self.spec.value_bound();
        if bias <= -bound || bias >= bound {
            return Err(PaillierError::MessageOutOfRange);
        }
        let ctx = self.pk.ctx();

        let mut pos_bases: Vec<&[Limb]> = Vec::new();
        let mut pos_exps: Vec<u64> = Vec::new();
        let mut neg_bases: Vec<&[Limb]> = Vec::new();
        let mut neg_exps: Vec<u64> = Vec::new();
        // S = Σ wᵢ·weight(ctᵢ): the signed offset mass the raw product
        // accumulates, to be re-centered to `target` below.
        let mut offset_mass: i128 = 0;
        for &(i, w) in terms {
            offset_mass += w as i128 * self.cts[i].weight as i128;
            if w > 0 {
                pos_bases.push(self.mont(i));
                pos_exps.push(w as u64);
            } else if w < 0 {
                neg_bases.push(self.mont(i));
                neg_exps.push(w.unsigned_abs());
            }
        }

        // A = Π cᵢ^{wᵢ⁺} in Montgomery form (1·R when no positive terms).
        let mut acc = ctx.pow_mod_multi_mont(&pos_bases, &pos_exps);
        let mut scratch = ctx.scratch();

        // B = Π cᵢ^{|wᵢ⁻|}, inverted once: acc ← A · B⁻¹.
        if !neg_bases.is_empty() {
            let b = ctx.from_mont(&ctx.pow_mod_multi_mont(&neg_bases, &neg_exps));
            let b_inv = b
                .modinv(self.pk.n_squared())
                .expect("ciphertexts are units mod n²");
            let b_inv_m = ctx.to_mont(&b_inv);
            ctx.mont_mul_inplace(&mut acc, &b_inv_m, &mut scratch);
        }

        // δ = bias + (target − S)·2B per active slot: one g-power fixes
        // both the bias and the offset re-centering.
        let delta = (target as i128)
            .checked_sub(offset_mass)
            .and_then(|d| d.checked_mul(self.spec.offset() as i128))
            .and_then(|d| d.checked_add(bias as i128))
            .ok_or(PaillierError::InvalidPacking("offset correction overflow".into()))?;
        if delta != 0 {
            let residue = signed_broadcast_residue(
                self.pk,
                &self.spec,
                self.used,
                delta.unsigned_abs(),
                delta < 0,
            )?;
            let gd_m = ctx.to_mont(&self.pk.g_pow_encoded(&residue));
            ctx.mont_mul_inplace(&mut acc, &gd_m, &mut scratch);
        }

        Ok(PackedCiphertext {
            ct: Ciphertext::new(ctx.from_mont(&acc)),
            spec: self.spec,
            used: self.used,
            weight: target,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Keypair, MontInputs};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(budget: u64) -> (Keypair, PackingSpec, StdRng) {
        let mut rng = StdRng::seed_from_u64(80);
        let kp = Keypair::generate(256, &mut rng);
        let spec = PackingSpec::for_key(&kp.public(), 32).unwrap().with_budget(budget);
        (kp, spec, rng)
    }

    #[test]
    fn spec_capacity_and_bounds() {
        let (_, spec, _) = setup(16);
        assert!(spec.slots >= 5, "slots = {}", spec.slots);
        // s=32, W=16 → bound 2^(32-2-4) = 2^26.
        assert_eq!(spec.value_bound(), 1 << 26);
        let tight = spec.with_budget(1024);
        assert_eq!(tight.value_bound(), 1 << 20);
    }

    #[test]
    fn pack_roundtrip() {
        let (kp, spec, mut rng) = setup(16);
        let values = vec![0i64, 1, -1, 123_456, -654_321];
        let packed = PackedCiphertext::encrypt(&kp.public(), spec, &values, &mut rng).unwrap();
        assert_eq!(packed.decrypt(&kp.private()).unwrap(), values);
    }

    #[test]
    fn packed_addition_is_slotwise() {
        let (kp, spec, mut rng) = setup(16);
        let a = vec![10i64, -20, 30];
        let b = vec![1i64, 2, -3];
        let pa = PackedCiphertext::encrypt(&kp.public(), spec, &a, &mut rng).unwrap();
        let pb = PackedCiphertext::encrypt(&kp.public(), spec, &b, &mut rng).unwrap();
        let sum = pa.add(&kp.public(), &pb).unwrap();
        assert_eq!(sum.decrypt(&kp.private()).unwrap(), vec![11, -18, 27]);
    }

    #[test]
    fn packed_uniform_scaling() {
        let (kp, spec, mut rng) = setup(1024);
        let v = vec![5i64, -7, 0, 100];
        let p = PackedCiphertext::encrypt(&kp.public(), spec, &v, &mut rng).unwrap();
        let scaled = p.mul_uniform(&kp.public(), 1000).unwrap();
        assert_eq!(scaled.decrypt(&kp.private()).unwrap(), vec![5000, -7000, 0, 100_000]);
    }

    #[test]
    fn add_then_scale_composes() {
        let (kp, spec, mut rng) = setup(16);
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[3, -4], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), spec, &[10, 20], &mut rng).unwrap();
        let r = a
            .add(&kp.public(), &b)
            .unwrap()
            .mul_uniform(&kp.public(), 7)
            .unwrap();
        assert_eq!(r.decrypt(&kp.private()).unwrap(), vec![91, 112]);
    }

    #[test]
    fn many_additions_within_budget() {
        let (kp, spec, mut rng) = setup(16);
        let mut acc = PackedCiphertext::encrypt(&kp.public(), spec, &[1, -1], &mut rng).unwrap();
        for i in 2..=10i64 {
            let next =
                PackedCiphertext::encrypt(&kp.public(), spec, &[i, -i], &mut rng).unwrap();
            acc = acc.add(&kp.public(), &next).unwrap();
        }
        // Σ 1..10 = 55.
        assert_eq!(acc.decrypt(&kp.private()).unwrap(), vec![55, -55]);
    }

    #[test]
    fn budget_enforced_with_typed_error() {
        let (kp, spec, mut rng) = setup(2);
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[1], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), spec, &[2], &mut rng).unwrap();
        let sum = a.add(&kp.public(), &b).unwrap(); // weight 2 == budget
        let c = PackedCiphertext::encrypt(&kp.public(), spec, &[3], &mut rng).unwrap();
        assert_eq!(
            sum.add(&kp.public(), &c).unwrap_err(),
            PaillierError::BudgetExceeded { weight: 3, budget: 2 },
            "third add exceeds the budget"
        );
        assert_eq!(
            a.mul_uniform(&kp.public(), 3).unwrap_err(),
            PaillierError::BudgetExceeded { weight: 3, budget: 2 },
            "scale 3 exceeds the budget"
        );
    }

    #[test]
    fn out_of_range_rejected() {
        let (kp, spec, mut rng) = setup(16);
        let too_big = spec.value_bound();
        assert!(PackedCiphertext::encrypt(&kp.public(), spec, &[too_big], &mut rng).is_err());
        assert!(
            PackedCiphertext::encrypt(&kp.public(), spec, &[i64::MIN], &mut rng).is_err(),
            "i64::MIN must not wrap the range check"
        );
        let too_many = vec![1i64; spec.slots + 1];
        assert!(PackedCiphertext::encrypt(&kp.public(), spec, &too_many, &mut rng).is_err());
    }

    #[test]
    fn mismatched_specs_and_slots_rejected() {
        let (kp, spec, mut rng) = setup(16);
        let other_spec = PackingSpec { slot_bits: 16, slots: 4, op_budget: 16 };
        let a = PackedCiphertext::encrypt(&kp.public(), spec, &[1], &mut rng).unwrap();
        let b = PackedCiphertext::encrypt(&kp.public(), other_spec, &[1], &mut rng).unwrap();
        assert_eq!(a.add(&kp.public(), &b).unwrap_err(), PaillierError::PackingMismatch);
        // Same spec, different active slot counts: a silent max() here
        // would decode garbage, so it must be a typed error.
        let c = PackedCiphertext::encrypt(&kp.public(), spec, &[1, 2], &mut rng).unwrap();
        assert_eq!(a.add(&kp.public(), &c).unwrap_err(), PaillierError::PackingMismatch);
    }

    #[test]
    fn for_key_boundary_slot_widths() {
        let (kp, _, _) = setup(16);
        let pk = kp.public();
        let usable = pk.bits() - 2;
        assert!(matches!(
            PackingSpec::for_key(&pk, 0),
            Err(PaillierError::InvalidPacking(_))
        ));
        assert!(matches!(
            PackingSpec::for_key(&pk, usable + 1),
            Err(PaillierError::InvalidPacking(_))
        ));
        // Widest supported slot on this key: two slots at 100 bits.
        let wide = PackingSpec::for_key(&pk, 100).unwrap();
        assert_eq!(wide.slots, 2);
        // Too narrow to hold the default budget's guard bits.
        assert!(matches!(
            PackingSpec::for_key(&pk, 4),
            Err(PaillierError::InvalidPacking(_))
        ));
    }

    #[test]
    fn budget_arithmetic_near_u64_overflow() {
        let (kp, spec, mut rng) = setup(16);
        // A budget of u64::MAX forces ⌈log₂W⌉ ≈ 64 guard bits into a
        // 32-bit slot: every operation must fail typed, never wrap.
        let huge = spec.with_budget(u64::MAX);
        assert!(matches!(huge.check(), Err(PaillierError::InvalidPacking(_))));
        assert!(PackedCiphertext::encrypt(&kp.public(), huge, &[1], &mut rng).is_err());

        // Weight arithmetic overflow (not just budget comparison) on a
        // wide-slot spec with a near-max budget.
        let wide = PackingSpec { slot_bits: 80, slots: 3, op_budget: u64::MAX / 2 };
        wide.check().unwrap();
        let a = PackedCiphertext::encrypt(&kp.public(), wide, &[7, -9], &mut rng).unwrap();
        let big = a.mul_uniform(&kp.public(), 1 << 40).unwrap();
        assert_eq!(
            big.mul_uniform(&kp.public(), 1 << 40).unwrap_err(),
            PaillierError::BudgetExceeded { weight: u64::MAX, budget: u64::MAX / 2 },
            "u64 overflow in weight arithmetic must saturate into a typed error"
        );
        assert_eq!(big.decrypt(&kp.private()).unwrap(), vec![7 << 40, -9 << 40]);
    }

    #[test]
    fn mul_signed_recenters() {
        let (kp, spec, mut rng) = setup(64);
        let v = vec![5i64, -7, 0, 100];
        let p = PackedCiphertext::encrypt(&kp.public(), spec, &v, &mut rng).unwrap();
        let neg = p.mul_signed(&kp.public(), -3).unwrap();
        assert_eq!(neg.weight(), 3);
        assert_eq!(neg.decrypt(&kp.private()).unwrap(), vec![-15, 21, 0, -300]);
        let zero = p.mul_signed(&kp.public(), 0).unwrap();
        assert_eq!(zero.weight(), 0);
        assert_eq!(zero.decrypt(&kp.private()).unwrap(), vec![0, 0, 0, 0]);
        let pos = p.mul_signed(&kp.public(), 4).unwrap();
        assert_eq!(pos.decrypt(&kp.private()).unwrap(), vec![20, -28, 0, 400]);
    }

    #[test]
    fn constant_and_raise_weight() {
        let (kp, spec, mut rng) = setup(16);
        let c = PackedCiphertext::constant(&kp.public(), spec, 3, -42).unwrap();
        assert_eq!(c.weight(), 1);
        assert_eq!(c.decrypt(&kp.private()).unwrap(), vec![-42, -42, -42]);

        let p = PackedCiphertext::encrypt(&kp.public(), spec, &[9, -9, 9], &mut rng).unwrap();
        let lifted = p.raise_weight(&kp.public(), 5).unwrap();
        assert_eq!(lifted.weight(), 5);
        assert_eq!(lifted.decrypt(&kp.private()).unwrap(), vec![9, -9, 9]);
        // Lifted operands still add with plain ones of the same weight.
        let sum = lifted.add(&kp.public(), &c.raise_weight(&kp.public(), 5).unwrap()).unwrap();
        assert_eq!(sum.decrypt(&kp.private()).unwrap(), vec![-33, -51, -33]);
        assert!(p.raise_weight(&kp.public(), 0).is_err(), "weights never lower");
        assert!(matches!(
            p.raise_weight(&kp.public(), 17).unwrap_err(),
            PaillierError::BudgetExceeded { weight: 17, budget: 16 }
        ));
    }

    #[test]
    fn from_parts_validates_metadata() {
        let (kp, spec, mut rng) = setup(16);
        let p = PackedCiphertext::encrypt(&kp.public(), spec, &[1, 2], &mut rng).unwrap();
        let ok = PackedCiphertext::from_parts(&kp.public(), p.ct.clone(), spec, 2, 1).unwrap();
        assert_eq!(ok.decrypt(&kp.private()).unwrap(), vec![1, 2]);
        assert!(matches!(
            PackedCiphertext::from_parts(&kp.public(), p.ct.clone(), spec, spec.slots + 1, 1),
            Err(PaillierError::InvalidPacking(_))
        ));
        assert!(matches!(
            PackedCiphertext::from_parts(&kp.public(), p.ct.clone(), spec, 2, 17),
            Err(PaillierError::BudgetExceeded { weight: 17, budget: 16 })
        ));
    }

    #[test]
    fn packed_dot_matches_independent_unpacked_dots() {
        let (kp, spec, mut rng) = setup(1 << 14);
        let pk = kp.public();
        // 4 activations × 3 batch items, batch-major in the slots.
        let acts: Vec<Vec<i64>> = vec![
            vec![120, -45, 300],
            vec![-7, 0, 99],
            vec![1000, 1000, -1000],
            vec![0, 5, -5],
        ];
        let packs: Vec<PackedCiphertext> = acts
            .iter()
            .map(|row| PackedCiphertext::encrypt(&pk, spec, row, &mut rng).unwrap())
            .collect();
        let inputs = PackedMontInputs::new(&pk, &packs).unwrap();
        for (terms, bias) in [
            (vec![(0usize, 3i64), (1, -2), (2, 7), (3, 1)], 17i64),
            (vec![(0, -1), (1, -4), (2, -2), (3, -8)], -9), // all-negative
            (vec![(0, 0), (1, 0), (2, 0), (3, 0)], 5),      // zero-weight row
            (vec![], 0),
        ] {
            let packed = inputs.dot_i64(&terms, bias).unwrap();
            let got = packed.decrypt(&kp.private()).unwrap();
            for (j, &g) in got.iter().enumerate() {
                let cts: Vec<Ciphertext> = acts
                    .iter()
                    .map(|row| pk.encrypt_i64(row[j], &mut rng))
                    .collect();
                let want = kp
                    .private()
                    .decrypt_i64(&MontInputs::new(&pk, &cts).dot_i64(&terms, bias));
                assert_eq!(g, want, "slot {j}, terms {terms:?}");
            }
        }
    }

    #[test]
    fn packed_dot_target_weight_uniformity() {
        let (kp, spec, mut rng) = setup(1 << 10);
        let pk = kp.public();
        let packs: Vec<PackedCiphertext> = [[10i64, -10], [20, 5]]
            .iter()
            .map(|row| PackedCiphertext::encrypt(&pk, spec, row, &mut rng).unwrap())
            .collect();
        let inputs = PackedMontInputs::new(&pk, &packs).unwrap();
        let light = inputs.dot_i64_with_weight(&[(0, 1)], 0, 100).unwrap();
        let heavy = inputs.dot_i64_with_weight(&[(0, 3), (1, -5)], 2, 100).unwrap();
        assert_eq!(light.weight(), 100);
        assert_eq!(heavy.weight(), 100);
        // Uniform weights make rows of one layer mutually addable.
        let sum = light.add(&pk, &heavy).unwrap();
        assert_eq!(sum.decrypt(&kp.private()).unwrap(), vec![10 - 68, -10 - 53]);
        assert!(
            inputs.dot_i64_with_weight(&[(0, 3), (1, -5)], 2, 4).is_err(),
            "target below natural weight must fail"
        );
    }

    #[test]
    fn packing_saves_ciphertexts() {
        // The point of the exercise: one ciphertext instead of `slots`.
        let (kp, spec, mut rng) = setup(16);
        let values: Vec<i64> = (0..spec.slots as i64).collect();
        let packed = PackedCiphertext::encrypt(&kp.public(), spec, &values, &mut rng).unwrap();
        let packed_bytes = packed.ct.to_bytes().len();
        let individual_bytes: usize = values
            .iter()
            .map(|&v| kp.public().encrypt_i64(v, &mut rng).to_bytes().len())
            .sum();
        assert!(
            packed_bytes * 2 < individual_bytes,
            "packed {packed_bytes} vs individual {individual_bytes}"
        );
    }
}
