//! Signed-integer encoding into the Paillier plaintext space.
//!
//! PP-Stream scales floating-point model parameters and activations to
//! integers (paper Sec. IV-A); those integers can be negative, while
//! Paillier messages live in `[0, n)`. We use the standard symmetric
//! encoding: values in `(-n/2, 0)` map to `(n/2, n)`.

use crate::PaillierError;
use pp_bigint::{BigInt, BigUint};

/// Encodes a signed 64-bit value into `[0, n)`.
///
/// Panics if `|m| >= n/2` (only possible with absurdly small test keys).
pub fn encode_i64(m: i64, n: &BigUint) -> BigUint {
    BigInt::from(m).rem_euclid_biguint(n)
}

/// Decodes a residue in `[0, n)` back to a signed value, interpreting
/// residues above `n/2` as negative.
pub fn decode_i64(residue: &BigUint, n: &BigUint) -> Result<i64, PaillierError> {
    decode_i128(residue, n)?
        .try_into()
        .map_err(|_| PaillierError::MessageOutOfRange)
}

/// As [`decode_i64`] but with the wider `i128` range, for accumulated sums
/// that exceed 64 bits before rescaling.
pub fn decode_i128(residue: &BigUint, n: &BigUint) -> Result<i128, PaillierError> {
    let half = n.shr_bits(1);
    if residue <= &half {
        residue
            .to_u128()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or(PaillierError::MessageOutOfRange)
    } else {
        let mag = n - residue;
        let v = mag
            .to_u128()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or(PaillierError::MessageOutOfRange)?;
        Ok(-v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bigint::BigUint;

    fn n() -> BigUint {
        // A 100-bit odd modulus; encoding only needs n, not a real key.
        BigUint::from_decimal_str("1267650600228229401496703205361").unwrap()
    }

    #[test]
    fn roundtrip_signed() {
        let n = n();
        for m in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            let e = encode_i64(m, &n);
            assert!(e < n);
            assert_eq!(decode_i64(&e, &n).unwrap(), m, "m={m}");
        }
    }

    #[test]
    fn negative_maps_to_upper_half() {
        let n = n();
        let e = encode_i64(-5, &n);
        assert!(e > n.shr_bits(1));
        assert_eq!(e, &n - &BigUint::from(5u64));
    }

    #[test]
    fn homomorphic_sum_encoding() {
        // encode(a) + encode(b) mod n decodes to a + b.
        let n = n();
        for (a, b) in [(5i64, -9), (-100, -200), (1 << 40, -(1 << 39))] {
            let sum = encode_i64(a, &n).addmod(&encode_i64(b, &n), &n).unwrap();
            assert_eq!(decode_i64(&sum, &n).unwrap(), a + b);
        }
    }

    #[test]
    fn i128_range() {
        let n = n();
        // 2^80 fits in the 100-bit space but not in i64.
        let big = BigUint::one().shl_bits(80);
        assert!(decode_i64(&big, &n).is_err());
        assert_eq!(decode_i128(&big, &n).unwrap(), 1i128 << 80);
    }
}
