//! Signed-integer encoding into the Paillier plaintext space.
//!
//! PP-Stream scales floating-point model parameters and activations to
//! integers (paper Sec. IV-A); those integers can be negative, while
//! Paillier messages live in `[0, n)`. We use the standard symmetric
//! encoding: values in `(-n/2, 0)` map to `(n/2, n)`.

use crate::PaillierError;
use pp_bigint::{BigInt, BigUint};

/// True when `m` fits the symmetric encoding for modulus `n`, i.e.
/// `2·|m| < n`: positive and negative values occupy disjoint halves of
/// `[0, n)` and decode with the correct sign.
fn in_symmetric_range(m: i64, n: &BigUint) -> bool {
    BigUint::from(m.unsigned_abs()).shl_bits(1) < *n
}

/// Encodes a signed 64-bit value into `[0, n)`.
///
/// # Panics
/// In debug builds, panics if `2·|m| >= n` — with such a small modulus
/// the value wraps into the other half of the plaintext space and
/// decodes with the wrong sign. Release builds skip the check on this
/// hot path; use [`try_encode_i64`] where the modulus isn't trusted.
pub fn encode_i64(m: i64, n: &BigUint) -> BigUint {
    debug_assert!(
        in_symmetric_range(m, n),
        "encode_i64: |{m}| >= n/2 wraps and decodes with the wrong sign"
    );
    BigInt::from(m).rem_euclid_biguint(n)
}

/// Fallible form of [`encode_i64`]: returns
/// [`PaillierError::MessageOutOfRange`] instead of wrapping when
/// `2·|m| >= n`.
pub fn try_encode_i64(m: i64, n: &BigUint) -> Result<BigUint, PaillierError> {
    if !in_symmetric_range(m, n) {
        return Err(PaillierError::MessageOutOfRange);
    }
    Ok(BigInt::from(m).rem_euclid_biguint(n))
}

/// Decodes a residue in `[0, n)` back to a signed value, interpreting
/// residues above `n/2` as negative.
pub fn decode_i64(residue: &BigUint, n: &BigUint) -> Result<i64, PaillierError> {
    decode_i128(residue, n)?
        .try_into()
        .map_err(|_| PaillierError::MessageOutOfRange)
}

/// As [`decode_i64`] but with the wider `i128` range, for accumulated sums
/// that exceed 64 bits before rescaling.
pub fn decode_i128(residue: &BigUint, n: &BigUint) -> Result<i128, PaillierError> {
    let half = n.shr_bits(1);
    if residue <= &half {
        residue
            .to_u128()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or(PaillierError::MessageOutOfRange)
    } else {
        let mag = n - residue;
        let v = mag
            .to_u128()
            .and_then(|v| i128::try_from(v).ok())
            .ok_or(PaillierError::MessageOutOfRange)?;
        Ok(-v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bigint::BigUint;

    fn n() -> BigUint {
        // A 100-bit odd modulus; encoding only needs n, not a real key.
        BigUint::from_decimal_str("1267650600228229401496703205361").unwrap()
    }

    #[test]
    fn roundtrip_signed() {
        let n = n();
        for m in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN + 1] {
            let e = encode_i64(m, &n);
            assert!(e < n);
            assert_eq!(decode_i64(&e, &n).unwrap(), m, "m={m}");
        }
    }

    #[test]
    fn negative_maps_to_upper_half() {
        let n = n();
        let e = encode_i64(-5, &n);
        assert!(e > n.shr_bits(1));
        assert_eq!(e, &n - &BigUint::from(5u64));
    }

    #[test]
    fn homomorphic_sum_encoding() {
        // encode(a) + encode(b) mod n decodes to a + b.
        let n = n();
        for (a, b) in [(5i64, -9), (-100, -200), (1 << 40, -(1 << 39))] {
            let sum = encode_i64(a, &n).addmod(&encode_i64(b, &n), &n).unwrap();
            assert_eq!(decode_i64(&sum, &n).unwrap(), a + b);
        }
    }

    #[test]
    fn boundary_at_half_n() {
        // Regression: values at the ±n/2 boundary used to wrap silently
        // and decode with the wrong sign. Use a small modulus so the
        // boundary is reachable from i64.
        let n = BigUint::from(1001u64); // odd: n/2 = 500 (floor)
        // Largest encodable magnitude: 2·500 < 1001, 2·(-500) < 1001.
        for m in [500i64, -500] {
            let e = try_encode_i64(m, &n).unwrap();
            assert_eq!(decode_i64(&e, &n).unwrap(), m, "m={m}");
        }
        // One past the boundary must be rejected, not wrapped.
        for m in [501i64, -501, i64::MAX, i64::MIN] {
            assert_eq!(
                try_encode_i64(m, &n).unwrap_err(),
                PaillierError::MessageOutOfRange,
                "m={m}"
            );
        }

        let even = BigUint::from(1000u64);
        // For even n the symmetric check rejects ±500: +500 would be
        // ambiguous with -500 (both encode to 500).
        assert!(try_encode_i64(499, &even).is_ok());
        assert!(try_encode_i64(-499, &even).is_ok());
        assert!(try_encode_i64(500, &even).is_err());
        assert!(try_encode_i64(-500, &even).is_err());
    }

    #[test]
    #[should_panic(expected = "wrong sign")]
    #[cfg(debug_assertions)]
    fn encode_panics_out_of_range_in_debug() {
        encode_i64(501, &BigUint::from(1001u64));
    }

    #[test]
    fn i128_range() {
        let n = n();
        // 2^80 fits in the 100-bit space but not in i64.
        let big = BigUint::one().shl_bits(80);
        assert!(decode_i64(&big, &n).is_err());
        assert_eq!(decode_i128(&big, &n).unwrap(), 1i128 << 80);
    }
}
