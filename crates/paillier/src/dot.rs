//! Fused encrypted dot products.
//!
//! The model provider's linear layers evaluate `Π E(mᵢ)^{wᵢ} · g^b mod n²`
//! (paper Eq. 3). The naive path pays, per weight, a full `pow_mod` with
//! Montgomery in/out conversions — and a `modinv` for every *negative*
//! weight. [`MontInputs`] fuses the whole dot product:
//!
//! * each input ciphertext is converted to Montgomery form **once per
//!   layer** (lazily, since conv taps touch a sparse subset) and reused by
//!   every output neuron that reads it;
//! * the positive-weight and negative-weight terms are each evaluated by a
//!   single Straus interleaved multi-exponentiation
//!   ([`pp_bigint::MontgomeryCtx::pow_mod_multi_mont`]), sharing one
//!   squaring ladder across all bases;
//! * negative weights are folded into one product `B = Π cᵢ^{|wᵢ⁻|}` and
//!   inverted **once** (`A·B⁻¹`), instead of once per negative weight —
//!   valid because `(Π cᵢ^{|wᵢ|})⁻¹ = Π (cᵢ⁻¹)^{|wᵢ|}` in `Z*_{n²}`.
//!
//! Every step multiplies exactly the same residues mod `n²` as the scalar
//! mul/add loop, just reassociated — multiplication in `Z*_{n²}` is
//! commutative — so the fused result is **bit-identical** to the naive
//! path, and the existing end-to-end bit-for-bit assertions double as
//! correctness gates for this kernel.

use crate::ciphertext::Ciphertext;
use crate::encoding::encode_i64;
use crate::keys::PublicKey;
use pp_bigint::Limb;
use std::cell::OnceCell;

/// A layer's encrypted inputs with per-ciphertext Montgomery residues,
/// converted lazily and cached for the lifetime of the layer evaluation.
pub struct MontInputs<'a> {
    pk: &'a PublicKey,
    cts: &'a [Ciphertext],
    monts: Vec<OnceCell<Vec<Limb>>>,
}

impl<'a> MontInputs<'a> {
    /// Wraps a layer's input ciphertexts. No conversion happens yet:
    /// each input enters the Montgomery domain the first time a dot
    /// product reads it (conv layers only ever touch a sparse subset).
    pub fn new(pk: &'a PublicKey, cts: &'a [Ciphertext]) -> Self {
        let monts = (0..cts.len()).map(|_| OnceCell::new()).collect();
        MontInputs { pk, cts, monts }
    }

    /// Number of wrapped inputs.
    pub fn len(&self) -> usize {
        self.cts.len()
    }

    /// True when the layer has no inputs.
    pub fn is_empty(&self) -> bool {
        self.cts.is_empty()
    }

    fn mont(&self, i: usize) -> &[Limb] {
        self.monts[i].get_or_init(|| self.pk.ctx().to_mont(self.cts[i].raw()))
    }

    /// Fused `Σ wᵢ·mᵢ + bias` over the wrapped ciphertexts:
    /// `terms` pairs an input index with its signed weight.
    ///
    /// Bit-identical to the naive
    /// `fold(E(bias), |acc, (i, w)| acc · cᵢ^w)` loop.
    pub fn dot_i64(&self, terms: &[(usize, i64)], bias: i64) -> Ciphertext {
        let ctx = self.pk.ctx();

        let mut pos_bases: Vec<&[Limb]> = Vec::new();
        let mut pos_exps: Vec<u64> = Vec::new();
        let mut neg_bases: Vec<&[Limb]> = Vec::new();
        let mut neg_exps: Vec<u64> = Vec::new();
        for &(i, w) in terms {
            if w > 0 {
                pos_bases.push(self.mont(i));
                pos_exps.push(w as u64);
            } else if w < 0 {
                neg_bases.push(self.mont(i));
                neg_exps.push(w.unsigned_abs());
            }
        }

        // A = Π cᵢ^{wᵢ⁺} in Montgomery form (1·R when no positive terms).
        let mut acc = ctx.pow_mod_multi_mont(&pos_bases, &pos_exps);
        let mut scratch = ctx.scratch();

        // B = Π cᵢ^{|wᵢ⁻|}, inverted once: acc ← A · B⁻¹.
        if !neg_bases.is_empty() {
            let b = ctx.from_mont(&ctx.pow_mod_multi_mont(&neg_bases, &neg_exps));
            let b_inv = b
                .modinv(self.pk.n_squared())
                .expect("ciphertexts are units mod n²");
            let b_inv_m = ctx.to_mont(&b_inv);
            ctx.mont_mul_inplace(&mut acc, &b_inv_m, &mut scratch);
        }

        // g^bias = 1 + bias·n, reduction-free for encoded bias < n.
        if bias != 0 {
            let gb = self.pk.g_pow_encoded(&encode_i64(bias, self.pk.n()));
            let gb_m = ctx.to_mont(&gb);
            ctx.mont_mul_inplace(&mut acc, &gb_m, &mut scratch);
        }

        Ciphertext::new(ctx.from_mont(&acc))
    }
}

impl PublicKey {
    /// Fused encrypted dot product `Σ wᵢ·mᵢ` over parallel slices —
    /// the one-shot convenience form of [`MontInputs::dot_i64`]. For a
    /// whole layer (many dot products over the same inputs), build one
    /// [`MontInputs`] instead so the Montgomery conversions are shared.
    pub fn dot_i64(&self, cts: &[Ciphertext], weights: &[i64]) -> Ciphertext {
        assert_eq!(cts.len(), weights.len(), "cts/weights length mismatch");
        let inputs = MontInputs::new(self, cts);
        let terms: Vec<(usize, i64)> = weights.iter().copied().enumerate().collect();
        inputs.dot_i64(&terms, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Keypair;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn naive_dot(pk: &PublicKey, cts: &[Ciphertext], terms: &[(usize, i64)], bias: i64) -> Ciphertext {
        let mut acc = pk.encrypt_constant_i64(bias);
        for &(i, w) in terms {
            acc = pk.add(&acc, &pk.mul_scalar_i64(&cts[i], w));
        }
        acc
    }

    #[test]
    fn fused_dot_matches_naive_bit_for_bit() {
        let mut rng = StdRng::seed_from_u64(30);
        let kp = Keypair::generate(128, &mut rng);
        let (pk, sk) = (kp.public(), kp.private());
        let ms: Vec<i64> = (0..12).map(|_| rng.gen_range(-500i64..500)).collect();
        let cts: Vec<_> = ms.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let ws: Vec<i64> = (0..12).map(|_| rng.gen_range(-1000i64..1000)).collect();
        let inputs = MontInputs::new(&pk, &cts);
        let terms: Vec<(usize, i64)> = ws.iter().copied().enumerate().collect();
        for bias in [0i64, 17, -3] {
            let fused = inputs.dot_i64(&terms, bias);
            let naive = naive_dot(&pk, &cts, &terms, bias);
            assert_eq!(fused.raw(), naive.raw(), "bias={bias}");
            let want: i64 = ms.iter().zip(&ws).map(|(m, w)| m * w).sum::<i64>() + bias;
            assert_eq!(sk.decrypt_i64(&fused), want);
        }
    }

    #[test]
    fn fused_dot_edge_cases() {
        let mut rng = StdRng::seed_from_u64(31);
        let kp = Keypair::generate(128, &mut rng);
        let pk = kp.public();
        let cts: Vec<_> = [3i64, -5, 11].iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let inputs = MontInputs::new(&pk, &cts);

        // Empty term list is E(bias) with unit randomness.
        let empty = inputs.dot_i64(&[], 4);
        assert_eq!(empty.raw(), pk.encrypt_constant_i64(4).raw());

        // All-zero weights equal the empty dot.
        let zeros = inputs.dot_i64(&[(0, 0), (1, 0), (2, 0)], 4);
        assert_eq!(zeros.raw(), empty.raw());

        // All-negative and single-element cases match the naive loop.
        for terms in [vec![(0usize, -2i64), (1, -7), (2, -1)], vec![(1, 9)], vec![(2, -4)]] {
            let fused = inputs.dot_i64(&terms, 0);
            let naive = naive_dot(&pk, &cts, &terms, 0);
            assert_eq!(fused.raw(), naive.raw(), "terms={terms:?}");
        }
    }

    #[test]
    fn one_shot_dot_matches_mont_inputs() {
        let mut rng = StdRng::seed_from_u64(32);
        let kp = Keypair::generate(128, &mut rng);
        let (pk, sk) = (kp.public(), kp.private());
        let ms = [10i64, -20, 30];
        let ws = [1i64, -2, 3];
        let cts: Vec<_> = ms.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
        let got = pk.dot_i64(&cts, &ws);
        assert_eq!(sk.decrypt_i64(&got), 10 + 40 + 90);
    }
}
