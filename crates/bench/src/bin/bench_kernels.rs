//! **Kernel microbenchmark** — the fused Montgomery multi-exponentiation
//! dot kernel versus the naive per-term `mul_scalar`/`add` fold, plus the
//! encryption hot path (inline vs pooled `r^n`).
//!
//! Writes machine-readable results to `BENCH_paillier.json` (override
//! with `PP_BENCH_OUT`) and asserts along the way that the fused kernel
//! is *bit-identical* to the naive fold — a benchmark that silently
//! benchmarked a wrong kernel would be worse than none.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin bench_kernels            # full
//! cargo run -p pp-bench --release --bin bench_kernels -- --smoke # CI gate
//! ```
//!
//! Full mode sweeps `PP_KEY_BITS ∈ {256, 2048}` (or just `PP_KEY_BITS`
//! when set) and dot lengths {9, 64, 256, 1024} with ~25% negative
//! weights. Smoke mode (also `PP_BENCH_SMOKE=1`) runs 256-bit keys at
//! lengths {9, 64} and fails if the fused kernel is not at least as fast
//! as the naive fold — the CI regression gate for the kernel.

use pp_paillier::{Ciphertext, Keypair, PublicKey, RandomnessPool};
use pp_stream_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One benchmark row destined for the JSON report.
struct Sample {
    key_bits: usize,
    op: &'static str,
    /// Dot-product length; 0 for per-ciphertext ops.
    len: usize,
    ns_per_op: u128,
    ops_per_sec: f64,
}

/// Times `f` `reps` times and returns the *minimum* per-op duration
/// (noise-robust for CPU-bound work), where each rep performs `ops`
/// operations.
fn time_min<F: FnMut()>(reps: usize, ops: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best / ops.max(1) as u32
}

fn record(out: &mut Vec<Sample>, key_bits: usize, op: &'static str, len: usize, per_op: Duration) {
    let ns = per_op.as_nanos().max(1);
    out.push(Sample { key_bits, op, len, ns_per_op: ns, ops_per_sec: 1e9 / ns as f64 });
    let len_tag = if len > 0 { format!(" len={len}") } else { String::new() };
    println!("  {key_bits:>4}-bit {op:<14}{len_tag:<10} {:>12} ns/op", ns);
}

/// Signed weights with ~25% negative entries — the mix a trained layer
/// actually feeds the kernel (all-positive would skip the `modinv` path).
fn weights(rng: &mut StdRng, len: usize) -> Vec<i64> {
    (0..len)
        .map(|_| {
            let mag = rng.gen_range(1i64..1_000_000);
            if rng.gen_bool(0.25) {
                -mag
            } else {
                mag
            }
        })
        .collect()
}

/// The pre-kernel linear fold: one `pow_mod` and one `mul_mod` per term.
fn naive_dot(pk: &PublicKey, cts: &[Ciphertext], ws: &[i64]) -> Ciphertext {
    let mut acc = pk.encrypt_constant_i64(0);
    for (c, &w) in cts.iter().zip(ws) {
        acc = pk.add(&acc, &pk.mul_scalar_i64(c, w));
    }
    acc
}

fn bench_key_size(bits: usize, lens: &[usize], smoke: bool, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(bits as u64 ^ 0xD07);
    let kp = Keypair::generate(bits, &mut rng);
    let pk = kp.public();
    let enc_reps = if bits >= 2048 { 3 } else { 8 };
    let enc_ops = if bits >= 2048 { 4 } else { 64 };

    // Inline encryption: r^n computed on the request path.
    let ms: Vec<i64> = (0..enc_ops).map(|_| rng.gen_range(-1000i64..1000)).collect();
    let per = time_min(enc_reps, enc_ops, || {
        for &m in &ms {
            std::hint::black_box(pk.encrypt_i64(m, &mut rng));
        }
    });
    record(out, bits, "encrypt", 0, per);

    // Pooled encryption: r^n precomputed off-path (untimed refill); the
    // timed section is what a streaming client pays per input element.
    let workers = WorkerPool::new(4);
    let mut pool = RandomnessPool::new(kp.public());
    let mut pool_rng = StdRng::seed_from_u64(bits as u64 ^ 0xF00D);
    pool.refill_parallel(enc_ops * enc_reps, &workers, bits as u64 ^ 0xF2);
    let per = time_min(enc_reps, enc_ops, || {
        for &m in &ms {
            std::hint::black_box(pool.encrypt_i64(m, &mut pool_rng));
        }
    });
    assert_eq!(pool.misses(), 0, "pooled bench must not fall back to inline r^n");
    record(out, bits, "encrypt_pooled", 0, per);

    // Scalar multiply: the unit the naive fold is built from.
    let ct = pk.encrypt_i64(7, &mut rng);
    let mul_ops = if bits >= 2048 { 8 } else { 128 };
    let per = time_min(enc_reps, mul_ops, || {
        for i in 0..mul_ops {
            std::hint::black_box(pk.mul_scalar_i64(&ct, 999_983 + i as i64));
        }
    });
    record(out, bits, "mul_scalar_i64", 0, per);

    // Naive vs fused dot product across layer widths.
    for &len in lens {
        let cts: Vec<Ciphertext> =
            (0..len).map(|_| pk.encrypt_i64(rng.gen_range(-500i64..500), &mut rng)).collect();
        let ws = weights(&mut rng, len);

        // Bit-identity first: a fast wrong kernel must fail loudly here.
        let naive_ct = naive_dot(&pk, &cts, &ws);
        let fused_ct = pk.dot_i64(&cts, &ws);
        assert_eq!(
            fused_ct.raw(),
            naive_ct.raw(),
            "fused dot diverged from naive fold at {bits} bits, len {len}"
        );

        let dot_reps = if bits >= 2048 { 2 } else { 4 };
        let naive_per = time_min(dot_reps, 1, || {
            std::hint::black_box(naive_dot(&pk, &cts, &ws));
        });
        record(out, bits, "dot_naive", len, naive_per);
        let fused_per = time_min(dot_reps, 1, || {
            std::hint::black_box(pk.dot_i64(&cts, &ws));
        });
        record(out, bits, "dot_fused", len, fused_per);
        let speedup = naive_per.as_secs_f64() / fused_per.as_secs_f64().max(1e-12);
        println!("       dot len={len}: fused is {speedup:.2}x naive");
        if smoke {
            assert!(
                fused_per <= naive_per,
                "kernel regression: fused dot ({fused_per:?}) slower than naive \
                 ({naive_per:?}) at {bits} bits, len {len}"
            );
        }
    }
}

fn write_json(path: &str, mode: &str, samples: &[Sample]) {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"paillier_kernels\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    s.push_str("  \"results\": [\n");
    for (i, r) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"key_bits\": {}, \"op\": \"{}\", \"len\": {}, \
             \"ns_per_op\": {}, \"ops_per_sec\": {:.1}}}{comma}",
            r.key_bits, r.op, r.len, r.ns_per_op, r.ops_per_sec
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write benchmark JSON");
    println!("\nwrote {path}");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("PP_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let out_path =
        std::env::var("PP_BENCH_OUT").unwrap_or_else(|_| "BENCH_paillier.json".into());

    let key_sizes: Vec<usize> = if smoke {
        vec![256]
    } else if let Ok(v) = std::env::var("PP_KEY_BITS") {
        vec![v.parse().expect("PP_KEY_BITS must be an integer")]
    } else {
        vec![256, 2048]
    };
    let lens: &[usize] = if smoke { &[9, 64] } else { &[9, 64, 256, 1024] };

    println!(
        "=== Paillier kernel benchmark ({}) ===",
        if smoke { "smoke" } else { "full" }
    );
    let mut samples = Vec::new();
    for &bits in &key_sizes {
        println!("\nkey size {bits} bits:");
        bench_key_size(bits, lens, smoke, &mut samples);
    }
    write_json(&out_path, if smoke { "smoke" } else { "full" }, &samples);
    if smoke {
        println!("smoke gate passed: fused dot ≤ naive at every length");
    }
}
