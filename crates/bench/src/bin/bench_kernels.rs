//! **Kernel microbenchmark** — the fused Montgomery multi-exponentiation
//! dot kernel versus the naive per-term `mul_scalar`/`add` fold, the
//! encryption hot path (inline vs pooled `r^n`), pool refill (full-width
//! pow_mod vs fixed-base comb), and CRT decrypt (sequential vs parallel
//! halves).
//!
//! Writes machine-readable results to `BENCH_paillier.json` (override
//! with `PP_BENCH_OUT`) and asserts along the way that the fused kernel
//! is *bit-identical* to the naive fold — a benchmark that silently
//! benchmarked a wrong kernel would be worse than none.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin bench_kernels            # full
//! cargo run -p pp-bench --release --bin bench_kernels -- --smoke # CI gate
//! ```
//!
//! Full mode sweeps `PP_KEY_BITS ∈ {256, 2048}` (or just `PP_KEY_BITS`
//! when set) and dot lengths {9, 64, 256, 1024} with ~25% negative
//! weights. Smoke mode (also `PP_BENCH_SMOKE=1`) runs 256-bit keys at
//! lengths {9, 64} and fails if the fused kernel is not at least as fast
//! as the naive fold — the CI regression gate for the kernel.

use pp_paillier::packing::{PackedCiphertext, PackedMontInputs, PackingSpec};
use pp_paillier::{Ciphertext, Keypair, PublicKey, RandomnessPool};
use pp_stream_runtime::WorkerPool;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// One benchmark row destined for the JSON report.
struct Sample {
    key_bits: usize,
    op: &'static str,
    /// Dot-product length; 0 for per-ciphertext ops.
    len: usize,
    /// Requests served per evaluation (packed rows); 1 for per-item ops.
    batch: usize,
    ns_per_op: u128,
    ops_per_sec: f64,
}

/// Times `f` `reps` times and returns the *minimum* per-op duration
/// (noise-robust for CPU-bound work), where each rep performs `ops`
/// operations.
fn time_min<F: FnMut()>(reps: usize, ops: usize, mut f: F) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed());
    }
    best / ops.max(1) as u32
}

fn record(out: &mut Vec<Sample>, key_bits: usize, op: &'static str, len: usize, per_op: Duration) {
    record_batch(out, key_bits, op, len, 1, per_op);
}

/// As [`record`], with the packed batch size; `ns_per_op` is *per item*
/// so packed rows compare directly against the per-item kernels.
fn record_batch(
    out: &mut Vec<Sample>,
    key_bits: usize,
    op: &'static str,
    len: usize,
    batch: usize,
    per_op: Duration,
) {
    let ns = per_op.as_nanos().max(1);
    out.push(Sample { key_bits, op, len, batch, ns_per_op: ns, ops_per_sec: 1e9 / ns as f64 });
    let mut tag = if len > 0 { format!(" len={len}") } else { String::new() };
    if batch > 1 {
        let _ = write!(tag, " batch={batch}");
    }
    println!("  {key_bits:>4}-bit {op:<16}{tag:<16} {:>12} ns/op", ns);
}

/// Signed weights with ~25% negative entries — the mix a trained layer
/// actually feeds the kernel (all-positive would skip the `modinv` path).
fn weights(rng: &mut StdRng, len: usize) -> Vec<i64> {
    (0..len)
        .map(|_| {
            let mag = rng.gen_range(1i64..1_000_000);
            if rng.gen_bool(0.25) {
                -mag
            } else {
                mag
            }
        })
        .collect()
}

/// The pre-kernel linear fold: one `pow_mod` and one `mul_mod` per term.
fn naive_dot(pk: &PublicKey, cts: &[Ciphertext], ws: &[i64]) -> Ciphertext {
    let mut acc = pk.encrypt_constant_i64(0);
    for (c, &w) in cts.iter().zip(ws) {
        acc = pk.add(&acc, &pk.mul_scalar_i64(c, w));
    }
    acc
}

fn bench_key_size(bits: usize, lens: &[usize], smoke: bool, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(bits as u64 ^ 0xD07);
    let kp = Keypair::generate(bits, &mut rng);
    let pk = kp.public();
    let enc_reps = if bits >= 2048 { 3 } else { 8 };
    let enc_ops = if bits >= 2048 { 4 } else { 64 };

    // Inline encryption: r^n computed on the request path.
    let ms: Vec<i64> = (0..enc_ops).map(|_| rng.gen_range(-1000i64..1000)).collect();
    let per = time_min(enc_reps, enc_ops, || {
        for &m in &ms {
            std::hint::black_box(pk.encrypt_i64(m, &mut rng));
        }
    });
    record(out, bits, "encrypt", 0, per);

    // Pooled encryption: r^n precomputed off-path (untimed refill); the
    // timed section is what a streaming client pays per input element.
    let workers = WorkerPool::new(4);
    let mut pool = RandomnessPool::new(kp.public());
    let mut pool_rng = StdRng::seed_from_u64(bits as u64 ^ 0xF00D);
    pool.refill_parallel(enc_ops * enc_reps, &workers, bits as u64 ^ 0xF2);
    let per = time_min(enc_reps, enc_ops, || {
        for &m in &ms {
            std::hint::black_box(pool.encrypt_i64(m, &mut pool_rng));
        }
    });
    assert_eq!(pool.misses(), 0, "pooled bench must not fall back to inline r^n");
    record(out, bits, "encrypt_pooled", 0, per);

    // Scalar multiply: the unit the naive fold is built from.
    let ct = pk.encrypt_i64(7, &mut rng);
    let mul_ops = if bits >= 2048 { 8 } else { 128 };
    let per = time_min(enc_reps, mul_ops, || {
        for i in 0..mul_ops {
            std::hint::black_box(pk.mul_scalar_i64(&ct, 999_983 + i as i64));
        }
    });
    record(out, bits, "mul_scalar_i64", 0, per);

    // Naive vs fused dot product across layer widths.
    for &len in lens {
        let cts: Vec<Ciphertext> =
            (0..len).map(|_| pk.encrypt_i64(rng.gen_range(-500i64..500), &mut rng)).collect();
        let ws = weights(&mut rng, len);

        // Bit-identity first: a fast wrong kernel must fail loudly here.
        let naive_ct = naive_dot(&pk, &cts, &ws);
        let fused_ct = pk.dot_i64(&cts, &ws);
        assert_eq!(
            fused_ct.raw(),
            naive_ct.raw(),
            "fused dot diverged from naive fold at {bits} bits, len {len}"
        );

        let dot_reps = if bits >= 2048 { 2 } else { 4 };
        let naive_per = time_min(dot_reps, 1, || {
            std::hint::black_box(naive_dot(&pk, &cts, &ws));
        });
        record(out, bits, "dot_naive", len, naive_per);
        let fused_per = time_min(dot_reps, 1, || {
            std::hint::black_box(pk.dot_i64(&cts, &ws));
        });
        record(out, bits, "dot_fused", len, fused_per);
        let speedup = naive_per.as_secs_f64() / fused_per.as_secs_f64().max(1e-12);
        println!("       dot len={len}: fused is {speedup:.2}x naive");
        if smoke {
            assert!(
                fused_per <= naive_per,
                "kernel regression: fused dot ({fused_per:?}) slower than naive \
                 ({naive_per:?}) at {bits} bits, len {len}"
            );
        }
    }
}

/// Pool refill (full-width `r^n` pow_mod vs fixed-base comb walk) and
/// CRT decrypt (sequential halves vs two-worker parallel split), the two
/// sides of the fixed-base exponentiation layer. Before timing, each
/// pair is checked for agreement — the parallel decrypt must match the
/// sequential bit-for-bit, and a fixed-base pooled encryption must
/// round-trip through decrypt.
///
/// Smoke gates: `pool_refill_fixed_base` must never be slower than
/// `pool_refill` (the win is algorithmic — short exponent, no
/// squarings — so it holds on any host); `decrypt_crt_parallel` must
/// keep up with `decrypt_crt`, with a 15% grace on single-core hosts
/// where the split is pure overhead.
fn bench_refill_decrypt(bits: usize, smoke: bool, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(bits as u64 ^ 0x5EED);
    let kp = Keypair::generate(bits, &mut rng);
    let pk = kp.public();
    let sk = kp.private();
    let reps = if bits >= 2048 { 3 } else { 6 };
    let count = if bits >= 2048 { 4 } else { 32 };

    // Full-width refill: one |n|-bit pow_mod per blinding factor.
    let mut pow_pool = RandomnessPool::new(pk.clone());
    let mut refill_rng = StdRng::seed_from_u64(bits as u64 ^ 0x01);
    let pow_per = time_min(reps, count, || {
        pow_pool.refill_pow_mod(count, &mut refill_rng);
        while pow_pool.take_factor().is_some() {}
    });
    record(out, bits, "pool_refill", 0, pow_per);

    // Fixed-base refill: a short-exponent comb walk over the per-key
    // table. The table build is untimed — it comes from the shared cache
    // and amortizes across every pool under this key.
    let base = pp_paillier::shared_refill_cache().get(&pk);
    let mut fb_pool = RandomnessPool::with_base(pk.clone(), base);
    let fb_per = time_min(reps, count, || {
        fb_pool.refill(count, &mut refill_rng);
        while fb_pool.take_factor().is_some() {}
    });
    record(out, bits, "pool_refill_fixed_base", 0, fb_per);
    let speedup = pow_per.as_secs_f64() / fb_per.as_secs_f64().max(1e-12);
    println!("       pool refill: fixed-base is {speedup:.2}x pow_mod");
    if smoke {
        assert!(
            fb_per <= pow_per,
            "refill regression: fixed-base ({fb_per:?}) slower than pow_mod \
             ({pow_per:?}) at {bits} bits"
        );
    }

    // A fixed-base blinding factor must still produce a valid ciphertext.
    fb_pool.refill(1, &mut refill_rng);
    let ct = fb_pool.encrypt_i64(-12_345, &mut refill_rng);
    assert_eq!(
        sk.decrypt_i64(&ct),
        -12_345,
        "fixed-base blinding broke encryption at {bits} bits"
    );

    // CRT decrypt: the p²/q² halves sequentially vs on two workers.
    let ct = pk.encrypt_i64(987_654, &mut rng);
    let workers = WorkerPool::new(2);
    assert_eq!(
        sk.decrypt(&ct),
        sk.decrypt_crt_parallel(&ct, &workers),
        "parallel CRT decrypt diverged from sequential at {bits} bits"
    );
    let dec_ops = if bits >= 2048 { 4 } else { 64 };
    let seq_per = time_min(reps, dec_ops, || {
        for _ in 0..dec_ops {
            std::hint::black_box(sk.decrypt(&ct));
        }
    });
    record(out, bits, "decrypt_crt", 0, seq_per);
    let par_per = time_min(reps, dec_ops, || {
        for _ in 0..dec_ops {
            std::hint::black_box(sk.decrypt_crt_parallel(&ct, &workers));
        }
    });
    record(out, bits, "decrypt_crt_parallel", 0, par_per);
    let speedup = seq_per.as_secs_f64() / par_per.as_secs_f64().max(1e-12);
    println!("       decrypt: parallel CRT is {speedup:.2}x sequential");
    if smoke {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let budget = if cores < 2 { seq_per.mul_f64(1.15) } else { seq_per };
        assert!(
            par_per <= budget,
            "decrypt regression: parallel CRT ({par_per:?}) slower than sequential \
             ({seq_per:?}, budget {budget:?}, {cores} cores) at {bits} bits"
        );
    }
}

/// Batch-packed dot kernel versus the per-item fused kernel: one packed
/// evaluation over `len` ciphertexts serves `batch` requests at once, so
/// the per-item cost divides by the batch. Gates (when `gate`):
/// per-item packed ≤ per-item unpacked at batch ≥ 8, and ≥ 4× faster at
/// batch ≥ 32 — the acceptance bar for end-to-end ciphertext packing.
fn bench_packed_dot(bits: usize, slot_bits: usize, gate: bool, out: &mut Vec<Sample>) {
    let mut rng = StdRng::seed_from_u64(bits as u64 ^ 0xBA7C);
    let kp = Keypair::generate(bits, &mut rng);
    let pk = kp.public();
    let len = 9usize; // a 3×3 conv patch / small dense row

    // Small signed weights: the slot width must hold the op budget
    // (1 + Σ|wᵢ|) alongside the value payload, unlike the unbounded
    // weights of the per-item sweep.
    let ws: Vec<i64> =
        (0..len as i64).map(|i| if i % 4 == 0 { -(i % 13 + 1) } else { i % 13 + 1 }).collect();
    let mass: u64 = 1 + ws.iter().map(|w| w.unsigned_abs()).sum::<u64>();
    let spec = PackingSpec::for_key(&pk, slot_bits)
        .map(|s| s.with_budget(mass))
        .and_then(|s| s.check().map(|()| s))
        .expect("packed bench layout must fit the key");
    let bound = spec.value_bound().min(500);
    println!("  packed layout: {slot_bits}-bit slots x {}, budget {mass}", spec.slots);

    // Per-item baseline: the fused unpacked kernel on the same weights
    // and value magnitudes.
    let xs: Vec<i64> = (0..len).map(|_| rng.gen_range(1 - bound..bound)).collect();
    let cts: Vec<Ciphertext> = xs.iter().map(|&x| pk.encrypt_i64(x, &mut rng)).collect();
    let reps = if bits >= 2048 { 2 } else { 4 };
    let unpacked_per = time_min(reps, 1, || {
        std::hint::black_box(pk.dot_i64(&cts, &ws));
    });
    record_batch(out, bits, "dot_unpacked_ref", len, 1, unpacked_per);

    let mut batches = vec![8usize, 32, spec.slots];
    batches.iter_mut().for_each(|b| *b = (*b).min(spec.slots));
    batches.dedup();
    let bias = 3i64;
    for &batch in &batches {
        // Element e of request j — deterministic, within the value bound.
        let value = |e: usize, j: usize| ((e * 31 + j * 17) as i64 % (2 * bound - 1)) - (bound - 1);
        let packed: Vec<PackedCiphertext> = (0..len)
            .map(|e| {
                let slot_vals: Vec<i64> = (0..batch).map(|j| value(e, j)).collect();
                PackedCiphertext::encrypt(&pk, spec, &slot_vals, &mut rng).expect("pack")
            })
            .collect();
        let inputs = PackedMontInputs::new(&pk, &packed).expect("packed inputs");
        let terms: Vec<(usize, i64)> = ws.iter().copied().enumerate().collect();

        // Bit-identity first: slot j must decode to request j's dot.
        let got =
            inputs.dot_i64(&terms, bias).expect("packed dot").decrypt(&kp.private()).expect("slots");
        for (j, &slot) in got.iter().enumerate().take(batch) {
            let want: i64 = ws.iter().enumerate().map(|(e, &w)| w * value(e, j)).sum::<i64>() + bias;
            assert_eq!(slot, want, "packed dot diverged for member {j} at batch {batch}");
        }

        let per_eval = time_min(reps, 1, || {
            std::hint::black_box(inputs.dot_i64(&terms, bias).expect("packed dot"));
        });
        let per_item = per_eval / batch as u32;
        record_batch(out, bits, "dot_packed", len, batch, per_item);
        let speedup = unpacked_per.as_secs_f64() / per_item.as_secs_f64().max(1e-12);
        println!("       packed dot batch={batch}: {speedup:.2}x per-item vs unpacked fused");
        if gate && batch >= 8 {
            assert!(
                per_item <= unpacked_per,
                "packing regression: per-item packed dot ({per_item:?}) slower than \
                 unpacked ({unpacked_per:?}) at {bits} bits, batch {batch}"
            );
        }
        if gate && batch >= 32 {
            assert!(
                speedup >= 4.0,
                "packing acceptance: per-item packed dot must be ≥4x the unpacked \
                 kernel at batch {batch} ({bits} bits), got {speedup:.2}x"
            );
        }
    }
}

fn write_json(path: &str, mode: &str, samples: &[Sample]) {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"paillier_kernels\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    // The parallel-CRT rows only show their 2x on multi-core hosts;
    // record what this run actually had.
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(s, "  \"host_cores\": {cores},");
    s.push_str("  \"results\": [\n");
    for (i, r) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"key_bits\": {}, \"op\": \"{}\", \"len\": {}, \"batch\": {}, \
             \"ns_per_op\": {}, \"ops_per_sec\": {:.1}}}{comma}",
            r.key_bits, r.op, r.len, r.batch, r.ns_per_op, r.ops_per_sec
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write benchmark JSON");
    println!("\nwrote {path}");
}

/// The slot width benched per key size: wide enough for realistic
/// activations, narrow enough to pack a useful batch.
fn slot_bits_for(key_bits: usize) -> usize {
    if key_bits >= 2048 {
        32
    } else {
        16
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("PP_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let packed_gate = std::env::args().any(|a| a == "--packed-gate");
    let out_path =
        std::env::var("PP_BENCH_OUT").unwrap_or_else(|_| "BENCH_paillier.json".into());

    if packed_gate {
        // Packed-dot acceptance gate only (no JSON artifact): per-item
        // packed ≤ unpacked at batch ≥ 8, and ≥4x at batch 32 on
        // 2048-bit keys — run from ci.sh.
        println!("=== Packed-dot kernel gate ===");
        let mut samples = Vec::new();
        for bits in [256usize, 2048] {
            println!("\nkey size {bits} bits:");
            bench_packed_dot(bits, slot_bits_for(bits), true, &mut samples);
        }
        println!("packed gate passed: per-item packed ≤ unpacked at batch ≥ 8, ≥4x at batch 32");
        return;
    }

    let key_sizes: Vec<usize> = if smoke {
        vec![256]
    } else if let Ok(v) = std::env::var("PP_KEY_BITS") {
        vec![v.parse().expect("PP_KEY_BITS must be an integer")]
    } else {
        vec![256, 2048]
    };
    let lens: &[usize] = if smoke { &[9, 64] } else { &[9, 64, 256, 1024] };

    println!(
        "=== Paillier kernel benchmark ({}) ===",
        if smoke { "smoke" } else { "full" }
    );
    let mut samples = Vec::new();
    for &bits in &key_sizes {
        println!("\nkey size {bits} bits:");
        bench_key_size(bits, lens, smoke, &mut samples);
        bench_refill_decrypt(bits, smoke, &mut samples);
        bench_packed_dot(bits, slot_bits_for(bits), smoke, &mut samples);
    }
    if smoke && !key_sizes.contains(&2048) {
        // The refill and CRT gates only mean something at production
        // key size; run them once at 2048 bits even in smoke mode.
        println!("\nkey size 2048 bits (refill/decrypt gates):");
        bench_refill_decrypt(2048, true, &mut samples);
    }
    write_json(&out_path, if smoke { "smoke" } else { "full" }, &samples);
    if smoke {
        println!(
            "smoke gate passed: fused ≤ naive, packed per-item ≤ unpacked, \
             fixed-base refill ≤ pow_mod, parallel CRT ≤ sequential"
        );
    }
}
