//! **Exp#6 (Table VII)** — comparison with state-of-the-art systems on
//! the MNIST-1/2/3 models.
//!
//! * **PP-Stream** — simulated on the paper's server shape from measured
//!   single-thread profiles (all features enabled).
//! * **EzPC** — our mini-ABY reimplementation, executed for real
//!   (arithmetic sharing + one garbled circuit per ReLU element +
//!   A2Y/Y2A conversions); its network cost is modeled on the same
//!   10 Gbps / 100 µs link as PP-Stream's, with the communication rounds
//!   EzPC pays per layer. The dealer-provided Beaver triples exclude OT
//!   preprocessing — the paper's numbers exclude offline costs too.
//! * **SecureML / CryptoNets / CryptoDL** — artifacts unavailable; the
//!   paper itself compares against their published numbers, which we
//!   reprint in the rightmost column.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp6_sota
//! ```

use pp_allocate::{Role, ServerSpec};
use pp_bench::{banner, fmt_dur, key_bits, latency_models, row};
use pp_mpc::nn::SecureInference;
use pp_nn::ScaledModel;
use pp_stream::protocol::PartitionMode;
use pp_stream::simulate::{ciphertext_bytes, measure_serialization_throughput, simulate, NetworkModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use std::time::{Duration, Instant};

fn main() {
    banner("Exp#6: comparison with state-of-the-art", "paper Table VII");
    let models: Vec<_> = latency_models(13)
        .into_iter()
        .filter(|m| m.name.starts_with("MNIST"))
        .collect();
    let ct = ciphertext_bytes(key_bits());
    let ser = measure_serialization_throughput(ct);
    let net = NetworkModel::default();

    row(&[
        "model".into(),
        "PP-Stream (sim)".into(),
        "EzPC/mini-ABY compute".into(),
        "EzPC + network".into(),
        "paper-reported".into(),
    ]);

    for bm in &models {
        // PP-Stream with the paper's per-model scaling factor and server
        // shape (Table III / Table VII footnotes).
        let scaled = ScaledModel::from_model(&bm.model, bm.factor.min(10_000));
        let servers: Vec<ServerSpec> = (0..bm.servers.0)
            .map(|_| ServerSpec { role: Role::Linear, cores: 24 })
            .chain((0..bm.servers.1).map(|_| ServerSpec { role: Role::NonLinear, cores: 24 }))
            .collect();
        let cfg = PpStreamConfig {
            key_bits: key_bits(),
            servers,
            profile_samples: 1,
            ..Default::default()
        };
        let session = PpStream::new(scaled, cfg).expect("session");
        let profiles = pp_bench::profile_min(&session, PartitionMode::Partitioned, 2);
        let pp = simulate(
            &profiles,
            session.stages(),
            session.plan().threads(),
            PartitionMode::Partitioned,
            ct,
            ser,
            &net,
        )
        .latency;

        // EzPC baseline: really execute the 2PC protocol, including real
        // IKNP OT-extension preprocessing for the Beaver triples (set
        // PP_DEALER=1 to fall back to free dealer triples).
        let shape = bm.model.input_shape().clone();
        let input: Vec<f64> = (0..shape.len())
            .map(|i| (((i * 13) % 200) as f64 / 100.0) - 1.0)
            .collect();
        let input = Tensor::from_vec(shape, input).expect("sized");
        let use_dealer = std::env::var("PP_DEALER").map(|v| v == "1").unwrap_or(false);
        let mut mpc = if use_dealer {
            SecureInference::new(bm.model.clone(), 5)
        } else {
            SecureInference::new_with_ot(bm.model.clone(), 5).expect("ot preprocessing")
        };
        let t0 = Instant::now();
        let (_, cost) = mpc.infer(&input).expect("mpc");
        let ezpc_compute = t0.elapsed() + cost.preprocessing;
        // Network model: bytes at link bandwidth + one RTT per
        // communication round (arithmetic rounds + 2 rounds per GC batch:
        // label transfer + result).
        let rounds = cost.arithmetic_rounds + 2 * cost.gc_executions.min(64);
        let ezpc_net = Duration::from_secs_f64(
            cost.bytes as f64 / net.bandwidth + rounds as f64 * net.rtt,
        );
        let ezpc_total = ezpc_compute + ezpc_net;

        let reported = match bm.name.as_str() {
            "MNIST-1" => "SecureML 4.88 s* | EzPC 2.42 s | PP-Stream 0.72 s",
            "MNIST-2" => "CryptoNets 297.5 s* | CryptoDL 320 s* | EzPC 2.92 s | PP-Stream 1.14 s",
            "MNIST-3" => "EzPC 25.66 s | PP-Stream 12.20 s",
            _ => "",
        };

        row(&[
            bm.name.clone(),
            fmt_dur(pp),
            fmt_dur(ezpc_compute),
            fmt_dur(ezpc_total),
            reported.into(),
        ]);
        print!(
            "    EzPC cost structure: {} Beaver triples, {} GC executions, {} AND gates, {:.1} MB online",
            cost.triples,
            cost.gc_executions,
            cost.and_gates,
            cost.bytes as f64 / 1e6
        );
        match cost.ot {
            Some(ot) => println!(
                "; OT preprocessing {} ({} base + {:.1}M extended OTs, {:.1} MB)",
                fmt_dur(cost.preprocessing),
                ot.base_ots,
                ot.extended_ots as f64 / 1e6,
                ot.bytes as f64 / 1e6
            ),
            None => println!(" (dealer triples, no preprocessing)"),
        }
    }
    println!("\npaper shape: PP-Stream beats EzPC by 2–3× (protocol-switching overhead)");
    println!("and homomorphic-only systems (CryptoNets/CryptoDL) by orders of magnitude.");
    println!("(*) numbers reported in the respective publications, as in the paper.");
    println!("\nnote: the EzPC columns include IKNP OT-extension preprocessing (the cost");
    println!("real EzPC pays for Beaver triples); PP_DEALER=1 switches to free dealer");
    println!("triples for an online-only comparison.");
}
