//! **Fig. 1** — homomorphic encryption microbenchmark.
//!
//! The paper's motivating experiment: encrypt a 28×28 tensor, scalar-
//! multiply by 10⁶, homomorphically add, decrypt; repeat over inputs and
//! report mean per-step latency versus Paillier key size, plus the
//! plaintext comparison (the paper measures 2.1 µs / 1.7 µs).
//!
//! ```sh
//! cargo run -p pp-bench --release --bin fig1
//! PP_FULL=1 cargo run -p pp-bench --release --bin fig1   # adds 2048-bit
//! ```

use pp_bench::{banner, fmt_dur, full_mode, row};
use pp_paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

fn main() {
    banner("Fig. 1: Paillier microbenchmark", "paper Fig. 1 (Sec. I-A)");
    let key_sizes: &[usize] = if full_mode() {
        &[256, 512, 1024, 2048]
    } else {
        &[128, 256, 512, 1024]
    };
    let tensor: Vec<i64> = (0..28 * 28).map(|i| (i % 256) as i64 - 128).collect();
    let reps = if full_mode() { 3 } else { 2 };

    row(&["key bits".into(), "encrypt".into(), "scalar ×10⁶".into(), "add".into(), "decrypt".into()]);
    for &bits in key_sizes {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let kp = Keypair::generate(bits, &mut rng);
        let (pk, sk) = (kp.public(), kp.private());

        let mut t_enc = Duration::ZERO;
        let mut t_mul = Duration::ZERO;
        let mut t_add = Duration::ZERO;
        let mut t_dec = Duration::ZERO;
        for _ in 0..reps {
            let t0 = Instant::now();
            let cts: Vec<_> = tensor.iter().map(|&m| pk.encrypt_i64(m, &mut rng)).collect();
            t_enc += t0.elapsed();

            let t0 = Instant::now();
            let muls: Vec<_> = cts.iter().map(|c| pk.mul_scalar_i64(c, 1_000_000)).collect();
            t_mul += t0.elapsed();

            let t0 = Instant::now();
            let sums: Vec<_> = cts.iter().zip(&muls).map(|(a, b)| pk.add(a, b)).collect();
            t_add += t0.elapsed();

            let t0 = Instant::now();
            let dec: Vec<i128> = sums.iter().map(|c| sk.decrypt_i128(c)).collect();
            t_dec += t0.elapsed();
            // Correctness of the benchmarked pipeline.
            for (&m, &d) in tensor.iter().zip(&dec) {
                assert_eq!(d, m as i128 + m as i128 * 1_000_000);
            }
        }
        let per = |t: Duration| fmt_dur(t / reps as u32);
        row(&[
            bits.to_string(),
            per(t_enc),
            per(t_mul),
            per(t_add),
            per(t_dec),
        ]);
    }

    // Plaintext comparison (paper: 2.1 µs mult, 1.7 µs add per tensor).
    let t0 = Instant::now();
    let mut sink = 0i64;
    for _ in 0..1000 {
        for &m in &tensor {
            sink = sink.wrapping_add(m.wrapping_mul(1_000_000));
        }
    }
    let mul_plain = t0.elapsed() / 1000;
    let t0 = Instant::now();
    for _ in 0..1000 {
        for &m in &tensor {
            sink = sink.wrapping_add(m);
        }
    }
    let add_plain = t0.elapsed() / 1000;
    std::hint::black_box(sink);
    println!(
        "\nplaintext tensor ops: scalar-mult {} | add {}  (paper: 2.1 µs / 1.7 µs)",
        fmt_dur(mul_plain),
        fmt_dur(add_plain)
    );
    println!("\npaper shape: enc/dec of a 28×28 tensor are seconds-order at 2048 bits,");
    println!("arithmetic is ms-order, plaintext is µs-order — 2+ orders of magnitude apart.");
}
