//! **Exp#1 (Tables IV & V)** — inference accuracy versus scaling factor.
//!
//! For each of the nine evaluation models: round parameters to `f`
//! decimal places for `f = 0..6`, report accuracy on the training set
//! (Table IV) and the testing set (Table V), and mark the factor chosen
//! by the paper's selection rule (ΔA < 0.01%, f ≤ 6).
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp1_accuracy
//! ```

use pp_bench::{banner, full_mode, row, trained_models};
use pp_nn::{choose_scaling_factor, round_params};

fn main() {
    banner("Exp#1: accuracy vs scaling factor", "paper Tables IV and V");
    let models = trained_models(full_mode());

    for (split, table) in [("training", "Table IV"), ("testing", "Table V")] {
        println!("--- {table}: accuracy on the {split} set (%) ---");
        let mut header = vec!["model".to_string()];
        header.extend((0..=6).map(|f| format!("10^{f}")));
        header.push("original".into());
        header.push("chosen".into());
        row(&header);

        for (data, model) in &models {
            let eval_set = if split == "training" { &data.train } else { &data.test };
            // Keep evaluation affordable on CI-scale machines.
            let cap = if full_mode() { 400 } else { 120 };
            let eval: Vec<_> = eval_set.iter().take(cap).cloned().collect();

            let original = model.accuracy(&eval).expect("accuracy");
            let mut cells = vec![model.name().to_string()];
            for f in 0..=6u32 {
                let acc = round_params(model, f).accuracy(&eval).expect("accuracy");
                cells.push(format!("{:.2}", acc * 100.0));
            }
            cells.push(format!("{:.2}", original * 100.0));
            // Selection always runs on the training set (paper Step 1-2).
            let train_cap: Vec<_> = data.train.iter().take(cap).cloned().collect();
            let report = choose_scaling_factor(model, &train_cap, 1e-4, 6).expect("selection");
            cells.push(format!("10^{}", report.f));
            row(&cells);
        }
        println!();
    }
    println!("paper shape: accuracy is near-chance at 10^0, rises with the factor, and");
    println!("matches the original model from the selected factor onward.");
}
