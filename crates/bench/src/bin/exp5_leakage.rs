//! **Exp#5 (Table VI)** — information-leakage measurement.
//!
//! Exactly the paper's procedure: run the privacy-preserving inference
//! on the evaluation models, export every tensor that is about to be
//! obfuscated, obfuscate it, and measure the distance correlation
//! between before- and after-obfuscation tensors, grouped by tensor
//! length (2⁵..2¹³).
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp5_leakage
//! ```

use pp_bench::{banner, latency_models, row};
use pp_nn::ScaledModel;
use pp_obfuscate::{distance_correlation, Permutation};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

fn main() {
    banner("Exp#5: information leakage (distance correlation)", "paper Table VI");
    let mut rng = StdRng::seed_from_u64(42);

    // Export the tensors the model provider would obfuscate: the scaled
    // linear-stage outputs of each evaluation model on sample inputs.
    let mut by_length: BTreeMap<usize, Vec<Vec<f64>>> = BTreeMap::new();
    for bm in latency_models(11) {
        let scaled = ScaledModel::from_model(&bm.model, 1_000);
        let shape = bm.model.input_shape().clone();
        let data: Vec<f64> = (0..shape.len())
            .map(|i| (((i * 37) % 200) as f64 / 100.0) - 1.0)
            .collect();
        let input = Tensor::from_vec(shape, data).expect("sized");
        let x = scaled.scale_input(&input);
        // Walk the scaled ops, recording every linear-stage output (the
        // tensor that gets permuted before crossing to the data
        // provider).
        let mut t: Tensor<i128> = x.map(|&v| v as i128);
        for op in scaled.ops() {
            use pp_nn::scaling::ScaledOp;
            let is_linear = op.is_linear();
            t = step(op, &t, scaled.factor());
            if is_linear && !matches!(op, ScaledOp::Flatten) {
                let floats: Vec<f64> = t.data().iter().map(|&v| v as f64).collect();
                // Bucket to the nearest power-of-two length in 2^5..2^13.
                let n = floats.len();
                if n >= 32 {
                    // Truncate to the largest power of two ≤ n in 2^5..2^13.
                    let pow = (usize::BITS - 1 - n.leading_zeros()).clamp(5, 13);
                    let len = 1usize << pow;
                    by_length.entry(len).or_default().push(floats[..len].to_vec());
                }
            }
        }
    }

    // Fill lengths that the model set does not produce with synthetic
    // activation-like tensors, so the full 2^5..2^13 sweep is reported
    // (the paper's table spans all of them).
    for exp in 5..=13u32 {
        let n = 1usize << exp;
        by_length.entry(n).or_default();
        let bucket = by_length.get_mut(&n).expect("just inserted");
        while bucket.len() < 3 {
            use rand::Rng;
            bucket.push((0..n).map(|_| rng.gen_range(-1.0..1.0f64).max(0.0)).collect());
        }
    }

    row(&["tensor length".into(), "distance correlation".into(), "samples".into()]);
    for (len, tensors) in &by_length {
        let mut dcors = Vec::new();
        for t in tensors.iter().take(5) {
            if t.iter().all(|&v| v == t[0]) {
                continue; // constant tensors have undefined correlation
            }
            let perm = Permutation::random(t.len(), &mut rng);
            let obf = perm.apply(t).expect("lengths match");
            dcors.push(distance_correlation(t, &obf));
        }
        if dcors.is_empty() {
            continue;
        }
        let mean = dcors.iter().sum::<f64>() / dcors.len() as f64;
        row(&[format!("2^{} = {len}", (*len as f64).log2() as u32), format!("{mean:.4}"), dcors.len().to_string()]);
    }
    println!("\npaper shape: dcor falls from 0.2898 at 2^5 to 0.0200 at 2^13 — larger");
    println!("tensors leak less positional information.");
}

fn step(op: &pp_nn::scaling::ScaledOp, t: &Tensor<i128>, factor: i64) -> Tensor<i128> {
    use pp_nn::activation::sigmoid_scalar;
    use pp_nn::scaling::{div_round, ScaledOp};
    use pp_tensor::{ops, PlainI128};
    match op {
        ScaledOp::Conv2d { spec, weights, bias } => {
            ops::conv2d(&PlainI128, t, weights, bias, spec).expect("shapes")
        }
        ScaledOp::Dense { weights, bias } => {
            ops::fully_connected(&PlainI128, t, weights, bias).expect("shapes")
        }
        ScaledOp::Affine { scale, shift } => ops::affine(&PlainI128, t, scale, shift).expect("shapes"),
        ScaledOp::ScaleMul { alpha } => t.map(|&x| x * *alpha as i128),
        ScaledOp::ReLU { rescale } => t.map(|&x| div_round(x, *rescale).max(0)),
        ScaledOp::Sigmoid { rescale } => {
            let f = factor as f64;
            t.map(|&x| (sigmoid_scalar(div_round(x, *rescale) as f64 / f) * f).round() as i128)
        }
        ScaledOp::SoftMax { rescale } => t.map(|&x| div_round(x, *rescale)),
        ScaledOp::MaxPool { window, stride, rescale } => {
            let r = t.map(|&x| div_round(x, *rescale));
            ops::max_pool2d(&r, *window, *stride).expect("shapes")
        }
        ScaledOp::SumPool { window, stride } => {
            ops::sum_pool2d(&PlainI128, t, *window, *stride).expect("shapes")
        }
        ScaledOp::Flatten => t.clone().flatten(),
    }
}
