//! **Exp#4 (Fig. 9)** — tensor partitioning.
//!
//! For each healthcare + MNIST model, sweep the total core count and
//! compare partitioned dispatch (output partitioning for dense layers,
//! input+output for convolutions) against whole-tensor-per-element
//! dispatch. Streaming and load balancing enabled in both variants.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp4_partition
//! ```

use pp_allocate::{Role, ServerSpec};
use pp_bench::{banner, fmt_dur, full_mode, key_bits, latency_models, row};
use pp_nn::ScaledModel;
use pp_stream::protocol::PartitionMode;
use pp_stream::simulate::{ciphertext_bytes, measure_serialization_throughput, simulate, NetworkModel};
use pp_stream::{PpStream, PpStreamConfig};

/// Even split of `total` cores over the Table III server shape, with a
/// per-role floor so every pipeline stage can get at least one thread
/// slot (hyper-threading doubles slots per core, Eq. 8).
fn servers_for(
    total: usize,
    shape: (usize, usize),
    min_role_slots: (usize, usize),
) -> Vec<ServerSpec> {
    let n = shape.0 + shape.1;
    let per = (total / n).max(1);
    let mut extra = total.saturating_sub(per * n);
    let mut out = Vec::new();
    for r in 0..n {
        let (role, min_slots, count) = if r < shape.0 {
            (Role::Linear, min_role_slots.0, shape.0)
        } else {
            (Role::NonLinear, min_role_slots.1, shape.1)
        };
        let floor = min_slots.div_ceil(2 * count); // 2 slots per core (HT)
        let c = (per + usize::from(extra > 0)).max(floor.max(1));
        extra = extra.saturating_sub(1);
        out.push(ServerSpec { role, cores: c });
    }
    out
}

/// Minimum thread slots per role: one per stage of that role.
fn role_minimums(session: &PpStream) -> (usize, usize) {
    use pp_stream::StageRole;
    let lin = session.stages().iter().filter(|s| s.role == StageRole::Linear).count();
    let non = session.stages().len() - lin + 1; // + encrypt stage
    (lin, non)
}

fn main() {
    banner("Exp#4: tensor partitioning", "paper Fig. 9");
    let models = latency_models(7);
    let cores: &[usize] = if full_mode() { &[8, 16, 24, 32, 48] } else { &[8, 16, 32] };
    let ct = ciphertext_bytes(key_bits());
    let ser = measure_serialization_throughput(ct);
    let net = NetworkModel::default();

    let mut header = vec!["model".to_string(), "partitioning".into()];
    header.extend(cores.iter().map(|c| format!("{c} cores")));
    header.push("max gain".into());
    row(&header);

    for bm in &models {
        let scaled = ScaledModel::from_model(&bm.model, bm.factor.min(10_000));
        let cfg = PpStreamConfig {
            key_bits: key_bits(),
            servers: servers_for(*cores.last().unwrap(), bm.servers, (16, 16)),
            profile_samples: 1,
            ..Default::default()
        };
        let session = PpStream::new(scaled, cfg).expect("session");

        // Profile once per mode: the no-partition run really performs the
        // per-element dispatch, so its measured work is larger.
        let prof_part = pp_bench::profile_min(&session, PartitionMode::Partitioned, 2);
        let prof_none = pp_bench::profile_min(&session, PartitionMode::None, 2);

        let lat = |total: usize, mode: PartitionMode| {
            let servers = servers_for(total, bm.servers, role_minimums(&session));
            let plan = session.plan_for(&servers, true, true).expect("allocation plan");
            let profiles = match mode {
                PartitionMode::Partitioned => &prof_part,
                PartitionMode::None => &prof_none,
            };
            simulate(profiles, session.stages(), plan.threads(), mode, ct, ser, &net).latency
        };

        let with: Vec<_> = cores.iter().map(|&c| lat(c, PartitionMode::Partitioned)).collect();
        let without: Vec<_> = cores.iter().map(|&c| lat(c, PartitionMode::None)).collect();
        let max_gain = with
            .iter()
            .zip(&without)
            .map(|(w, wo)| 1.0 - w.as_secs_f64() / wo.as_secs_f64())
            .fold(f64::MIN, f64::max);

        let mut cells = vec![bm.name.clone(), "without".into()];
        cells.extend(without.iter().map(|d| fmt_dur(*d)));
        cells.push(String::new());
        row(&cells);
        let mut cells = vec![String::new(), "with".into()];
        cells.extend(with.iter().map(|d| fmt_dur(*d)));
        cells.push(format!("{:.1}%", max_gain * 100.0));
        row(&cells);
    }
    println!("\npaper shape: gains up to 61.6%, growing with core count; conv models");
    println!("(MNIST-2/3) gain more than dense-only models (input partitioning applies).");
}
