//! **Exp#3 (Fig. 7)** — load-balanced resource allocation.
//!
//! For each healthcare + MNIST model, sweep the total core count and
//! compare the ILP allocation (Sec. IV-C) against the even split.
//! Streaming and tensor partitioning are enabled in both variants (the
//! paper's Exp#3 configuration). Latency simulated from measured
//! single-thread profiles.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp3_loadbalance
//! ```

use pp_allocate::{Role, ServerSpec};
use pp_bench::{banner, fmt_dur, full_mode, key_bits, latency_models, row};
use pp_nn::ScaledModel;
use pp_stream::protocol::PartitionMode;
use pp_stream::simulate::{ciphertext_bytes, measure_serialization_throughput, simulate, NetworkModel};
use pp_stream::{PpStream, PpStreamConfig};

/// Even split of `total` cores over the Table III server shape, with a
/// per-role floor so every pipeline stage can get at least one thread
/// slot (hyper-threading doubles slots per core, Eq. 8).
fn servers_for(
    total: usize,
    shape: (usize, usize),
    min_role_slots: (usize, usize),
) -> Vec<ServerSpec> {
    let n = shape.0 + shape.1;
    let per = (total / n).max(1);
    let mut extra = total.saturating_sub(per * n);
    let mut out = Vec::new();
    for r in 0..n {
        let (role, min_slots, count) = if r < shape.0 {
            (Role::Linear, min_role_slots.0, shape.0)
        } else {
            (Role::NonLinear, min_role_slots.1, shape.1)
        };
        let floor = min_slots.div_ceil(2 * count); // 2 slots per core (HT)
        let c = (per + usize::from(extra > 0)).max(floor.max(1));
        extra = extra.saturating_sub(1);
        out.push(ServerSpec { role, cores: c });
    }
    out
}

/// Minimum thread slots per role: one per stage of that role.
fn role_minimums(session: &PpStream) -> (usize, usize) {
    use pp_stream::StageRole;
    let lin = session.stages().iter().filter(|s| s.role == StageRole::Linear).count();
    let non = session.stages().len() - lin + 1; // + encrypt stage
    (lin, non)
}

fn main() {
    banner("Exp#3: load-balanced resource allocation", "paper Fig. 7");
    let models = latency_models(5);
    let cores: &[usize] = if full_mode() { &[8, 16, 24, 32, 48] } else { &[8, 16, 32] };
    let ct = ciphertext_bytes(key_bits());
    let ser = measure_serialization_throughput(ct);
    let net = NetworkModel::default();

    let mut header = vec!["model".to_string(), "policy".into()];
    header.extend(cores.iter().map(|c| format!("{c} cores")));
    header.push("max gain".into());
    row(&header);

    for bm in &models {
        let scaled = ScaledModel::from_model(&bm.model, bm.factor.min(10_000));
        let cfg = PpStreamConfig {
            key_bits: key_bits(),
            servers: servers_for(*cores.last().unwrap(), bm.servers, (16, 16)),
            profile_samples: 1,
            ..Default::default()
        };
        let session = PpStream::new(scaled, cfg).expect("session");
        let profiles = pp_bench::profile_min(&session, PartitionMode::Partitioned, 2);

        let lat = |total: usize, lb: bool| {
            let servers = servers_for(total, bm.servers, role_minimums(&session));
            let plan = session.plan_for(&servers, lb, true).expect("allocation plan");
            simulate(
                &profiles,
                session.stages(),
                plan.threads(),
                PartitionMode::Partitioned,
                ct,
                ser,
                &net,
            )
            .latency
        };

        let with: Vec<_> = cores.iter().map(|&c| lat(c, true)).collect();
        let without: Vec<_> = cores.iter().map(|&c| lat(c, false)).collect();
        let max_gain = with
            .iter()
            .zip(&without)
            .map(|(w, wo)| 1.0 - w.as_secs_f64() / wo.as_secs_f64())
            .fold(f64::MIN, f64::max);

        let mut cells = vec![bm.name.clone(), "even split".into()];
        cells.extend(without.iter().map(|d| fmt_dur(*d)));
        cells.push(String::new());
        row(&cells);
        let mut cells = vec![String::new(), "load-balanced".into()];
        cells.extend(with.iter().map(|d| fmt_dur(*d)));
        cells.push(format!("{:.1}%", max_gain * 100.0));
        row(&cells);
    }
    println!("\npaper shape: load balancing cuts latency ~42.6% on average (up to 64.9%,");
    println!("largest for MNIST-3); returns diminish as cores grow.");
}
