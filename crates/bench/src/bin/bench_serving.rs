//! **Serving benchmark** — the readiness event loop under many
//! concurrent sessions: per-session serving (every linear round executes
//! inline on its shard) versus cross-session batching (rounds from
//! different sessions gathered into one fused pool dispatch).
//!
//! Writes machine-readable results to `BENCH_serving.json` (override
//! with `PP_BENCH_OUT`) and asserts along the way that the server's
//! `ServeReport` agrees *exactly* with the summed client
//! `TransportReport`s — a serving benchmark that lost frames would be
//! worse than none.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin bench_serving            # full
//! cargo run -p pp-bench --release --bin bench_serving -- --smoke # CI gate
//! ```
//!
//! Full mode sweeps {16, 64} concurrent sessions; smoke mode runs the
//! 64-session point only and gates on three invariants: counter
//! agreement, batched per-item server compute ≤ 1.25× per-session, and
//! client p99 ≤ 3× the committed `BENCH_serving.json` baseline.

use pp_nn::{zoo, ScaledModel};
use pp_stream::{ModelProvider, NetConfig, NetworkedSession, ServeOptions};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const ITEMS_PER_SESSION: u64 = 2;
const KEY_BITS: usize = 128;
const GATHER: Duration = Duration::from_micros(800);

/// One serving configuration's measured row.
struct Row {
    serving: &'static str,
    sessions: usize,
    requests: u64,
    p50_us: u128,
    p99_us: u128,
    mean_us: u128,
    makespan_ms: u128,
    exec_ns_per_item: u128,
    batched_rounds: u64,
    batched_items: u64,
}

fn model() -> ScaledModel {
    let mut rng = StdRng::seed_from_u64(31);
    let model = zoo::mlp("serving-mlp", &[4, 6, 3], &mut rng).expect("model");
    ScaledModel::from_model(&model, 10_000)
}

fn inputs(n: u64, width: usize) -> Vec<Tensor<f64>> {
    (0..n)
        .map(|seq| {
            Tensor::from_flat(
                (0..width as u64)
                    .map(|j| ((seq * width as u64 + j) as f64 * 0.37).sin())
                    .collect::<Vec<f64>>(),
            )
        })
        .collect()
}

fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[((sorted.len() * p) / 100).min(sorted.len() - 1)]
}

/// Runs `sessions` concurrent clients of [`ITEMS_PER_SESSION`] items
/// each against one supervised server and checks the books balance.
fn run_config(serving: &'static str, sessions: usize, gather_window: Duration) -> Row {
    let scaled = model();
    let mut config = NetConfig::small_test(KEY_BITS);
    config.threads = 1;

    let provider = std::sync::Arc::new(ModelProvider::new(&scaled, &config).expect("provider"));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions { gather_window, ..ServeOptions::default() };
    let handle =
        std::sync::Arc::clone(&provider).serve_forever(listener, options).expect("spawn server");
    let addr = handle.addr();

    let items = inputs(ITEMS_PER_SESSION, 4);
    let t0 = Instant::now();
    let clients: Vec<_> = (0..sessions)
        .map(|i| {
            let scaled = scaled.clone();
            let config = config.clone();
            let items = items.clone();
            std::thread::Builder::new()
                .name(format!("bench-client-{i}"))
                .spawn(move || {
                    let mut session = NetworkedSession::connect(addr, scaled, &config)
                        .expect("connect + handshake");
                    let (classes, report) =
                        session.classify_stream_partial(&items).expect("inference");
                    assert!(classes.iter().all(|c| c.is_some()), "every item must resolve");
                    (report.latencies, session.shutdown())
                })
                .expect("spawn client")
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::new();
    let (mut sent, mut received, mut bytes_sent, mut bytes_received) = (0u64, 0u64, 0u64, 0u64);
    for c in clients {
        let (lats, transport) = c.join().expect("client thread");
        latencies.extend(lats);
        assert!(transport.clean_shutdown);
        sent += transport.frames_sent;
        received += transport.frames_received;
        bytes_sent += transport.bytes_sent;
        bytes_received += transport.bytes_received;
    }
    let makespan = t0.elapsed();

    let report = handle.shutdown();
    assert_eq!(provider.active_sessions(), 0, "drained server must leak no sessions");
    assert_eq!(report.frames_in, sent, "counter mismatch: server frames_in vs client sent");
    assert_eq!(report.frames_out, received, "counter mismatch: frames_out vs received");
    assert_eq!(report.bytes_in, bytes_sent, "counter mismatch: bytes_in vs sent");
    assert_eq!(report.bytes_out, bytes_received, "counter mismatch: bytes_out vs received");
    assert_eq!(report.requests, sessions as u64 * ITEMS_PER_SESSION);
    assert_eq!(report.connections, sessions as u64);
    assert_eq!(
        report.failed_connections + report.panicked_connections + report.rejected_handshakes,
        0,
        "last_error: {:?}",
        report.last_error
    );

    latencies.sort_unstable();
    let mean = latencies.iter().sum::<Duration>() / latencies.len().max(1) as u32;
    let row = Row {
        serving,
        sessions,
        requests: report.requests,
        p50_us: percentile(&latencies, 50).as_micros(),
        p99_us: percentile(&latencies, 99).as_micros(),
        mean_us: mean.as_micros(),
        makespan_ms: makespan.as_millis(),
        exec_ns_per_item: report.exec_ns as u128 / report.requests.max(1) as u128,
        batched_rounds: report.batched_rounds,
        batched_items: report.batched_items,
    };
    println!(
        "  {serving:<22} sessions={sessions:<5} p50={:>7}us p99={:>7}us mean={:>7}us \
         makespan={:>5}ms exec/item={:>8}ns batched={}/{}",
        row.p50_us,
        row.p99_us,
        row.mean_us,
        row.makespan_ms,
        row.exec_ns_per_item,
        row.batched_items,
        row.batched_rounds,
    );
    row
}

fn write_json(path: &str, mode: &str, rows: &[Row]) {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"serving\",");
    let _ = writeln!(s, "  \"mode\": \"{mode}\",");
    let _ = writeln!(s, "  \"items_per_session\": {ITEMS_PER_SESSION},");
    let _ = writeln!(s, "  \"key_bits\": {KEY_BITS},");
    s.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{\"serving\": \"{}\", \"sessions\": {}, \"requests\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"mean_us\": {}, \"makespan_ms\": {}, \
             \"exec_ns_per_item\": {}, \"batched_rounds\": {}, \"batched_items\": {}}}{comma}",
            r.serving,
            r.sessions,
            r.requests,
            r.p50_us,
            r.p99_us,
            r.mean_us,
            r.makespan_ms,
            r.exec_ns_per_item,
            r.batched_rounds,
            r.batched_items,
        );
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s).expect("write benchmark JSON");
    println!("\nwrote {path}");
}

/// Pulls `p99_us` for the per-session 64-session row out of the
/// committed baseline with a line scan (each result is one line; no
/// JSON parser in the workspace and none needed for this shape).
fn baseline_p99_us(path: &str, sessions: usize) -> Option<u128> {
    let text = std::fs::read_to_string(path).ok()?;
    for line in text.lines() {
        if line.contains("\"per_session\"") && line.contains(&format!("\"sessions\": {sessions},"))
        {
            let tail = line.split("\"p99_us\": ").nth(1)?;
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            return digits.parse().ok();
        }
    }
    None
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke")
        || std::env::var("PP_BENCH_SMOKE").map(|v| v == "1").unwrap_or(false);
    let out_path = std::env::var("PP_BENCH_OUT").unwrap_or_else(|_| "BENCH_serving.json".into());
    let baseline_path =
        std::env::var("PP_BENCH_BASELINE").unwrap_or_else(|_| "BENCH_serving.json".into());

    let session_counts: &[usize] = if smoke { &[64] } else { &[16, 64] };
    println!("=== Serving benchmark ({}) ===", if smoke { "smoke" } else { "full" });

    let mut rows = Vec::new();
    for &sessions in session_counts {
        rows.push(run_config("per_session", sessions, Duration::ZERO));
        rows.push(run_config("cross_session_batched", sessions, GATHER));
    }

    // The headline comparison: per-item server compute with and without
    // cross-session batching at the largest session count.
    let per_session = rows.iter().rev().find(|r| r.serving == "per_session").expect("row");
    let batched = rows.iter().rev().find(|r| r.serving == "cross_session_batched").expect("row");
    let ratio = batched.exec_ns_per_item as f64 / per_session.exec_ns_per_item.max(1) as f64;
    println!(
        "\ncross-session batching at {} sessions: {:.2}x per-item server compute \
         ({} vs {} ns/item), {} items over {} fused dispatches",
        batched.sessions,
        ratio,
        batched.exec_ns_per_item,
        per_session.exec_ns_per_item,
        batched.batched_items,
        batched.batched_rounds,
    );

    if smoke {
        // Counter agreement already asserted inside every run_config.
        assert!(
            ratio <= 1.25,
            "serving regression: batched per-item compute is {ratio:.2}x per-session \
             (gate: ≤ 1.25x)"
        );
        assert!(batched.batched_rounds > 0, "the gather window never coalesced anything");
        match baseline_p99_us(&baseline_path, 64) {
            Some(base) => {
                let p99 = per_session.p99_us;
                assert!(
                    p99 <= base.saturating_mul(3),
                    "serving regression: p99 {p99}us vs committed baseline {base}us \
                     (gate: ≤ 3x)"
                );
                println!("smoke gate passed: counters balanced, batching ≤ 1.25x, p99 within 3x");
            }
            None => println!(
                "smoke gate passed: counters balanced, batching ≤ 1.25x \
                 (no baseline at {baseline_path}; p99 gate skipped)"
            ),
        }
        return; // a smoke run never overwrites the committed baseline
    }
    write_json(&out_path, "full", &rows);
}
