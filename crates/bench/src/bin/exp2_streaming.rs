//! **Exp#2 (Fig. 8)** — effectiveness of distributed stream processing.
//!
//! Four variants on the healthcare + MNIST models:
//!
//! * `PlainBase` — centralized plaintext inference (measured);
//! * `CipherBase` — centralized single-thread encrypted inference
//!   (measured);
//! * `PP-Stream-25` / `PP-Stream-50` — 25 / 50 total cores spread evenly
//!   over the stages (load balancing and tensor partitioning disabled,
//!   as in the paper), simulated from measured single-thread profiles.
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp2_streaming
//! ```

use pp_allocate::{Role, ServerSpec};
use pp_bench::{banner, fmt_dur, key_bits, latency_models, requests, row};
use pp_nn::ScaledModel;
use pp_stream::baseline::{cipher_base, plain_base};
use pp_stream::protocol::PartitionMode;
use pp_stream::simulate::{ciphertext_bytes, measure_serialization_throughput, simulate, NetworkModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;

/// Even-split servers summing to `total` cores, role split per Table III.
fn servers_for(total: usize, shape: (usize, usize)) -> Vec<ServerSpec> {
    let n = shape.0 + shape.1;
    let per = total / n;
    let mut extra = total % n;
    let mut out = Vec::new();
    for _ in 0..shape.0 {
        let c = per + usize::from(extra > 0);
        extra = extra.saturating_sub(1);
        out.push(ServerSpec { role: Role::Linear, cores: c.max(1) });
    }
    for _ in 0..shape.1 {
        let c = per + usize::from(extra > 0);
        extra = extra.saturating_sub(1);
        out.push(ServerSpec { role: Role::NonLinear, cores: c.max(1) });
    }
    out
}

fn main() {
    banner("Exp#2: distributed stream processing", "paper Fig. 8");
    let models = latency_models(3);
    let ct = ciphertext_bytes(key_bits());
    let ser = measure_serialization_throughput(ct);
    let net = NetworkModel::default();
    let reqs = requests();

    row(&[
        "model".into(),
        "PlainBase".into(),
        "CipherBase".into(),
        "PP-Stream-25".into(),
        "PP-Stream-50".into(),
    ]);

    for bm in &models {
        let scaled = ScaledModel::from_model(&bm.model, bm.factor.min(10_000));
        let inputs: Vec<Tensor<f64>> = (0..reqs)
            .map(|i| {
                let shape = bm.model.input_shape().clone();
                let data: Vec<f64> = (0..shape.len())
                    .map(|j| (((i * 97 + j * 31) % 200) as f64 / 100.0) - 1.0)
                    .collect();
                Tensor::from_vec(shape, data).expect("sized")
            })
            .collect();

        // Measured baselines.
        let (_, plain) = plain_base(&bm.model, &inputs).expect("plain base");
        let (_, cipher) = cipher_base(&scaled, key_bits(), 7, &inputs).expect("cipher base");

        // Simulated PP-Stream-k (even split, no LB, no partitioning —
        // paper's Exp#2 configuration). One profiled session per model;
        // the 25- and 50-core deployments share its measurements.
        let cfg = PpStreamConfig {
            key_bits: key_bits(),
            servers: servers_for(50, bm.servers),
            load_balance: false,
            tensor_partition: false,
            profile_samples: 1,
            ..Default::default()
        };
        let session = PpStream::new(scaled.clone(), cfg).expect("session");
        let profiles = pp_bench::profile_min(&session, PartitionMode::None, 2);
        let mut sim_lat = Vec::new();
        for total in [25usize, 50] {
            let servers = servers_for(total, bm.servers);
            let plan = session.plan_for(&servers, false, true).expect("allocation plan");
            let sim = simulate(
                &profiles,
                session.stages(),
                plan.threads(),
                PartitionMode::None,
                ct,
                ser,
                &net,
            );
            // Streamed per-request latency: the pipeline overlaps
            // requests, which is exactly Exp#2's point.
            let r = reqs.max(8) as u32;
            sim_lat.push(sim.makespan(r as usize) / r);
        }

        row(&[
            bm.name.clone(),
            fmt_dur(plain.mean_latency()),
            fmt_dur(cipher.mean_latency()),
            fmt_dur(sim_lat[0]),
            fmt_dur(sim_lat[1]),
        ]);
    }
    println!("\npaper shape: CipherBase is orders of magnitude above PlainBase;");
    println!("PP-Stream-25/50 cut CipherBase by ~95.6% / ~97.5%; 50 cores beat 25 by ~39%.");
}
