//! **Exp#1 (Fig. 6)** — inference latency versus scaling factor.
//!
//! Larger scaling factors mean larger scalar exponents in `E(m)^w`, so
//! homomorphic scalar multiplication slows down. All PP-Stream features
//! enabled, latency simulated on the paper's server shape from measured
//! single-thread profiles (DESIGN.md §3 — single-core container).
//!
//! ```sh
//! cargo run -p pp-bench --release --bin exp1_latency
//! ```

use pp_allocate::{Role, ServerSpec};
use pp_bench::{banner, fmt_dur, full_mode, key_bits, latency_models, row};
use pp_nn::ScaledModel;
use pp_stream::protocol::PartitionMode;
use pp_stream::simulate::{ciphertext_bytes, measure_serialization_throughput, simulate, NetworkModel};
use pp_stream::{PpStream, PpStreamConfig};

fn main() {
    banner("Exp#1: latency vs scaling factor", "paper Fig. 6");
    // Fig. 6 uses the MNIST and CIFAR models; fast mode uses the MNIST
    // set (CIFAR VGG profiling takes minutes per factor).
    let mut models: Vec<_> = latency_models(1)
        .into_iter()
        .filter(|m| m.name.starts_with("MNIST"))
        .collect();
    if full_mode() {
        models.extend(pp_bench::cifar_models(2, 32));
    }
    let factors: &[i64] = &[1, 10, 100, 1_000, 10_000, 100_000, 1_000_000];

    let ct = ciphertext_bytes(key_bits());
    let ser = measure_serialization_throughput(ct);
    let net = NetworkModel::default();

    let mut header = vec!["model".to_string()];
    header.extend(factors.iter().map(|f| format!("F={f}")));
    row(&header);

    for bm in &models {
        let mut cells = vec![bm.name.clone()];
        // Paper testbed: 24-core servers, Table III split.
        let servers: Vec<ServerSpec> = (0..bm.servers.0)
            .map(|_| ServerSpec { role: Role::Linear, cores: 24 })
            .chain((0..bm.servers.1).map(|_| ServerSpec { role: Role::NonLinear, cores: 24 }))
            .collect();
        for &factor in factors {
            let scaled = ScaledModel::from_model(&bm.model, factor);
            let cfg = PpStreamConfig {
                key_bits: key_bits(),
                servers: servers.clone(),
                profile_samples: 1,
                ..Default::default()
            };
            let session = PpStream::new(scaled, cfg).expect("session");
            let profiles = pp_bench::profile_min(&session, PartitionMode::Partitioned, 2);
            let sim = simulate(
                &profiles,
                session.stages(),
                session.plan().threads(),
                PartitionMode::Partitioned,
                ct,
                ser,
                &net,
            );
            cells.push(fmt_dur(sim.latency));
        }
        row(&cells);
    }
    println!("\npaper shape: latency rises ~20–30% from F=10^0 to 10^6 (larger exponents");
    println!("in E(m)^w); the paper reports +29% on MNIST and +23% on CIFAR models.");
}
