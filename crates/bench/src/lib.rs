//! # pp-bench
//!
//! Benchmark harness regenerating every table and figure of the
//! PP-Stream evaluation (paper Sec. VI). One binary per experiment:
//!
//! | Binary            | Paper artifact |
//! |-------------------|----------------|
//! | `fig1`            | Fig. 1 — Paillier microbenchmark vs key size |
//! | `exp1_accuracy`   | Tables IV & V — accuracy vs scaling factor |
//! | `exp1_latency`    | Fig. 6 — latency vs scaling factor |
//! | `exp2_streaming`  | Fig. 8 — PlainBase / CipherBase / PP-Stream-k |
//! | `exp3_loadbalance`| Fig. 7 — with/without load balancing vs cores |
//! | `exp4_partition`  | Fig. 9 — with/without tensor partitioning vs cores |
//! | `exp5_leakage`    | Table VI — distance correlation vs tensor length |
//! | `exp6_sota`       | Table VII — vs SecureML/CryptoNets/CryptoDL/EzPC |
//!
//! plus Criterion ablations (`benches/`): Karatsuba threshold,
//! Montgomery modpow fast path, CRT decryption, operation-encapsulation
//! merging, and the wire codec.
//!
//! ## Sizing
//!
//! Environment knobs (all optional):
//!
//! * `PP_KEY_BITS` — Paillier key size (default 256; the paper uses
//!   2048 — every compared variant uses the same size, so relative
//!   results are preserved; see DESIGN.md §3).
//! * `PP_FULL=1` — paper-scale sweeps (slower).
//! * `PP_REQS` — requests per latency measurement (default 3).

use pp_datasets::Dataset;
use pp_nn::{zoo, Model, TrainConfig, Trainer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Paillier key size for the experiment binaries.
pub fn key_bits() -> usize {
    std::env::var("PP_KEY_BITS").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Whether to run paper-scale sweeps.
pub fn full_mode() -> bool {
    std::env::var("PP_FULL").map(|v| v == "1").unwrap_or(false)
}

/// Requests per latency measurement.
pub fn requests() -> usize {
    std::env::var("PP_REQS").ok().and_then(|v| v.parse().ok()).unwrap_or(3)
}

/// One evaluation model with its Table III deployment shape.
pub struct BenchModel {
    pub name: String,
    pub model: Model,
    /// Chosen scaling factor (Table IV bold entries; set after Exp#1).
    pub factor: i64,
    /// Model-provider / data-provider server counts (paper Table III).
    pub servers: (usize, usize),
}

/// The six healthcare + MNIST models of Figs. 7–9 (untrained weights:
/// latency depends only on structure).
pub fn latency_models(seed: u64) -> Vec<BenchModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    vec![
        BenchModel {
            name: "Breast".into(),
            model: zoo::healthcare_3fc("Breast", 30, &mut rng).expect("model"),
            factor: 1_000_000,
            servers: (2, 1),
        },
        BenchModel {
            name: "Heart".into(),
            model: zoo::healthcare_3fc("Heart", 13, &mut rng).expect("model"),
            factor: 1_000_000,
            servers: (2, 1),
        },
        BenchModel {
            name: "Cardio".into(),
            model: zoo::healthcare_3fc("Cardio", 11, &mut rng).expect("model"),
            factor: 10_000,
            servers: (2, 1),
        },
        BenchModel {
            name: "MNIST-1".into(),
            model: zoo::mnist1_3fc(&mut rng).expect("model"),
            factor: 100_000,
            servers: (2, 1),
        },
        BenchModel {
            name: "MNIST-2".into(),
            model: zoo::mnist2_1conv2fc(&mut rng).expect("model"),
            factor: 10_000,
            servers: (2, 1),
        },
        BenchModel {
            name: "MNIST-3".into(),
            model: zoo::mnist3_2conv2fc(&mut rng).expect("model"),
            factor: 10_000,
            servers: (2, 2),
        },
    ]
}

/// The CIFAR VGG models (streamable variant, width-reduced per
/// DESIGN.md §3).
pub fn cifar_models(seed: u64, width_div: usize) -> Vec<BenchModel> {
    let mut rng = StdRng::seed_from_u64(seed);
    [(13usize, "CIFAR-10-1"), (16, "CIFAR-10-2"), (19, "CIFAR-10-3")]
        .into_iter()
        .map(|(depth, name)| BenchModel {
            name: name.into(),
            model: zoo::vgg_streamable(name, depth, width_div, &mut rng).expect("model"),
            factor: 10_000,
            servers: (6, 3),
        })
        .collect()
}

/// Trains a model on a dataset, returning per-epoch losses.
pub fn train_model(
    model: &mut Model,
    data: &Dataset,
    epochs: usize,
    lr: f64,
    seed: u64,
) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trainer = Trainer::new(TrainConfig {
        learning_rate: lr,
        epochs,
        batch_size: 32,
        momentum: 0.9,
    });
    trainer.train(model, &data.train, &mut rng).expect("training")
}

/// The nine (dataset, trained model) pairs of Exp#1. Training sizes are
/// scaled to the machine; `full` enlarges them.
pub fn trained_models(full: bool) -> Vec<(Dataset, Model)> {
    let mut out = Vec::new();
    let mut rng = StdRng::seed_from_u64(77);

    // Healthcare models: full datasets (they are small).
    for (name, data, feats) in [
        ("Breast", pp_datasets::breast(1), 30usize),
        ("Heart", pp_datasets::heart(2), 13),
        ("Cardio", pp_datasets::cardio(3).subsample(if full { 0.05 } else { 0.01 }), 11),
    ] {
        let mut model = zoo::healthcare_3fc(name, feats, &mut rng).expect("model");
        train_model(&mut model, &data, if full { 30 } else { 15 }, 0.1, 5);
        out.push((data, model));
    }

    // MNIST models on the stand-in images.
    let mnist = if full {
        pp_datasets::mnist(4).subsample(0.02)
    } else {
        pp_datasets::mnist_small(4)
    };
    let mut m1 = zoo::mnist1_3fc(&mut rng).expect("model");
    train_model(&mut m1, &mnist, if full { 8 } else { 4 }, 0.05, 6);
    out.push((mnist.clone(), m1));
    let mut m2 = zoo::mnist2_1conv2fc(&mut rng).expect("model");
    train_model(&mut m2, &mnist, if full { 6 } else { 3 }, 0.05, 7);
    out.push((mnist.clone(), m2));
    let mut m3 = zoo::mnist3_2conv2fc(&mut rng).expect("model");
    train_model(&mut m3, &mnist, if full { 6 } else { 3 }, 0.05, 8);
    out.push((mnist, m3));

    // CIFAR VGG models (width-reduced, briefly trained).
    let cifar = if full {
        pp_datasets::cifar10(9).subsample(0.01)
    } else {
        pp_datasets::cifar10_small(9).subsample(0.5)
    };
    for (depth, name) in [(13usize, "CIFAR-10-1"), (16, "CIFAR-10-2"), (19, "CIFAR-10-3")] {
        let mut m = zoo::vgg_streamable(name, depth, if full { 16 } else { 32 }, &mut rng)
            .expect("model");
        train_model(&mut m, &cifar, if full { 3 } else { 1 }, 0.02, depth as u64);
        out.push((cifar.clone(), m));
    }
    out
}

/// Profiles a session several times and keeps the per-stage *minimum*
/// wall time (the standard noise-robust estimator for CPU-bound work),
/// with byte counts from the first run (they are deterministic).
pub fn profile_min(
    session: &pp_stream::PpStream,
    mode: pp_stream::protocol::PartitionMode,
    reps: usize,
) -> Vec<pp_stream::simulate::StageProfile> {
    let mut best = session.profile_deployment(mode).expect("profiling");
    for _ in 1..reps.max(1) {
        let next = session.profile_deployment(mode).expect("profiling");
        for (b, n) in best.iter_mut().zip(next) {
            if n.wall_1thread < b.wall_1thread {
                b.wall_1thread = n.wall_1thread;
            }
        }
    }
    best
}

/// Prints a Markdown-ish table row.
pub fn row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Formats a duration compactly.
pub fn fmt_dur(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Header banner for an experiment binary.
pub fn banner(title: &str, artifact: &str) {
    println!("=== {title} ===");
    println!("reproduces: {artifact}");
    println!(
        "key size: {} bits{} | requests: {}\n",
        key_bits(),
        if full_mode() { " | FULL mode" } else { "" },
        requests()
    );
}
