//! Ablation: the hand-rolled wire codec — serialization throughput of
//! ciphertext tensors, the per-hop cost every pipelined stage pays.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_stream::messages::EncTensorMsg;
use pp_stream_runtime::wire::{from_frame, to_frame};

fn msg_with(elements: usize, ct_bytes: usize) -> EncTensorMsg {
    EncTensorMsg {
        seq: 1,
        shape: vec![elements as u64],
        obfuscated: true,
        cts: (0..elements)
            .map(|i| (0..ct_bytes).map(|j| ((i * 31 + j) % 251) as u8).collect())
            .collect(),
    }
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for elements in [64usize, 512, 4096] {
        let msg = msg_with(elements, 64); // 256-bit-key ciphertexts
        let frame = to_frame(&msg);
        group.throughput(Throughput::Bytes(frame.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode", elements), &elements, |b, _| {
            b.iter(|| to_frame(std::hint::black_box(&msg)))
        });
        group.bench_with_input(BenchmarkId::new("decode", elements), &elements, |b, _| {
            b.iter(|| {
                let m: EncTensorMsg = from_frame(std::hint::black_box(frame.clone())).expect("decodes");
                m
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
