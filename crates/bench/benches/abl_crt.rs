//! Ablation: CRT decryption (the default) versus direct `λ, μ`
//! decryption — the classic ~4× Paillier speedup, quantified.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_decrypt(c: &mut Criterion) {
    let mut group = c.benchmark_group("decrypt");
    group.sample_size(10);
    for bits in [256usize, 512] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let kp = Keypair::generate(bits, &mut rng);
        let sk = kp.private();
        let ct = kp.public().encrypt_i64(987_654, &mut rng);

        group.bench_with_input(BenchmarkId::new("crt", bits), &bits, |b, _| {
            b.iter(|| sk.decrypt(std::hint::black_box(&ct)))
        });
        group.bench_with_input(BenchmarkId::new("direct", bits), &bits, |b, _| {
            b.iter(|| sk.decrypt_direct(std::hint::black_box(&ct)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_decrypt);
criterion_main!(benches);
