//! Ablation: modular exponentiation across exponent sizes — the
//! short-exponent fast path (≤32 bits, used for PP-Stream's scaled
//! weights) versus the 4-bit-window ladder for full-size exponents.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bigint::{BigUint, MontgomeryCtx};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    // A 512-bit odd modulus (the n² of a 256-bit key).
    let modulus = {
        let mut m = pp_bigint::random_bits(&mut rng, 512);
        m.set_bit(0, true);
        m
    };
    let ctx = MontgomeryCtx::new(&modulus).expect("odd modulus");
    let base = pp_bigint::random_below(&mut rng, &modulus);

    let mut group = c.benchmark_group("modpow_512bit_modulus");
    for exp_bits in [8usize, 16, 24, 32, 64, 256, 512] {
        let exp = pp_bigint::random_bits(&mut rng, exp_bits);
        group.bench_with_input(BenchmarkId::new("exp_bits", exp_bits), &exp_bits, |b, _| {
            b.iter(|| ctx.pow_mod(std::hint::black_box(&base), std::hint::black_box(&exp)))
        });
    }
    group.finish();

    // Montgomery vs naive square-and-multiply with division reduction.
    let mut group = c.benchmark_group("modpow_backend");
    group.sample_size(10);
    let exp = pp_bigint::random_bits(&mut rng, 128);
    group.bench_function("montgomery", |b| {
        b.iter(|| ctx.pow_mod(std::hint::black_box(&base), &exp))
    });
    group.bench_function("divrem_naive", |b| {
        b.iter(|| {
            let mut acc = BigUint::one();
            for i in (0..exp.bit_len()).rev() {
                acc = acc.square().rem_ref(&modulus).expect("non-zero");
                if exp.bit(i) {
                    acc = acc.mul_ref(&base).rem_ref(&modulus).expect("non-zero");
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_modpow);
criterion_main!(benches);
