//! Ablation: operation encapsulation (paper Sec. IV-B) — merged stages
//! versus one-stage-per-primitive. The unmerged pipeline pays an extra
//! serialization hop (and an extra obfuscation round trip between
//! adjacent linear primitives), which is exactly the overhead the paper
//! cites for rejecting that extreme.

use criterion::{criterion_group, criterion_main, Criterion};
use pp_nn::{zoo, ScaledModel};
use pp_stream::{PpStream, PpStreamConfig};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_encapsulation(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    // A model with mergeable runs: Flatten+Dense and Dense after Dense's
    // BatchNorm-like affine pairs.
    let model = pp_nn::Model::new(
        "merge-demo",
        vec![2, 4, 4],
        vec![
            zoo::conv_layer(&mut rng, 2, 4, 3, 1, 1),
            zoo::batchnorm_layer(4),
            pp_nn::Layer::ReLU,
            pp_nn::Layer::Flatten,
            zoo::dense_layer(&mut rng, 64, 16),
            pp_nn::Layer::ReLU,
            zoo::dense_layer(&mut rng, 16, 4),
            pp_nn::Layer::SoftMax,
        ],
    )
    .expect("model");
    let scaled = ScaledModel::from_model(&model, 100);
    let input = Tensor::from_vec(
        vec![2, 4, 4],
        (0..32).map(|i| (i % 7) as f64 / 7.0 - 0.5).collect(),
    )
    .expect("sized");

    let mut group = c.benchmark_group("encapsulation");
    group.sample_size(10);
    for (label, merge) in [("merged", true), ("per_primitive", false)] {
        let mut cfg = PpStreamConfig::small_test(128);
        cfg.merge_stages = merge;
        let session = PpStream::new(scaled.clone(), cfg).expect("session");
        group.bench_function(label, |b| {
            b.iter(|| session.infer_stream(std::hint::black_box(std::slice::from_ref(&input))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encapsulation);
criterion_main!(benches);
