//! Ablation: multiplication cost across operand sizes, spanning the
//! Karatsuba threshold (32 limbs) called out in DESIGN.md. Sub-threshold
//! sizes run schoolbook; larger sizes recurse through Karatsuba.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_bigint::BigUint;

fn operand(limbs: usize, seed: u64) -> BigUint {
    BigUint::from_limbs(
        (0..limbs as u64)
            .map(|i| (i ^ seed).wrapping_mul(0x9e3779b97f4a7c15) | 1)
            .collect(),
    )
}

fn bench_mul(c: &mut Criterion) {
    let mut group = c.benchmark_group("biguint_mul");
    for limbs in [8usize, 16, 32, 64, 128, 256] {
        let a = operand(limbs, 1);
        let b = operand(limbs, 2);
        group.throughput(Throughput::Elements(limbs as u64));
        group.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bench, _| {
            bench.iter(|| std::hint::black_box(&a) * std::hint::black_box(&b))
        });
    }
    group.finish();
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("biguint_square");
    for limbs in [16usize, 64, 256] {
        let a = operand(limbs, 3);
        group.bench_with_input(BenchmarkId::from_parameter(limbs), &limbs, |bench, _| {
            bench.iter(|| std::hint::black_box(&a).square())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mul, bench_square);
criterion_main!(benches);
