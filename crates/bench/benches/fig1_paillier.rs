//! Criterion micro-benchmarks for the Fig. 1 Paillier operations
//! (per-element latencies; the `fig1` binary reports whole-tensor times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_paillier::Keypair;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_paillier(c: &mut Criterion) {
    let mut group = c.benchmark_group("paillier");
    group.sample_size(10);
    for bits in [128usize, 256, 512] {
        let mut rng = StdRng::seed_from_u64(bits as u64);
        let kp = Keypair::generate(bits, &mut rng);
        let (pk, sk) = (kp.public(), kp.private());
        let ct = pk.encrypt_i64(123_456, &mut rng);
        let ct2 = pk.encrypt_i64(-777, &mut rng);

        group.bench_with_input(BenchmarkId::new("encrypt", bits), &bits, |b, _| {
            b.iter(|| pk.encrypt_i64(std::hint::black_box(42), &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("decrypt_crt", bits), &bits, |b, _| {
            b.iter(|| sk.decrypt_i64(std::hint::black_box(&ct)))
        });
        group.bench_with_input(BenchmarkId::new("scalar_mul_1e6", bits), &bits, |b, _| {
            b.iter(|| pk.mul_scalar_i64(std::hint::black_box(&ct), 1_000_000))
        });
        group.bench_with_input(BenchmarkId::new("homomorphic_add", bits), &bits, |b, _| {
            b.iter(|| pk.add(std::hint::black_box(&ct), std::hint::black_box(&ct2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paillier);
criterion_main!(benches);
