//! Property tests for the MPC stack: sharing/Beaver algebra, circuit
//! semantics, and garbling correctness on random circuits.

use pp_mpc::beaver::{mul_shared, OnlineStats, TripleDealer};
use pp_mpc::circuit::{bits_to_u64, u64_to_bits, CircuitBuilder};
use pp_mpc::garble::GarbledCircuit;
use pp_mpc::ring;
use pp_mpc::sharing::Shared;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #[test]
    fn sharing_is_additive(x in any::<u64>(), y in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sx = Shared::share(x, &mut rng);
        let sy = Shared::share(y, &mut rng);
        prop_assert_eq!(sx.add(&sy).reveal(), x.wrapping_add(y));
        prop_assert_eq!(sx.sub(&sy).reveal(), x.wrapping_sub(y));
    }

    #[test]
    fn public_ops_commute_with_reveal(x in any::<u64>(), c in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sx = Shared::share(x, &mut rng);
        prop_assert_eq!(sx.add_public(c).reveal(), x.wrapping_add(c));
        prop_assert_eq!(sx.mul_public(c).reveal(), x.wrapping_mul(c));
    }

    #[test]
    fn beaver_multiplication_is_correct(x in any::<u64>(), y in any::<u64>(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dealer = TripleDealer::new(StdRng::seed_from_u64(seed ^ 1));
        let sx = Shared::share(x, &mut rng);
        let sy = Shared::share(y, &mut rng);
        let mut stats = OnlineStats::default();
        let z = mul_shared(&sx, &sy, &dealer.triple(), &mut stats).unwrap();
        prop_assert_eq!(z.reveal(), ring::mul(x, y));
    }

    #[test]
    fn adder_circuit_matches_wrapping_add(a in any::<u64>(), b in any::<u64>()) {
        let mut builder = CircuitBuilder::new();
        let wa = builder.inputs(64);
        let wb = builder.inputs(64);
        let sum = builder.adder(&wa, &wb);
        let c = builder.build(sum).unwrap();
        let mut inputs = u64_to_bits(a);
        inputs.extend(u64_to_bits(b));
        prop_assert_eq!(bits_to_u64(&c.eval(&inputs).unwrap()), a.wrapping_add(b));
    }

    #[test]
    fn subtractor_circuit_matches_wrapping_sub(a in any::<u64>(), b in any::<u64>()) {
        let mut builder = CircuitBuilder::new();
        let wa = builder.inputs(64);
        let wb = builder.inputs(64);
        let diff = builder.subtractor(&wa, &wb);
        let c = builder.build(diff).unwrap();
        let mut inputs = u64_to_bits(a);
        inputs.extend(u64_to_bits(b));
        prop_assert_eq!(bits_to_u64(&c.eval(&inputs).unwrap()), a.wrapping_sub(b));
    }

    #[test]
    fn garbled_eval_matches_plain_eval(
        inputs in proptest::collection::vec(any::<bool>(), 4..12),
        ops in proptest::collection::vec(0u8..3, 1..24),
        seed in any::<u64>(),
    ) {
        // Random well-formed circuit: each gate reads two earlier wires.
        let mut builder = CircuitBuilder::new();
        let input_wires = builder.inputs(inputs.len());
        let mut wires = input_wires;
        let mut idx: u64 = seed | 1;
        let mut pick = |n: usize| -> usize {
            idx = idx.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (idx >> 33) as usize % n
        };
        for op in &ops {
            let a = wires[pick(wires.len())];
            let b = wires[pick(wires.len())];
            let w = match op {
                0 => builder.xor(a, b),
                1 => builder.and(a, b),
                _ => builder.not(a),
            };
            wires.push(w);
        }
        let outputs = vec![*wires.last().unwrap(), wires[pick(wires.len())]];
        let circuit = builder.build(outputs).unwrap();

        let plain = circuit.eval(&inputs).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let garbled = GarbledCircuit::garble(circuit, &mut rng);
        let labels: Vec<_> = inputs
            .iter()
            .enumerate()
            .map(|(w, &v)| garbled.input_label(w, v))
            .collect();
        prop_assert_eq!(garbled.evaluate(&labels).unwrap(), plain);
    }

    #[test]
    fn fixed_point_roundtrip_and_addition(a in -1e6f64..1e6, b in -1e6f64..1e6) {
        let ea = ring::encode_fixed(a);
        let eb = ring::encode_fixed(b);
        let sum = ring::decode_fixed(ring::add(ea, eb));
        prop_assert!((sum - (a + b)).abs() < 1e-3, "sum={sum}");
    }
}
