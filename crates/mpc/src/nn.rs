//! EzPC-style secure neural-network inference: arithmetic sharing for
//! linear layers, garbled circuits for every non-linearity, and the A2Y /
//! Y2A conversions in between — the protocol cadence whose switching
//! overhead the paper measures in Exp#6 (Table VII).
//!
//! The network is evaluated in fixed point over `Z_{2^64}` (16 fractional
//! bits). Linear layers consume one Beaver triple per multiplication;
//! each ReLU element garbles and evaluates a fresh 64-bit comparison
//! circuit (~260 AND gates), with the Y2A re-share fused into the circuit
//! via an output mask. MaxPool uses `max(a,b) = a + ReLU(b − a)`.

use crate::beaver::{OnlineStats, TripleDealer};
use crate::circuit::{bits_to_u64, relu_circuit, u64_to_bits};
use crate::garble::GarbledCircuit;
use crate::prf::Block;
use crate::ring;
use crate::sharing::{Party, Shared};
use crate::MpcError;
use pp_nn::{Layer, Model};
use pp_tensor::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cost accounting for one secure inference — the quantities Table VII's
/// comparison rests on.
#[derive(Clone, Copy, Debug, Default)]
pub struct CostReport {
    /// Beaver triples consumed (arithmetic multiplications).
    pub triples: usize,
    /// Arithmetic ring elements opened online.
    pub opened_elements: usize,
    /// Communication rounds in the arithmetic world.
    pub arithmetic_rounds: usize,
    /// Garbled-circuit executions (one per non-linear element — each is
    /// an A2Y + evaluation + Y2A protocol switch).
    pub gc_executions: usize,
    /// AND gates garbled in total.
    pub and_gates: usize,
    /// Estimated bytes on the wire (openings, tables, labels).
    pub bytes: usize,
    /// OT-based triple preprocessing wall time (zero with the dealer).
    pub preprocessing: std::time::Duration,
    /// OT statistics of the preprocessing phase, when OT triples are used.
    pub ot: Option<crate::ot::OtStats>,
}

impl CostReport {
    fn charge_gc(&mut self, g: &GarbledCircuit) {
        let s = g.stats();
        self.gc_executions += 1;
        self.and_gates += s.and_gates;
        // 64 bytes per AND table + 16 per input label + 8 for the decoded
        // output share.
        self.bytes += s.and_gates * 64 + s.input_labels * 16 + 8;
    }

    fn charge_openings(&mut self, stats: &OnlineStats) {
        self.opened_elements += stats.opened_elements;
        self.arithmetic_rounds += stats.rounds;
        self.bytes += stats.opened_elements * 8 * 2; // both directions
    }
}

/// A two-party secure inference session over a plaintext [`Model`] whose
/// weights belong to P0 (the model provider) and whose input belongs to
/// P1 (the data provider).
pub struct SecureInference {
    model: Model,
    dealer: TripleDealer<StdRng>,
    /// Pre-generated OT-based triples (drained first when present).
    ot_queue: std::collections::VecDeque<crate::beaver::Triple>,
    /// Preprocessing cost of the OT triples, if used.
    preprocessing: Option<(std::time::Duration, crate::ot::OtStats)>,
    rng: StdRng,
}

impl SecureInference {
    /// Creates a session. `seed` drives sharing and garbling randomness.
    /// Beaver triples come from a trusted dealer (no preprocessing cost —
    /// see [`SecureInference::new_with_ot`] for the honest variant).
    pub fn new(model: Model, seed: u64) -> Self {
        SecureInference {
            model,
            dealer: TripleDealer::new(StdRng::seed_from_u64(seed ^ 0xD1CE)),
            ot_queue: std::collections::VecDeque::new(),
            preprocessing: None,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// As [`SecureInference::new`], but generates every Beaver triple the
    /// model needs through real IKNP OT extension + Gilboa products — the
    /// preprocessing cost EzPC actually pays. The measured preprocessing
    /// time and OT statistics are reported in the [`CostReport`].
    pub fn new_with_ot(model: Model, seed: u64) -> Result<Self, MpcError> {
        let needed = count_triples(&model);
        let t0 = std::time::Instant::now();
        let mut generator = crate::ot::OtTripleGenerator::new(seed ^ 0x07E5);
        let triples = generator.triples(needed)?;
        let elapsed = t0.elapsed();
        Ok(SecureInference {
            model,
            dealer: TripleDealer::new(StdRng::seed_from_u64(seed ^ 0xD1CE)),
            ot_queue: triples.into(),
            preprocessing: Some((elapsed, generator.stats())),
            rng: StdRng::seed_from_u64(seed),
        })
    }

    /// Next triple: OT queue first, dealer fallback.
    fn triple(&mut self) -> crate::beaver::Triple {
        self.ot_queue.pop_front().unwrap_or_else(|| self.dealer.triple())
    }

    /// Runs the full protocol; returns the output revealed to the data
    /// provider (class scores, fixed-point decoded) and the cost report.
    pub fn infer(&mut self, input: &Tensor<f64>) -> Result<(Tensor<f64>, CostReport), MpcError> {
        let mut cost = CostReport::default();
        if let Some((dur, stats)) = self.preprocessing {
            cost.preprocessing = dur;
            cost.ot = Some(stats);
        }
        // P1 shares its input.
        let mut acts: Vec<Shared> = input
            .data()
            .iter()
            .map(|&x| Shared::share(ring::encode_fixed(x), &mut self.rng))
            .collect();
        let mut shape = input.shape().clone();

        let layers: Vec<Layer> = self.model.layers().to_vec();
        for layer in &layers {
            (acts, shape) = self.layer(layer, acts, shape, &mut cost)?;
        }

        // Final reveal to the data provider.
        cost.bytes += acts.len() * 8;
        let out: Vec<f64> = acts.iter().map(|s| ring::decode_fixed(s.reveal())).collect();
        Ok((Tensor::from_vec(shape, out).map_err(|e| MpcError::Protocol(e.to_string()))?, cost))
    }

    fn layer(
        &mut self,
        layer: &Layer,
        acts: Vec<Shared>,
        shape: Shape,
        cost: &mut CostReport,
    ) -> Result<(Vec<Shared>, Shape), MpcError> {
        match layer {
            Layer::Dense { weights, bias } => {
                let dims = weights.shape().dims();
                let (out_f, in_f) = (dims[0], dims[1]);
                if acts.len() != in_f {
                    return Err(MpcError::Protocol("dense input size".into()));
                }
                let mut out = Vec::with_capacity(out_f);
                let mut stats = OnlineStats::default();
                for (j, &bj) in bias.iter().enumerate().take(out_f) {
                    let mut acc =
                        Shared::from_private(ring::encode_fixed(bj), Party::P0)
                            // bias at double scale to match un-truncated products
                            .mul_public(1u64 << ring::FRAC_BITS);
                    for (i, x) in acts.iter().enumerate() {
                        let w = Shared::from_private(
                            ring::encode_fixed(weights.data()[j * in_f + i]),
                            Party::P0,
                        );
                        let t = self.triple();
                        cost.triples += 1;
                        let p = crate::beaver::mul_shared(&w, x, &t, &mut stats)?;
                        acc = acc.add(&p);
                    }
                    // Local truncation back to FRAC_BITS scale.
                    out.push(Shared { s0: trunc_share(acc.s0, true), s1: trunc_share(acc.s1, false) });
                }
                // All openings of one layer batch into one round.
                stats.rounds = 1;
                cost.charge_openings(&stats);
                Ok((out, Shape::vector(out_f)))
            }
            Layer::Conv2d { spec, weights, bias } => {
                let out_shape = spec
                    .output_shape(&shape)
                    .map_err(|e| MpcError::Protocol(e.to_string()))?;
                let in_dims = shape.dims();
                let (h, w) = (in_dims[1], in_dims[2]);
                let mut out = Vec::with_capacity(out_shape.len());
                let mut stats = OnlineStats::default();
                for flat in 0..out_shape.len() {
                    let idx = out_shape.unravel(flat);
                    let (oc, oy, ox) = (idx[0], idx[1], idx[2]);
                    let mut acc = Shared::from_private(ring::encode_fixed(bias[oc]), Party::P0)
                        .mul_public(1u64 << ring::FRAC_BITS);
                    for ic in 0..spec.in_channels {
                        for ky in 0..spec.kernel {
                            for kx in 0..spec.kernel {
                                let iy =
                                    (oy * spec.stride + ky) as isize - spec.padding as isize;
                                let ix =
                                    (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if iy < 0 || ix < 0 || iy as usize >= h || ix as usize >= w {
                                    continue;
                                }
                                let xoff = shape
                                    .offset(&[ic, iy as usize, ix as usize])
                                    .map_err(|e| MpcError::Protocol(e.to_string()))?;
                                let widx = weights
                                    .get(&[oc, ic, ky, kx])
                                    .map_err(|e| MpcError::Protocol(e.to_string()))?;
                                let wsh = Shared::from_private(
                                    ring::encode_fixed(*widx),
                                    Party::P0,
                                );
                                let t = self.triple();
                                cost.triples += 1;
                                let p =
                                    crate::beaver::mul_shared(&wsh, &acts[xoff], &t, &mut stats)?;
                                acc = acc.add(&p);
                            }
                        }
                    }
                    out.push(Shared {
                        s0: trunc_share(acc.s0, true),
                        s1: trunc_share(acc.s1, false),
                    });
                }
                stats.rounds = 1;
                cost.charge_openings(&stats);
                Ok((out, out_shape))
            }
            Layer::BatchNorm { scale, shift } => {
                let channels = scale.len();
                let per_channel = acts.len() / channels;
                let mut out = Vec::with_capacity(acts.len());
                let mut stats = OnlineStats::default();
                for (i, x) in acts.iter().enumerate() {
                    let c = i / per_channel;
                    let s = Shared::from_private(ring::encode_fixed(scale[c]), Party::P0);
                    let t = self.triple();
                    cost.triples += 1;
                    let p = crate::beaver::mul_shared(&s, x, &t, &mut stats)?;
                    let b = Shared::from_private(ring::encode_fixed(shift[c]), Party::P0)
                        .mul_public(1u64 << ring::FRAC_BITS);
                    let y = p.add(&b);
                    out.push(Shared { s0: trunc_share(y.s0, true), s1: trunc_share(y.s1, false) });
                }
                stats.rounds = 1;
                cost.charge_openings(&stats);
                Ok((out, shape))
            }
            Layer::ReLU => {
                let out = acts
                    .iter()
                    .map(|x| self.garbled_relu(x, cost))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok((out, shape))
            }
            Layer::MaxPool { window, stride } => {
                let dims = shape.dims();
                let (c, h, w) = (dims[0], dims[1], dims[2]);
                let oh = (h - window) / stride + 1;
                let ow = (w - window) / stride + 1;
                let out_shape = Shape::new(vec![c, oh, ow]);
                let mut out = Vec::with_capacity(out_shape.len());
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut best: Option<Shared> = None;
                            for ky in 0..*window {
                                for kx in 0..*window {
                                    let off = shape
                                        .offset(&[ch, oy * stride + ky, ox * stride + kx])
                                        .map_err(|e| MpcError::Protocol(e.to_string()))?;
                                    let v = acts[off];
                                    best = Some(match best {
                                        None => v,
                                        Some(b) => {
                                            // max(b, v) = b + ReLU(v − b)
                                            let d = v.sub(&b);
                                            let r = self.garbled_relu(&d, cost)?;
                                            b.add(&r)
                                        }
                                    });
                                }
                            }
                            out.push(best.expect("window non-empty"));
                        }
                    }
                }
                Ok((out, out_shape))
            }
            Layer::AvgPool { window, stride } => {
                let dims = shape.dims();
                let (c, h, w) = (dims[0], dims[1], dims[2]);
                let oh = (h - window) / stride + 1;
                let ow = (w - window) / stride + 1;
                let out_shape = Shape::new(vec![c, oh, ow]);
                // Fixed-point reciprocal of the window area, applied by
                // local public multiplication + truncation (division by a
                // public constant needs no protocol).
                let inv_area = ring::encode_fixed(1.0 / (window * window) as f64);
                let mut out = Vec::with_capacity(out_shape.len());
                for ch in 0..c {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = Shared { s0: 0, s1: 0 };
                            for ky in 0..*window {
                                for kx in 0..*window {
                                    let off = shape
                                        .offset(&[ch, oy * stride + ky, ox * stride + kx])
                                        .map_err(|e| MpcError::Protocol(e.to_string()))?;
                                    acc = acc.add(&acts[off]);
                                }
                            }
                            let scaled = acc.mul_public(inv_area);
                            out.push(Shared {
                                s0: trunc_share(scaled.s0, true),
                                s1: trunc_share(scaled.s1, false),
                            });
                        }
                    }
                }
                Ok((out, out_shape))
            }
            Layer::ScaledSigmoid { alpha } => {
                // EzPC-style piecewise-linear sigmoid:
                // σ(x) ≈ clamp(x/4 + 1/2, 0, 1)
                //       = ReLU(x/4 + 1/2) − ReLU(x/4 − 1/2).
                let a = ring::encode_fixed(*alpha);
                let half = ring::encode_fixed(0.5);
                let mut out = Vec::with_capacity(acts.len());
                let mut stats = OnlineStats::default();
                for x in &acts {
                    let asx = Shared::from_private(a, Party::P0);
                    let t = self.triple();
                    cost.triples += 1;
                    let ax = crate::beaver::mul_shared(&asx, x, &t, &mut stats)?;
                    let ax = Shared { s0: trunc_share(ax.s0, true), s1: trunc_share(ax.s1, false) };
                    // x/4 via arithmetic shift on shares (public divisor).
                    let quarter =
                        Shared { s0: ((ax.s0 as i64) >> 2) as u64, s1: ((ax.s1 as i64) >> 2) as u64 };
                    let hi = quarter.add_public(half);
                    let lo = quarter.add_public(half).add_public(ring::neg(ring::encode_fixed(1.0)));
                    let r1 = self.garbled_relu(&hi, cost)?;
                    let r2 = self.garbled_relu(&lo, cost)?;
                    out.push(r1.sub(&r2));
                }
                stats.rounds = 1;
                cost.charge_openings(&stats);
                Ok((out, shape))
            }
            Layer::SoftMax => {
                // The final SoftMax runs on the revealed result at the data
                // provider (as in EzPC, which returns logits); monotone, so
                // the class decision is unchanged. Shares pass through.
                Ok((acts, shape))
            }
            Layer::Flatten => {
                let n = acts.len();
                Ok((acts, Shape::vector(n)))
            }
        }
    }

    /// One garbled-circuit ReLU on an arithmetic share: A2Y (shares become
    /// circuit inputs), garbled evaluation, Y2A (P0 keeps the mask `r`,
    /// P1 learns `ReLU(x) − r`).
    fn garbled_relu(&mut self, x: &Shared, cost: &mut CostReport) -> Result<Shared, MpcError> {
        let r: u64 = self.rng.gen();
        let g = GarbledCircuit::garble(relu_circuit(), &mut self.rng);
        cost.charge_gc(&g);
        let mut bits = u64_to_bits(x.s0);
        bits.extend(u64_to_bits(x.s1));
        bits.extend(u64_to_bits(r));
        let labels: Vec<Block> = bits
            .iter()
            .enumerate()
            .map(|(w, &v)| g.input_label(w, v))
            .collect();
        let out_bits = g.evaluate(&labels)?;
        let masked = bits_to_u64(&out_bits);
        Ok(Shared { s0: r, s1: masked })
    }
}

/// Number of Beaver triples one inference over `model` consumes
/// (one per arithmetic multiplication).
pub fn count_triples(model: &Model) -> usize {
    let mut shape = model.input_shape().clone();
    let mut total = 0usize;
    for layer in model.layers() {
        match layer {
            Layer::Dense { weights, .. } => {
                let dims = weights.shape().dims();
                total += dims[0] * dims[1];
            }
            Layer::Conv2d { spec, .. } => {
                let out_shape = spec.output_shape(&shape).expect("validated");
                // Padding taps are skipped, so this over-counts slightly
                // at the borders; over-provisioning is harmless.
                total += out_shape.len() * spec.in_channels * spec.kernel * spec.kernel;
            }
            Layer::BatchNorm { scale, .. } => {
                let per = shape.len() / scale.len();
                total += per * scale.len();
            }
            Layer::ScaledSigmoid { .. } => total += shape.len(),
            _ => {}
        }
        shape = layer.output_shape(&shape).expect("validated");
    }
    total
}

/// Local-truncation share: P0 truncates its share; P1 truncates the
/// negation of its share and negates back (the SecureML trick).
fn trunc_share(s: u64, is_p0: bool) -> u64 {
    if is_p0 {
        ((s as i64) >> ring::FRAC_BITS) as u64
    } else {
        ring::neg((((ring::neg(s)) as i64) >> ring::FRAC_BITS) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::zoo;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secure_dense_relu_matches_plaintext() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = zoo::mlp("m", &[4, 6, 3], &mut rng).unwrap();
        let x = Tensor::from_flat(vec![0.5, -0.25, 0.75, -1.0]);
        let plain = model.forward(&x).unwrap();
        let mut sess = SecureInference::new(model.clone(), 99);
        let (secure, cost) = sess.infer(&x).unwrap();
        // Secure output is pre-softmax logits; compare the argmax and the
        // logits against the plain pre-softmax values.
        let plain_class = pp_nn::activation::argmax(&plain);
        let secure_class = pp_nn::activation::argmax(&secure);
        assert_eq!(plain_class, secure_class);
        assert!(cost.triples > 0);
        assert!(cost.gc_executions == 6, "one GC per hidden ReLU element");
    }

    #[test]
    fn secure_conv_model_classifies_like_plaintext() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = zoo::small_convnet("c", (1, 6, 6), 2, 3, &mut rng).unwrap();
        let x = Tensor::from_vec(
            vec![1, 6, 6],
            (0..36).map(|i| ((i % 5) as f64 - 2.0) / 4.0).collect(),
        )
        .unwrap();
        let plain_class = model.classify(&x).unwrap();
        let mut sess = SecureInference::new(model, 7);
        let (secure, _) = sess.infer(&x).unwrap();
        assert_eq!(pp_nn::activation::argmax(&secure), plain_class);
    }

    #[test]
    fn secure_values_close_to_plaintext() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = zoo::mlp("m", &[3, 5, 2], &mut rng).unwrap();
        let x = Tensor::from_flat(vec![0.1, 0.9, -0.4]);
        // Plain logits: forward without the final softmax.
        let mut t = x.clone();
        for layer in &model.layers()[..model.layers().len() - 1] {
            t = layer.forward(&t).unwrap();
        }
        let mut sess = SecureInference::new(model, 11);
        let (secure, _) = sess.infer(&x).unwrap();
        for (p, s) in t.data().iter().zip(secure.data()) {
            assert!((p - s).abs() < 0.01, "plain={p} secure={s}");
        }
    }

    #[test]
    fn cost_report_scales_with_model() {
        let mut rng = StdRng::seed_from_u64(4);
        let small = zoo::mlp("s", &[4, 4, 2], &mut rng).unwrap();
        let big = zoo::mlp("b", &[4, 16, 2], &mut rng).unwrap();
        let x = Tensor::from_flat(vec![0.3, -0.2, 0.5, 0.1]);
        let (_, cs) = SecureInference::new(small, 1).infer(&x).unwrap();
        let (_, cb) = SecureInference::new(big, 1).infer(&x).unwrap();
        assert!(cb.triples > cs.triples);
        assert!(cb.gc_executions > cs.gc_executions);
        assert!(cb.bytes > cs.bytes);
    }

    #[test]
    fn maxpool_secure_matches_plain() {
        let mut rng = StdRng::seed_from_u64(5);
        let model = pp_nn::Model::new(
            "pool",
            vec![1, 4, 4],
            vec![
                pp_nn::Layer::MaxPool { window: 2, stride: 2 },
                pp_nn::Layer::Flatten,
                zoo::dense_layer(&mut rng, 4, 2),
                pp_nn::Layer::SoftMax,
            ],
        )
        .unwrap();
        let x = Tensor::from_vec(
            vec![1, 4, 4],
            vec![
                0.1, -0.5, 0.3, 0.2, 0.9, 0.0, -0.1, 0.4, -0.2, 0.6, 0.05, -0.9, 0.33, 0.21,
                0.77, -0.3,
            ],
        )
        .unwrap();
        let plain_class = model.classify(&x).unwrap();
        let mut sess = SecureInference::new(model, 13);
        let (secure, cost) = sess.infer(&x).unwrap();
        assert_eq!(pp_nn::activation::argmax(&secure), plain_class);
        // 4 windows × 3 pairwise maxes each = 12 GC executions.
        assert_eq!(cost.gc_executions, 12);
    }
}
