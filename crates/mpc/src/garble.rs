//! Yao garbled circuits with point-and-permute and free-XOR.
//!
//! The garbler draws a global offset `Δ` (with its permute bit forced
//! to 1) and a label pair `(W, W ⊕ Δ)` per input wire. XOR gates are
//! free (`C = A ⊕ B`); NOT gates are free (the output labels are the
//! input pair swapped); AND gates emit a four-row table of
//! `H(Aᵥ, Bᵥ, gate, row) ⊕ C_{v_a ∧ v_b}`, indexed by the permute bits
//! of the incoming labels.
//!
//! The evaluator walks the gates with one label per wire and decrypts
//! exactly one row per AND gate. Output decoding maps each output label's
//! permute bit back to a cleartext bit.
//!
//! Input-label delivery for the evaluator's own inputs stands in for
//! oblivious transfer (DESIGN.md §3): [`GarbledCircuit::input_label`]
//! plays the OT oracle, and the byte accounting in
//! [`GarbleStats`] charges it like the real wire messages.

use crate::circuit::{Circuit, Gate, WireId};
use crate::prf::{hash_gate, xor, Block};
use crate::MpcError;
use rand::Rng;

/// The garbler's secret material for one circuit.
pub struct GarbledCircuit {
    circuit: Circuit,
    /// Global free-XOR offset (permute bit = 1).
    delta: Block,
    /// False label (`W⁰`) per wire.
    zero_labels: Vec<Block>,
    /// Four-row tables for AND gates, indexed by gate position.
    tables: Vec<Option<[Block; 4]>>,
    /// Permute bit of each output wire's false label.
    output_decode: Vec<bool>,
}

/// Communication/size statistics of a garbling, for the Exp#6 cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GarbleStats {
    /// AND-gate tables transferred (4 blocks = 64 bytes each).
    pub and_gates: usize,
    /// Input labels transferred (garbler inputs + simulated OTs).
    pub input_labels: usize,
}

impl GarbledCircuit {
    /// Garbles `circuit` with fresh labels.
    pub fn garble<R: Rng + ?Sized>(circuit: Circuit, rng: &mut R) -> Self {
        let mut delta: Block = [rng.gen(), rng.gen()];
        delta[0] |= 1; // permute bit of Δ must be 1 for point-and-permute

        let num_wires = circuit.num_wires();
        let mut zero_labels: Vec<Block> = Vec::with_capacity(num_wires);
        for _ in 0..circuit.num_inputs() {
            zero_labels.push([rng.gen(), rng.gen()]);
        }

        let mut tables = Vec::with_capacity(circuit.gates().len());
        for (gi, gate) in circuit.gates().iter().enumerate() {
            match *gate {
                Gate::Xor(a, b) => {
                    // Free-XOR: C⁰ = A⁰ ⊕ B⁰.
                    zero_labels.push(xor(zero_labels[a], zero_labels[b]));
                    tables.push(None);
                }
                Gate::Not(a) => {
                    // Free NOT: C⁰ = A¹ = A⁰ ⊕ Δ.
                    zero_labels.push(xor(zero_labels[a], delta));
                    tables.push(None);
                }
                Gate::And(a, b) => {
                    let c0: Block = [rng.gen(), rng.gen()];
                    zero_labels.push(c0);
                    let mut table = [[0u64; 2]; 4];
                    for va in 0..2u8 {
                        for vb in 0..2u8 {
                            let la = if va == 0 {
                                zero_labels[a]
                            } else {
                                xor(zero_labels[a], delta)
                            };
                            let lb = if vb == 0 {
                                zero_labels[b]
                            } else {
                                xor(zero_labels[b], delta)
                            };
                            let out = if va & vb == 1 { xor(c0, delta) } else { c0 };
                            let row = (((la[0] & 1) as usize) << 1) | (lb[0] & 1) as usize;
                            table[row] = xor(hash_gate(la, lb, gi as u64, row as u8), out);
                        }
                    }
                    tables.push(Some(table));
                }
            }
        }
        let output_decode = circuit
            .outputs()
            .iter()
            .map(|&w| zero_labels[w][0] & 1 == 1)
            .collect();
        GarbledCircuit { circuit, delta, zero_labels, tables, output_decode }
    }

    /// The underlying circuit.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Label for input wire `w` carrying bit `value` — for garbler inputs
    /// directly, for evaluator inputs this simulates the OT transfer.
    pub fn input_label(&self, w: WireId, value: bool) -> Block {
        assert!(w < self.circuit.num_inputs(), "not an input wire");
        if value {
            xor(self.zero_labels[w], self.delta)
        } else {
            self.zero_labels[w]
        }
    }

    /// Evaluates with one label per input wire; returns the cleartext
    /// output bits.
    pub fn evaluate(&self, input_labels: &[Block]) -> Result<Vec<bool>, MpcError> {
        if input_labels.len() != self.circuit.num_inputs() {
            return Err(MpcError::Protocol(format!(
                "expected {} input labels, got {}",
                self.circuit.num_inputs(),
                input_labels.len()
            )));
        }
        let mut labels: Vec<Block> = Vec::with_capacity(self.circuit.num_wires());
        labels.extend_from_slice(input_labels);
        for (gi, gate) in self.circuit.gates().iter().enumerate() {
            let label = match *gate {
                Gate::Xor(a, b) => xor(labels[a], labels[b]),
                Gate::Not(a) => labels[a], // label unchanged; semantics flip
                Gate::And(a, b) => {
                    let (la, lb) = (labels[a], labels[b]);
                    let row = (((la[0] & 1) as usize) << 1) | (lb[0] & 1) as usize;
                    let table = self.tables[gi]
                        .as_ref()
                        .ok_or(MpcError::GarbleDecrypt)?;
                    xor(hash_gate(la, lb, gi as u64, row as u8), table[row])
                }
            };
            labels.push(label);
        }
        // Decode outputs by permute bit.
        let mut out = Vec::with_capacity(self.circuit.outputs().len());
        for (&w, &d) in self.circuit.outputs().iter().zip(&self.output_decode) {
            let bit = (labels[w][0] & 1 == 1) != d;
            // Validity check: the label must be one of the two known ones.
            if labels[w] != self.zero_labels[w] && labels[w] != xor(self.zero_labels[w], self.delta)
            {
                return Err(MpcError::GarbleDecrypt);
            }
            out.push(bit);
        }
        Ok(out)
    }

    /// Size/communication statistics.
    pub fn stats(&self) -> GarbleStats {
        GarbleStats {
            and_gates: self.circuit.and_count(),
            input_labels: self.circuit.num_inputs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::{bits_to_u64, relu_circuit, u64_to_bits, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn garble_and_eval(c: Circuit, inputs: &[bool], seed: u64) -> Vec<bool> {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = GarbledCircuit::garble(c, &mut rng);
        let labels: Vec<Block> = inputs
            .iter()
            .enumerate()
            .map(|(w, &v)| g.input_label(w, v))
            .collect();
        g.evaluate(&labels).unwrap()
    }

    #[test]
    fn single_gates_garble_correctly() {
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let mut b = CircuitBuilder::new();
            let ins = b.inputs(2);
            let x = b.xor(ins[0], ins[1]);
            let a = b.and(ins[0], ins[1]);
            let n = b.not(ins[1]);
            let c = b.build(vec![x, a, n]).unwrap();
            let expect = c.eval(&[va, vb]).unwrap();
            let got = garble_and_eval(c, &[va, vb], 42);
            assert_eq!(got, expect, "va={va} vb={vb}");
        }
    }

    #[test]
    fn garbled_adder_matches_plain_eval() {
        let mut b = CircuitBuilder::new();
        let a = b.inputs(16);
        let bb = b.inputs(16);
        let s = b.adder(&a, &bb);
        let c = b.build(s).unwrap();
        for (x, y) in [(0u64, 0u64), (255, 1), (12345, 54321), (65535, 65535)] {
            let mut inputs: Vec<bool> = u64_to_bits(x)[..16].to_vec();
            inputs.extend(&u64_to_bits(y)[..16]);
            let plain = c.eval(&inputs).unwrap();
            let garbled = garble_and_eval(c.clone(), &inputs, x ^ y);
            assert_eq!(garbled, plain, "x={x} y={y}");
        }
    }

    #[test]
    fn garbled_relu_end_to_end() {
        let mut rng = StdRng::seed_from_u64(7);
        let c = relu_circuit();
        let g = GarbledCircuit::garble(c, &mut rng);
        for (x0, x1, r) in [(500u64, 123u64, 42u64), ((-300i64) as u64, 100, 17)] {
            let mut bits = u64_to_bits(x0);
            bits.extend(u64_to_bits(x1));
            bits.extend(u64_to_bits(r));
            let labels: Vec<Block> = bits
                .iter()
                .enumerate()
                .map(|(w, &v)| g.input_label(w, v))
                .collect();
            let out = bits_to_u64(&g.evaluate(&labels).unwrap());
            let x = x0.wrapping_add(x1);
            let relu = if (x as i64) >= 0 { x } else { 0 };
            assert_eq!(out, relu.wrapping_sub(r));
        }
    }

    #[test]
    fn wrong_label_detected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(2);
        let a = b.and(ins[0], ins[1]);
        let c = b.build(vec![a]).unwrap();
        let g = GarbledCircuit::garble(c, &mut rng);
        // Feed a random junk label for wire 0.
        let labels = vec![[rng.gen::<u64>(), rng.gen::<u64>()], g.input_label(1, true)];
        assert!(g.evaluate(&labels).is_err());
    }

    #[test]
    fn stats_report_and_gates() {
        let c = relu_circuit();
        let ands = c.and_count();
        let mut rng = StdRng::seed_from_u64(11);
        let g = GarbledCircuit::garble(c, &mut rng);
        let s = g.stats();
        assert_eq!(s.and_gates, ands);
        assert_eq!(s.input_labels, 192);
    }

    #[test]
    fn input_label_count_mismatch() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(2);
        let a = b.and(ins[0], ins[1]);
        let c = b.build(vec![a]).unwrap();
        let g = GarbledCircuit::garble(c, &mut rng);
        assert!(g.evaluate(&[[0, 0]]).is_err());
    }
}
