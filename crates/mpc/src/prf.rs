//! A small PRF for garbled-circuit wire-label expansion, built on the
//! Speck128/128 block cipher (Beaulieu et al., NSA 2013 — chosen because
//! its ARX rounds are ~20 lines of Rust).
//!
//! Real garbling schemes use fixed-key AES-NI; Speck here is a documented
//! substitution (DESIGN.md §3) with the same interface and cost shape.
//! **Not production cryptography.**

/// A 128-bit block as two u64 words.
pub type Block = [u64; 2];

const ROUNDS: usize = 32;

/// Speck128/128 key schedule + encryption.
fn speck_encrypt(key: Block, block: Block) -> Block {
    #[inline]
    fn round(x: &mut u64, y: &mut u64, k: u64) {
        *x = x.rotate_right(8).wrapping_add(*y) ^ k;
        *y = y.rotate_left(3) ^ *x;
    }
    let (mut x, mut y) = (block[1], block[0]);
    let (mut a, mut b) = (key[1], key[0]);
    for i in 0..ROUNDS as u64 {
        round(&mut x, &mut y, b);
        round(&mut a, &mut b, i);
    }
    [y, x]
}

/// PRF keyed by two wire labels and a gate-unique tweak, producing one
/// 128-bit block — the hash `H(A, B, gate_id)` used to encrypt garbled
/// rows.
pub fn hash_gate(label_a: Block, label_b: Block, gate_id: u64, row: u8) -> Block {
    // Davies–Meyer-style chaining of two Speck calls.
    let tweak = [gate_id, (row as u64) << 32 | 0x9e37_79b9];
    let h1 = speck_encrypt(label_a, [label_b[0] ^ tweak[0], label_b[1] ^ tweak[1]]);
    let h2 = speck_encrypt(label_b, [h1[0] ^ label_a[0], h1[1] ^ label_a[1]]);
    [h1[0] ^ h2[0] ^ label_a[0], h1[1] ^ h2[1] ^ label_b[1]]
}

/// XOR of two blocks.
#[inline]
pub fn xor(a: Block, b: Block) -> Block {
    [a[0] ^ b[0], a[1] ^ b[1]]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speck_test_vector() {
        // Official Speck128/128 test vector (plaintext "pooner. In those",
        // key 0x0f0e...0100).
        let key: Block = [0x0706050403020100, 0x0f0e0d0c0b0a0908];
        let pt: Block = [0x7469206564616d20, 0x6c61766975716520];
        let ct = speck_encrypt(key, pt);
        assert_eq!(ct, [0x7860fedf5c570d18, 0xa65d985179783265]);
    }

    #[test]
    fn hash_gate_is_deterministic_and_distinct() {
        let a: Block = [1, 2];
        let b: Block = [3, 4];
        let h1 = hash_gate(a, b, 0, 0);
        let h2 = hash_gate(a, b, 0, 0);
        assert_eq!(h1, h2);
        // Different gate, row, or labels give different outputs.
        assert_ne!(h1, hash_gate(a, b, 1, 0));
        assert_ne!(h1, hash_gate(a, b, 0, 1));
        assert_ne!(h1, hash_gate(b, a, 0, 0));
    }

    #[test]
    fn xor_involution() {
        let a: Block = [0xdead, 0xbeef];
        let b: Block = [0x1234, 0x5678];
        assert_eq!(xor(xor(a, b), b), a);
    }

    #[test]
    fn hash_output_bits_balanced() {
        // Cheap avalanche sanity check: flipping one input bit changes
        // roughly half the output bits.
        let a: Block = [42, 43];
        let b: Block = [7, 8];
        let h1 = hash_gate(a, b, 5, 2);
        let h2 = hash_gate([a[0] ^ 1, a[1]], b, 5, 2);
        let diff = (h1[0] ^ h2[0]).count_ones() + (h1[1] ^ h2[1]).count_ones();
        assert!((40..=88).contains(&diff), "diff={diff}");
    }
}
