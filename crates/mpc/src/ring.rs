//! Arithmetic over the ring `Z_{2^64}` with fixed-point encoding.
//!
//! ABY-style frameworks (and EzPC on top of them) compute over a power-of-
//! two ring so that additions and multiplications are native wrapping
//! machine ops. Signed values use two's complement; fixed-point values
//! carry `FRAC_BITS` fractional bits, with truncation after each
//! multiplication.

/// Fractional bits of the fixed-point encoding (EzPC's default is 12–24;
/// we use 16, giving ~4.8 decimal digits).
pub const FRAC_BITS: u32 = 16;

/// Encodes a float into the fixed-point ring representation.
pub fn encode_fixed(x: f64) -> u64 {
    (x * (1u64 << FRAC_BITS) as f64).round() as i64 as u64
}

/// Decodes a ring element back to a float (two's-complement signed).
pub fn decode_fixed(v: u64) -> f64 {
    v as i64 as f64 / (1u64 << FRAC_BITS) as f64
}

/// Ring addition.
#[inline]
pub fn add(a: u64, b: u64) -> u64 {
    a.wrapping_add(b)
}

/// Ring subtraction.
#[inline]
pub fn sub(a: u64, b: u64) -> u64 {
    a.wrapping_sub(b)
}

/// Ring multiplication.
#[inline]
pub fn mul(a: u64, b: u64) -> u64 {
    a.wrapping_mul(b)
}

/// Ring negation.
#[inline]
pub fn neg(a: u64) -> u64 {
    a.wrapping_neg()
}

/// Arithmetic-shift truncation by [`FRAC_BITS`] after a fixed-point
/// product (the local-truncation trick of SecureML, also used by EzPC).
#[inline]
pub fn truncate(v: u64) -> u64 {
    ((v as i64) >> FRAC_BITS) as u64
}

/// Signed interpretation of a ring element.
#[inline]
pub fn to_signed(v: u64) -> i64 {
    v as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_roundtrip() {
        for x in [0.0, 1.0, -1.0, 2.625, -123.456, 0.0001] {
            let v = encode_fixed(x);
            assert!((decode_fixed(v) - x).abs() < 1.0 / (1 << FRAC_BITS) as f64, "x={x}");
        }
    }

    #[test]
    fn ring_ops_wrap() {
        assert_eq!(add(u64::MAX, 1), 0);
        assert_eq!(sub(0, 1), u64::MAX);
        assert_eq!(neg(1), u64::MAX);
        assert_eq!(mul(1 << 63, 2), 0);
    }

    #[test]
    fn fixed_multiplication_with_truncation() {
        let a = encode_fixed(2.5);
        let b = encode_fixed(-1.5);
        let prod = truncate(mul(a, b));
        assert!((decode_fixed(prod) - (-3.75)).abs() < 1e-3);
    }

    #[test]
    fn signed_interpretation() {
        assert_eq!(to_signed(encode_fixed(-2.0)), -(2 << FRAC_BITS));
        assert!(to_signed(encode_fixed(5.0)) > 0);
    }
}
