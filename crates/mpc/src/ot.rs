//! Oblivious transfer: Paillier-based base OTs and IKNP OT extension,
//! plus Gilboa-style Beaver-triple generation.
//!
//! The [`crate::beaver::TripleDealer`] hands out triples for free; real
//! EzPC derives them from OT in its (measured) preprocessing. This module
//! implements that pipeline so Exp#6 can charge the baseline its true
//! cost:
//!
//! * **Base OT** — 1-out-of-2 OT from Paillier: the receiver sends
//!   `E(b)`, the sender replies `E(b·(m₁−m₀) + m₀)` homomorphically, the
//!   receiver decrypts `m_b`. Semi-honest secure; κ = 128 instances seed
//!   the extension.
//! * **IKNP extension** (Ishai–Kilian–Nissim–Petrank '03, semi-honest) —
//!   stretches the κ base OTs into millions of OTs using only the Speck
//!   PRF: the receiver commits a bit-matrix column per base seed, the
//!   sender derives per-row pads `H(q_j)` / `H(q_j ⊕ s)` after a bit
//!   transpose.
//! * **Gilboa products** — 64 correlated OTs turn `a` (sender) and `b`
//!   (receiver) into additive shares of `a·b` over `Z_{2^64}`; two
//!   products make one Beaver triple.

use crate::prf::{hash_gate, xor, Block};
use crate::ring;
use crate::sharing::Shared;
use crate::MpcError;
use pp_bigint::BigUint;
use pp_paillier::Keypair;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Security parameter: number of base OTs / matrix width.
pub const KAPPA: usize = 128;

/// Statistics of OT-based preprocessing (the "offline phase" cost).
#[derive(Clone, Copy, Debug, Default)]
pub struct OtStats {
    /// Base OTs executed (Paillier-based, expensive).
    pub base_ots: usize,
    /// Extended OTs produced (symmetric-crypto only).
    pub extended_ots: usize,
    /// Bytes exchanged during extension (matrix columns + corrections).
    pub bytes: usize,
}

/// One base-OT result pair from the sender's perspective.
struct BaseOtSeeds {
    /// Receiver side of the base OTs: one seed per choice bit.
    chosen: Vec<Block>,
    /// The extension *sender*'s random choice vector `s`.
    choices: Vec<bool>,
}

/// Runs κ Paillier base OTs. In IKNP the extension sender plays the base
/// *receiver* with random choices `s`; the extension receiver plays the
/// base *sender* with fresh random seed pairs, which it keeps.
fn base_ots(rng: &mut StdRng) -> (Vec<(Block, Block)>, BaseOtSeeds, usize) {
    // One keypair for the whole batch (each OT uses fresh randomness).
    let kp = Keypair::generate(256, rng);
    let (pk, sk) = (kp.public(), kp.private());

    let seed_pairs: Vec<(Block, Block)> =
        (0..KAPPA).map(|_| ([rng.gen(), rng.gen()], [rng.gen(), rng.gen()])).collect();
    let choices: Vec<bool> = (0..KAPPA).map(|_| rng.gen()).collect();

    let mut chosen = Vec::with_capacity(KAPPA);
    for (i, (m0, m1)) in seed_pairs.iter().enumerate() {
        let b = choices[i];
        // Receiver → sender: E(b).
        let eb = pk.encrypt(&BigUint::from(b as u64), rng);
        // Sender → receiver: E(b·(m1−m0) + m0), per 64-bit half.
        let mut out = [0u64; 2];
        for half in 0..2 {
            let (lo0, lo1) = (m0[half], m1[half]);
            let diff = BigInt64::diff(lo1, lo0);
            let term = match diff {
                BigInt64::Pos(d) => pk.mul_scalar(&eb, &BigUint::from(d)),
                BigInt64::Neg(d) => {
                    let inv = eb.raw().modinv(pk.n_squared()).expect("unit");
                    pk.mul_scalar(&pp_paillier::Ciphertext::new(inv), &BigUint::from(d))
                }
            };
            let c = pk.add(&term, &pk.encrypt(&BigUint::from(lo0), rng));
            // Receiver decrypts m_b.
            let m = sk.decrypt(&c);
            // Reduce mod 2^64 (negative diffs wrap as intended).
            let v = m.low_bits(64).to_u64().expect("64-bit");
            out[half] = v;
        }
        debug_assert_eq!(out, if b { *m1 } else { *m0 });
        chosen.push(out);
    }
    (seed_pairs, BaseOtSeeds { chosen, choices }, KAPPA)
}

/// Signed 64-bit difference helper (Paillier scalars are non-negative).
enum BigInt64 {
    Pos(u64),
    Neg(u64),
}

impl BigInt64 {
    fn diff(a: u64, b: u64) -> Self {
        if a >= b {
            BigInt64::Pos(a - b)
        } else {
            BigInt64::Neg(b - a)
        }
    }
}

/// Expands a seed into `words` pseudorandom u64 words (Speck counter
/// mode), starting at word `offset` so a seed can serve many batches.
fn prg(seed: Block, offset: u64, words: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(words);
    let mut ctr = offset / 2;
    // Align to the two-word block boundary.
    let skip_first = (offset % 2) as usize;
    let mut pending_skip = skip_first;
    while out.len() < words {
        let block = hash_gate(seed, [ctr, !ctr], ctr, 0);
        for w in [block[0], block[1]] {
            if pending_skip > 0 {
                pending_skip -= 1;
                continue;
            }
            if out.len() < words {
                out.push(w);
            }
        }
        ctr += 1;
    }
    out
}

/// The extension receiver's per-OT output: the pad `H(j, t_j)` for its
/// choice bit. The sender's outputs are the pads for both bits.
pub struct ExtendedOts {
    /// Sender pads `(H(q_j), H(q_j ⊕ s))` per OT.
    pub sender_pads: Vec<(Block, Block)>,
    /// Receiver pads `H(t_j)` per OT (valid for its choice bit).
    pub receiver_pads: Vec<Block>,
    /// The receiver's choice bits (kept for the protocol driver).
    pub choices: Vec<bool>,
}

/// A reusable IKNP session: base OTs run once, then arbitrarily many
/// extension batches are derived from the cached seeds at increasing PRG
/// offsets (the stateful-extension pattern of production OT libraries).
pub struct IknpSession {
    seed_pairs: Vec<(Block, Block)>,
    base: BaseOtSeeds,
    /// PRG word offset consumed so far.
    offset: u64,
    /// Global OT index (for pad tweaks).
    ot_index: u64,
}

impl IknpSession {
    /// Runs the κ Paillier base OTs once.
    pub fn new(rng: &mut StdRng, stats: &mut OtStats) -> Self {
        let (seed_pairs, base, n_base) = base_ots(rng);
        stats.base_ots += n_base;
        IknpSession { seed_pairs, base, offset: 0, ot_index: 0 }
    }

    /// Extends one batch of OTs with the given receiver choice bits.
    pub fn extend(
        &mut self,
        choices: &[bool],
        stats: &mut OtStats,
    ) -> Result<ExtendedOts, MpcError> {
        iknp_extend_with(self, choices, stats)
    }
}

/// Runs one IKNP extension batch against a session's cached base seeds.
/// Both roles execute in-process; `stats` is charged for the matrix
/// traffic.
fn iknp_extend_with(
    session: &mut IknpSession,
    choices: &[bool],
    stats: &mut OtStats,
) -> Result<ExtendedOts, MpcError> {
    let m = choices.len();
    if m == 0 {
        return Err(MpcError::Protocol("no OTs requested".into()));
    }
    let words_per_col = m.div_ceil(64);
    let seed_pairs = &session.seed_pairs;
    let base = &session.base;
    let prg_offset = session.offset;

    // Receiver: choice-bit vector as words.
    let mut x_words = vec![0u64; words_per_col];
    for (j, &b) in choices.iter().enumerate() {
        if b {
            x_words[j / 64] |= 1 << (j % 64);
        }
    }

    // Receiver builds T columns and sends u_i = G(k⁰) ⊕ G(k¹) ⊕ x.
    // Sender reconstructs q columns = G(k^{s_i}) ⊕ s_i·u_i.
    let mut t_cols = Vec::with_capacity(KAPPA);
    let mut q_cols = Vec::with_capacity(KAPPA);
    for (i, pair) in seed_pairs.iter().enumerate().take(KAPPA) {
        let g0 = prg(pair.0, prg_offset, words_per_col);
        let g1 = prg(pair.1, prg_offset, words_per_col);
        let u: Vec<u64> = g0
            .iter()
            .zip(&g1)
            .zip(&x_words)
            .map(|((a, b), x)| a ^ b ^ x)
            .collect();
        stats.bytes += u.len() * 8;
        let g_s = prg(base.chosen[i], prg_offset, words_per_col);
        let q: Vec<u64> = if base.choices[i] {
            g_s.iter().zip(&u).map(|(g, u)| g ^ u).collect()
        } else {
            g_s
        };
        t_cols.push(g0);
        q_cols.push(q);
    }

    // Transpose columns to rows and hash into pads.
    let row = |cols: &[Vec<u64>], j: usize| -> Block {
        let mut r = [0u64; 2];
        for (i, col) in cols.iter().enumerate() {
            let bit = (col[j / 64] >> (j % 64)) & 1;
            if bit == 1 {
                r[i / 64] |= 1 << (i % 64);
            }
        }
        r
    };
    let s_block = {
        let mut s = [0u64; 2];
        for (i, &b) in base.choices.iter().enumerate() {
            if b {
                s[i / 64] |= 1 << (i % 64);
            }
        }
        s
    };

    let mut sender_pads = Vec::with_capacity(m);
    let mut receiver_pads = Vec::with_capacity(m);
    for j in 0..m {
        let g = session.ot_index + j as u64;
        let qj = row(&q_cols, j);
        let tj = row(&t_cols, j);
        let pad0 = hash_gate(qj, [g, 0x1B3A_17C4], g, 1);
        let pad1 = hash_gate(xor(qj, s_block), [g, 0x1B3A_17C4], g, 1);
        let padr = hash_gate(tj, [g, 0x1B3A_17C4], g, 1);
        sender_pads.push((pad0, pad1));
        receiver_pads.push(padr);
    }
    stats.extended_ots += m;
    session.offset += words_per_col as u64;
    session.ot_index += m as u64;
    Ok(ExtendedOts { sender_pads, receiver_pads, choices: choices.to_vec() })
}

/// Gilboa product: additive shares of `a·b` where the sender holds `a`
/// and the receiver holds `b`, via 64 extended OTs taken from `ots`
/// starting at `offset` (whose choice bits must be the bits of `b`).
/// Returns `(sender_share, receiver_share)` and the correction bytes.
pub fn gilboa_product(
    a: u64,
    ots: &ExtendedOts,
    offset: usize,
    stats: &mut OtStats,
) -> (u64, u64) {
    let mut sender_share = 0u64;
    let mut receiver_share = 0u64;
    for i in 0..64 {
        let (pad0, pad1) = ots.sender_pads[offset + i];
        let b_i = ots.choices[offset + i];
        // Sender's messages: m0 = r, m1 = r + a·2^i, both masked.
        let r = pad0[0];
        let m1 = r.wrapping_add(a << i);
        // Correction for choice 1: c = m1 ⊕ pad1 (choice-0 needs none —
        // m0 is the pad itself).
        let c = m1 ^ pad1[0];
        stats.bytes += 8;
        // Receiver unmasks with its pad.
        let received = if b_i { c ^ ots.receiver_pads[offset + i][0] } else {
            ots.receiver_pads[offset + i][0]
        };
        debug_assert_eq!(received, if b_i { m1 } else { r });
        receiver_share = receiver_share.wrapping_add(received);
        sender_share = sender_share.wrapping_sub(r);
    }
    (sender_share, receiver_share)
}

/// OT-based Beaver-triple generator: the honest replacement for
/// [`crate::beaver::TripleDealer`], paying the real preprocessing cost.
pub struct OtTripleGenerator {
    rng: StdRng,
    stats: OtStats,
    /// One IKNP session per transfer direction, base OTs amortized.
    sessions: Option<(IknpSession, IknpSession)>,
    /// Triples generated per extension batch (bounds matrix memory).
    batch: usize,
}

impl OtTripleGenerator {
    /// Creates a generator.
    pub fn new(seed: u64) -> Self {
        OtTripleGenerator {
            rng: StdRng::seed_from_u64(seed),
            stats: OtStats::default(),
            sessions: None,
            batch: 2048,
        }
    }

    /// Accumulated preprocessing statistics.
    pub fn stats(&self) -> OtStats {
        self.stats
    }

    /// Generates `count` triples: `a = a0 + a1`, `b = b0 + b1`,
    /// `c = a·b` shared, with the cross products `a0·b1` and `a1·b0`
    /// computed via Gilboa OT products (128 extended OTs per triple).
    pub fn triples(&mut self, count: usize) -> Result<Vec<crate::beaver::Triple>, MpcError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        if self.sessions.is_none() {
            let s1 = IknpSession::new(&mut self.rng, &mut self.stats);
            let s2 = IknpSession::new(&mut self.rng, &mut self.stats);
            self.sessions = Some((s1, s2));
        }
        let mut out = Vec::with_capacity(count);
        let mut remaining = count;
        while remaining > 0 {
            let n = remaining.min(self.batch);
            out.extend(self.triple_batch(n)?);
            remaining -= n;
        }
        Ok(out)
    }

    /// One extension batch of `count` triples.
    fn triple_batch(&mut self, count: usize) -> Result<Vec<crate::beaver::Triple>, MpcError> {
        let a0s: Vec<u64> = (0..count).map(|_| self.rng.gen()).collect();
        let a1s: Vec<u64> = (0..count).map(|_| self.rng.gen()).collect();
        let b0s: Vec<u64> = (0..count).map(|_| self.rng.gen()).collect();
        let b1s: Vec<u64> = (0..count).map(|_| self.rng.gen()).collect();

        // Direction 1: P0 sends a0, P1 chooses with bits of b1;
        // direction 2: P1 sends a1, P0 chooses with bits of b0.
        let bits = |vals: &[u64]| -> Vec<bool> {
            vals.iter()
                .flat_map(|v| (0..64).map(move |i| (v >> i) & 1 == 1))
                .collect()
        };
        let (s1, s2) = self.sessions.as_mut().expect("initialized in triples()");
        let ots1 = iknp_extend_with(s1, &bits(&b1s), &mut self.stats)?;
        let ots2 = iknp_extend_with(s2, &bits(&b0s), &mut self.stats)?;

        let mut out = Vec::with_capacity(count);
        for k in 0..count {
            let (a0, a1, b0, b1) = (a0s[k], a1s[k], b0s[k], b1s[k]);
            let (s01_p0, s01_p1) = gilboa_product(a0, &ots1, k * 64, &mut self.stats);
            let (s10_p1, s10_p0) = gilboa_product(a1, &ots2, k * 64, &mut self.stats);
            // c0 + c1 = (a0+a1)(b0+b1)
            let c0 = ring::mul(a0, b0)
                .wrapping_add(s01_p0)
                .wrapping_add(s10_p0);
            let c1 = ring::mul(a1, b1)
                .wrapping_add(s01_p1)
                .wrapping_add(s10_p1);
            out.push(crate::beaver::Triple {
                a: Shared { s0: a0, s1: a1 },
                b: Shared { s0: b0, s1: b1 },
                c: Shared { s0: c0, s1: c1 },
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iknp_pads_agree_on_choice_bit() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut stats = OtStats::default();
        let choices: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let mut session = IknpSession::new(&mut rng, &mut stats);
        let ots = session.extend(&choices, &mut stats).unwrap();
        for (j, &choice) in choices.iter().enumerate() {
            let (p0, p1) = ots.sender_pads[j];
            let want = if choice { p1 } else { p0 };
            assert_eq!(ots.receiver_pads[j], want, "OT {j}");
            // And the *other* pad is unknown to the receiver.
            let other = if choice { p0 } else { p1 };
            assert_ne!(ots.receiver_pads[j], other, "OT {j} leaks");
        }
        assert_eq!(stats.base_ots, KAPPA);
        assert_eq!(stats.extended_ots, 200);
    }

    #[test]
    fn gilboa_shares_multiply() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut stats = OtStats::default();
        let mut session = IknpSession::new(&mut rng, &mut stats);
        for (a, b) in [(3u64, 4u64), (u64::MAX, 2), (0, 99), (1 << 40, 1 << 30)] {
            let choices: Vec<bool> = (0..64).map(|i| (b >> i) & 1 == 1).collect();
            let ots = session.extend(&choices, &mut stats).unwrap();
            let (s_share, r_share) = gilboa_product(a, &ots, 0, &mut stats);
            assert_eq!(s_share.wrapping_add(r_share), a.wrapping_mul(b), "a={a} b={b}");
        }
    }

    #[test]
    fn ot_triples_are_valid() {
        let mut generator = OtTripleGenerator::new(3);
        let triples = generator.triples(5).unwrap();
        assert_eq!(triples.len(), 5);
        for t in &triples {
            assert_eq!(
                ring::mul(t.a.reveal(), t.b.reveal()),
                t.c.reveal(),
                "triple invariant"
            );
        }
        let stats = generator.stats();
        assert_eq!(stats.extended_ots, 5 * 2 * 64);
        assert!(stats.bytes > 0);
    }

    #[test]
    fn ot_triples_work_in_beaver_multiplication() {
        use crate::beaver::{mul_shared, OnlineStats};
        let mut generator = OtTripleGenerator::new(4);
        let triples = generator.triples(1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let x = Shared::share(1234, &mut rng);
        let y = Shared::share(5678, &mut rng);
        let mut stats = OnlineStats::default();
        let z = mul_shared(&x, &y, &triples[0], &mut stats).unwrap();
        assert_eq!(z.reveal(), 1234 * 5678);
    }

    #[test]
    fn empty_request_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut stats = OtStats::default();
        let mut session = IknpSession::new(&mut rng, &mut stats);
        assert!(session.extend(&[], &mut stats).is_err());
    }

    #[test]
    fn repeated_batches_stay_correct_and_amortize_base_ots() {
        let mut generator = OtTripleGenerator::new(9);
        let first = generator.triples(3).unwrap();
        let second = generator.triples(3).unwrap();
        for t in first.iter().chain(&second) {
            assert_eq!(ring::mul(t.a.reveal(), t.b.reveal()), t.c.reveal());
        }
        // Base OTs ran once per direction, not once per batch.
        assert_eq!(generator.stats().base_ots, 2 * KAPPA);
    }
}
