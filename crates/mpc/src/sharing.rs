//! Two-party additive secret sharing over `Z_{2^64}`.

use crate::ring;
use rand::Rng;

/// Which of the two computing parties holds a share. In the EzPC mapping,
/// `P0` is the model provider (server) and `P1` the data provider (client).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Party {
    P0,
    P1,
}

/// An additively shared value: `value = share0 + share1 (mod 2^64)`.
/// The pair is held by the in-process protocol driver; each party only
/// ever reads its own half.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shared {
    pub s0: u64,
    pub s1: u64,
}

impl Shared {
    /// Splits `value` into two random additive shares.
    pub fn share<R: Rng + ?Sized>(value: u64, rng: &mut R) -> Self {
        let s0: u64 = rng.gen();
        Shared { s0, s1: ring::sub(value, s0) }
    }

    /// Shares a value known to one party only: that party keeps the value,
    /// the other holds zero. (Used for private inputs such as model
    /// weights.)
    pub fn from_private(value: u64, owner: Party) -> Self {
        match owner {
            Party::P0 => Shared { s0: value, s1: 0 },
            Party::P1 => Shared { s0: 0, s1: value },
        }
    }

    /// Reconstructs the secret (both shares exchanged).
    pub fn reveal(&self) -> u64 {
        ring::add(self.s0, self.s1)
    }

    /// Share-wise addition — local, no communication.
    pub fn add(&self, other: &Shared) -> Shared {
        Shared { s0: ring::add(self.s0, other.s0), s1: ring::add(self.s1, other.s1) }
    }

    /// Share-wise subtraction — local.
    pub fn sub(&self, other: &Shared) -> Shared {
        Shared { s0: ring::sub(self.s0, other.s0), s1: ring::sub(self.s1, other.s1) }
    }

    /// Addition of a public constant — only P0 adjusts its share.
    pub fn add_public(&self, c: u64) -> Shared {
        Shared { s0: ring::add(self.s0, c), s1: self.s1 }
    }

    /// Multiplication by a public constant — local on both shares.
    pub fn mul_public(&self, c: u64) -> Shared {
        Shared { s0: ring::mul(self.s0, c), s1: ring::mul(self.s1, c) }
    }

    /// The share held by `party`.
    pub fn of(&self, party: Party) -> u64 {
        match party {
            Party::P0 => self.s0,
            Party::P1 => self.s1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn share_and_reveal() {
        let mut rng = StdRng::seed_from_u64(1);
        for v in [0u64, 1, u64::MAX, 123_456_789] {
            let s = Shared::share(v, &mut rng);
            assert_eq!(s.reveal(), v);
            // Individual shares look unrelated to the value.
            assert_ne!(s.s0, v);
        }
    }

    #[test]
    fn linear_operations_are_homomorphic() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Shared::share(100, &mut rng);
        let b = Shared::share(u64::MAX, &mut rng); // -1
        assert_eq!(a.add(&b).reveal(), 99);
        assert_eq!(a.sub(&b).reveal(), 101);
        assert_eq!(a.add_public(5).reveal(), 105);
        assert_eq!(a.mul_public(7).reveal(), 700);
    }

    #[test]
    fn private_input_sharing() {
        let s = Shared::from_private(42, Party::P0);
        assert_eq!(s.reveal(), 42);
        assert_eq!(s.of(Party::P1), 0);
        let s = Shared::from_private(42, Party::P1);
        assert_eq!(s.of(Party::P0), 0);
        assert_eq!(s.reveal(), 42);
    }

    #[test]
    fn shares_are_random_across_draws() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Shared::share(7, &mut rng);
        let b = Shared::share(7, &mut rng);
        assert_ne!(a.s0, b.s0);
        assert_eq!(a.reveal(), b.reveal());
    }
}
