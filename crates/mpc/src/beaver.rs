//! Beaver-triple multiplication of additively shared values.
//!
//! A triple `(a, b, c)` with `c = a·b` is secret-shared during an offline
//! phase; online, the parties open `d = x − a` and `e = y − b` (one ring
//! element each direction) and compute shares of
//! `x·y = c + d·b + e·a + d·e` locally. Our dealer is an in-process
//! trusted generator — the real EzPC derives triples from oblivious
//! transfer, an offline cost both the paper's and our measurements
//! exclude.

use crate::ring;
use crate::sharing::Shared;
use crate::MpcError;
use rand::Rng;

/// One multiplication triple in shared form.
#[derive(Clone, Copy, Debug)]
pub struct Triple {
    pub a: Shared,
    pub b: Shared,
    pub c: Shared,
}

/// Trusted dealer producing shared Beaver triples.
pub struct TripleDealer<R: Rng> {
    rng: R,
    /// Number of triples issued (reported as offline-phase cost).
    issued: usize,
}

impl<R: Rng> TripleDealer<R> {
    /// Creates a dealer over the given randomness source.
    pub fn new(rng: R) -> Self {
        TripleDealer { rng, issued: 0 }
    }

    /// Issues one fresh triple.
    pub fn triple(&mut self) -> Triple {
        let a: u64 = self.rng.gen();
        let b: u64 = self.rng.gen();
        let c = ring::mul(a, b);
        self.issued += 1;
        Triple {
            a: Shared::share(a, &mut self.rng),
            b: Shared::share(b, &mut self.rng),
            c: Shared::share(c, &mut self.rng),
        }
    }

    /// Number of triples issued so far.
    pub fn issued(&self) -> usize {
        self.issued
    }
}

/// Statistics of the online phase — the communication PP-Stream's Exp#6
/// compares against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Ring elements opened (each costs one element of communication in
    /// both directions).
    pub opened_elements: usize,
    /// Communication rounds (each multiplication batch is one round).
    pub rounds: usize,
}

/// Multiplies two shared values with one Beaver triple.
/// Updates `stats` with the two openings this costs.
pub fn mul_shared(
    x: &Shared,
    y: &Shared,
    triple: &Triple,
    stats: &mut OnlineStats,
) -> Result<Shared, MpcError> {
    // Both parties open d = x − a and e = y − b.
    let d = x.sub(&triple.a).reveal();
    let e = y.sub(&triple.b).reveal();
    stats.opened_elements += 2;
    stats.rounds += 1;

    // z = c + d·b + e·a + d·e (the constant d·e added by P0 only).
    let z = triple
        .c
        .add(&triple.b.mul_public(d))
        .add(&triple.a.mul_public(e))
        .add_public(ring::mul(d, e));
    Ok(z)
}

/// Dot product of shared vectors, consuming one triple per term but only
/// a single communication round (all openings batched) — how ABY
/// implements linear layers.
pub fn dot_shared(
    xs: &[Shared],
    ys: &[Shared],
    triples: &mut dyn Iterator<Item = Triple>,
    stats: &mut OnlineStats,
) -> Result<Shared, MpcError> {
    if xs.len() != ys.len() {
        return Err(MpcError::Protocol("dot product length mismatch".into()));
    }
    let mut acc = Shared { s0: 0, s1: 0 };
    for (x, y) in xs.iter().zip(ys) {
        let t = triples.next().ok_or(MpcError::OutOfTriples)?;
        let d = x.sub(&t.a).reveal();
        let e = y.sub(&t.b).reveal();
        stats.opened_elements += 2;
        let z = t
            .c
            .add(&t.b.mul_public(d))
            .add(&t.a.mul_public(e))
            .add_public(ring::mul(d, e));
        acc = acc.add(&z);
    }
    stats.rounds += 1; // batched openings: one round for the whole dot
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn triple_is_consistent() {
        let mut dealer = TripleDealer::new(StdRng::seed_from_u64(1));
        for _ in 0..10 {
            let t = dealer.triple();
            assert_eq!(ring::mul(t.a.reveal(), t.b.reveal()), t.c.reveal());
        }
        assert_eq!(dealer.issued(), 10);
    }

    #[test]
    fn beaver_multiplication_correct() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut dealer = TripleDealer::new(StdRng::seed_from_u64(3));
        let mut stats = OnlineStats::default();
        for (x, y) in [(3u64, 4u64), (0, 99), (u64::MAX, 2), (1 << 40, 1 << 30)] {
            let xs = Shared::share(x, &mut rng);
            let ys = Shared::share(y, &mut rng);
            let t = dealer.triple();
            let z = mul_shared(&xs, &ys, &t, &mut stats).unwrap();
            assert_eq!(z.reveal(), ring::mul(x, y), "x={x} y={y}");
        }
        assert_eq!(stats.opened_elements, 8);
        assert_eq!(stats.rounds, 4);
    }

    #[test]
    fn dot_product_single_round() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut dealer = TripleDealer::new(StdRng::seed_from_u64(5));
        let xs: Vec<u64> = vec![1, 2, 3, 4];
        let ys: Vec<u64> = vec![10, 20, 30, 40];
        let xsh: Vec<Shared> = xs.iter().map(|&v| Shared::share(v, &mut rng)).collect();
        let ysh: Vec<Shared> = ys.iter().map(|&v| Shared::share(v, &mut rng)).collect();
        let mut triples = std::iter::from_fn(|| Some(dealer.triple()));
        let mut stats = OnlineStats::default();
        let z = dot_shared(&xsh, &ysh, &mut triples, &mut stats).unwrap();
        assert_eq!(z.reveal(), 10 + 40 + 90 + 160);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.opened_elements, 8);
    }

    #[test]
    fn dot_length_mismatch() {
        let mut stats = OnlineStats::default();
        let mut empty = std::iter::empty();
        let a = [Shared { s0: 0, s1: 0 }];
        let err = dot_shared(&a, &[], &mut empty, &mut stats);
        assert!(err.is_err());
    }

    #[test]
    fn fixed_point_beaver_mul() {
        use crate::ring::{decode_fixed, encode_fixed, truncate};
        let mut rng = StdRng::seed_from_u64(6);
        let mut dealer = TripleDealer::new(StdRng::seed_from_u64(7));
        let mut stats = OnlineStats::default();
        let x = encode_fixed(1.5);
        let y = encode_fixed(-2.25);
        let xs = Shared::share(x, &mut rng);
        let ys = Shared::share(y, &mut rng);
        let t = dealer.triple();
        let z = mul_shared(&xs, &ys, &t, &mut stats).unwrap();
        let approx = decode_fixed(truncate(z.reveal()));
        assert!((approx - (-3.375)).abs() < 1e-3, "approx={approx}");
    }
}
