//! Boolean circuits with XOR / AND / NOT gates, plus builders for the
//! arithmetic blocks EzPC-style ReLU needs (ripple-carry adder,
//! subtractor, sign-based mux).
//!
//! XOR and NOT are free under free-XOR garbling, so circuit cost is
//! measured in AND gates.

use crate::MpcError;

/// Index of a wire. Wires `0..num_inputs` are circuit inputs; every gate
/// adds one output wire.
pub type WireId = usize;

/// A gate; its output wire id is implicit (input count + gate index).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    Xor(WireId, WireId),
    And(WireId, WireId),
    Not(WireId),
}

/// An immutable boolean circuit.
#[derive(Clone, Debug)]
pub struct Circuit {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<WireId>,
}

impl Circuit {
    /// Number of input wires.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Total wire count (inputs + one per gate).
    pub fn num_wires(&self) -> usize {
        self.num_inputs + self.gates.len()
    }

    /// The gates in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Output wire ids.
    pub fn outputs(&self) -> &[WireId] {
        &self.outputs
    }

    /// Number of AND gates (the garbling cost).
    pub fn and_count(&self) -> usize {
        self.gates.iter().filter(|g| matches!(g, Gate::And(..))).count()
    }

    /// Plaintext evaluation, for testing and for the garbling
    /// cross-checks.
    pub fn eval(&self, inputs: &[bool]) -> Result<Vec<bool>, MpcError> {
        if inputs.len() != self.num_inputs {
            return Err(MpcError::Circuit(format!(
                "expected {} inputs, got {}",
                self.num_inputs,
                inputs.len()
            )));
        }
        let mut wires = Vec::with_capacity(self.num_wires());
        wires.extend_from_slice(inputs);
        for gate in &self.gates {
            let v = match *gate {
                Gate::Xor(a, b) => wires[a] ^ wires[b],
                Gate::And(a, b) => wires[a] & wires[b],
                Gate::Not(a) => !wires[a],
            };
            wires.push(v);
        }
        Ok(self.outputs.iter().map(|&w| wires[w]).collect())
    }
}

/// Incremental circuit builder.
#[derive(Default)]
pub struct CircuitBuilder {
    num_inputs: usize,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `n` fresh input wires, returned in order.
    pub fn inputs(&mut self, n: usize) -> Vec<WireId> {
        assert!(self.gates.is_empty(), "declare inputs before gates");
        let start = self.num_inputs;
        self.num_inputs += n;
        (start..start + n).collect()
    }

    fn push(&mut self, gate: Gate) -> WireId {
        let id = self.num_inputs + self.gates.len();
        self.gates.push(gate);
        id
    }

    /// `a ⊕ b`.
    pub fn xor(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::Xor(a, b))
    }

    /// `a ∧ b`.
    pub fn and(&mut self, a: WireId, b: WireId) -> WireId {
        self.push(Gate::And(a, b))
    }

    /// `¬a`.
    pub fn not(&mut self, a: WireId) -> WireId {
        self.push(Gate::Not(a))
    }

    /// `a ∨ b` via De Morgan (one AND).
    pub fn or(&mut self, a: WireId, b: WireId) -> WireId {
        let na = self.not(a);
        let nb = self.not(b);
        let n = self.and(na, nb);
        self.not(n)
    }

    /// Ripple-carry adder over little-endian bit vectors (equal width).
    /// Returns the sum bits (carry-out discarded — wrap-around matches the
    /// ring `Z_{2^w}`). One AND per bit.
    pub fn adder(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut carry: Option<WireId> = None;
        for (&ai, &bi) in a.iter().zip(b) {
            let axb = self.xor(ai, bi);
            match carry {
                None => {
                    out.push(axb);
                    carry = Some(self.and(ai, bi));
                }
                Some(c) => {
                    let s = self.xor(axb, c);
                    out.push(s);
                    // carry' = (a⊕c)(b⊕c) ⊕ c
                    let axc = self.xor(ai, c);
                    let bxc = self.xor(bi, c);
                    let t = self.and(axc, bxc);
                    carry = Some(self.xor(t, c));
                }
            }
        }
        out
    }

    /// Ripple-borrow subtractor `a − b` (wrapping). Two ANDs per bit.
    pub fn subtractor(&mut self, a: &[WireId], b: &[WireId]) -> Vec<WireId> {
        assert_eq!(a.len(), b.len());
        let mut out = Vec::with_capacity(a.len());
        let mut borrow: Option<WireId> = None;
        for (&ai, &bi) in a.iter().zip(b) {
            let axb = self.xor(ai, bi);
            match borrow {
                None => {
                    out.push(axb);
                    let na = self.not(ai);
                    borrow = Some(self.and(na, bi));
                }
                Some(brw) => {
                    let d = self.xor(axb, brw);
                    out.push(d);
                    // borrow' = (¬a ∧ b) ⊕ (¬(a⊕b) ∧ borrow); terms disjoint.
                    let na = self.not(ai);
                    let t1 = self.and(na, bi);
                    let naxb = self.not(axb);
                    let t2 = self.and(naxb, brw);
                    borrow = Some(self.xor(t1, t2));
                }
            }
        }
        out
    }

    /// Selects `x` when `cond = 1`, else all-zero: `out_i = x_i ∧ cond`.
    pub fn gate_by(&mut self, x: &[WireId], cond: WireId) -> Vec<WireId> {
        x.iter().map(|&xi| self.and(xi, cond)).collect()
    }

    /// Finalizes the circuit with the given output wires.
    pub fn build(self, outputs: Vec<WireId>) -> Result<Circuit, MpcError> {
        let num_wires = self.num_inputs + self.gates.len();
        for (&w, src) in outputs.iter().zip(std::iter::repeat("output")) {
            if w >= num_wires {
                return Err(MpcError::Circuit(format!("dangling {src} wire {w}")));
            }
        }
        for (i, g) in self.gates.iter().enumerate() {
            let max = self.num_inputs + i;
            let ok = match *g {
                Gate::Xor(a, b) | Gate::And(a, b) => a < max && b < max,
                Gate::Not(a) => a < max,
            };
            if !ok {
                return Err(MpcError::Circuit(format!("gate {i} reads a later wire")));
            }
        }
        Ok(Circuit { num_inputs: self.num_inputs, gates: self.gates, outputs })
    }
}

/// Converts a `u64` to little-endian bools.
pub fn u64_to_bits(v: u64) -> Vec<bool> {
    (0..64).map(|i| (v >> i) & 1 == 1).collect()
}

/// Converts little-endian bools (≤ 64) back to a `u64`.
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter().enumerate().fold(0, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Builds the EzPC-style ReLU circuit:
///
/// * inputs: `x0` (P0's arithmetic share), `x1` (P1's share), `r` (P0's
///   fresh output mask), each 64 bits little-endian → 192 input wires in
///   that order;
/// * computes `x = x0 + x1`, `y = ReLU(x) = x · ¬sign(x)`, and outputs
///   `y − r` (which the evaluator learns in the clear as its new
///   arithmetic share, while P0 keeps `r`) — the Y2A conversion fused
///   into the circuit.
pub fn relu_circuit() -> Circuit {
    let mut b = CircuitBuilder::new();
    let x0 = b.inputs(64);
    let x1 = b.inputs(64);
    let r = b.inputs(64);
    let x = b.adder(&x0, &x1);
    let sign = x[63];
    let pos = b.not(sign);
    let y = b.gate_by(&x, pos);
    let masked = b.subtractor(&y, &r);
    b.build(masked).expect("well-formed by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_eval() {
        let mut b = CircuitBuilder::new();
        let ins = b.inputs(2);
        let x = b.xor(ins[0], ins[1]);
        let a = b.and(ins[0], ins[1]);
        let n = b.not(ins[0]);
        let o = b.or(ins[0], ins[1]);
        let c = b.build(vec![x, a, n, o]).unwrap();
        for (va, vb) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = c.eval(&[va, vb]).unwrap();
            assert_eq!(out, vec![va ^ vb, va & vb, !va, va | vb], "{va} {vb}");
        }
    }

    #[test]
    fn adder_matches_wrapping_add() {
        let mut b = CircuitBuilder::new();
        let a = b.inputs(64);
        let bb = b.inputs(64);
        let s = b.adder(&a, &bb);
        let c = b.build(s).unwrap();
        for (x, y) in [(0u64, 0u64), (1, 1), (u64::MAX, 1), (0xdead_beef, 0xcafe_babe), (u64::MAX, u64::MAX)] {
            let mut inputs = u64_to_bits(x);
            inputs.extend(u64_to_bits(y));
            let out = c.eval(&inputs).unwrap();
            assert_eq!(bits_to_u64(&out), x.wrapping_add(y), "x={x} y={y}");
        }
    }

    #[test]
    fn subtractor_matches_wrapping_sub() {
        let mut b = CircuitBuilder::new();
        let a = b.inputs(64);
        let bb = b.inputs(64);
        let s = b.subtractor(&a, &bb);
        let c = b.build(s).unwrap();
        for (x, y) in [(5u64, 3u64), (3, 5), (0, 1), (u64::MAX, u64::MAX), (1 << 63, 1)] {
            let mut inputs = u64_to_bits(x);
            inputs.extend(u64_to_bits(y));
            let out = c.eval(&inputs).unwrap();
            assert_eq!(bits_to_u64(&out), x.wrapping_sub(y), "x={x} y={y}");
        }
    }

    #[test]
    fn relu_circuit_semantics() {
        let c = relu_circuit();
        for (x0, x1, r) in [
            (100u64, 23u64, 7u64),
            ((-50i64) as u64, 20, 999),
            (0, 0, 0),
            ((-1i64) as u64, 0, 5),
            (1u64 << 62, 1u64 << 62, 3), // overflow into negative
        ] {
            let x = x0.wrapping_add(x1);
            let relu = if (x as i64) >= 0 { x } else { 0 };
            let mut inputs = u64_to_bits(x0);
            inputs.extend(u64_to_bits(x1));
            inputs.extend(u64_to_bits(r));
            let out = c.eval(&inputs).unwrap();
            assert_eq!(bits_to_u64(&out), relu.wrapping_sub(r), "x0={x0} x1={x1}");
        }
    }

    #[test]
    fn relu_circuit_and_count() {
        let c = relu_circuit();
        // adder: 64, gate_by: 64, subtractor: 127 → within [250, 270].
        assert!((250..=270).contains(&c.and_count()), "ANDs = {}", c.and_count());
    }

    #[test]
    fn builder_rejects_dangling_output() {
        let mut b = CircuitBuilder::new();
        let _ = b.inputs(1);
        assert!(b.build(vec![5]).is_err());
    }

    #[test]
    fn bits_roundtrip() {
        for v in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(bits_to_u64(&u64_to_bits(v)), v);
        }
    }
}
