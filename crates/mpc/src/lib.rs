//! # pp-mpc
//!
//! A from-scratch two-party secure computation stack in the style of
//! ABY — additive arithmetic sharing over `Z_{2^64}`, Beaver-triple
//! multiplication, Yao garbled circuits (point-and-permute + free-XOR),
//! and arithmetic↔Yao share conversions.
//!
//! This crate exists to reproduce the paper's **EzPC baseline** (Exp#6,
//! Table VII). EzPC compiles neural networks to the ABY framework and,
//! as the paper observes, "suffers from its high protocol transition
//! overhead due to the frequent switching between secret sharing and
//! garbled circuits": every linear layer runs in the arithmetic world,
//! every ReLU forces an A2Y conversion, a garbled comparison, and a Y2A
//! conversion back. [`nn::SecureInference`] implements exactly that layer
//! cadence so the measured cost structure matches EzPC's.
//!
//! ```
//! use pp_mpc::nn::SecureInference;
//! use pp_nn::zoo;
//! use pp_tensor::Tensor;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(3);
//! let model = zoo::mlp("2pc", &[4, 6, 2], &mut rng).unwrap();
//! let x = Tensor::from_flat(vec![0.5, -0.25, 0.75, 0.0]);
//! let plain = model.classify(&x).unwrap();
//!
//! let mut session = SecureInference::new(model, 42);
//! let (scores, cost) = session.infer(&x).unwrap();
//! assert_eq!(pp_nn::activation::argmax(&scores), plain);
//! assert_eq!(cost.gc_executions, 6, "one garbled circuit per ReLU element");
//! ```
//!
//! Substitutions versus the real EzPC/ABY stack (see DESIGN.md §3):
//! Beaver triples come from an in-process trusted dealer rather than OT
//! preprocessing (the paper's latency numbers also exclude offline
//! preprocessing), and wire labels are expanded with a Speck128-based PRF
//! rather than fixed-key AES-NI. **Not production cryptography** — a
//! faithful cost model of the protocol structure.

pub mod beaver;
pub mod circuit;
pub mod garble;
pub mod nn;
pub mod ot;
pub mod prf;
pub mod ring;
pub mod sharing;

/// Errors from MPC protocol execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpcError {
    /// A garbled row failed to decrypt to a valid label.
    GarbleDecrypt,
    /// Circuit construction error (e.g. dangling wire).
    Circuit(String),
    /// The dealer ran out of preprocessed triples.
    OutOfTriples,
    /// Shape/size mismatch between protocol messages.
    Protocol(String),
}

impl std::fmt::Display for MpcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MpcError::GarbleDecrypt => write!(f, "garbled gate failed to decrypt"),
            MpcError::Circuit(s) => write!(f, "circuit error: {s}"),
            MpcError::OutOfTriples => write!(f, "Beaver triple pool exhausted"),
            MpcError::Protocol(s) => write!(f, "protocol error: {s}"),
        }
    }
}

impl std::error::Error for MpcError {}
