//! Property-based tests for `pp-bigint`: algebraic laws, cross-validation
//! against native `u128` arithmetic, and roundtrips.

use pp_bigint::{BigInt, BigUint, MontgomeryCtx};
use proptest::prelude::*;

/// Strategy: an arbitrary BigUint of up to 6 limbs.
fn arb_biguint() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 0..6).prop_map(BigUint::from_limbs)
}

/// Strategy: a non-zero BigUint of up to 4 limbs.
fn arb_nonzero() -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u64>(), 1..4)
        .prop_map(BigUint::from_limbs)
        .prop_filter("non-zero", |v| !v.is_zero())
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = &BigUint::from(a) + &BigUint::from(b);
        prop_assert_eq!(got.to_u128(), Some(a as u128 + b as u128));
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let got = &BigUint::from(a) * &BigUint::from(b);
        prop_assert_eq!(got.to_u128(), Some(a as u128 * b as u128));
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
        let (q, r) = BigUint::from(a).div_rem(&BigUint::from(b)).unwrap();
        prop_assert_eq!(q.to_u128(), Some(a / b));
        prop_assert_eq!(r.to_u128(), Some(a % b));
    }

    #[test]
    fn add_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn add_associative(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn mul_commutative(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&a * &b, &b * &a);
    }

    #[test]
    fn mul_distributes_over_add(a in arb_biguint(), b in arb_biguint(), c in arb_biguint()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn sub_inverts_add(a in arb_biguint(), b in arb_biguint()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn div_rem_reconstructs(a in arb_biguint(), b in arb_nonzero()) {
        let (q, r) = a.div_rem(&b).unwrap();
        prop_assert!(r < b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn decimal_roundtrip(a in arb_biguint()) {
        let s = a.to_decimal();
        prop_assert_eq!(BigUint::from_decimal_str(&s).unwrap(), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_biguint()) {
        let s = a.to_hex();
        prop_assert_eq!(BigUint::from_hex_str(&s).unwrap(), a);
    }

    #[test]
    fn bytes_roundtrip(a in arb_biguint()) {
        prop_assert_eq!(BigUint::from_bytes_be(&a.to_bytes_be()), a.clone());
        prop_assert_eq!(BigUint::from_bytes_le(&a.to_bytes_le()), a);
    }

    #[test]
    fn shift_roundtrip(a in arb_biguint(), bits in 0usize..200) {
        prop_assert_eq!(a.shl_bits(bits).shr_bits(bits), a);
    }

    #[test]
    fn gcd_divides_both(a in arb_nonzero(), b in arb_nonzero()) {
        let g = a.gcd(&b);
        prop_assert!(a.rem_ref(&g).unwrap().is_zero());
        prop_assert!(b.rem_ref(&g).unwrap().is_zero());
    }

    #[test]
    fn gcd_lcm_product(a in any::<u64>().prop_filter("nz", |&x| x > 0),
                       b in any::<u64>().prop_filter("nz", |&x| x > 0)) {
        let (a, b) = (BigUint::from(a), BigUint::from(b));
        let g = a.gcd(&b);
        let l = a.lcm(&b);
        prop_assert_eq!(&g * &l, &a * &b);
    }

    #[test]
    fn modpow_matches_u128_ladder(base in any::<u64>(), exp in 0u32..64, m in 2u64..) {
        let got = BigUint::from(base).modpow(&BigUint::from(exp as u64), &BigUint::from(m));
        let mut want: u128 = 1;
        for _ in 0..exp {
            want = want * (base % m) as u128 % m as u128;
        }
        prop_assert_eq!(got.to_u128(), Some(want));
    }

    #[test]
    fn modinv_is_inverse(a in 1u64.., m in 3u64..) {
        let (a, m) = (BigUint::from(a), BigUint::from(m));
        if let Ok(inv) = a.modinv(&m) {
            prop_assert!(a.mulmod(&inv, &m).unwrap().is_one());
        } else {
            prop_assert!(!a.gcd(&m).is_one());
        }
    }

    #[test]
    fn signed_arithmetic_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (ba, bb) = (BigInt::from(a), BigInt::from(b));
        prop_assert_eq!((&ba + &bb).to_i128(), Some(a as i128 + b as i128));
        prop_assert_eq!((&ba - &bb).to_i128(), Some(a as i128 - b as i128));
        prop_assert_eq!((&ba * &bb).to_i128(), Some(a as i128 * b as i128));
    }

    #[test]
    fn rem_euclid_in_range(a in any::<i64>(), m in 1u64..) {
        let r = BigInt::from(a).rem_euclid_biguint(&BigUint::from(m));
        prop_assert!(r < BigUint::from(m));
        // (a - r) divisible by m
        let diff = &BigInt::from(a) - &BigInt::from_biguint(r);
        prop_assert!(diff.magnitude().rem_ref(&BigUint::from(m)).unwrap().is_zero());
    }

    #[test]
    fn low_bits_matches_mask(a in any::<u128>(), bits in 0usize..128) {
        let got = BigUint::from(a).low_bits(bits);
        let want = if bits >= 128 { a } else { a & ((1u128 << bits) - 1) };
        prop_assert_eq!(got.to_u128(), Some(want));
    }

    /// Multi-exponentiation over a shared squaring ladder must match the
    /// product of independent single-base `pow_mod` calls for any mix of
    /// base count (1–8) and exponent magnitude (including zeros, which
    /// exercise the skip path and the started-flag logic).
    #[test]
    fn multi_exp_matches_iterated_pow(
        m in any::<u64>().prop_map(|x| (x | 1).max(3)),
        pairs in proptest::collection::vec(
            (any::<u64>(), prop_oneof![Just(0u64), 0u64..64, any::<u64>()]),
            1..=8,
        ),
    ) {
        let n = BigUint::from(m);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let bases: Vec<BigUint> =
            pairs.iter().map(|(b, _)| BigUint::from(*b)).collect();
        let exps: Vec<u64> = pairs.iter().map(|(_, e)| *e).collect();

        let fused = ctx.pow_mod_multi(&bases, &exps);

        let mut want = BigUint::one().rem_ref(&n).unwrap();
        for (b, &e) in bases.iter().zip(&exps) {
            let term = ctx.pow_mod(&b.rem_ref(&n).unwrap(), &BigUint::from(e));
            want = ctx.mul_mod(&want, &term);
        }
        prop_assert_eq!(fused, want);
    }

    /// Fixed-base comb exponentiation must agree with the plain
    /// square-and-multiply ladder for every base/exponent/modulus mix —
    /// exponent 0 and 1, digits straddling limb boundaries, exponents
    /// exactly at the table's width, and exponents wider than the table
    /// (the pow_mod fallback path).
    #[test]
    fn fixed_base_matches_pow_mod_prop(
        m in proptest::collection::vec(any::<u64>(), 1..3).prop_map(|v| {
            let mut n = BigUint::from_limbs(v);
            n.set_bit(0, true);
            if n.is_one() { BigUint::from(3u64) } else { n }
        }),
        base in arb_biguint(),
        exp in prop_oneof![
            Just(BigUint::zero()),
            Just(BigUint::one()),
            any::<u64>().prop_map(BigUint::from),
            proptest::collection::vec(any::<u64>(), 1..4).prop_map(BigUint::from_limbs),
        ],
        max_bits in 1usize..200,
    ) {
        let ctx = MontgomeryCtx::new(&m).unwrap();
        let base = base.rem_ref(&m).unwrap();
        let table = ctx.fixed_base_table(&base, max_bits);
        prop_assert_eq!(
            ctx.pow_fixed_base(&table, &exp),
            ctx.pow_mod(&base, &exp)
        );
    }

    /// Toom-Cook-3 products (operands ≥ 96 limbs) must agree with the
    /// same product assembled from half-width pieces: the pieces sit in
    /// the 48–70 limb range, so their products dispatch through
    /// Karatsuba — cross-validating the two algorithms against each
    /// other via a·b = a₁b₁·2^(2hw) + (a₁b₀ + a₀b₁)·2^(hw) + a₀b₀.
    #[test]
    fn toom_product_matches_karatsuba_split(
        a in proptest::collection::vec(any::<u64>(), 96..140),
        b in proptest::collection::vec(any::<u64>(), 96..140),
    ) {
        let (a, b) = (BigUint::from_limbs(a), BigUint::from_limbs(b));
        let full = &a * &b;

        let half_bits = 48 * 64;
        let (a0, a1) = (a.low_bits(half_bits), a.shr_bits(half_bits));
        let (b0, b1) = (b.low_bits(half_bits), b.shr_bits(half_bits));
        let mut split = (&a1 * &b1).shl_bits(2 * half_bits);
        split = &split + &(&a1 * &b0).shl_bits(half_bits);
        split = &split + &(&a0 * &b1).shl_bits(half_bits);
        split = &split + &(&a0 * &b0);
        prop_assert_eq!(&full, &split);

        // Squaring takes its own Toom path; it must match the general
        // product of equal operands.
        prop_assert_eq!(a.square(), &a * &a);
    }
}
