//! Signed arbitrary-precision integers (sign + magnitude).

use crate::{BigIntError, BigUint};
use std::cmp::Ordering;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of a [`BigInt`]. Zero is always [`Sign::Zero`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sign {
    Negative,
    Zero,
    Positive,
}

/// A signed arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq)]
pub struct BigInt {
    sign: Sign,
    mag: BigUint,
}

impl BigInt {
    /// The value `0`.
    pub fn zero() -> Self {
        BigInt { sign: Sign::Zero, mag: BigUint::zero() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigInt { sign: Sign::Positive, mag: BigUint::one() }
    }

    /// Constructs a non-negative value from a [`BigUint`].
    pub fn from_biguint(mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { Sign::Positive };
        BigInt { sign, mag }
    }

    /// Constructs from a sign and magnitude (sign is normalized for zero).
    pub fn from_sign_magnitude(sign: Sign, mag: BigUint) -> Self {
        let sign = if mag.is_zero() { Sign::Zero } else { sign };
        BigInt { sign, mag }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude `|self|`.
    pub fn magnitude(&self) -> &BigUint {
        &self.mag
    }

    /// Consumes `self`, returning the magnitude.
    pub fn into_magnitude(self) -> BigUint {
        self.mag
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Value as `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                let v = self.mag.to_u64()?;
                i64::try_from(v).ok()
            }
            Sign::Negative => {
                let v = self.mag.to_u64()?;
                if v == i64::MIN.unsigned_abs() {
                    Some(i64::MIN)
                } else {
                    i64::try_from(v).ok().map(|x| -x)
                }
            }
        }
    }

    /// Value as `i128` if it fits.
    pub fn to_i128(&self) -> Option<i128> {
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => i128::try_from(self.mag.to_u128()?).ok(),
            Sign::Negative => {
                let v = self.mag.to_u128()?;
                if v == i128::MIN.unsigned_abs() {
                    Some(i128::MIN)
                } else {
                    i128::try_from(v).ok().map(|x| -x)
                }
            }
        }
    }

    /// Floor division: the unique `q` with `self = q·rhs + r`, `0 ≤ r < |rhs|`
    /// ... for positive `rhs`; general sign handling rounds toward −∞.
    pub fn div_floor(&self, rhs: &BigInt) -> BigInt {
        assert!(!rhs.is_zero(), "division by zero");
        let (q, r) = self.mag.div_rem(&rhs.mag).expect("rhs non-zero");
        let same_sign = self.sign == rhs.sign || self.is_zero();
        if same_sign {
            BigInt::from_sign_magnitude(Sign::Positive, q)
        } else {
            // Opposite signs: truncate toward zero then adjust for remainder.
            let mut q = q;
            if !r.is_zero() {
                q.add_u64_assign(1);
            }
            BigInt::from_sign_magnitude(Sign::Negative, q)
        }
    }

    /// Euclidean remainder into `[0, m)` as a [`BigUint`].
    pub fn rem_euclid_biguint(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem_ref(m).expect("modulus non-zero");
        match self.sign {
            Sign::Negative if !r.is_zero() => m - &r,
            _ => r,
        }
    }

    /// Parses a decimal string with optional sign.
    pub fn from_decimal_str(s: &str) -> Result<Self, BigIntError> {
        if let Some(rest) = s.strip_prefix('-') {
            Ok(BigInt::from_sign_magnitude(
                Sign::Negative,
                BigUint::from_decimal_str(rest)?,
            ))
        } else {
            Ok(BigInt::from_biguint(BigUint::from_decimal_str(s)?))
        }
    }
}

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_biguint(BigUint::from(v as u64)),
            Ordering::Less => {
                BigInt::from_sign_magnitude(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_biguint(BigUint::from(v as u128)),
            Ordering::Less => {
                BigInt::from_sign_magnitude(Sign::Negative, BigUint::from(v.unsigned_abs()))
            }
        }
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        BigInt::from_biguint(BigUint::from(v))
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt { sign, mag: self.mag }
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_magnitude(a, self.mag.add_ref(&rhs.mag)),
            _ => {
                let (mag, flipped) = self.mag.abs_diff(&rhs.mag);
                let sign = if flipped { rhs.sign } else { self.sign };
                BigInt::from_sign_magnitude(sign, mag)
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = match (self.sign, rhs.sign) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (a, b) if a == b => Sign::Positive,
            _ => Sign::Negative,
        };
        BigInt::from_sign_magnitude(sign, self.mag.mul_ref(&rhs.mag))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        use Sign::*;
        match (self.sign, other.sign) {
            (Negative, Negative) => other.mag.cmp(&self.mag),
            (Negative, _) => Ordering::Less,
            (Zero, Negative) => Ordering::Greater,
            (Zero, Zero) => Ordering::Equal,
            (Zero, Positive) => Ordering::Less,
            (Positive, Positive) => self.mag.cmp(&other.mag),
            (Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Display for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl std::fmt::Debug for BigInt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn signed_arithmetic_small() {
        for a in [-7i64, -1, 0, 1, 13] {
            for b in [-5i64, -1, 0, 1, 9] {
                assert_eq!((&bi(a) + &bi(b)).to_i64(), Some(a + b), "{a}+{b}");
                assert_eq!((&bi(a) - &bi(b)).to_i64(), Some(a - b), "{a}-{b}");
                assert_eq!((&bi(a) * &bi(b)).to_i64(), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn negation() {
        assert_eq!((-bi(5)).to_i64(), Some(-5));
        assert_eq!((-bi(-5)).to_i64(), Some(5));
        assert!((-bi(0)).is_zero());
    }

    #[test]
    fn ordering() {
        assert!(bi(-10) < bi(-3));
        assert!(bi(-3) < bi(0));
        assert!(bi(0) < bi(2));
        assert!(bi(2) < bi(10));
    }

    #[test]
    fn div_floor_matches_i64() {
        fn floor_div(a: i64, b: i64) -> i64 {
            let q = a / b;
            if (a % b != 0) && ((a < 0) != (b < 0)) {
                q - 1
            } else {
                q
            }
        }
        for a in [-17i64, -8, -1, 0, 1, 8, 17] {
            for b in [-5i64, -3, 3, 5] {
                let got = bi(a).div_floor(&bi(b)).to_i64().unwrap();
                assert_eq!(got, floor_div(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn rem_euclid_into_range() {
        let m = BigUint::from(7u64);
        assert_eq!(bi(10).rem_euclid_biguint(&m).to_u64(), Some(3));
        assert_eq!(bi(-10).rem_euclid_biguint(&m).to_u64(), Some(4));
        assert_eq!(bi(-7).rem_euclid_biguint(&m).to_u64(), Some(0));
        assert_eq!(bi(0).rem_euclid_biguint(&m).to_u64(), Some(0));
    }

    #[test]
    fn i64_boundaries() {
        assert_eq!(BigInt::from(i64::MIN).to_i64(), Some(i64::MIN));
        assert_eq!(BigInt::from(i64::MAX).to_i64(), Some(i64::MAX));
        let too_big = &BigInt::from(i64::MAX) + &BigInt::one();
        assert_eq!(too_big.to_i64(), None);
        assert_eq!(too_big.to_i128(), Some(i64::MAX as i128 + 1));
    }

    #[test]
    fn parse_signed_decimal() {
        assert_eq!(BigInt::from_decimal_str("-42").unwrap().to_i64(), Some(-42));
        assert_eq!(BigInt::from_decimal_str("42").unwrap().to_i64(), Some(42));
        assert!(BigInt::from_decimal_str("--1").is_err());
    }

    #[test]
    fn display() {
        assert_eq!(bi(-123).to_string(), "-123");
        assert_eq!(bi(0).to_string(), "0");
    }
}
