//! Multi-limb addition and subtraction with carry/borrow propagation.

use crate::{BigIntError, BigUint, Limb};
use std::ops::{Add, AddAssign, Sub, SubAssign};

#[inline]
fn adc(a: Limb, b: Limb, carry: &mut Limb) -> Limb {
    let s = a as u128 + b as u128 + *carry as u128;
    *carry = (s >> 64) as Limb;
    s as Limb
}

#[inline]
fn sbb(a: Limb, b: Limb, borrow: &mut Limb) -> Limb {
    let d = (a as i128) - (b as i128) - (*borrow as i128);
    *borrow = (d < 0) as Limb;
    d as Limb
}

/// Adds `rhs` into the limb slice `acc` (little-endian) starting at offset
/// `shift` limbs. `acc` must be large enough to absorb the carry.
pub(crate) fn add_shifted_in_place(acc: &mut [Limb], rhs: &[Limb], shift: usize) {
    let mut carry = 0;
    let mut i = shift;
    for &r in rhs {
        acc[i] = adc(acc[i], r, &mut carry);
        i += 1;
    }
    while carry != 0 {
        acc[i] = adc(acc[i], 0, &mut carry);
        i += 1;
    }
}

impl BigUint {
    /// `self + rhs`.
    pub fn add_ref(&self, rhs: &BigUint) -> BigUint {
        let (long, short) = if self.limbs.len() >= rhs.limbs.len() {
            (&self.limbs, &rhs.limbs)
        } else {
            (&rhs.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0;
        for (i, &a) in long.iter().enumerate() {
            let b = short.get(i).copied().unwrap_or(0);
            out.push(adc(a, b, &mut carry));
        }
        if carry != 0 {
            out.push(carry);
        }
        BigUint::from_limbs(out)
    }

    /// `self - rhs`, or [`BigIntError::Underflow`] when `rhs > self`.
    pub fn checked_sub(&self, rhs: &BigUint) -> Result<BigUint, BigIntError> {
        if rhs > self {
            return Err(BigIntError::Underflow);
        }
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0;
        for i in 0..self.limbs.len() {
            let b = rhs.limbs.get(i).copied().unwrap_or(0);
            out.push(sbb(self.limbs[i], b, &mut borrow));
        }
        debug_assert_eq!(borrow, 0, "underflow despite ordering check");
        Ok(BigUint::from_limbs(out))
    }

    /// `|self - rhs|` together with whether the result is negative
    /// (i.e. `rhs > self`).
    pub fn abs_diff(&self, rhs: &BigUint) -> (BigUint, bool) {
        if self >= rhs {
            (self.checked_sub(rhs).expect("ordering checked"), false)
        } else {
            (rhs.checked_sub(self).expect("ordering checked"), true)
        }
    }

    /// Adds a single `u64` in place.
    pub fn add_u64_assign(&mut self, v: u64) {
        let mut carry = v;
        for l in self.limbs.iter_mut() {
            let s = *l as u128 + carry as u128;
            *l = s as Limb;
            carry = (s >> 64) as Limb;
            if carry == 0 {
                return;
            }
        }
        if carry != 0 {
            self.limbs.push(carry);
        }
    }

    /// Subtracts a single `u64` in place; errors on underflow.
    pub fn sub_u64_assign(&mut self, v: u64) -> Result<(), BigIntError> {
        if self.limbs.is_empty() {
            if v == 0 {
                return Ok(());
            }
            return Err(BigIntError::Underflow);
        }
        let mut borrow = v;
        for l in self.limbs.iter_mut() {
            let (nl, under) = l.overflowing_sub(borrow);
            *l = nl;
            borrow = under as Limb;
            if borrow == 0 {
                break;
            }
        }
        if borrow != 0 {
            return Err(BigIntError::Underflow);
        }
        self.normalize();
        Ok(())
    }
}

impl Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        self.add_ref(rhs)
    }
}

impl Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        self.add_ref(&rhs)
    }
}

impl AddAssign<&BigUint> for BigUint {
    fn add_assign(&mut self, rhs: &BigUint) {
        *self = self.add_ref(rhs);
    }
}

impl Sub for &BigUint {
    type Output = BigUint;
    /// Panics on underflow; use [`BigUint::checked_sub`] for fallible code.
    fn sub(self, rhs: &BigUint) -> BigUint {
        self.checked_sub(rhs).expect("BigUint subtraction underflow")
    }
}

impl Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        &self - &rhs
    }
}

impl SubAssign<&BigUint> for BigUint {
    fn sub_assign(&mut self, rhs: &BigUint) {
        *self = &*self - rhs;
    }
}

#[cfg(test)]
mod tests {
    use crate::{BigIntError, BigUint};

    #[test]
    fn add_with_carry_chain() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::one();
        let c = &a + &b;
        assert_eq!(c.limbs(), &[0, 1]);
    }

    #[test]
    fn add_multi_limb() {
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX]);
        let b = BigUint::from_limbs(vec![1]);
        let c = &a + &b;
        assert_eq!(c.limbs(), &[0, 0, 1]);
    }

    #[test]
    fn sub_basic_and_underflow() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(58u64);
        assert_eq!((&a - &b).to_u64(), Some(42));
        assert_eq!(b.checked_sub(&a), Err(BigIntError::Underflow));
    }

    #[test]
    fn sub_with_borrow_chain() {
        let a = BigUint::from_limbs(vec![0, 0, 1]); // 2^128
        let b = BigUint::one();
        let c = &a - &b;
        assert_eq!(c.limbs(), &[u64::MAX, u64::MAX]);
    }

    #[test]
    fn add_then_sub_roundtrip() {
        let a = BigUint::from_limbs(vec![123, 456, 789]);
        let b = BigUint::from_limbs(vec![u64::MAX, 1]);
        let c = &(&a + &b) - &b;
        assert_eq!(c, a);
    }

    #[test]
    fn abs_diff_signs() {
        let a = BigUint::from(10u64);
        let b = BigUint::from(25u64);
        let (d1, neg1) = a.abs_diff(&b);
        assert_eq!(d1.to_u64(), Some(15));
        assert!(neg1);
        let (d2, neg2) = b.abs_diff(&a);
        assert_eq!(d2.to_u64(), Some(15));
        assert!(!neg2);
        let (d3, neg3) = a.abs_diff(&a);
        assert!(d3.is_zero());
        assert!(!neg3);
    }

    #[test]
    fn scalar_add_sub() {
        let mut a = BigUint::from(u64::MAX);
        a.add_u64_assign(5);
        assert_eq!(a.limbs(), &[4, 1]);
        a.sub_u64_assign(5).unwrap();
        assert_eq!(a.to_u64(), Some(u64::MAX));
        let mut z = BigUint::zero();
        assert!(z.sub_u64_assign(1).is_err());
        z.add_u64_assign(0);
        assert!(z.is_zero());
    }
}
