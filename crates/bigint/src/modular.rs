//! Modular arithmetic helpers on [`BigUint`]: gcd, lcm, modular inverse, and
//! a generic `modpow` that dispatches to Montgomery arithmetic for odd
//! moduli.

use crate::{BigInt, BigIntError, BigUint, MontgomeryCtx};

impl BigUint {
    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let za = a.trailing_zeros().expect("a non-zero");
        let zb = b.trailing_zeros().expect("b non-zero");
        let common = za.min(zb);
        a = a.shr_bits(za);
        b = b.shr_bits(zb);
        loop {
            debug_assert!(a.is_odd() && b.is_odd());
            if a > b {
                std::mem::swap(&mut a, &mut b);
            }
            b -= &a;
            if b.is_zero() {
                return a.shl_bits(common);
            }
            b = b.shr_bits(b.trailing_zeros().expect("b non-zero"));
        }
    }

    /// Least common multiple. Returns `0` when either input is `0`.
    pub fn lcm(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let g = self.gcd(other);
        &(self / &g) * other
    }

    /// Modular inverse: `x` such that `self·x ≡ 1 (mod m)`, or
    /// [`BigIntError::NoInverse`] when `gcd(self, m) ≠ 1`.
    pub fn modinv(&self, m: &BigUint) -> Result<BigUint, BigIntError> {
        if m.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if m.is_one() {
            return Ok(BigUint::zero());
        }
        // Extended Euclid on signed integers.
        let (mut old_r, mut r) = (BigInt::from_biguint(self.rem_ref(m)?), BigInt::from_biguint(m.clone()));
        let (mut old_s, mut s) = (BigInt::one(), BigInt::zero());
        while !r.is_zero() {
            let q = old_r.div_floor(&r);
            let new_r = &old_r - &(&q * &r);
            old_r = std::mem::replace(&mut r, new_r);
            let new_s = &old_s - &(&q * &s);
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.magnitude().is_one() {
            return Err(BigIntError::NoInverse);
        }
        // old_s may be negative; normalize into [0, m).
        Ok(old_s.rem_euclid_biguint(m))
    }

    /// Modular exponentiation `self^exp mod m`.
    ///
    /// Dispatches to Montgomery arithmetic when `m` is odd (the common case —
    /// Paillier moduli `n` and `n²` are always odd); otherwise falls back to
    /// square-and-multiply with division-based reduction.
    pub fn modpow(&self, exp: &BigUint, m: &BigUint) -> BigUint {
        assert!(!m.is_zero(), "modpow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        if m.is_odd() {
            let ctx = MontgomeryCtx::new(m).expect("odd modulus > 1");
            return ctx.pow_mod(self, exp);
        }
        // Even modulus: plain square-and-multiply.
        let mut acc = BigUint::one();
        let base = self.rem_ref(m).expect("m non-zero");
        for i in (0..exp.bit_len()).rev() {
            acc = acc.square().rem_ref(m).expect("m non-zero");
            if exp.bit(i) {
                acc = acc.mul_ref(&base).rem_ref(m).expect("m non-zero");
            }
        }
        acc
    }

    /// `self·other mod m` without constructing a Montgomery context.
    pub fn mulmod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, BigIntError> {
        self.mul_ref(other).rem_ref(m)
    }

    /// `self + other mod m`.
    pub fn addmod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, BigIntError> {
        self.add_ref(other).rem_ref(m)
    }

    /// `self - other mod m`, wrapping into `[0, m)`.
    pub fn submod(&self, other: &BigUint, m: &BigUint) -> Result<BigUint, BigIntError> {
        let a = self.rem_ref(m)?;
        let b = other.rem_ref(m)?;
        if a >= b {
            Ok(&a - &b)
        } else {
            Ok(&(&a + m) - &b)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{BigIntError, BigUint};

    #[test]
    fn gcd_small() {
        let g = BigUint::from(48u64).gcd(&BigUint::from(36u64));
        assert_eq!(g.to_u64(), Some(12));
        assert_eq!(BigUint::zero().gcd(&BigUint::from(7u64)).to_u64(), Some(7));
        assert_eq!(BigUint::from(7u64).gcd(&BigUint::zero()).to_u64(), Some(7));
        assert!(BigUint::zero().gcd(&BigUint::zero()).is_zero());
    }

    #[test]
    fn gcd_large_coprime() {
        // Two large primes are coprime.
        let p = BigUint::from_decimal_str("170141183460469231731687303715884105727").unwrap(); // 2^127-1
        let q = BigUint::from(2_305_843_009_213_693_951u64); // 2^61-1
        assert!(p.gcd(&q).is_one());
    }

    #[test]
    fn lcm_basic() {
        let l = BigUint::from(4u64).lcm(&BigUint::from(6u64));
        assert_eq!(l.to_u64(), Some(12));
        assert!(BigUint::zero().lcm(&BigUint::from(5u64)).is_zero());
    }

    #[test]
    fn modinv_small() {
        let inv = BigUint::from(3u64).modinv(&BigUint::from(7u64)).unwrap();
        assert_eq!(inv.to_u64(), Some(5)); // 3*5 = 15 = 1 mod 7
        assert_eq!(
            BigUint::from(2u64).modinv(&BigUint::from(4u64)),
            Err(BigIntError::NoInverse)
        );
    }

    #[test]
    fn modinv_large() {
        let m = BigUint::from_decimal_str("170141183460469231731687303715884105727").unwrap();
        let a = BigUint::from_decimal_str("123456789123456789123456789").unwrap();
        let inv = a.modinv(&m).unwrap();
        let check = a.mulmod(&inv, &m).unwrap();
        assert!(check.is_one());
    }

    #[test]
    fn modpow_matches_naive() {
        let m = BigUint::from(1_000_003u64);
        for (b, e) in [(2u64, 10u64), (7, 100), (123456, 0), (0, 5), (999, 999)] {
            let got = BigUint::from(b).modpow(&BigUint::from(e), &m);
            let mut expect = 1u128;
            for _ in 0..e {
                expect = expect * b as u128 % 1_000_003;
            }
            assert_eq!(got.to_u64(), Some(expect as u64), "b={b} e={e}");
        }
    }

    #[test]
    fn modpow_even_modulus() {
        let m = BigUint::from(1u64 << 20);
        let got = BigUint::from(3u64).modpow(&BigUint::from(1000u64), &m);
        // 3^1000 mod 2^20 computed independently with u128 ladder.
        let mut expect: u128 = 1;
        for _ in 0..1000 {
            expect = expect * 3 % (1 << 20);
        }
        assert_eq!(got.to_u64(), Some(expect as u64));
    }

    #[test]
    fn submod_wraps() {
        let m = BigUint::from(10u64);
        let r = BigUint::from(3u64).submod(&BigUint::from(8u64), &m).unwrap();
        assert_eq!(r.to_u64(), Some(5));
    }
}
