//! # pp-bigint
//!
//! Arbitrary-precision integer arithmetic built from scratch for the
//! PP-Stream reproduction. This crate is the workspace's substitute for the
//! GMP library that the paper's C++ prototype links against: it provides
//! every primitive that Paillier's partially homomorphic cryptosystem needs —
//! multi-limb addition/subtraction, schoolbook and Karatsuba multiplication,
//! Knuth Algorithm D division, Montgomery modular exponentiation, modular
//! inverses, gcd, Miller–Rabin primality testing, and random prime
//! generation.
//!
//! The two public integer types are:
//!
//! * [`BigUint`] — an unsigned, arbitrarily large integer stored as
//!   little-endian 64-bit limbs.
//! * [`BigInt`] — a signed wrapper (sign + magnitude) used where negative
//!   intermediate values appear (e.g. the extended Euclidean algorithm and
//!   the signed message encoding in `pp-paillier`).
//!
//! ## Example
//!
//! ```
//! use pp_bigint::BigUint;
//!
//! let a = BigUint::from(123456789u64);
//! let b = BigUint::from_decimal_str("987654321987654321").unwrap();
//! let m = BigUint::from(1_000_000_007u64);
//! let c = a.modpow(&b, &m);
//! assert!(c < m);
//! ```

mod add_sub;
mod bigint;
mod biguint;
mod convert;
mod div;
mod modular;
mod montgomery;
mod mul;
mod prime;
mod random;
mod shift;

pub use bigint::{BigInt, Sign};
pub use biguint::BigUint;
pub use montgomery::{FixedBaseTable, MontScratch, MontgomeryCtx};
pub use prime::{gen_prime, gen_safe_prime, is_probable_prime, DEFAULT_MR_ROUNDS};
pub use random::{random_below, random_bits, random_coprime};

/// A single machine word of a [`BigUint`]. Limbs are stored little-endian.
pub type Limb = u64;

/// Number of bits in a [`Limb`].
pub const LIMB_BITS: usize = 64;

/// Errors produced by fallible `pp-bigint` operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BigIntError {
    /// Attempted division or reduction by zero.
    DivisionByZero,
    /// The operand has no modular inverse for the given modulus.
    NoInverse,
    /// A string could not be parsed as an integer in the requested radix.
    ParseError(String),
    /// Montgomery arithmetic requires an odd modulus.
    EvenModulus,
    /// Subtraction would underflow an unsigned integer.
    Underflow,
}

impl std::fmt::Display for BigIntError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BigIntError::DivisionByZero => write!(f, "division by zero"),
            BigIntError::NoInverse => write!(f, "no modular inverse exists"),
            BigIntError::ParseError(s) => write!(f, "parse error: {s}"),
            BigIntError::EvenModulus => write!(f, "Montgomery context requires an odd modulus"),
            BigIntError::Underflow => write!(f, "unsigned subtraction underflow"),
        }
    }
}

impl std::error::Error for BigIntError {}
