//! Division and remainder via Knuth's Algorithm D (TAOCP Vol. 2, 4.3.1),
//! with fast paths for single-limb divisors.

use crate::{BigIntError, BigUint, Limb};
use std::ops::{Div, Rem};

impl BigUint {
    /// Computes `(self / rhs, self % rhs)`.
    pub fn div_rem(&self, rhs: &BigUint) -> Result<(BigUint, BigUint), BigIntError> {
        if rhs.is_zero() {
            return Err(BigIntError::DivisionByZero);
        }
        if self < rhs {
            return Ok((BigUint::zero(), self.clone()));
        }
        if rhs.limbs.len() == 1 {
            let (q, r) = self.div_rem_u64(rhs.limbs[0]);
            return Ok((q, BigUint::from(r)));
        }
        Ok(knuth_d(self, rhs))
    }

    /// `(self / d, self % d)` for a single-limb divisor. Panics if `d == 0`.
    pub fn div_rem_u64(&self, d: u64) -> (BigUint, u64) {
        assert!(d != 0, "division by zero");
        let mut q = vec![0; self.limbs.len()];
        let mut rem: u128 = 0;
        for i in (0..self.limbs.len()).rev() {
            let cur = (rem << 64) | self.limbs[i] as u128;
            q[i] = (cur / d as u128) as Limb;
            rem = cur % d as u128;
        }
        (BigUint::from_limbs(q), rem as u64)
    }

    /// `self % rhs`.
    pub fn rem_ref(&self, rhs: &BigUint) -> Result<BigUint, BigIntError> {
        Ok(self.div_rem(rhs)?.1)
    }
}

/// Knuth Algorithm D for a divisor of at least two limbs.
/// Precondition: `u >= v`, `v.limbs.len() >= 2`.
fn knuth_d(u: &BigUint, v: &BigUint) -> (BigUint, BigUint) {
    let n = v.limbs.len();
    let m = u.limbs.len() - n;

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = v.limbs[n - 1].leading_zeros() as usize;
    let vn = v.shl_bits(shift);
    let mut un = u.shl_bits(shift).limbs;
    un.resize(u.limbs.len() + 1, 0); // extra high limb for the algorithm

    let vn = &vn.limbs;
    debug_assert!(vn[n - 1] >> 63 == 1);

    let mut q = vec![0 as Limb; m + 1];

    // D2..D7: main loop over quotient digits, most significant first.
    for j in (0..=m).rev() {
        // D3: estimate qhat from the top two limbs of the current remainder
        // against the top limb of the divisor.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;

        // Refine: at most two corrections bring qhat within 1 of the truth.
        while qhat >> 64 != 0
            || qhat * vn[n - 2] as u128 > ((rhat << 64) | un[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >> 64 != 0 {
                break;
            }
        }

        // D4: multiply-and-subtract qhat * v from the window u[j..j+n].
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[j + i] as i128 - (p as u64) as i128 + borrow;
            un[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = un[j + n] as i128 - carry as i128 + borrow;
        un[j + n] = t as u64;

        q[j] = qhat as Limb;

        // D6: if we subtracted one time too many (t < 0), add back one v.
        if t < 0 {
            q[j] -= 1;
            let mut carry2: u128 = 0;
            for i in 0..n {
                let s = un[j + i] as u128 + vn[i] as u128 + carry2;
                un[j + i] = s as u64;
                carry2 = s >> 64;
            }
            un[j + n] = (un[j + n] as u128 + carry2) as u64;
        }
    }

    // D8: denormalize the remainder.
    let rem = BigUint::from_limbs(un[..n].to_vec()).shr_bits(shift);
    (BigUint::from_limbs(q), rem)
}

impl Div for &BigUint {
    type Output = BigUint;
    /// Panics on division by zero; use [`BigUint::div_rem`] for fallible code.
    fn div(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl Rem for &BigUint {
    type Output = BigUint;
    /// Panics on division by zero; use [`BigUint::div_rem`] for fallible code.
    fn rem(self, rhs: &BigUint) -> BigUint {
        self.div_rem(rhs).expect("division by zero").1
    }
}

#[cfg(test)]
mod tests {
    use crate::{BigIntError, BigUint};

    #[test]
    fn div_by_zero_is_error() {
        let a = BigUint::from(5u64);
        assert_eq!(a.div_rem(&BigUint::zero()), Err(BigIntError::DivisionByZero));
    }

    #[test]
    fn small_division() {
        let a = BigUint::from(100u64);
        let b = BigUint::from(7u64);
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q.to_u64(), Some(14));
        assert_eq!(r.to_u64(), Some(2));
    }

    #[test]
    fn dividend_smaller_than_divisor() {
        let a = BigUint::from(3u64);
        let b = BigUint::from_limbs(vec![0, 1]);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(q.is_zero());
        assert_eq!(r, a);
    }

    #[test]
    fn single_limb_divisor_fast_path() {
        let a = BigUint::from_limbs(vec![0x1234_5678, 0x9abc_def0, 0xdead]);
        let (q, r) = a.div_rem_u64(1_000_003);
        let recomposed = &q.mul_u64(1_000_003) + &BigUint::from(r);
        assert_eq!(recomposed, a);
    }

    #[test]
    fn knuth_d_roundtrip_multi_limb() {
        let a = BigUint::from_limbs(vec![
            0xdead_beef_cafe_babe,
            0x0123_4567_89ab_cdef,
            0xffff_0000_ffff_0000,
            42,
        ]);
        let b = BigUint::from_limbs(vec![0x1111_2222_3333_4444, 0x9999]);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn knuth_d_addback_case() {
        // A divisor with top limb 0x8000...0 and a dividend crafted so that
        // the initial qhat estimate overshoots, exercising step D6.
        let b = BigUint::from_limbs(vec![0, 0x8000_0000_0000_0000]);
        let a = BigUint::from_limbs(vec![u64::MAX, u64::MAX - 1, 0x7fff_ffff_ffff_ffff]);
        let (q, r) = a.div_rem(&b).unwrap();
        assert!(r < b);
        assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn exact_division() {
        let b = BigUint::from_limbs(vec![0xabcdef, 0x123456, 7]);
        let q_expect = BigUint::from_limbs(vec![99, 1_000_000]);
        let a = &b * &q_expect;
        let (q, r) = a.div_rem(&b).unwrap();
        assert_eq!(q, q_expect);
        assert!(r.is_zero());
    }

    #[test]
    fn identity_division() {
        let a = BigUint::from_limbs(vec![5, 6, 7]);
        let (q, r) = a.div_rem(&a).unwrap();
        assert!(q.is_one());
        assert!(r.is_zero());
        let (q, r) = a.div_rem(&BigUint::one()).unwrap();
        assert_eq!(q, a);
        assert!(r.is_zero());
    }
}
