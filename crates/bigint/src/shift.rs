//! Bit-shift operations.

use crate::{BigUint, Limb};
use std::ops::{Shl, Shr};

impl BigUint {
    /// `self << bits`.
    pub fn shl_bits(&self, bits: usize) -> BigUint {
        if self.is_zero() || bits == 0 {
            return self.clone();
        }
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        let mut out = vec![0 as Limb; self.limbs.len() + limb_shift + 1];
        if bit_shift == 0 {
            out[limb_shift..limb_shift + self.limbs.len()].copy_from_slice(&self.limbs);
        } else {
            for (i, &l) in self.limbs.iter().enumerate() {
                out[i + limb_shift] |= l << bit_shift;
                out[i + limb_shift + 1] |= l >> (64 - bit_shift);
            }
        }
        BigUint::from_limbs(out)
    }

    /// `self >> bits` (bits shifted out are discarded).
    pub fn shr_bits(&self, bits: usize) -> BigUint {
        let (limb_shift, bit_shift) = (bits / 64, bits % 64);
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let src = &self.limbs[limb_shift..];
        let mut out = vec![0 as Limb; src.len()];
        if bit_shift == 0 {
            out.copy_from_slice(src);
        } else {
            for i in 0..src.len() {
                out[i] = src[i] >> bit_shift;
                if i + 1 < src.len() {
                    out[i] |= src[i + 1] << (64 - bit_shift);
                }
            }
        }
        BigUint::from_limbs(out)
    }

    /// The low `bits` bits of `self` (i.e. `self mod 2^bits`).
    pub fn low_bits(&self, bits: usize) -> BigUint {
        let (full, partial) = (bits / 64, bits % 64);
        if full >= self.limbs.len() {
            return self.clone();
        }
        let mut out = self.limbs[..full + usize::from(partial > 0)].to_vec();
        if partial > 0 {
            let last = out.len() - 1;
            out[last] &= (1u64 << partial) - 1;
        }
        BigUint::from_limbs(out)
    }
}

impl Shl<usize> for &BigUint {
    type Output = BigUint;
    fn shl(self, bits: usize) -> BigUint {
        self.shl_bits(bits)
    }
}

impl Shr<usize> for &BigUint {
    type Output = BigUint;
    fn shr(self, bits: usize) -> BigUint {
        self.shr_bits(bits)
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn shl_within_limb() {
        let a = BigUint::from(1u64);
        assert_eq!(a.shl_bits(4).to_u64(), Some(16));
    }

    #[test]
    fn shl_across_limbs() {
        let a = BigUint::from(1u64);
        let b = a.shl_bits(64);
        assert_eq!(b.limbs(), &[0, 1]);
        let c = a.shl_bits(70);
        assert_eq!(c.limbs(), &[0, 64]);
    }

    #[test]
    fn shr_discards_low_bits() {
        let a = BigUint::from(0b1011_0110u64);
        assert_eq!(a.shr_bits(3).to_u64(), Some(0b1_0110));
        assert!(a.shr_bits(64).is_zero());
    }

    #[test]
    fn shift_roundtrip() {
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe, 7]);
        for bits in [0usize, 1, 13, 63, 64, 65, 130] {
            assert_eq!(a.shl_bits(bits).shr_bits(bits), a, "bits={bits}");
        }
    }

    #[test]
    fn low_bits_is_mod_power_of_two() {
        let a = BigUint::from_limbs(vec![u64::MAX, 0b101]);
        assert_eq!(a.low_bits(64).limbs(), &[u64::MAX]);
        assert_eq!(a.low_bits(65).limbs(), &[u64::MAX, 1]);
        assert_eq!(a.low_bits(3).to_u64(), Some(7));
        assert_eq!(a.low_bits(200), a);
    }

    #[test]
    fn shl_equals_mul_by_power_of_two() {
        let a = BigUint::from_limbs(vec![123, 456]);
        assert_eq!(a.shl_bits(5), a.mul_u64(32));
    }
}
