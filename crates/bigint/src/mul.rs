//! Multiplication: schoolbook for small operands, Karatsuba above a
//! threshold, Toom-Cook-3 above a second threshold. The Karatsuba
//! threshold was tuned with the `abl_karatsuba` bench in `pp-bench`.

use crate::add_sub::add_shifted_in_place;
use crate::bigint::BigInt;
use crate::{BigUint, Limb};
use std::ops::{Mul, MulAssign};

/// Operand size (in limbs) above which Karatsuba beats schoolbook.
pub(crate) const KARATSUBA_THRESHOLD: usize = 32;

/// Operand size (in limbs) above which Toom-Cook-3 beats Karatsuba.
/// The crossover sits above the 2048-bit (32-limb) working size of a
/// single Paillier residue — Toom-3 earns its keep on the 64–128-limb
/// products inside `n²` arithmetic for 2048-bit and larger keys, where
/// its O(n^1.465) exponent wins despite a heavier interpolation.
pub(crate) const TOOM3_THRESHOLD: usize = 96;

/// Schoolbook product of two limb slices into `out` (must be zeroed and
/// exactly `a.len() + b.len()` limbs).
fn schoolbook(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    debug_assert_eq!(out.len(), a.len() + b.len());
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for (j, &bj) in b.iter().enumerate() {
            let t = ai as u128 * bj as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as Limb;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as Limb;
            carry = t >> 64;
            k += 1;
        }
    }
}

/// Karatsuba product. Falls back to schoolbook below the threshold.
/// `out` must be zeroed and exactly `a.len() + b.len()` limbs.
fn karatsuba(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    let n = a.len().min(b.len());
    if n < KARATSUBA_THRESHOLD {
        schoolbook(a, b, out);
        return;
    }
    // Split both operands at `half` limbs: x = x1·B^half + x0.
    let half = n / 2;
    let (a0, a1) = a.split_at(half);
    let (b0, b1) = b.split_at(half);

    let p0 = mul_slices(a0, b0); // a0*b0
    let p2 = mul_slices(a1, b1); // a1*b1

    // (a0+a1)(b0+b1)
    let sa = BigUint::from_limbs(a0.to_vec()).add_ref(&BigUint::from_limbs(a1.to_vec()));
    let sb = BigUint::from_limbs(b0.to_vec()).add_ref(&BigUint::from_limbs(b1.to_vec()));
    let pm = mul_slices(&sa.limbs, &sb.limbs);

    // middle = pm - p0 - p2
    let mid = BigUint::from_limbs(pm);
    let mid = &mid - &BigUint::from_limbs(p0.clone());
    let mid = &mid - &BigUint::from_limbs(p2.clone());

    add_shifted_in_place(out, &p0, 0);
    add_shifted_in_place(out, &mid.limbs, half);
    add_shifted_in_place(out, &p2, 2 * half);
}

/// Multiplies two limb slices, allocating the output.
pub(crate) fn mul_slices(a: &[Limb], b: &[Limb]) -> Vec<Limb> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0; a.len() + b.len()];
    if a.len().min(b.len()) >= TOOM3_THRESHOLD {
        toom3(a, b, &mut out);
    } else {
        karatsuba(a, b, &mut out);
    }
    out
}

/// One third-size piece of an operand (missing pieces are zero).
fn toom3_piece(x: &[Limb], i: usize, part: usize) -> BigUint {
    let lo = (i * part).min(x.len());
    let hi = ((i + 1) * part).min(x.len());
    BigUint::from_limbs(x[lo..hi].to_vec())
}

/// Toom-Cook-3 product: split each operand into three `part`-limb
/// pieces, evaluate both at {0, 1, −1, 2, ∞}, multiply the five point
/// values recursively, and interpolate the five result coefficients.
/// Five multiplies of third-size operands instead of Karatsuba's
/// nine quarter-ish products at two levels. `out` must be zeroed and
/// exactly `a.len() + b.len()` limbs.
fn toom3(a: &[Limb], b: &[Limb], out: &mut [Limb]) {
    let part = a.len().max(b.len()).div_ceil(3);
    let (a0, a1, a2) =
        (toom3_piece(a, 0, part), toom3_piece(a, 1, part), toom3_piece(a, 2, part));
    let (b0, b1, b2) =
        (toom3_piece(b, 0, part), toom3_piece(b, 1, part), toom3_piece(b, 2, part));

    // Point evaluations. x(−1) is the only signed one.
    let a02 = &a0 + &a2;
    let ea1 = &a02 + &a1; // a(1)
    let eam1 = &BigInt::from_biguint(a02) - &BigInt::from_biguint(a1.clone()); // a(−1)
    // a(2) = a0 + 2·a1 + 4·a2
    let ea2 = &(&a0 + &a1.shl_bits(1)) + &a2.shl_bits(2);
    let b02 = &b0 + &b2;
    let eb1 = &b02 + &b1;
    let ebm1 = &BigInt::from_biguint(b02) - &BigInt::from_biguint(b1.clone());
    let eb2 = &(&b0 + &b1.shl_bits(1)) + &b2.shl_bits(2);

    // Five recursive products (these re-enter mul_slices, so large
    // pieces keep splitting).
    let v0 = a0.mul_ref(&b0);
    let v1 = ea1.mul_ref(&eb1);
    let vm1 = &eam1 * &ebm1;
    let v2 = ea2.mul_ref(&eb2);
    let vinf = a2.mul_ref(&b2);

    let [w0, w1, w2, w3, w4] = toom3_interpolate(v0, v1, vm1, v2, vinf);
    add_shifted_in_place(out, &w0.limbs, 0);
    add_shifted_in_place(out, &w1.limbs, part);
    add_shifted_in_place(out, &w2.limbs, 2 * part);
    add_shifted_in_place(out, &w3.limbs, 3 * part);
    add_shifted_in_place(out, &w4.limbs, 4 * part);
}

/// Exact halving of an even intermediate.
fn exact_half(x: BigInt) -> BigInt {
    let sign = x.sign();
    let mag = x.into_magnitude();
    debug_assert!(mag.is_zero() || !mag.bit(0), "toom3 halving requires an even value");
    BigInt::from_sign_magnitude(sign, mag.shr_bits(1))
}

/// Exact division by 3 of a non-negative intermediate.
fn exact_third(x: BigInt) -> BigInt {
    debug_assert!(!x.is_negative(), "toom3 third is of a non-negative value");
    let (q, r) = x.into_magnitude().div_rem_u64(3);
    debug_assert_eq!(r, 0, "toom3 division by 3 is exact");
    BigInt::from_biguint(q)
}

/// Recovers the five coefficients `w0..w4` of `p(x)·q(x)` from the
/// point values `v0 = w(0)`, `v1 = w(1)`, `vm1 = w(−1)`, `v2 = w(2)`,
/// `vinf = w(∞)`. All returned coefficients are non-negative for a
/// product of non-negative operands.
fn toom3_interpolate(
    v0: BigUint,
    v1: BigUint,
    vm1: BigInt,
    v2: BigUint,
    vinf: BigUint,
) -> [BigUint; 5] {
    let v0 = BigInt::from_biguint(v0);
    let v1 = BigInt::from_biguint(v1);
    let v2 = BigInt::from_biguint(v2);
    let vinf = BigInt::from_biguint(vinf);

    // v1 ± vm1 split the odd/even coefficient sums:
    //   (v1 + vm1)/2 = w0 + w2 + w4,   (v1 − vm1)/2 = w1 + w3.
    let even = exact_half(&v1 + &vm1);
    let odd = exact_half(&v1 - &vm1);
    let w2 = &(&even - &v0) - &vinf;
    // v2 = w0 + 2w1 + 4w2 + 8w3 + 16w4 ⇒ (v2 − w0 − 4w2 − 16w4)/2 = w1 + 4w3.
    let shl = |x: &BigInt, bits: usize| {
        BigInt::from_sign_magnitude(x.sign(), x.magnitude().shl_bits(bits))
    };
    let t = exact_half(&(&(&v2 - &v0) - &shl(&w2, 2)) - &shl(&vinf, 4));
    let w3 = exact_third(&t - &odd);
    let w1 = &odd - &w3;

    let unsigned = |x: BigInt, name: &str| {
        debug_assert!(!x.is_negative(), "toom3 coefficient {name} must be non-negative");
        x.into_magnitude()
    };
    [
        unsigned(v0, "w0"),
        unsigned(w1, "w1"),
        unsigned(w2, "w2"),
        unsigned(w3, "w3"),
        unsigned(vinf, "w4"),
    ]
}

impl BigUint {
    /// `self * rhs`.
    pub fn mul_ref(&self, rhs: &BigUint) -> BigUint {
        BigUint::from_limbs(mul_slices(&self.limbs, &rhs.limbs))
    }

    /// `self * rhs` for a single-limb right-hand side.
    pub fn mul_u64(&self, rhs: u64) -> BigUint {
        if rhs == 0 || self.is_zero() {
            return BigUint::zero();
        }
        let mut out = Vec::with_capacity(self.limbs.len() + 1);
        let mut carry: u128 = 0;
        for &l in &self.limbs {
            let t = l as u128 * rhs as u128 + carry;
            out.push(t as Limb);
            carry = t >> 64;
        }
        if carry != 0 {
            out.push(carry as Limb);
        }
        BigUint::from_limbs(out)
    }

    /// `self²` via a dedicated squaring kernel: cross products are
    /// computed once and doubled, so schoolbook squaring does roughly half
    /// the limb multiplications of a general product (quantified by the
    /// `abl_karatsuba` bench).
    pub fn square(&self) -> BigUint {
        BigUint::from_limbs(square_slices(&self.limbs))
    }
}

/// Squares a limb slice, allocating the output.
pub(crate) fn square_slices(a: &[Limb]) -> Vec<Limb> {
    if a.is_empty() {
        return Vec::new();
    }
    let n = a.len();
    if n < KARATSUBA_THRESHOLD {
        return schoolbook_square(a);
    }
    if n >= TOOM3_THRESHOLD {
        return toom3_square(a);
    }
    // Karatsuba squaring: (a1·B + a0)² = a1²·B² + 2·a0·a1·B + a0²,
    // with the middle term from (a0+a1)² − a0² − a1².
    let half = n / 2;
    let (a0, a1) = a.split_at(half);
    let p0 = square_slices(a0);
    let p2 = square_slices(a1);
    let s = BigUint::from_limbs(a0.to_vec()).add_ref(&BigUint::from_limbs(a1.to_vec()));
    let pm = square_slices(&s.limbs);
    let mid = BigUint::from_limbs(pm);
    let mid = &mid - &BigUint::from_limbs(p0.clone());
    let mid = &mid - &BigUint::from_limbs(p2.clone());

    let mut out = vec![0; 2 * n];
    add_shifted_in_place(&mut out, &p0, 0);
    add_shifted_in_place(&mut out, &mid.limbs, half);
    add_shifted_in_place(&mut out, &p2, 2 * half);
    out
}

/// Toom-3 squaring: same five-point scheme as [`toom3`], but every
/// point value is a square — including `a(−1)²`, which is non-negative
/// regardless of the evaluation's sign.
fn toom3_square(a: &[Limb]) -> Vec<Limb> {
    let part = a.len().div_ceil(3);
    let (a0, a1, a2) =
        (toom3_piece(a, 0, part), toom3_piece(a, 1, part), toom3_piece(a, 2, part));
    let a02 = &a0 + &a2;
    let ea1 = &a02 + &a1;
    let eam1 = &BigInt::from_biguint(a02) - &BigInt::from_biguint(a1.clone());
    let ea2 = &(&a0 + &a1.shl_bits(1)) + &a2.shl_bits(2);

    let v0 = a0.square();
    let v1 = ea1.square();
    let vm1 = BigInt::from_biguint(eam1.magnitude().square());
    let v2 = ea2.square();
    let vinf = a2.square();

    let [w0, w1, w2, w3, w4] = toom3_interpolate(v0, v1, vm1, v2, vinf);
    let mut out = vec![0; 2 * a.len()];
    add_shifted_in_place(&mut out, &w0.limbs, 0);
    add_shifted_in_place(&mut out, &w1.limbs, part);
    add_shifted_in_place(&mut out, &w2.limbs, 2 * part);
    add_shifted_in_place(&mut out, &w3.limbs, 3 * part);
    add_shifted_in_place(&mut out, &w4.limbs, 4 * part);
    out
}

/// Schoolbook squaring: accumulate each cross product `a[i]·a[j]` (i<j)
/// once, double the whole accumulator, then add the diagonal squares.
fn schoolbook_square(a: &[Limb]) -> Vec<Limb> {
    let n = a.len();
    let mut out = vec![0 as Limb; 2 * n];
    // Cross products (upper triangle).
    for i in 0..n {
        if a[i] == 0 {
            continue;
        }
        let mut carry: u128 = 0;
        for j in i + 1..n {
            let t = a[i] as u128 * a[j] as u128 + out[i + j] as u128 + carry;
            out[i + j] = t as Limb;
            carry = t >> 64;
        }
        let mut k = i + n;
        while carry != 0 {
            let t = out[k] as u128 + carry;
            out[k] = t as Limb;
            carry = t >> 64;
            k += 1;
        }
    }
    // Double (shift left one bit across the whole buffer).
    let mut top = 0;
    for limb in out.iter_mut() {
        let new_top = *limb >> 63;
        *limb = (*limb << 1) | top;
        top = new_top;
    }
    debug_assert_eq!(top, 0, "doubled cross products fit 2n limbs");
    // Diagonal squares.
    let mut carry: u128 = 0;
    for i in 0..n {
        let d = a[i] as u128 * a[i] as u128;
        let lo = out[2 * i] as u128 + (d as u64) as u128 + carry;
        out[2 * i] = lo as Limb;
        let hi = out[2 * i + 1] as u128 + (d >> 64) + (lo >> 64);
        out[2 * i + 1] = hi as Limb;
        carry = hi >> 64;
    }
    let mut k = 2 * n;
    while carry != 0 {
        // Can only reach here transiently inside the loop above; final
        // carry must be zero because a² fits in 2n limbs.
        debug_assert!(k < out.len());
        let t = out[k] as u128 + carry;
        out[k] = t as Limb;
        carry = t >> 64;
        k += 1;
    }
    out
}

impl Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        self.mul_ref(rhs)
    }
}

impl Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        self.mul_ref(&rhs)
    }
}

impl MulAssign<&BigUint> for BigUint {
    fn mul_assign(&mut self, rhs: &BigUint) {
        *self = self.mul_ref(rhs);
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn small_products() {
        let a = BigUint::from(7u64);
        let b = BigUint::from(6u64);
        assert_eq!((&a * &b).to_u64(), Some(42));
        assert!((&a * &BigUint::zero()).is_zero());
        assert_eq!(&a * &BigUint::one(), a);
    }

    #[test]
    fn cross_limb_product() {
        let a = BigUint::from(u64::MAX);
        let b = BigUint::from(u64::MAX);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let c = &a * &b;
        assert_eq!(c.limbs(), &[1, u64::MAX - 1]);
    }

    #[test]
    fn mul_u64_matches_full_mul() {
        let a = BigUint::from_limbs(vec![0xdead_beef, 0xcafe_babe, 17]);
        assert_eq!(a.mul_u64(123_456_789), a.mul_ref(&BigUint::from(123_456_789u64)));
        assert!(a.mul_u64(0).is_zero());
    }

    #[test]
    fn karatsuba_matches_schoolbook() {
        // Build operands big enough to cross the Karatsuba threshold and
        // compare against an independently computed product via repeated
        // addition of shifted partials (schoolbook on purpose).
        let a_limbs: Vec<u64> = (0..80u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(i as u32)).collect();
        let b_limbs: Vec<u64> = (0..77u64).map(|i| i.wrapping_mul(0xc2b2ae3d27d4eb4f) ^ 0x5555).collect();
        let a = BigUint::from_limbs(a_limbs.clone());
        let b = BigUint::from_limbs(b_limbs.clone());
        let fast = &a * &b;

        let mut slow = vec![0u64; a_limbs.len() + b_limbs.len()];
        super::schoolbook(&a_limbs, &b_limbs, &mut slow);
        assert_eq!(fast, BigUint::from_limbs(slow));
    }

    #[test]
    fn square_matches_mul() {
        let a = BigUint::from_limbs((1..50u64).collect());
        assert_eq!(a.square(), &a * &a);
        // Exercise the Karatsuba squaring path too.
        let big = BigUint::from_limbs(
            (0..100u64).map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) | 1).collect(),
        );
        assert_eq!(big.square(), &big * &big);
        // Edge cases.
        assert!(BigUint::zero().square().is_zero());
        assert!(BigUint::one().square().is_one());
        assert_eq!(BigUint::from(u64::MAX).square(), &BigUint::from(u64::MAX) * &BigUint::from(u64::MAX));
    }

    #[test]
    fn toom3_matches_schoolbook() {
        // Operands crossing the Toom-3 threshold, validated against the
        // schoolbook kernel directly (no shared fast path).
        let a_limbs: Vec<u64> =
            (0..200u64).map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(i as u32)).collect();
        let b_limbs: Vec<u64> =
            (0..150u64).map(|i| i.wrapping_mul(0xc2b2ae3d27d4eb4f) ^ !i).collect();
        let fast = BigUint::from_limbs(a_limbs.clone()).mul_ref(&BigUint::from_limbs(b_limbs.clone()));
        let mut slow = vec![0u64; a_limbs.len() + b_limbs.len()];
        super::schoolbook(&a_limbs, &b_limbs, &mut slow);
        assert_eq!(fast, BigUint::from_limbs(slow));
    }

    #[test]
    fn toom3_unbalanced_and_edge_sizes() {
        // Unbalanced splits leave some pieces empty or short; sizes
        // straddle exact multiples of three.
        for (na, nb) in [(96usize, 96usize), (97, 96), (98, 100), (288, 97), (96, 300), (101, 203)]
        {
            let a = BigUint::from_limbs((0..na as u64).map(|i| i.wrapping_mul(0x2545F4914F6CDD1D) | 1).collect());
            let b = BigUint::from_limbs((0..nb as u64).map(|i| (i ^ 0xabcd).wrapping_mul(0x9e3779b97f4a7c15)).collect());
            let fast = a.mul_ref(&b);
            let mut slow = vec![0u64; na + nb];
            super::schoolbook(&a.limbs, &b.limbs, &mut slow);
            assert_eq!(fast, BigUint::from_limbs(slow), "na={na} nb={nb}");
        }
    }

    #[test]
    fn toom3_square_matches_mul() {
        let a = BigUint::from_limbs(
            (0..250u64).map(|i| i.wrapping_mul(0xD6E8FEB86659FD93).rotate_right(i as u32)).collect(),
        );
        let mut slow = vec![0u64; 2 * a.limbs.len()];
        super::schoolbook(&a.limbs, &a.limbs, &mut slow);
        assert_eq!(a.square(), BigUint::from_limbs(slow));
    }

    #[test]
    fn distributive_law() {
        let a = BigUint::from_limbs(vec![u64::MAX, 3, 9]);
        let b = BigUint::from_limbs(vec![7, u64::MAX]);
        let c = BigUint::from_limbs(vec![11, 0, 0, 1]);
        let left = &a * &(&b + &c);
        let right = &(&a * &b) + &(&a * &c);
        assert_eq!(left, right);
    }
}
