//! Primality testing (trial division + Miller–Rabin) and random prime
//! generation for Paillier key material.

use crate::random::{random_below, random_bits};
use crate::{BigUint, MontgomeryCtx};
use rand::Rng;

/// Small primes used for cheap trial division before Miller–Rabin.
const SMALL_PRIMES: [u64; 54] = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
    97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181, 191,
    193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251,
];

/// Default Miller–Rabin round count, giving error probability `< 4^-40`.
pub const DEFAULT_MR_ROUNDS: usize = 40;

/// Returns `true` if `n` passes trial division and `rounds` rounds of
/// Miller–Rabin with random bases.
pub fn is_probable_prime<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    for &p in &SMALL_PRIMES {
        let pb = BigUint::from(p);
        if *n == pb {
            return true;
        }
        if n.rem_ref(&pb).expect("p non-zero").is_zero() {
            return false;
        }
    }
    if n.is_even() {
        return false;
    }
    miller_rabin(n, rounds, rng)
}

/// Miller–Rabin with `rounds` random bases. Precondition: `n` odd, `n > 3`,
/// not divisible by any small prime.
fn miller_rabin<R: Rng + ?Sized>(n: &BigUint, rounds: usize, rng: &mut R) -> bool {
    let one = BigUint::one();
    let n_minus_1 = n - &one;
    let s = n_minus_1.trailing_zeros().expect("n > 1 so n-1 > 0");
    let d = n_minus_1.shr_bits(s);
    let ctx = MontgomeryCtx::new(n).expect("odd modulus");

    'witness: for _ in 0..rounds {
        // Base in [2, n-2].
        let a = loop {
            let a = random_below(rng, &n_minus_1);
            if a > one {
                break a;
            }
        };
        let mut x = ctx.pow_mod(&a, &d);
        if x.is_one() || x == n_minus_1 {
            continue 'witness;
        }
        for _ in 0..s - 1 {
            x = ctx.mul_mod(&x, &x);
            if x == n_minus_1 {
                continue 'witness;
            }
            if x.is_one() {
                return false; // non-trivial square root of 1
            }
        }
        return false;
    }
    true
}

/// Generates a random probable prime with exactly `bits` bits.
/// Panics if `bits < 2`.
pub fn gen_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 2, "primes need at least 2 bits");
    loop {
        let mut candidate = random_bits(rng, bits);
        candidate.set_bit(0, true); // force odd
        if is_probable_prime(&candidate, DEFAULT_MR_ROUNDS, rng) {
            return candidate;
        }
    }
}

/// Generates a safe prime `p` (with `(p-1)/2` also prime) of `bits` bits.
/// Noticeably slower than [`gen_prime`]; provided for completeness since
/// hardened Paillier deployments prefer safe primes.
pub fn gen_safe_prime<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> BigUint {
    assert!(bits >= 3, "safe primes need at least 3 bits");
    loop {
        let q = gen_prime(bits - 1, rng);
        // p = 2q + 1
        let p = &q.shl_bits(1) + &BigUint::one();
        if p.bit_len() == bits && is_probable_prime(&p, DEFAULT_MR_ROUNDS, rng) {
            return p;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_small_primes_and_composites() {
        let mut rng = StdRng::seed_from_u64(10);
        for p in [2u64, 3, 5, 7, 97, 251, 257, 65537, 1_000_000_007] {
            assert!(
                is_probable_prime(&BigUint::from(p), 20, &mut rng),
                "{p} should be prime"
            );
        }
        for c in [0u64, 1, 4, 9, 15, 91, 561, 65536, 1_000_000_008] {
            assert!(
                !is_probable_prime(&BigUint::from(c), 20, &mut rng),
                "{c} should be composite"
            );
        }
    }

    #[test]
    fn carmichael_numbers_rejected() {
        // Carmichael numbers fool Fermat but not Miller–Rabin.
        let mut rng = StdRng::seed_from_u64(11);
        for c in [561u64, 1105, 1729, 2465, 2821, 6601, 8911, 41041, 825265] {
            assert!(
                !is_probable_prime(&BigUint::from(c), 20, &mut rng),
                "Carmichael {c} should be composite"
            );
        }
    }

    #[test]
    fn mersenne_prime_multi_limb() {
        let mut rng = StdRng::seed_from_u64(12);
        // 2^127 - 1 is prime; 2^128 - 1 is not.
        let m127 = &BigUint::one().shl_bits(127) - &BigUint::one();
        assert!(is_probable_prime(&m127, 20, &mut rng));
        let m128 = &BigUint::one().shl_bits(128) - &BigUint::one();
        assert!(!is_probable_prime(&m128, 20, &mut rng));
    }

    #[test]
    fn gen_prime_has_exact_bits() {
        let mut rng = StdRng::seed_from_u64(13);
        for bits in [16usize, 32, 64, 128] {
            let p = gen_prime(bits, &mut rng);
            assert_eq!(p.bit_len(), bits);
            assert!(p.is_odd());
            assert!(is_probable_prime(&p, 20, &mut rng));
        }
    }

    #[test]
    fn gen_safe_prime_structure() {
        let mut rng = StdRng::seed_from_u64(14);
        let p = gen_safe_prime(32, &mut rng);
        assert_eq!(p.bit_len(), 32);
        let q = (&p - &BigUint::one()).shr_bits(1);
        assert!(is_probable_prime(&q, 20, &mut rng));
    }

    #[test]
    fn product_of_two_primes_is_composite() {
        let mut rng = StdRng::seed_from_u64(15);
        let p = gen_prime(48, &mut rng);
        let q = gen_prime(48, &mut rng);
        let n = &p * &q;
        assert!(!is_probable_prime(&n, 20, &mut rng));
    }
}
