//! Core [`BigUint`] type: representation, normalization, comparison, and
//! small utility queries (bit length, parity, bit access).

use crate::Limb;
use std::cmp::Ordering;

/// An unsigned arbitrary-precision integer.
///
/// Internally a little-endian vector of 64-bit limbs with the invariant that
/// the most significant limb is non-zero (zero is represented by an empty
/// limb vector). All public constructors and operations preserve this
/// invariant.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    pub(crate) limbs: Vec<Limb>,
}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Constructs from little-endian limbs, normalizing trailing zeros.
    pub fn from_limbs(mut limbs: Vec<Limb>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// Borrows the little-endian limb slice (no trailing zero limbs).
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// Removes trailing zero limbs to restore the representation invariant.
    pub(crate) fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Returns `true` if the value is `0`.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns `true` if the value is `1`.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Returns `true` if the value is even. Zero counts as even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Returns `true` if the value is odd.
    pub fn is_odd(&self) -> bool {
        !self.is_even()
    }

    /// Number of significant bits (`0` for the value zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order; out-of-range bits are `0`).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Sets bit `i` to `value`, growing the limb vector if needed.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        let (limb, off) = (i / 64, i % 64);
        if value {
            if limb >= self.limbs.len() {
                self.limbs.resize(limb + 1, 0);
            }
            self.limbs[limb] |= 1 << off;
        } else if limb < self.limbs.len() {
            self.limbs[limb] &= !(1 << off);
            self.normalize();
        }
    }

    /// Number of trailing zero bits; `None` for the value zero.
    pub fn trailing_zeros(&self) -> Option<usize> {
        for (i, &l) in self.limbs.iter().enumerate() {
            if l != 0 {
                return Some(i * 64 + l.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Value as `u64` if it fits, else `None`.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    /// Value as `u128` if it fits, else `None`.
    pub fn to_u128(&self) -> Option<u128> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0] as u128),
            2 => Some((self.limbs[1] as u128) << 64 | self.limbs[0] as u128),
            _ => None,
        }
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigUint::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        BigUint::from(v as u64)
    }
}

impl From<u128> for BigUint {
    fn from(v: u128) -> Self {
        BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl std::fmt::Display for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_decimal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(!BigUint::one().is_zero());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
    }

    #[test]
    fn normalization_strips_trailing_zero_limbs() {
        let v = BigUint::from_limbs(vec![5, 0, 0]);
        assert_eq!(v.limbs(), &[5]);
        let z = BigUint::from_limbs(vec![0, 0]);
        assert!(z.is_zero());
    }

    #[test]
    fn bit_len_across_limb_boundary() {
        let v = BigUint::from(u64::MAX);
        assert_eq!(v.bit_len(), 64);
        let w = BigUint::from_limbs(vec![0, 1]);
        assert_eq!(w.bit_len(), 65);
    }

    #[test]
    fn parity() {
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert!(BigUint::from(2u64).is_even());
        assert!(BigUint::from_limbs(vec![1, 7]).is_odd());
    }

    #[test]
    fn ordering() {
        let a = BigUint::from(5u64);
        let b = BigUint::from_limbs(vec![0, 1]); // 2^64
        assert!(a < b);
        assert!(b > a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        // Same limb count, differ in high limb.
        let c = BigUint::from_limbs(vec![9, 1]);
        let d = BigUint::from_limbs(vec![3, 2]);
        assert!(c < d);
    }

    #[test]
    fn bit_get_set() {
        let mut v = BigUint::zero();
        v.set_bit(70, true);
        assert!(v.bit(70));
        assert!(!v.bit(69));
        assert_eq!(v.bit_len(), 71);
        v.set_bit(70, false);
        assert!(v.is_zero());
    }

    #[test]
    fn trailing_zeros() {
        assert_eq!(BigUint::zero().trailing_zeros(), None);
        assert_eq!(BigUint::one().trailing_zeros(), Some(0));
        assert_eq!(BigUint::from(8u64).trailing_zeros(), Some(3));
        assert_eq!(BigUint::from_limbs(vec![0, 2]).trailing_zeros(), Some(65));
    }

    #[test]
    fn u128_roundtrip() {
        let v = BigUint::from(0x1234_5678_9abc_def0_1122_3344_5566_7788u128);
        assert_eq!(
            v.to_u128(),
            Some(0x1234_5678_9abc_def0_1122_3344_5566_7788u128)
        );
        assert_eq!(BigUint::from(42u64).to_u64(), Some(42));
        assert!(BigUint::from(u128::MAX).to_u64().is_none());
    }
}
