//! Montgomery modular arithmetic (CIOS multiplication) used to make modular
//! exponentiation — the dominant cost of Paillier encryption — fast.

use crate::{BigIntError, BigUint, Limb};

/// A reusable Montgomery context for a fixed odd modulus `n`.
///
/// Construction precomputes `n' = -n^{-1} mod 2^64` and `R² mod n`
/// (`R = 2^(64·k)` where `k` is the limb count of `n`), after which
/// multiplication modulo `n` costs a single CIOS pass and exponentiation a
/// fixed-window ladder. Paillier key material is long-lived, so the context
/// is built once per key and shared across tensor elements.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus, padded view length in limbs.
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^64`.
    n_prime: Limb,
    /// `R mod n` (the Montgomery form of 1).
    r_mod_n: Vec<Limb>,
    /// `R² mod n`, used to convert into Montgomery form.
    r2_mod_n: Vec<Limb>,
}

/// Reusable CIOS accumulator for the in-place Montgomery operations.
/// Obtain one from [`MontgomeryCtx::scratch`]; the buffer is sized for
/// the limb width of the context that created it and must not be shared
/// across contexts of different widths.
#[derive(Clone, Debug)]
pub struct MontScratch {
    t: Vec<Limb>,
}

/// Computes `-n^{-1} mod 2^64` for odd `n0` via Newton–Hensel lifting.
fn neg_inv_u64(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1);
    // x = n0^{-1} mod 2^64 by five Newton iterations (doubles precision each).
    let mut x = n0; // correct mod 2^3 already for odd n0? Use standard trick:
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    debug_assert_eq!(n0.wrapping_mul(x), 1);
    x.wrapping_neg()
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Result<Self, BigIntError> {
        if n.is_even() || n.is_zero() {
            return Err(BigIntError::EvenModulus);
        }
        if n.is_one() {
            return Err(BigIntError::EvenModulus);
        }
        let k = n.limbs.len();
        let n_prime = neg_inv_u64(n.limbs[0]);
        // R = 2^(64k); R mod n and R^2 mod n via shifting + reduction.
        let r = BigUint::one().shl_bits(64 * k);
        let r_mod_n = r.rem_ref(n)?;
        let r2_mod_n = r.square().rem_ref(n)?;
        Ok(MontgomeryCtx {
            n: n.limbs.clone(),
            n_prime,
            r_mod_n: pad(&r_mod_n.limbs, k),
            r2_mod_n: pad(&r2_mod_n.limbs, k),
        })
    }

    /// Limb count of the modulus.
    pub fn limbs(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a [`BigUint`].
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// A scratch buffer sized for this context's CIOS accumulator, so the
    /// in-place Montgomery operations can run without per-call allocation.
    pub fn scratch(&self) -> MontScratch {
        MontScratch { t: vec![0 as Limb; self.n.len() + 2] }
    }

    /// `1` in Montgomery form (`R mod n`) — the neutral element for
    /// [`MontgomeryCtx::mont_mul_inplace`] ladders.
    pub fn one_mont(&self) -> Vec<Limb> {
        self.r_mod_n.clone()
    }

    /// CIOS core: accumulates `a·b·R^{-1}` into `t` (length `k + 2`),
    /// leaving the possibly-unreduced result in `t[..=k]`.
    ///
    /// The accumulate (`t += a·bi`) and reduce (`t = (t + m·n)/2^64`)
    /// steps are fused into a single walk over `t` per `b`-limb, halving
    /// the number of times the accumulator is streamed through memory.
    /// The two partial products keep *separate* carry chains: folding
    /// them into one `u128` accumulator could overflow, since each term
    /// `x[j]·y + carry` already saturates 128 bits on its own.
    fn cios(&self, a: &[Limb], b: &[Limb], t: &mut [Limb]) {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        debug_assert_eq!(t.len(), k + 2);
        t.fill(0);
        for &bi in b {
            // Low limb decides m; its reduced value is 0 mod 2^64 by
            // construction, so only the carries survive.
            let s0 = t[0] as u128 + a[0] as u128 * bi as u128;
            let m = (s0 as Limb).wrapping_mul(self.n_prime);
            let r0 = (s0 as Limb) as u128 + m as u128 * self.n[0] as u128;
            debug_assert_eq!(r0 as Limb, 0);
            let mut carry_a = s0 >> 64;
            let mut carry_m = r0 >> 64;
            for j in 1..k {
                let s = t[j] as u128 + a[j] as u128 * bi as u128 + carry_a;
                carry_a = s >> 64;
                let r = (s as Limb) as u128 + m as u128 * self.n[j] as u128 + carry_m;
                carry_m = r >> 64;
                t[j - 1] = r as Limb;
            }
            let s = t[k] as u128 + carry_a + carry_m;
            t[k - 1] = s as Limb;
            t[k] = (s >> 64) as Limb;
        }
    }

    /// Final conditional subtraction of the CIOS pass: `t` may be in
    /// `[0, 2n)`. When the carry limb `t[k]` is set, `t[..k]` alone is
    /// below `n` and the subtraction borrows out of that implicit high
    /// limb — the wrapped low limbs are exactly `t - n`.
    fn reduce(&self, t: &[Limb], out: &mut [Limb]) {
        let k = self.n.len();
        out.copy_from_slice(&t[..k]);
        if t[k] != 0 || ge(out, &self.n) {
            let borrow = sub_in_place(out, &self.n);
            debug_assert_eq!(borrow, t[k]);
        }
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n`.
    /// `a` and `b` must be padded to `k` limbs and `< n`.
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let mut scratch = self.scratch();
        let mut out = vec![0 as Limb; self.n.len()];
        self.cios(a, b, &mut scratch.t);
        self.reduce(&scratch.t, &mut out);
        out
    }

    /// In-place Montgomery multiplication `acc ← acc·b·R^{-1} mod n`.
    /// Both operands are Montgomery-domain residues padded to `k` limbs;
    /// `scratch` comes from [`MontgomeryCtx::scratch`] and is reused
    /// across calls, so a ladder allocates nothing per step.
    pub fn mont_mul_inplace(&self, acc: &mut [Limb], b: &[Limb], scratch: &mut MontScratch) {
        self.cios(acc, b, &mut scratch.t);
        self.reduce(&scratch.t, acc);
    }

    /// In-place Montgomery squaring `acc ← acc²·R^{-1} mod n`.
    pub fn mont_sqr_inplace(&self, acc: &mut [Limb], scratch: &mut MontScratch) {
        let a: &[Limb] = acc;
        self.cios(a, a, &mut scratch.t);
        self.reduce(&scratch.t, acc);
    }

    /// Converts `x < n` into Montgomery form (`x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> Vec<Limb> {
        let k = self.n.len();
        debug_assert!(x.limbs.len() <= k);
        self.mont_mul(&pad(&x.limbs, k), &self.r2_mod_n)
    }

    /// Converts from Montgomery form back to a normal residue.
    pub fn from_mont(&self, x: &[Limb]) -> BigUint {
        let k = self.n.len();
        let one = pad(&[1], k);
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// Modular multiplication `a·b mod n` for ordinary residues.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` with a fixed 4-bit window.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_ref(&self.modulus()).expect("n > 1");
        }
        let base = base.rem_ref(&self.modulus()).expect("n > 1");
        let bm = self.to_mont(&base);

        // Short exponents (PP-Stream's scaled weights are ~10–24 bits):
        // plain square-and-multiply beats paying for the window table.
        let mut scratch = self.scratch();
        let bits = exp.bit_len();
        if bits <= 32 {
            let mut acc = bm.clone();
            for i in (0..bits - 1).rev() {
                self.mont_sqr_inplace(&mut acc, &mut scratch);
                if exp.bit(i) {
                    self.mont_mul_inplace(&mut acc, &bm, &mut scratch);
                }
            }
            return self.from_mont(&acc);
        }

        // Precompute bm^0..bm^15 in Montgomery form.
        let mut table: Vec<Vec<Limb>> = Vec::with_capacity(16);
        table.push(self.r_mod_n.clone()); // 1 in Montgomery form
        table.push(bm.clone());
        for i in 2..16 {
            let mut next = table[i - 1].clone();
            self.mont_mul_inplace(&mut next, &bm, &mut scratch);
            table.push(next);
        }

        let windows = bits.div_ceil(4);
        let mut acc = self.r_mod_n.clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    self.mont_sqr_inplace(&mut acc, &mut scratch);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                digit <<= 1;
                if exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                if started {
                    self.mont_mul_inplace(&mut acc, &table[digit], &mut scratch);
                } else {
                    acc.copy_from_slice(&table[digit]);
                    started = true;
                }
            }
        }
        if !started {
            // exp was zero (handled above) — defensive.
            return BigUint::one();
        }
        self.from_mont(&acc)
    }

    /// Straus/interleaved multi-exponentiation `Π bᵢ^{eᵢ} mod n` over
    /// Montgomery-domain bases, returning a Montgomery-domain result.
    ///
    /// All bases share a single squaring ladder: the ladder costs
    /// `max_bits` squarings **total** instead of per base, which is the
    /// whole win for encrypted dot products where one accumulator
    /// absorbs dozens-to-thousands of small-exponent terms. Each base
    /// pays only its windowed table (`2^w − 2` multiplies) plus one
    /// multiply per non-zero window digit.
    ///
    /// Bases with a zero exponent are skipped entirely (no table, no
    /// digit scan). An empty or all-zero input yields `1` in Montgomery
    /// form.
    pub fn pow_mod_multi_mont(&self, bases: &[&[Limb]], exps: &[u64]) -> Vec<Limb> {
        debug_assert_eq!(bases.len(), exps.len());
        let k = self.n.len();
        let active: Vec<(usize, u64)> = exps
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e != 0)
            .map(|(i, &e)| (i, e))
            .collect();
        if active.is_empty() {
            return self.one_mont();
        }
        let mut scratch = self.scratch();
        let max_bits = active
            .iter()
            .map(|&(_, e)| 64 - e.leading_zeros() as usize)
            .max()
            .expect("active is non-empty");
        let w = multi_exp_window(max_bits);
        let table_len = 1usize << w;

        // Per-base windowed tables b^1 .. b^(2^w - 1); slot 0 unused.
        let mut tables: Vec<Vec<Vec<Limb>>> = Vec::with_capacity(active.len());
        for &(i, _) in &active {
            let b = bases[i];
            debug_assert_eq!(b.len(), k);
            let mut tbl: Vec<Vec<Limb>> = Vec::with_capacity(table_len);
            tbl.push(Vec::new());
            tbl.push(b.to_vec());
            for j in 2..table_len {
                let mut next = tbl[j - 1].clone();
                self.mont_mul_inplace(&mut next, b, &mut scratch);
                tbl.push(next);
            }
            tables.push(tbl);
        }

        let windows = max_bits.div_ceil(w);
        let digit_mask = (1u64 << w) - 1;
        let mut acc = vec![0 as Limb; k];
        let mut started = false;
        for win in (0..windows).rev() {
            if started {
                for _ in 0..w {
                    self.mont_sqr_inplace(&mut acc, &mut scratch);
                }
            }
            for (slot, &(_, e)) in active.iter().enumerate() {
                let digit = ((e >> (win * w)) & digit_mask) as usize;
                if digit != 0 {
                    if started {
                        self.mont_mul_inplace(&mut acc, &tables[slot][digit], &mut scratch);
                    } else {
                        acc.copy_from_slice(&tables[slot][digit]);
                        started = true;
                    }
                }
            }
        }
        debug_assert!(started, "at least one non-zero exponent implies a non-empty ladder");
        acc
    }

    /// Multi-exponentiation `Π bᵢ^{eᵢ} mod n` over ordinary residues —
    /// the convenience wrapper around [`MontgomeryCtx::pow_mod_multi_mont`]
    /// that pays one domain conversion per base.
    pub fn pow_mod_multi(&self, bases: &[BigUint], exps: &[u64]) -> BigUint {
        assert_eq!(bases.len(), exps.len(), "bases/exps length mismatch");
        let n = self.modulus();
        let monts: Vec<Vec<Limb>> = bases
            .iter()
            .map(|b| self.to_mont(&b.rem_ref(&n).expect("n > 1")))
            .collect();
        let refs: Vec<&[Limb]> = monts.iter().map(|m| m.as_slice()).collect();
        self.from_mont(&self.pow_mod_multi_mont(&refs, exps))
    }

    /// Precomputes a fixed-base exponentiation table for `base`, sized
    /// for exponents up to `max_exp_bits` bits. See [`FixedBaseTable`].
    pub fn fixed_base_table(&self, base: &BigUint, max_exp_bits: usize) -> FixedBaseTable {
        let max_bits = max_exp_bits.max(1);
        let w = fixed_base_window(max_bits);
        let windows = max_bits.div_ceil(w);
        let mut scratch = self.scratch();
        let base = base.rem_ref(&self.modulus()).expect("n > 1");
        // base^(2^(w·i)) for the current window i, advanced as rows fill.
        let mut base_i = self.to_mont(&base);
        let mut table: Vec<Vec<Vec<Limb>>> = Vec::with_capacity(windows);
        for _ in 0..windows {
            let mut row: Vec<Vec<Limb>> = Vec::with_capacity((1usize << w) - 1);
            row.push(base_i.clone());
            for d in 2..(1usize << w) {
                let mut next = row[d - 2].clone();
                self.mont_mul_inplace(&mut next, &base_i, &mut scratch);
                row.push(next);
            }
            // base_{i+1} = base_i^(2^w) = row.last() · base_i.
            let mut next_base = row.last().expect("w >= 1").clone();
            self.mont_mul_inplace(&mut next_base, &base_i, &mut scratch);
            base_i = next_base;
            table.push(row);
        }
        FixedBaseTable { window: w, max_bits: windows * w, k: self.n.len(), table }
    }

    /// Fixed-base exponentiation `base^exp mod n` via a precomputed
    /// [`FixedBaseTable`], returning the result in Montgomery form.
    ///
    /// Costs one Montgomery multiply per non-zero `w`-bit digit of the
    /// exponent and **zero** squarings. Exponents wider than the table
    /// fall back to the generic windowed ladder (correct, just slower).
    pub fn pow_fixed_base_mont(&self, table: &FixedBaseTable, exp: &BigUint) -> Vec<Limb> {
        assert_eq!(
            table.k,
            self.n.len(),
            "fixed-base table belongs to a context of a different width"
        );
        if exp.is_zero() {
            return self.one_mont();
        }
        if exp.bit_len() > table.max_bits {
            let base = self.from_mont(&table.table[0][0]);
            return self.to_mont(&self.pow_mod(&base, exp));
        }
        let w = table.window;
        let mut scratch = self.scratch();
        let mut acc: Option<Vec<Limb>> = None;
        for (i, row) in table.table.iter().enumerate() {
            let digit = exp_digit(exp, i * w, w);
            if digit != 0 {
                match acc.as_mut() {
                    Some(a) => self.mont_mul_inplace(a, &row[digit - 1], &mut scratch),
                    None => acc = Some(row[digit - 1].clone()),
                }
            }
        }
        acc.unwrap_or_else(|| self.one_mont())
    }

    /// Fixed-base exponentiation over ordinary residues — the
    /// convenience wrapper around [`MontgomeryCtx::pow_fixed_base_mont`].
    pub fn pow_fixed_base(&self, table: &FixedBaseTable, exp: &BigUint) -> BigUint {
        self.from_mont(&self.pow_fixed_base_mont(table, exp))
    }
}

/// Precomputed radix-`2^w` fixed-base exponentiation table (the
/// Brickell–Gordon–McCurley–Wilson method): entry `table[i][d-1]` holds
/// `base^(d · 2^(w·i))` in Montgomery form, so an exponentiation is the
/// product of one table entry per non-zero `w`-bit exponent digit — no
/// squarings at all. Building the table costs `⌈bits/w⌉ · (2^w − 1)`
/// multiplies once; it pays for itself after a handful of
/// exponentiations over the same base, which is exactly the pool-refill
/// shape (`h^a` for one `h` per key and thousands of short `a`).
#[derive(Clone, Debug)]
pub struct FixedBaseTable {
    window: usize,
    max_bits: usize,
    /// Limb width of the owning context, to catch cross-context misuse.
    k: usize,
    table: Vec<Vec<Vec<Limb>>>,
}

impl FixedBaseTable {
    /// The window width `w` in bits.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Largest exponent bit length the table covers without falling
    /// back to the generic ladder.
    pub fn max_bits(&self) -> usize {
        self.max_bits
    }

    /// Total precomputed entries (`windows · (2^w − 1)`).
    pub fn entries(&self) -> usize {
        self.table.iter().map(|row| row.len()).sum()
    }

    /// Approximate heap footprint in bytes.
    pub fn bytes(&self) -> usize {
        self.entries() * self.k * std::mem::size_of::<Limb>()
    }
}

/// Extracts the `w`-bit exponent digit starting at bit `bit`.
fn exp_digit(exp: &BigUint, bit: usize, w: usize) -> usize {
    debug_assert!((1..=8).contains(&w));
    let limb = bit / 64;
    let off = bit % 64;
    if limb >= exp.limbs.len() {
        return 0;
    }
    let mut d = exp.limbs[limb] >> off;
    if off + w > 64 && limb + 1 < exp.limbs.len() {
        d |= exp.limbs[limb + 1] << (64 - off);
    }
    (d & ((1u64 << w) - 1)) as usize
}

/// Window width for a fixed-base table over exponents of `max_bits`
/// bits. Build cost is `(bits/w)·(2^w − 1)` multiplies, per-exponent
/// cost `~bits/w`, so wider windows trade one-time memory/build for
/// cheaper walks. `PP_FIXED_BASE_WINDOW` (1–8) overrides for tuning.
fn fixed_base_window(max_bits: usize) -> usize {
    if let Ok(v) = std::env::var("PP_FIXED_BASE_WINDOW") {
        if let Ok(w) = v.parse::<usize>() {
            if (1..=8).contains(&w) {
                return w;
            }
        }
    }
    if max_bits <= 64 {
        3
    } else if max_bits <= 192 {
        4
    } else if max_bits <= 768 {
        5
    } else {
        6
    }
}

/// Window width for the interleaved ladder, chosen by the largest
/// exponent's bit length: per base the table costs `2^w − 2` multiplies
/// while wider windows save ladder multiplies, so small exponents (the
/// common case — quantized NN weights are ≲ 24 bits) want narrow
/// windows.
fn multi_exp_window(max_bits: usize) -> usize {
    if max_bits <= 16 {
        1
    } else if max_bits <= 40 {
        2
    } else {
        4
    }
}

fn pad(limbs: &[Limb], k: usize) -> Vec<Limb> {
    let mut v = limbs.to_vec();
    v.resize(k, 0);
    v
}

/// `a >= b` for equal-length limb slices.
fn ge(a: &[Limb], b: &[Limb]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` for equal-length limb slices, wrapping mod 2^(64·len);
/// returns the final borrow (0 or 1) so callers can account for an
/// implicit high limb.
fn sub_in_place(a: &mut [Limb], b: &[Limb]) -> Limb {
    let mut borrow = 0i128;
    for i in 0..a.len() {
        let d = a[i] as i128 - b[i] as i128 + borrow;
        a[i] = d as Limb;
        borrow = d >> 64;
    }
    (-borrow) as Limb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn neg_inv_is_correct() {
        for n0 in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            let ni = neg_inv_u64(n0);
            assert_eq!(n0.wrapping_mul(ni), 1u64.wrapping_neg(), "n0={n0}");
        }
    }

    #[test]
    fn rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_err());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_err());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_err());
    }

    #[test]
    fn mont_roundtrip() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for x in [0u64, 1, 42, 999_999_999] {
            let xm = ctx.to_mont(&BigUint::from(x));
            assert_eq!(ctx.from_mont(&xm).to_u64(), Some(x));
        }
    }

    #[test]
    fn mul_mod_small() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for a in 0..20u64 {
            for b in 0..20u64 {
                let got = ctx.mul_mod(&BigUint::from(a), &BigUint::from(b));
                assert_eq!(got.to_u64(), Some(a * b % 97), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let exp = BigUint::from(1_000_000_006u64);
        for a in [2u64, 3, 65537, 999_999_999] {
            let r = ctx.pow_mod(&BigUint::from(a), &exp);
            assert!(r.is_one(), "a={a}");
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        let n = BigUint::from(101u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        // x^0 = 1
        assert!(ctx.pow_mod(&BigUint::from(5u64), &BigUint::zero()).is_one());
        // 0^x = 0 for x > 0
        assert!(ctx.pow_mod(&BigUint::zero(), &BigUint::from(7u64)).is_zero());
        // x^1 = x
        assert_eq!(
            ctx.pow_mod(&BigUint::from(42u64), &BigUint::one()).to_u64(),
            Some(42)
        );
        // base bigger than modulus is reduced first
        assert_eq!(
            ctx.pow_mod(&BigUint::from(205u64), &BigUint::from(2u64)).to_u64(),
            Some(9) // (205 mod 101)² = 3² = 9
        );
    }

    #[test]
    fn multi_exp_matches_iterated_pow() {
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let bases: Vec<BigUint> =
            [2u64, 3, 65537, 999_999_999, 12345].iter().map(|&b| BigUint::from(b)).collect();
        let exps: [u64; 5] = [1, 77, 0, 300_000, u64::MAX];
        let got = ctx.pow_mod_multi(&bases, &exps);
        let mut want = BigUint::one();
        for (b, &e) in bases.iter().zip(exps.iter()) {
            let term = ctx.pow_mod(b, &BigUint::from(e));
            want = ctx.mul_mod(&want, &term);
        }
        assert_eq!(got, want);
    }

    #[test]
    fn multi_exp_empty_and_all_zero() {
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        assert!(ctx.pow_mod_multi(&[], &[]).is_one());
        let bases = vec![BigUint::from(5u64), BigUint::from(7u64)];
        assert!(ctx.pow_mod_multi(&bases, &[0, 0]).is_one());
    }

    #[test]
    fn multi_exp_single_base_all_windows() {
        // One base exercises each window width: ≤16-bit, ≤40-bit, 64-bit.
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        for e in [1u64, 2, 65535, 65536, (1 << 40) - 1, 1 << 40, u64::MAX] {
            let got = ctx.pow_mod_multi(&[BigUint::from(3u64)], &[e]);
            let want = ctx.pow_mod(&BigUint::from(3u64), &BigUint::from(e));
            assert_eq!(got, want, "e={e}");
        }
    }

    #[test]
    fn multi_exp_mont_domain_roundtrip() {
        // Exercise the Montgomery-domain entry point directly with
        // reused scratch-domain bases, as the paillier dot kernel does.
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let b1 = ctx.to_mont(&BigUint::from(123u64));
        let b2 = ctx.to_mont(&BigUint::from(456u64));
        let acc = ctx.pow_mod_multi_mont(&[&b1, &b2], &[10, 20]);
        let want = ctx.mul_mod(
            &ctx.pow_mod(&BigUint::from(123u64), &BigUint::from(10u64)),
            &ctx.pow_mod(&BigUint::from(456u64), &BigUint::from(20u64)),
        );
        assert_eq!(ctx.from_mont(&acc), want);
    }

    #[test]
    fn inplace_ops_match_by_value_api() {
        let n = BigUint::from_hex_str("f123456789abcdef0011223344556678").unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let mut scratch = ctx.scratch();
        let a = ctx.to_mont(&BigUint::from(0xdead_beefu64));
        let b = ctx.to_mont(&BigUint::from(0x1234_5678u64));
        let mut acc = a.clone();
        ctx.mont_mul_inplace(&mut acc, &b, &mut scratch);
        assert_eq!(ctx.from_mont(&acc), ctx.mul_mod(&BigUint::from(0xdead_beefu64), &BigUint::from(0x1234_5678u64)));
        let mut sq = a.clone();
        ctx.mont_sqr_inplace(&mut sq, &mut scratch);
        assert_eq!(ctx.from_mont(&sq), ctx.mul_mod(&BigUint::from(0xdead_beefu64), &BigUint::from(0xdead_beefu64)));
    }

    #[test]
    fn fixed_base_matches_pow_mod() {
        let n = BigUint::from_hex_str("f123456789abcdef0011223344556677").unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::from(0x1234_5678_9abcu64);
        let table = ctx.fixed_base_table(&base, 128);
        for e in [
            BigUint::zero(),
            BigUint::one(),
            BigUint::from(2u64),
            BigUint::from(0xdead_beefu64),
            BigUint::from(u64::MAX),
            BigUint::from_hex_str("ffffffffffffffffffffffffffffffff").unwrap(),
        ] {
            assert_eq!(ctx.pow_fixed_base(&table, &e), ctx.pow_mod(&base, &e), "e={e:?}");
        }
    }

    #[test]
    fn fixed_base_overflow_exponent_falls_back() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let base = BigUint::from(3u64);
        let table = ctx.fixed_base_table(&base, 16);
        // Exponent wider than the table's capacity: generic ladder path.
        let e = BigUint::from(u64::MAX);
        assert!(e.bit_len() > table.max_bits());
        assert_eq!(ctx.pow_fixed_base(&table, &e), ctx.pow_mod(&base, &e));
    }

    #[test]
    fn fixed_base_table_geometry() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let table = ctx.fixed_base_table(&BigUint::from(2u64), 64);
        let w = table.window();
        assert!(table.max_bits() >= 64);
        assert_eq!(table.entries(), table.max_bits() / w * ((1 << w) - 1));
        assert!(table.bytes() > 0);
    }

    #[test]
    fn pow_mod_multi_limb() {
        // 2^e mod n cross-checked via repeated squaring on BigUint directly.
        let n = BigUint::from_hex_str("f123456789abcdef0011223344556677").unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let e = BigUint::from(1027u64);
        let got = ctx.pow_mod(&BigUint::from(2u64), &e);
        // slow path: square-and-multiply with div_rem reduction
        let mut acc = BigUint::one();
        let base = BigUint::from(2u64);
        for i in (0..e.bit_len()).rev() {
            acc = acc.square().rem_ref(&n).unwrap();
            if e.bit(i) {
                acc = acc.mul_ref(&base).rem_ref(&n).unwrap();
            }
        }
        assert_eq!(got, acc);
    }
}
