//! Montgomery modular arithmetic (CIOS multiplication) used to make modular
//! exponentiation — the dominant cost of Paillier encryption — fast.

use crate::{BigIntError, BigUint, Limb};

/// A reusable Montgomery context for a fixed odd modulus `n`.
///
/// Construction precomputes `n' = -n^{-1} mod 2^64` and `R² mod n`
/// (`R = 2^(64·k)` where `k` is the limb count of `n`), after which
/// multiplication modulo `n` costs a single CIOS pass and exponentiation a
/// fixed-window ladder. Paillier key material is long-lived, so the context
/// is built once per key and shared across tensor elements.
#[derive(Clone, Debug)]
pub struct MontgomeryCtx {
    /// The modulus, padded view length in limbs.
    n: Vec<Limb>,
    /// `-n^{-1} mod 2^64`.
    n_prime: Limb,
    /// `R mod n` (the Montgomery form of 1).
    r_mod_n: Vec<Limb>,
    /// `R² mod n`, used to convert into Montgomery form.
    r2_mod_n: Vec<Limb>,
}

/// Computes `-n^{-1} mod 2^64` for odd `n0` via Newton–Hensel lifting.
fn neg_inv_u64(n0: Limb) -> Limb {
    debug_assert!(n0 & 1 == 1);
    // x = n0^{-1} mod 2^64 by five Newton iterations (doubles precision each).
    let mut x = n0; // correct mod 2^3 already for odd n0? Use standard trick:
    for _ in 0..6 {
        x = x.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(x)));
    }
    debug_assert_eq!(n0.wrapping_mul(x), 1);
    x.wrapping_neg()
}

impl MontgomeryCtx {
    /// Builds a context for an odd modulus `n > 1`.
    pub fn new(n: &BigUint) -> Result<Self, BigIntError> {
        if n.is_even() || n.is_zero() {
            return Err(BigIntError::EvenModulus);
        }
        if n.is_one() {
            return Err(BigIntError::EvenModulus);
        }
        let k = n.limbs.len();
        let n_prime = neg_inv_u64(n.limbs[0]);
        // R = 2^(64k); R mod n and R^2 mod n via shifting + reduction.
        let r = BigUint::one().shl_bits(64 * k);
        let r_mod_n = r.rem_ref(n)?;
        let r2_mod_n = r.square().rem_ref(n)?;
        Ok(MontgomeryCtx {
            n: n.limbs.clone(),
            n_prime,
            r_mod_n: pad(&r_mod_n.limbs, k),
            r2_mod_n: pad(&r2_mod_n.limbs, k),
        })
    }

    /// Limb count of the modulus.
    pub fn limbs(&self) -> usize {
        self.n.len()
    }

    /// The modulus as a [`BigUint`].
    pub fn modulus(&self) -> BigUint {
        BigUint::from_limbs(self.n.clone())
    }

    /// CIOS Montgomery multiplication: returns `a·b·R^{-1} mod n`.
    /// `a` and `b` must be padded to `k` limbs and `< n`.
    fn mont_mul(&self, a: &[Limb], b: &[Limb]) -> Vec<Limb> {
        let k = self.n.len();
        debug_assert_eq!(a.len(), k);
        debug_assert_eq!(b.len(), k);
        // t has k+2 limbs: accumulator for the interleaved reduce.
        let mut t = vec![0 as Limb; k + 2];
        for &bi in b {
            // t += a * bi
            let mut carry: u128 = 0;
            for j in 0..k {
                let s = t[j] as u128 + a[j] as u128 * bi as u128 + carry;
                t[j] = s as Limb;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k] = s as Limb;
            t[k + 1] = t[k + 1].wrapping_add((s >> 64) as Limb);

            // m = t[0] * n' mod 2^64;  t = (t + m*n) / 2^64
            let m = t[0].wrapping_mul(self.n_prime);
            let s = t[0] as u128 + m as u128 * self.n[0] as u128;
            let mut carry = s >> 64;
            for j in 1..k {
                let s = t[j] as u128 + m as u128 * self.n[j] as u128 + carry;
                t[j - 1] = s as Limb;
                carry = s >> 64;
            }
            let s = t[k] as u128 + carry;
            t[k - 1] = s as Limb;
            t[k] = t[k + 1].wrapping_add((s >> 64) as Limb);
            t[k + 1] = 0;
        }
        // Final conditional subtraction: t may be in [0, 2n). When the
        // carry limb t[k] is set, t[..k] alone is below n and the
        // subtraction borrows out of that implicit high limb — the
        // wrapped low limbs are exactly t - n.
        let mut out = t[..k].to_vec();
        if t[k] != 0 || ge(&out, &self.n) {
            let borrow = sub_in_place(&mut out, &self.n);
            debug_assert_eq!(borrow, t[k]);
        }
        out
    }

    /// Converts `x < n` into Montgomery form (`x·R mod n`).
    pub fn to_mont(&self, x: &BigUint) -> Vec<Limb> {
        let k = self.n.len();
        debug_assert!(x.limbs.len() <= k);
        self.mont_mul(&pad(&x.limbs, k), &self.r2_mod_n)
    }

    /// Converts from Montgomery form back to a normal residue.
    pub fn from_mont(&self, x: &[Limb]) -> BigUint {
        let k = self.n.len();
        let one = pad(&[1], k);
        BigUint::from_limbs(self.mont_mul(x, &one))
    }

    /// Modular multiplication `a·b mod n` for ordinary residues.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Modular exponentiation `base^exp mod n` with a fixed 4-bit window.
    pub fn pow_mod(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            return BigUint::one().rem_ref(&self.modulus()).expect("n > 1");
        }
        let base = base.rem_ref(&self.modulus()).expect("n > 1");
        let bm = self.to_mont(&base);

        // Short exponents (PP-Stream's scaled weights are ~10–24 bits):
        // plain square-and-multiply beats paying for the window table.
        let bits = exp.bit_len();
        if bits <= 32 {
            let mut acc = bm.clone();
            for i in (0..bits - 1).rev() {
                acc = self.mont_mul(&acc, &acc);
                if exp.bit(i) {
                    acc = self.mont_mul(&acc, &bm);
                }
            }
            return self.from_mont(&acc);
        }

        // Precompute bm^0..bm^15 in Montgomery form.
        let mut table = Vec::with_capacity(16);
        table.push(self.r_mod_n.clone()); // 1 in Montgomery form
        table.push(bm.clone());
        for i in 2..16 {
            let prev: &Vec<Limb> = &table[i - 1];
            table.push(self.mont_mul(prev, &bm));
        }

        let bits = exp.bit_len();
        let windows = bits.div_ceil(4);
        let mut acc = self.r_mod_n.clone();
        let mut started = false;
        for w in (0..windows).rev() {
            if started {
                for _ in 0..4 {
                    acc = self.mont_mul(&acc, &acc);
                }
            }
            let mut digit = 0usize;
            for b in 0..4 {
                let bit_idx = w * 4 + (3 - b);
                digit <<= 1;
                if exp.bit(bit_idx) {
                    digit |= 1;
                }
            }
            if digit != 0 {
                acc = self.mont_mul(&acc, &table[digit]);
                started = true;
            } else if started {
                // squarings already applied
            }
        }
        if !started {
            // exp was zero (handled above) — defensive.
            return BigUint::one();
        }
        self.from_mont(&acc)
    }
}

fn pad(limbs: &[Limb], k: usize) -> Vec<Limb> {
    let mut v = limbs.to_vec();
    v.resize(k, 0);
    v
}

/// `a >= b` for equal-length limb slices.
fn ge(a: &[Limb], b: &[Limb]) -> bool {
    for i in (0..a.len()).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    true
}

/// `a -= b` for equal-length limb slices, wrapping mod 2^(64·len);
/// returns the final borrow (0 or 1) so callers can account for an
/// implicit high limb.
fn sub_in_place(a: &mut [Limb], b: &[Limb]) -> Limb {
    let mut borrow = 0i128;
    for i in 0..a.len() {
        let d = a[i] as i128 - b[i] as i128 + borrow;
        a[i] = d as Limb;
        borrow = d >> 64;
    }
    (-borrow) as Limb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BigUint;

    #[test]
    fn neg_inv_is_correct() {
        for n0 in [1u64, 3, 5, 0xdead_beef | 1, u64::MAX] {
            let ni = neg_inv_u64(n0);
            assert_eq!(n0.wrapping_mul(ni), 1u64.wrapping_neg(), "n0={n0}");
        }
    }

    #[test]
    fn rejects_even_modulus() {
        assert!(MontgomeryCtx::new(&BigUint::from(10u64)).is_err());
        assert!(MontgomeryCtx::new(&BigUint::zero()).is_err());
        assert!(MontgomeryCtx::new(&BigUint::one()).is_err());
    }

    #[test]
    fn mont_roundtrip() {
        let n = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for x in [0u64, 1, 42, 999_999_999] {
            let xm = ctx.to_mont(&BigUint::from(x));
            assert_eq!(ctx.from_mont(&xm).to_u64(), Some(x));
        }
    }

    #[test]
    fn mul_mod_small() {
        let n = BigUint::from(97u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        for a in 0..20u64 {
            for b in 0..20u64 {
                let got = ctx.mul_mod(&BigUint::from(a), &BigUint::from(b));
                assert_eq!(got.to_u64(), Some(a * b % 97), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn pow_mod_fermat() {
        // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
        let p = BigUint::from(1_000_000_007u64);
        let ctx = MontgomeryCtx::new(&p).unwrap();
        let exp = BigUint::from(1_000_000_006u64);
        for a in [2u64, 3, 65537, 999_999_999] {
            let r = ctx.pow_mod(&BigUint::from(a), &exp);
            assert!(r.is_one(), "a={a}");
        }
    }

    #[test]
    fn pow_mod_edge_cases() {
        let n = BigUint::from(101u64);
        let ctx = MontgomeryCtx::new(&n).unwrap();
        // x^0 = 1
        assert!(ctx.pow_mod(&BigUint::from(5u64), &BigUint::zero()).is_one());
        // 0^x = 0 for x > 0
        assert!(ctx.pow_mod(&BigUint::zero(), &BigUint::from(7u64)).is_zero());
        // x^1 = x
        assert_eq!(
            ctx.pow_mod(&BigUint::from(42u64), &BigUint::one()).to_u64(),
            Some(42)
        );
        // base bigger than modulus is reduced first
        assert_eq!(
            ctx.pow_mod(&BigUint::from(205u64), &BigUint::from(2u64)).to_u64(),
            Some(9) // (205 mod 101)² = 3² = 9
        );
    }

    #[test]
    fn pow_mod_multi_limb() {
        // 2^e mod n cross-checked via repeated squaring on BigUint directly.
        let n = BigUint::from_hex_str("f123456789abcdef0011223344556677").unwrap();
        let n = if n.is_even() { &n + &BigUint::one() } else { n };
        let ctx = MontgomeryCtx::new(&n).unwrap();
        let e = BigUint::from(1027u64);
        let got = ctx.pow_mod(&BigUint::from(2u64), &e);
        // slow path: square-and-multiply with div_rem reduction
        let mut acc = BigUint::one();
        let base = BigUint::from(2u64);
        for i in (0..e.bit_len()).rev() {
            acc = acc.square().rem_ref(&n).unwrap();
            if e.bit(i) {
                acc = acc.mul_ref(&base).rem_ref(&n).unwrap();
            }
        }
        assert_eq!(got, acc);
    }
}
