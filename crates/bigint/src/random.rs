//! Random [`BigUint`] generation.

use crate::BigUint;
use rand::Rng;

/// A uniformly random integer with exactly `bits` significant bits
/// (the top bit is always set; `bits == 0` yields zero).
pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> BigUint {
    if bits == 0 {
        return BigUint::zero();
    }
    let limbs = bits.div_ceil(64);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    let top_bits = bits - (limbs - 1) * 64;
    let last = limbs - 1;
    if top_bits < 64 {
        v[last] &= (1u64 << top_bits) - 1;
    }
    v[last] |= 1u64 << (top_bits - 1); // force exact bit length
    BigUint::from_limbs(v)
}

/// A uniformly random integer in `[0, bound)` by rejection sampling.
/// Panics if `bound` is zero.
pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(!bound.is_zero(), "random_below with zero bound");
    let bits = bound.bit_len();
    let limbs = bits.div_ceil(64);
    let top_bits = bits - (limbs - 1) * 64;
    loop {
        let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
        if top_bits < 64 {
            let last = limbs - 1;
            v[last] &= (1u64 << top_bits) - 1;
        }
        let candidate = BigUint::from_limbs(v);
        if &candidate < bound {
            return candidate;
        }
    }
}

/// A uniformly random integer in `[1, bound)` coprime to `bound`.
/// Used for Paillier encryption randomness. Panics if `bound <= 1`.
pub fn random_coprime<R: Rng + ?Sized>(rng: &mut R, bound: &BigUint) -> BigUint {
    assert!(*bound > BigUint::one(), "random_coprime needs bound > 1");
    loop {
        let candidate = random_below(rng, bound);
        if !candidate.is_zero() && candidate.gcd(bound).is_one() {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_bits_exact_length() {
        let mut rng = StdRng::seed_from_u64(1);
        for bits in [1usize, 5, 63, 64, 65, 128, 1000] {
            let v = random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits, "bits={bits}");
        }
        assert!(random_bits(&mut rng, 0).is_zero());
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(2);
        let bound = BigUint::from(1000u64);
        for _ in 0..200 {
            let v = random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_below_covers_small_range() {
        // With bound 4, all residues should appear over enough draws.
        let mut rng = StdRng::seed_from_u64(3);
        let bound = BigUint::from(4u64);
        let mut seen = [false; 4];
        for _ in 0..100 {
            let v = random_below(&mut rng, &bound).to_u64().unwrap() as usize;
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "seen={seen:?}");
    }

    #[test]
    fn random_coprime_is_coprime() {
        let mut rng = StdRng::seed_from_u64(4);
        let bound = BigUint::from(60u64); // plenty of non-coprime residues
        for _ in 0..50 {
            let v = random_coprime(&mut rng, &bound);
            assert!(v.gcd(&bound).is_one());
            assert!(!v.is_zero() && v < bound);
        }
    }
}
