//! Conversions to and from strings and byte buffers.

use crate::{BigIntError, BigUint};

impl BigUint {
    /// Parses a decimal string (optionally with leading `+`).
    pub fn from_decimal_str(s: &str) -> Result<Self, BigIntError> {
        let s = s.strip_prefix('+').unwrap_or(s);
        if s.is_empty() {
            return Err(BigIntError::ParseError("empty string".into()));
        }
        let mut v = BigUint::zero();
        // Consume 19 digits at a time (the largest power of 10 in a u64).
        let bytes = s.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let chunk_len = (bytes.len() - i).min(19);
            let chunk = &s[i..i + chunk_len];
            let digits: u64 = chunk
                .parse()
                .map_err(|_| BigIntError::ParseError(format!("invalid digit in {chunk:?}")))?;
            v = v.mul_u64(10u64.pow(chunk_len as u32));
            v.add_u64_assign(digits);
            i += chunk_len;
        }
        Ok(v)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    pub fn from_hex_str(s: &str) -> Result<Self, BigIntError> {
        if s.is_empty() {
            return Err(BigIntError::ParseError("empty string".into()));
        }
        let mut v = BigUint::zero();
        for c in s.chars() {
            let d = c
                .to_digit(16)
                .ok_or_else(|| BigIntError::ParseError(format!("invalid hex digit {c:?}")))?;
            v = v.shl_bits(4);
            v.add_u64_assign(d as u64);
        }
        Ok(v)
    }

    /// Decimal string representation.
    pub fn to_decimal(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        const CHUNK: u64 = 10_000_000_000_000_000_000; // 10^19
        let mut parts = Vec::new();
        let mut cur = self.clone();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem_u64(CHUNK);
            parts.push(r);
            cur = q;
        }
        let mut s = parts.pop().expect("non-zero has at least one chunk").to_string();
        for p in parts.iter().rev() {
            s.push_str(&format!("{p:019}"));
        }
        s
    }

    /// Lowercase hexadecimal representation (no prefix).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".into();
        }
        let mut s = format!("{:x}", self.limbs[self.limbs.len() - 1]);
        for l in self.limbs.iter().rev().skip(1) {
            s.push_str(&format!("{l:016x}"));
        }
        s
    }

    /// Big-endian byte representation, without leading zero bytes
    /// (the value `0` encodes as an empty vector).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for l in self.limbs.iter().rev() {
            out.extend_from_slice(&l.to_be_bytes());
        }
        let skip = out.iter().take_while(|&&b| b == 0).count();
        out.split_off(skip)
    }

    /// Constructs from big-endian bytes (leading zeros allowed).
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut buf = [0u8; 8];
            buf[8 - chunk.len()..].copy_from_slice(chunk);
            limbs.push(u64::from_be_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }

    /// Little-endian byte representation without trailing zero bytes.
    pub fn to_bytes_le(&self) -> Vec<u8> {
        let mut out: Vec<u8> = self.limbs.iter().flat_map(|l| l.to_le_bytes()).collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Constructs from little-endian bytes.
    pub fn from_bytes_le(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            limbs.push(u64::from_le_bytes(buf));
        }
        BigUint::from_limbs(limbs)
    }
}

impl std::str::FromStr for BigUint {
    type Err = BigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            BigUint::from_hex_str(hex)
        } else {
            BigUint::from_decimal_str(s)
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::BigUint;

    #[test]
    fn decimal_roundtrip() {
        for s in [
            "0",
            "1",
            "42",
            "18446744073709551615",
            "18446744073709551616",
            "340282366920938463463374607431768211456",
            "99999999999999999999999999999999999999999999999999",
        ] {
            let v = BigUint::from_decimal_str(s).unwrap();
            assert_eq!(v.to_decimal(), s, "roundtrip {s}");
        }
    }

    #[test]
    fn hex_roundtrip() {
        for s in ["1", "ff", "deadbeefcafebabe", "123456789abcdef0123456789abcdef"] {
            let v = BigUint::from_hex_str(s).unwrap();
            assert_eq!(v.to_hex(), s);
        }
        assert_eq!(BigUint::zero().to_hex(), "0");
    }

    #[test]
    fn decimal_matches_hex() {
        let v = BigUint::from_hex_str("de0b6b3a7640000").unwrap(); // 10^18
        assert_eq!(v.to_decimal(), "1000000000000000000");
    }

    #[test]
    fn parse_errors() {
        assert!(BigUint::from_decimal_str("").is_err());
        assert!(BigUint::from_decimal_str("12a3").is_err());
        assert!(BigUint::from_hex_str("xyz").is_err());
    }

    #[test]
    fn bytes_be_roundtrip() {
        let v = BigUint::from_decimal_str("123456789012345678901234567890").unwrap();
        let bytes = v.to_bytes_be();
        assert_eq!(BigUint::from_bytes_be(&bytes), v);
        assert!(BigUint::zero().to_bytes_be().is_empty());
        // Leading zeros in input are tolerated.
        let mut padded = vec![0u8, 0u8];
        padded.extend_from_slice(&bytes);
        assert_eq!(BigUint::from_bytes_be(&padded), v);
    }

    #[test]
    fn bytes_le_roundtrip() {
        let v = BigUint::from_hex_str("0123456789abcdef0011223344").unwrap();
        assert_eq!(BigUint::from_bytes_le(&v.to_bytes_le()), v);
    }

    #[test]
    fn from_str_dispatches_on_prefix() {
        let a: BigUint = "255".parse().unwrap();
        let b: BigUint = "0xff".parse().unwrap();
        assert_eq!(a, b);
    }
}
