//! Property tests for the stream runtime: wire-codec roundtrips and
//! pipeline order/content preservation.

use bytes::Bytes;
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::{Pipeline, StageSpec, WorkerPool};
use proptest::prelude::*;

proptest! {
    #[test]
    fn wire_roundtrip_vec_i64(v in proptest::collection::vec(any::<i64>(), 0..200)) {
        let back: Vec<i64> = from_frame(to_frame(&v)).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn wire_roundtrip_nested(v in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 0..40), 0..40)) {
        let back: Vec<Vec<u8>> = from_frame(to_frame(&v)).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn wire_roundtrip_string(s in ".{0,100}") {
        let back: String = from_frame(to_frame(&s)).unwrap();
        prop_assert_eq!(back, s);
    }

    #[test]
    fn truncation_never_panics(v in proptest::collection::vec(any::<u64>(), 1..50),
                               cut in 0usize..100) {
        let frame = to_frame(&v);
        let cut = cut.min(frame.len());
        let truncated = frame.slice(..cut);
        // Must return Ok or Err, never panic; Ok only if nothing was cut.
        let res: Result<Vec<u64>, _> = from_frame(truncated);
        if cut == frame.len() {
            prop_assert!(res.is_ok());
        }
    }

    #[test]
    fn pipeline_preserves_order_and_values(
        values in proptest::collection::vec(any::<u64>(), 1..30),
        stages in 1usize..4,
    ) {
        let specs: Vec<StageSpec> = (0..stages)
            .map(|i| StageSpec::new(format!("s{i}"), 1, |payload, _| {
                let v: u64 = from_frame(payload)?;
                Ok(to_frame(&(v.wrapping_add(1))))
            }))
            .collect();
        let mut p = Pipeline::new(specs).unwrap();
        let frames: Vec<Bytes> = values.iter().map(to_frame).collect();
        let (out, stats) = p.process_stream(frames).unwrap();
        prop_assert_eq!(out.len(), values.len());
        for (orig, frame) in values.iter().zip(out) {
            let v: u64 = from_frame(frame).unwrap();
            prop_assert_eq!(v, orig.wrapping_add(stages as u64));
        }
        prop_assert_eq!(stats.latencies.len(), values.len());
        prop_assert_eq!(stats.link_bytes.len(), stages + 1);
    }

    #[test]
    fn worker_pool_map_ranges_is_order_preserving(
        n in 0usize..500,
        workers in 1usize..6,
    ) {
        let pool = WorkerPool::new(workers);
        let out = pool.map_ranges(n, |r| r.map(|i| i * 3 + 1).collect());
        prop_assert_eq!(out, (0..n).map(|i| i * 3 + 1).collect::<Vec<_>>());
    }
}
