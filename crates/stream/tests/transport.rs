//! Transport robustness over real sockets: malformed frames, abrupt
//! disconnects, timeouts, retry/backoff, and sequence validation. Every
//! socket failure must surface as `StreamError::Transport` — `Decode` is
//! reserved for malformed bytes.

use bytes::Bytes;
use pp_stream_runtime::link::Frame;
use pp_stream_runtime::tcp::{self, RetryPolicy};
use pp_stream_runtime::{StreamError, TcpConfig, TransportErrorKind};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

fn listen() -> (TcpListener, std::net::SocketAddr) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    (listener, addr)
}

/// A raw-socket peer that writes `bytes` and then closes the connection.
fn raw_peer(listener: TcpListener, bytes: Vec<u8>) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        stream.write_all(&bytes).unwrap();
        // Drop closes the socket, mid-frame if `bytes` stopped there.
    })
}

#[test]
fn truncated_header_is_transport_eof_not_decode() {
    let (listener, addr) = listen();
    // 3 bytes of an 8-byte seq header, then disconnect.
    let peer = raw_peer(listener, vec![0xAA, 0xBB, 0xCC]);
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Eof, .. }),
        "truncated header must be a transport EOF, got: {err}"
    );
    assert!(err.to_string().contains("mid-frame"), "{err}");
    peer.join().unwrap();
}

#[test]
fn truncated_length_field_is_transport_eof() {
    let (listener, addr) = listen();
    // Full seq and deadline words, 2 of 4 length bytes.
    let mut bytes = 7u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&pp_stream_runtime::link::NO_DEADLINE.to_le_bytes());
    bytes.extend_from_slice(&[0x01, 0x00]);
    let peer = raw_peer(listener, bytes);
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Eof, .. }),
        "{err}"
    );
    peer.join().unwrap();
}

#[test]
fn oversize_length_prefix_is_transport_frame_limit() {
    let (listener, addr) = listen();
    // Valid header claiming a 2 GiB payload: the receiver must refuse at
    // its frame ceiling *before* allocating, and classify the refusal as
    // a transport-level frame-limit breach (the peer exceeded its
    // resource budget; the bytes themselves are well-formed framing).
    let mut bytes = 1u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&pp_stream_runtime::link::NO_DEADLINE.to_le_bytes());
    bytes.extend_from_slice(&(2u32 << 30).to_le_bytes());
    let peer = raw_peer(listener, bytes);
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::FrameLimit, .. }),
        "oversize length prefix must breach the frame ceiling: {err}"
    );
    assert!(err.to_string().contains("frame ceiling"), "{err}");
    peer.join().unwrap();
}

#[test]
fn mid_payload_disconnect_is_transport_eof() {
    let (listener, addr) = listen();
    // Header promises 100 payload bytes; only 10 arrive.
    let mut bytes = 3u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&pp_stream_runtime::link::NO_DEADLINE.to_le_bytes());
    bytes.extend_from_slice(&100u32.to_le_bytes());
    bytes.extend_from_slice(&[0x55; 10]);
    let peer = raw_peer(listener, bytes);
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Eof, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("payload"), "{err}");
    peer.join().unwrap();
}

#[test]
fn clean_close_between_frames_is_none() {
    let (listener, addr) = listen();
    let mut bytes = 5u64.to_le_bytes().to_vec();
    bytes.extend_from_slice(&pp_stream_runtime::link::NO_DEADLINE.to_le_bytes());
    bytes.extend_from_slice(&3u32.to_le_bytes());
    bytes.extend_from_slice(b"abc");
    let peer = raw_peer(listener, bytes);
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    let frame = rx.recv().unwrap().unwrap();
    assert_eq!(frame.seq, 5);
    assert!(frame.deadline_ms.is_none(), "sentinel word decodes as no deadline");
    assert_eq!(&frame.payload[..], b"abc");
    assert!(rx.recv().unwrap().is_none(), "close between frames is a clean EOF");
    peer.join().unwrap();
}

#[test]
fn connect_retry_reaches_late_binding_listener() {
    // Learn a free port, release it, bind it again only after a delay —
    // the client's backoff must ride out the gap.
    let (listener, addr) = listen();
    drop(listener);
    let server = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let listener = TcpListener::bind(addr).unwrap();
        let (stream, _) = listener.accept().unwrap();
        let (_tx, mut rx) = tcp::framed(stream).unwrap();
        assert!(rx.recv().unwrap().is_none());
    });
    let config = TcpConfig::new().with_retry(RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(50),
        max_delay: Duration::from_millis(200),
        jitter: true,
    });
    let connected = tcp::connect_with(addr, &config).expect("retry must eventually connect");
    assert!(
        connected.attempts > 1,
        "the port was not bound on the first attempt; attempts = {}",
        connected.attempts
    );
    drop(connected);
    server.join().unwrap();
}

#[test]
fn connect_exhaustion_is_transport_connect_error() {
    // Bind-then-drop gives an address that refuses connections.
    let (listener, addr) = listen();
    drop(listener);
    let config = TcpConfig::new().with_retry(RetryPolicy {
        max_attempts: 3,
        base_delay: Duration::from_millis(1),
        max_delay: Duration::from_millis(5),
        jitter: false,
    });
    let err = tcp::connect_with(addr, &config).map(|_| ()).unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Connect, .. }),
        "{err}"
    );
    assert!(err.to_string().contains("3 attempts"), "{err}");
}

#[test]
fn read_deadline_expires_as_transport_timeout() {
    let (listener, addr) = listen();
    // A peer that connects but never sends anything.
    let silent = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        std::thread::sleep(Duration::from_millis(500));
        drop(stream);
    });
    let config =
        TcpConfig::new().with_timeouts(Duration::from_millis(50), Duration::from_secs(5));
    let connected = tcp::connect_with(addr, &config).unwrap();
    let mut rx = connected.rx;
    let t0 = Instant::now();
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Timeout, .. }),
        "{err}"
    );
    assert!(t0.elapsed() < Duration::from_millis(450), "deadline must fire early");
    silent.join().unwrap();
}

#[test]
fn reordered_seq_over_socket_is_transport_seq_error() {
    let (listener, addr) = listen();
    let peer = std::thread::spawn(move || {
        let (stream, _) = listener.accept().unwrap();
        // Sender side stamps explicit, deliberately out-of-order seqs.
        let (mut tx, _rx) = tcp::framed(stream).unwrap();
        tx.send(&Frame::new(4, Bytes::from_static(b"a"))).unwrap();
        tx.send(&Frame::new(2, Bytes::from_static(b"b"))).unwrap();
    });
    let (_tx, mut rx) = tcp::connect(addr).unwrap();
    assert_eq!(rx.recv().unwrap().unwrap().seq, 4);
    let err = rx.recv().unwrap_err();
    assert!(
        matches!(err, StreamError::Transport { kind: TransportErrorKind::Seq, .. }),
        "reordered frame must be rejected: {err}"
    );
    peer.join().unwrap();
}

#[test]
fn duplicated_seq_rejected_unless_validation_disabled() {
    for validate in [true, false] {
        let (listener, addr) = listen();
        let peer = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (mut tx, _rx) = tcp::framed(stream).unwrap();
            for _ in 0..2 {
                tx.send(&Frame::new(9, Bytes::new())).unwrap();
            }
        });
        let config = if validate {
            TcpConfig::new()
        } else {
            TcpConfig::new().without_seq_validation()
        };
        let connected = tcp::connect_with(addr, &config).unwrap();
        let mut rx = connected.rx;
        assert_eq!(rx.recv().unwrap().unwrap().seq, 9);
        if validate {
            let err = rx.recv().unwrap_err();
            assert!(
                matches!(err, StreamError::Transport { kind: TransportErrorKind::Seq, .. }),
                "{err}"
            );
        } else {
            assert_eq!(rx.recv().unwrap().unwrap().seq, 9, "validation off lets it through");
        }
        peer.join().unwrap();
    }
}

#[test]
fn send_to_dead_peer_is_transport_not_decode() {
    let (listener, addr) = listen();
    let stream = TcpStream::connect(addr).unwrap();
    let (accepted, _) = listener.accept().unwrap();
    drop(accepted); // peer dies immediately
    let (mut tx, _rx) = tcp::framed(stream).unwrap();
    // The first write(s) may land in kernel buffers; keep sending until
    // the broken pipe surfaces.
    let payload = Bytes::from(vec![0u8; 64 * 1024]);
    let mut last = Ok(());
    for seq in 0..200u64 {
        last = tx.send(&Frame::new(seq, payload.clone()));
        if last.is_err() {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let err = last.expect_err("writing to a dead peer must eventually fail");
    assert!(
        matches!(
            err,
            StreamError::Transport {
                kind: TransportErrorKind::Send | TransportErrorKind::Recv,
                ..
            }
        ),
        "dead-peer send must be a Transport error, never Decode: {err}"
    );
}
