//! TCP framing: the real-network transport for running the two providers
//! as separate processes/hosts, as on the paper's nine-server testbed.
//!
//! Frames are length-prefixed: `seq: u64 LE | len: u32 LE | payload`.
//! The in-process [`crate::link::Link`] and this transport carry the same
//! [`Frame`]s, so a pipeline stage can face either without changes.

use crate::link::Frame;
use crate::StreamError;
use bytes::Bytes;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Sending half of a framed TCP connection.
pub struct TcpFrameSender {
    writer: BufWriter<TcpStream>,
}

impl TcpFrameSender {
    /// Sends one frame (flushes immediately — each frame is a protocol
    /// round trip, not a throughput stream).
    pub fn send(&mut self, frame: &Frame) -> Result<(), StreamError> {
        let io = |e: std::io::Error| StreamError::Decode(format!("tcp send: {e}"));
        self.writer.write_all(&frame.seq.to_le_bytes()).map_err(io)?;
        self.writer
            .write_all(&(frame.payload.len() as u32).to_le_bytes())
            .map_err(io)?;
        self.writer.write_all(&frame.payload).map_err(io)?;
        self.writer.flush().map_err(io)
    }
}

/// Receiving half of a framed TCP connection.
pub struct TcpFrameReceiver {
    reader: BufReader<TcpStream>,
}

impl TcpFrameReceiver {
    /// Receives the next frame; `None` on clean EOF.
    pub fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        let mut seq_buf = [0u8; 8];
        match self.reader.read_exact(&mut seq_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(StreamError::Decode(format!("tcp recv: {e}"))),
        }
        let mut len_buf = [0u8; 4];
        self.reader
            .read_exact(&mut len_buf)
            .map_err(|e| StreamError::Decode(format!("tcp recv: {e}")))?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if len > 1 << 30 {
            return Err(StreamError::Decode(format!("frame too large: {len} bytes")));
        }
        let mut payload = vec![0u8; len];
        self.reader
            .read_exact(&mut payload)
            .map_err(|e| StreamError::Decode(format!("tcp recv: {e}")))?;
        Ok(Some(Frame { seq: u64::from_le_bytes(seq_buf), payload: Bytes::from(payload) }))
    }
}

/// Wraps a connected socket into framed halves (duplex: both sides can
/// send and receive on the same connection).
pub fn framed(stream: TcpStream) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    stream
        .set_nodelay(true)
        .map_err(|e| StreamError::Config(format!("nodelay: {e}")))?;
    let reader = stream
        .try_clone()
        .map_err(|e| StreamError::Config(format!("clone socket: {e}")))?;
    Ok((
        TcpFrameSender { writer: BufWriter::new(stream) },
        TcpFrameReceiver { reader: BufReader::new(reader) },
    ))
}

/// Binds and accepts one peer (the server side of a provider link).
pub fn accept_one(
    addr: impl ToSocketAddrs,
) -> Result<(TcpFrameSender, TcpFrameReceiver, std::net::SocketAddr), StreamError> {
    let listener =
        TcpListener::bind(addr).map_err(|e| StreamError::Config(format!("bind: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| StreamError::Config(format!("local addr: {e}")))?;
    let (stream, _) =
        listener.accept().map_err(|e| StreamError::Config(format!("accept: {e}")))?;
    let (tx, rx) = framed(stream)?;
    Ok((tx, rx, local))
}

/// Connects to a peer (the client side of a provider link).
pub fn connect(
    addr: impl ToSocketAddrs,
) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    let stream =
        TcpStream::connect(addr).map_err(|e| StreamError::Config(format!("connect: {e}")))?;
    framed(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (mut tx, mut rx) = framed(stream).unwrap();
            // Echo frames with seq+1 until EOF.
            while let Some(frame) = rx.recv().unwrap() {
                tx.send(&Frame { seq: frame.seq + 1, payload: frame.payload }).unwrap();
            }
        });

        let (mut tx, mut rx) = connect(addr).unwrap();
        for i in 0..5u64 {
            let payload = Bytes::from(vec![i as u8; (i as usize + 1) * 100]);
            tx.send(&Frame { seq: i, payload: payload.clone() }).unwrap();
            let echoed = rx.recv().unwrap().unwrap();
            assert_eq!(echoed.seq, i + 1);
            assert_eq!(echoed.payload, payload);
        }
        drop(tx);
        drop(rx);
        server.join().unwrap();
    }

    #[test]
    fn empty_payload_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            let f = rx.recv().unwrap().unwrap();
            assert!(f.payload.is_empty());
            assert!(rx.recv().unwrap().is_none(), "clean EOF after sender drops");
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        tx.send(&Frame { seq: 9, payload: Bytes::new() }).unwrap();
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }

    #[test]
    fn large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            let f = rx.recv().unwrap().unwrap();
            assert_eq!(&f.payload[..], &expect[..]);
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        tx.send(&Frame { seq: 1, payload: Bytes::from(payload) }).unwrap();
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }
}
