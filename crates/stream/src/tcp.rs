//! TCP framing: the real-network transport for running the two providers
//! as separate processes/hosts, as on the paper's nine-server testbed.
//!
//! Frames are length-prefixed:
//! `seq: u64 LE | deadline_ms: u64 LE | len: u32 LE | payload`, where
//! `deadline_ms` is the item's remaining end-to-end budget at send time
//! ([`crate::link::NO_DEADLINE`] = no deadline). The in-process
//! [`crate::link::Link`] and this transport carry the same [`Frame`]s, so
//! a pipeline stage can face either without changes.
//!
//! Error taxonomy (see [`StreamError`]): socket failures — refused
//! connections, resets, timeouts, mid-frame disconnects, sequence
//! violations — are [`StreamError::Transport`] with the failing operation
//! named; [`StreamError::Decode`] is reserved for malformed bytes. A
//! length prefix above the receiver's frame ceiling is
//! `Transport { kind: FrameLimit, .. }`, rejected **before** any payload
//! allocation, and the payload buffer for an accepted prefix grows only
//! as bytes actually arrive — an adversarial peer cannot make the
//! process reserve memory it never sent ([`TcpConfig::max_frame`],
//! `PP_MAX_FRAME`).
//!
//! Robustness knobs live in [`TcpConfig`]: connect retry with exponential
//! backoff + jitter ([`RetryPolicy`]), read/write timeouts, and receive-
//! side sequence-monotonicity validation (on by default — each direction
//! of a connection carries strictly increasing `Frame.seq`, which
//! [`TcpFrameSender::send_payload`] stamps automatically).

use crate::link::{Frame, SeqValidator};
use crate::{StreamError, TransportErrorKind};
use bytes::Bytes;
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connect-retry policy: exponential backoff with deterministic jitter.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total connection attempts before giving up (min 1).
    pub max_attempts: u32,
    /// Delay before the second attempt; doubles each further attempt.
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Scale each delay by a pseudo-random factor in [0.5, 1.0) so
    /// simultaneously restarting clients don't reconnect in lockstep.
    pub jitter: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_secs(2),
            jitter: true,
        }
    }
}

impl RetryPolicy {
    /// A single attempt, no waiting — for tests and fail-fast callers.
    pub fn no_retry() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// Backoff before attempt `attempt` (1-based; attempt 1 has none).
    /// Public so callers that drive their own attempt loop — e.g. the
    /// client's multi-address failover sweep — reuse the exact same
    /// backoff curve and jitter as [`connect_with`].
    pub fn delay_before(&self, attempt: u32, seed: u64) -> Duration {
        if attempt <= 1 {
            return Duration::ZERO;
        }
        let exp = (attempt - 2).min(16);
        let raw = self.base_delay.saturating_mul(1u32 << exp).min(self.max_delay);
        if !self.jitter {
            return raw;
        }
        // SplitMix64 on (seed, attempt): deterministic per process run,
        // decorrelated across processes.
        let mut z = seed ^ (attempt as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let frac = ((z >> 11) as f64) / ((1u64 << 53) as f64); // [0, 1)
        raw.mul_f64(0.5 + frac / 2.0)
    }
}

/// Socket configuration for framed connections.
///
/// The read/write timeouts here are **per-syscall** socket deadlines —
/// they bound how long one `read(2)`/`write(2)` may block, not how long
/// an inference item may take end to end. An item's end-to-end budget is
/// the per-item deadline carried in [`Frame::deadline_ms`], enforced by
/// the stages that do the expensive work.
#[derive(Clone, Debug, Default)]
pub struct TcpConfig {
    /// Read deadline; `None` blocks indefinitely. An expired deadline
    /// surfaces as `Transport { kind: Timeout, .. }`.
    pub read_timeout: Option<Duration>,
    /// Write deadline; `None` blocks indefinitely.
    pub write_timeout: Option<Duration>,
    /// Connect-retry policy (used by [`connect_with`]).
    pub retry: RetryPolicy,
    /// Reject frames whose `seq` is not strictly greater than the last
    /// received one. Defaults to on.
    pub validate_seq: bool,
    /// Frame-size ceiling: a received length prefix above this is
    /// rejected as `Transport { kind: FrameLimit, .. }` before any
    /// payload allocation. `0` (the derived-`Default` value) means "use
    /// [`env_max_frame`]" — the `PP_MAX_FRAME` override or the 1 GiB
    /// default. Servers tighten this per connection to the governor's
    /// negotiated ceiling via [`TcpFrameReceiver::set_max_frame`].
    pub max_frame: usize,
}

/// The hard frame-size ceiling used when nothing tighter is configured.
pub const DEFAULT_MAX_FRAME: usize = 1 << 30;

/// Floor for configured frame ceilings: a handshake frame (key bytes
/// are capped at 4096 by validation, plus topology fields) must always
/// fit, so a mis-set `PP_MAX_FRAME` cannot brick every connection.
pub const MIN_MAX_FRAME: usize = 16 * 1024;

/// The process-wide frame ceiling: `PP_MAX_FRAME` (bytes, clamped to at
/// least [`MIN_MAX_FRAME`]) or [`DEFAULT_MAX_FRAME`]. Read per
/// connection setup, so tests and operators can adjust it without
/// rebuilding configs.
pub fn env_max_frame() -> usize {
    parse_max_frame(std::env::var("PP_MAX_FRAME").ok().as_deref())
}

/// Parses a `PP_MAX_FRAME`-style value: unset, garbage, or zero fall
/// back to [`DEFAULT_MAX_FRAME`]; positive values are clamped to at
/// least [`MIN_MAX_FRAME`]. Public so the serving crate's resource
/// governor parses the same way.
pub fn parse_max_frame(v: Option<&str>) -> usize {
    match v {
        Some(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n.max(MIN_MAX_FRAME),
            _ => DEFAULT_MAX_FRAME,
        },
        None => DEFAULT_MAX_FRAME,
    }
}

// `Default` must derive for the field-less construction sites, but the
// semantic default turns validation ON — so route everything through
// `TcpConfig::new`.
impl TcpConfig {
    /// The default configuration: no timeouts, default retry policy,
    /// sequence validation enabled.
    pub fn new() -> Self {
        TcpConfig { validate_seq: true, ..Default::default() }
    }

    /// Disables receive-side sequence validation (for callers that stamp
    /// their own non-monotonic seqs).
    pub fn without_seq_validation(mut self) -> Self {
        self.validate_seq = false;
        self
    }

    /// Sets both read and write deadlines.
    pub fn with_timeouts(mut self, read: Duration, write: Duration) -> Self {
        self.read_timeout = Some(read);
        self.write_timeout = Some(write);
        self
    }

    /// Replaces the connect-retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the frame-size ceiling (`0` restores the
    /// [`env_max_frame`] default).
    pub fn with_max_frame(mut self, max_frame: usize) -> Self {
        self.max_frame = max_frame;
        self
    }
}

/// Object-safe sending half of a framed transport. [`TcpFrameSender`]
/// is the real-socket implementation; the fault-injection layer
/// (`crate::fault`, behind the `fault-injection` feature) wraps any
/// implementor to inject deterministic failures, so protocol code can
/// hold a `Box<dyn FrameSender>` and stay oblivious.
pub trait FrameSender: Send {
    /// Sends one frame.
    fn send(&mut self, frame: &Frame) -> Result<(), StreamError>;
    /// Sends a payload stamped with the next transport seq; returns the
    /// seq used.
    fn send_payload(&mut self, payload: Bytes) -> Result<u64, StreamError>;
    /// As [`send_payload`](FrameSender::send_payload), but also stamps a
    /// remaining-deadline budget (milliseconds) onto the frame.
    fn send_payload_deadline(
        &mut self,
        payload: Bytes,
        deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError>;
}

/// Object-safe receiving half of a framed transport; see [`FrameSender`].
pub trait FrameReceiver: Send {
    /// Receives the next frame; `None` on clean EOF.
    fn recv(&mut self) -> Result<Option<Frame>, StreamError>;

    /// Tightens (or relaxes) the receiver's frame-size ceiling — the
    /// server raises it from the pre-handshake cap to the governor's
    /// negotiated limit once a session is accepted. Implementations
    /// without a ceiling (in-memory test receivers) ignore it.
    fn set_max_frame(&mut self, _max_frame: usize) {}
}

fn io_err(kind: TransportErrorKind, what: &str, e: &std::io::Error) -> StreamError {
    // Expired socket deadlines surface as WouldBlock (Unix) / TimedOut
    // (Windows); fold both into the Timeout kind.
    let kind = match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportErrorKind::Timeout,
        _ => kind,
    };
    StreamError::transport(kind, format!("{what}: {e}"))
}

/// Sending half of a framed TCP connection.
pub struct TcpFrameSender {
    writer: BufWriter<TcpStream>,
    next_seq: u64,
}

impl TcpFrameSender {
    /// Sends one frame (flushes immediately — each frame is a protocol
    /// round trip, not a throughput stream).
    pub fn send(&mut self, frame: &Frame) -> Result<(), StreamError> {
        let io = |e: std::io::Error| {
            io_err(TransportErrorKind::Send, &format!("tcp send (seq {})", frame.seq), &e)
        };
        self.writer.write_all(&frame.seq.to_le_bytes()).map_err(io)?;
        let deadline = frame.deadline_ms.unwrap_or(crate::link::NO_DEADLINE);
        self.writer.write_all(&deadline.to_le_bytes()).map_err(io)?;
        let len = u32::try_from(frame.payload.len()).map_err(|_| {
            StreamError::transport(
                TransportErrorKind::Send,
                format!(
                    "frame payload of {} bytes exceeds the u32 length prefix",
                    frame.payload.len()
                ),
            )
        })?;
        self.writer.write_all(&len.to_le_bytes()).map_err(io)?;
        self.writer.write_all(&frame.payload).map_err(io)?;
        self.writer.flush().map_err(io)?;
        self.next_seq = self.next_seq.max(frame.seq.wrapping_add(1));
        Ok(())
    }

    /// Sends a payload stamped with this connection's next transport
    /// sequence number (strictly increasing per direction, so the peer's
    /// monotonicity validation holds). Returns the seq used.
    pub fn send_payload(&mut self, payload: Bytes) -> Result<u64, StreamError> {
        self.send_payload_deadline(payload, None)
    }

    /// As [`send_payload`](TcpFrameSender::send_payload), stamping a
    /// remaining-deadline budget in milliseconds.
    pub fn send_payload_deadline(
        &mut self,
        payload: Bytes,
        deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError> {
        let seq = self.next_seq;
        self.send(&Frame { seq, deadline_ms, payload })?;
        Ok(seq)
    }
}

impl FrameSender for TcpFrameSender {
    fn send(&mut self, frame: &Frame) -> Result<(), StreamError> {
        TcpFrameSender::send(self, frame)
    }
    fn send_payload(&mut self, payload: Bytes) -> Result<u64, StreamError> {
        TcpFrameSender::send_payload(self, payload)
    }
    fn send_payload_deadline(
        &mut self,
        payload: Bytes,
        deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError> {
        TcpFrameSender::send_payload_deadline(self, payload, deadline_ms)
    }
}

/// Receiving half of a framed TCP connection.
pub struct TcpFrameReceiver {
    reader: BufReader<TcpStream>,
    validator: Option<SeqValidator>,
    max_frame: usize,
}

impl TcpFrameReceiver {
    /// Replaces the frame-size ceiling (`0` restores the
    /// [`env_max_frame`] default). See [`FrameReceiver::set_max_frame`].
    pub fn set_max_frame(&mut self, max_frame: usize) {
        self.max_frame = if max_frame == 0 { env_max_frame() } else { max_frame };
    }

    /// Receives the next frame; `None` on clean EOF (the peer closed
    /// *between* frames). A disconnect mid-frame is
    /// `Transport { kind: Eof, .. }`, an expired read deadline
    /// `Transport { kind: Timeout, .. }`, a reordered/duplicated seq
    /// `Transport { kind: Seq, .. }`, and a length prefix above the
    /// configured ceiling `Transport { kind: FrameLimit, .. }` —
    /// rejected before any payload allocation.
    pub fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        // First header byte read separately: a clean shutdown closes the
        // socket exactly here, which `read` reports as Ok(0). Any EOF
        // after this point is a mid-frame disconnect.
        let mut seq_buf = [0u8; 8];
        let mut first = 0usize;
        while first == 0 {
            match self.reader.read(&mut seq_buf[..1]) {
                Ok(0) => return Ok(None),
                Ok(n) => first = n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(TransportErrorKind::Recv, "tcp recv (header)", &e)),
            }
        }
        self.read_exact_mid_frame(&mut seq_buf[1..], "header (seq)")?;
        let seq = u64::from_le_bytes(seq_buf);

        let mut deadline_buf = [0u8; 8];
        self.read_exact_mid_frame(&mut deadline_buf, "header (deadline)")?;
        let deadline_raw = u64::from_le_bytes(deadline_buf);
        let deadline_ms =
            (deadline_raw != crate::link::NO_DEADLINE).then_some(deadline_raw);

        let mut len_buf = [0u8; 4];
        self.read_exact_mid_frame(&mut len_buf, "header (len)")?;
        let len = u32::from_le_bytes(len_buf) as usize;
        // Governor ceiling, checked before any allocation: an inflated
        // prefix must never force the process to reserve memory.
        if len > self.max_frame {
            return Err(StreamError::transport(
                TransportErrorKind::FrameLimit,
                format!(
                    "frame length prefix {len} exceeds the {}-byte frame ceiling",
                    self.max_frame
                ),
            ));
        }

        // Grow toward `len` only as bytes actually arrive: even an
        // in-ceiling prefix buys the peer at most 64 KiB of allocation
        // it hasn't paid for in sent bytes.
        let mut payload: Vec<u8> = Vec::with_capacity(len.min(64 * 1024));
        let mut scratch = [0u8; 16 * 1024];
        while payload.len() < len {
            let want = (len - payload.len()).min(scratch.len());
            match self.reader.read(&mut scratch[..want]) {
                Ok(0) => {
                    return Err(StreamError::transport(
                        TransportErrorKind::Eof,
                        "peer disconnected mid-frame while reading payload",
                    ))
                }
                Ok(n) => payload.extend_from_slice(&scratch[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(TransportErrorKind::Recv, "tcp recv (payload)", &e)),
            }
        }

        if let Some(v) = &mut self.validator {
            v.check(seq)?;
        }
        Ok(Some(Frame { seq, deadline_ms, payload: Bytes::from(payload) }))
    }

    fn read_exact_mid_frame(&mut self, buf: &mut [u8], what: &str) -> Result<(), StreamError> {
        self.reader.read_exact(buf).map_err(|e| {
            if e.kind() == ErrorKind::UnexpectedEof {
                StreamError::transport(
                    TransportErrorKind::Eof,
                    format!("peer disconnected mid-frame while reading {what}"),
                )
            } else {
                io_err(TransportErrorKind::Recv, &format!("tcp recv ({what})"), &e)
            }
        })
    }
}

impl FrameReceiver for TcpFrameReceiver {
    fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        TcpFrameReceiver::recv(self)
    }
    fn set_max_frame(&mut self, max_frame: usize) {
        TcpFrameReceiver::set_max_frame(self, max_frame)
    }
}

/// Wraps a connected socket into framed halves (duplex: both sides can
/// send and receive on the same connection) with the default
/// configuration ([`TcpConfig::new`]).
pub fn framed(stream: TcpStream) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    framed_with(stream, &TcpConfig::new())
}

/// As [`framed`], with explicit socket configuration.
pub fn framed_with(
    stream: TcpStream,
    config: &TcpConfig,
) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    let setup = |what: &str, e: &std::io::Error| {
        StreamError::transport(TransportErrorKind::Setup, format!("{what}: {e}"))
    };
    stream.set_nodelay(true).map_err(|e| setup("nodelay", &e))?;
    stream
        .set_read_timeout(config.read_timeout)
        .map_err(|e| setup("read timeout", &e))?;
    stream
        .set_write_timeout(config.write_timeout)
        .map_err(|e| setup("write timeout", &e))?;
    let reader = stream.try_clone().map_err(|e| setup("clone socket", &e))?;
    Ok((
        TcpFrameSender { writer: BufWriter::new(stream), next_seq: 0 },
        TcpFrameReceiver {
            reader: BufReader::new(reader),
            validator: config.validate_seq.then(SeqValidator::new),
            max_frame: if config.max_frame == 0 { env_max_frame() } else { config.max_frame },
        },
    ))
}

/// Binds and accepts one peer (the server side of a provider link).
pub fn accept_one(
    addr: impl ToSocketAddrs,
) -> Result<(TcpFrameSender, TcpFrameReceiver, std::net::SocketAddr), StreamError> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| StreamError::transport(TransportErrorKind::Bind, format!("bind: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| StreamError::transport(TransportErrorKind::Bind, format!("local addr: {e}")))?;
    let (tx, rx) = accept_on(&listener, &TcpConfig::new())?;
    Ok((tx, rx, local))
}

/// Accepts one peer on an already-bound listener (lets callers bind
/// `127.0.0.1:0` first and publish the assigned port).
pub fn accept_on(
    listener: &TcpListener,
    config: &TcpConfig,
) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    let (stream, _) = listener
        .accept()
        .map_err(|e| StreamError::transport(TransportErrorKind::Accept, format!("accept: {e}")))?;
    framed_with(stream, config)
}

/// Outcome of [`connect_with`]: the framed halves plus how many attempts
/// the retry loop used (1 = first try succeeded).
pub struct Connected {
    pub tx: TcpFrameSender,
    pub rx: TcpFrameReceiver,
    pub attempts: u32,
}

/// Connects to a peer with the default configuration (the client side of
/// a provider link).
pub fn connect(
    addr: impl ToSocketAddrs,
) -> Result<(TcpFrameSender, TcpFrameReceiver), StreamError> {
    let c = connect_with(addr, &TcpConfig::new())?;
    Ok((c.tx, c.rx))
}

/// Connects with retry: exponential backoff + jitter per
/// [`TcpConfig::retry`]. Fails with `Transport { kind: Connect, .. }`
/// naming the attempt count once the policy is exhausted.
pub fn connect_with(addr: impl ToSocketAddrs, config: &TcpConfig) -> Result<Connected, StreamError> {
    let attempts_max = config.retry.max_attempts.max(1);
    // Jitter seed: decorrelate processes without pulling in a rand dep.
    let seed = std::process::id() as u64 ^ 0x5bd1_e995_9950_57ea;
    let mut last_err = None;
    for attempt in 1..=attempts_max {
        let delay = config.retry.delay_before(attempt, seed);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        match TcpStream::connect(&addr) {
            Ok(stream) => {
                let (tx, rx) = framed_with(stream, config)?;
                return Ok(Connected { tx, rx, attempts: attempt });
            }
            Err(e) => last_err = Some(e),
        }
    }
    let e = last_err.expect("at least one attempt");
    Err(StreamError::transport(
        TransportErrorKind::Connect,
        format!("connect failed after {attempts_max} attempts: {e}"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip_over_localhost() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (mut tx, mut rx) = framed(stream).unwrap();
            // Echo frames with seq+1 until EOF.
            while let Some(frame) = rx.recv().unwrap() {
                tx.send(&Frame { seq: frame.seq + 1, deadline_ms: frame.deadline_ms, payload: frame.payload }).unwrap();
            }
        });

        let (mut tx, mut rx) = connect(addr).unwrap();
        for i in 0..5u64 {
            let payload = Bytes::from(vec![i as u8; (i as usize + 1) * 100]);
            tx.send(&Frame::new(i, payload.clone())).unwrap();
            let echoed = rx.recv().unwrap().unwrap();
            assert_eq!(echoed.seq, i + 1);
            assert_eq!(echoed.payload, payload);
        }
        drop(tx);
        drop(rx);
        server.join().unwrap();
    }

    #[test]
    fn empty_payload_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            let f = rx.recv().unwrap().unwrap();
            assert!(f.payload.is_empty());
            assert!(rx.recv().unwrap().is_none(), "clean EOF after sender drops");
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        tx.send(&Frame::new(9, Bytes::new())).unwrap();
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }

    #[test]
    fn large_frame() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let payload: Vec<u8> = (0..1_000_000u32).map(|i| i as u8).collect();
        let expect = payload.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            let f = rx.recv().unwrap().unwrap();
            assert_eq!(&f.payload[..], &expect[..]);
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        tx.send(&Frame::new(1, Bytes::from(payload))).unwrap();
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }

    #[test]
    fn deadline_budget_survives_the_wire() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            let with = rx.recv().unwrap().unwrap();
            assert_eq!(with.deadline_ms, Some(1500));
            let without = rx.recv().unwrap().unwrap();
            assert_eq!(without.deadline_ms, None, "NO_DEADLINE decodes back to None");
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        tx.send_payload_deadline(Bytes::from_static(b"budgeted"), Some(1500)).unwrap();
        tx.send_payload(Bytes::from_static(b"unbounded")).unwrap();
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }

    #[test]
    fn send_payload_stamps_monotonic_seqs() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (_tx, mut rx) = framed(stream).unwrap();
            for want in 0..3u64 {
                assert_eq!(rx.recv().unwrap().unwrap().seq, want);
            }
            assert!(rx.recv().unwrap().is_none());
        });
        let (mut tx, _rx) = connect(addr).unwrap();
        for _ in 0..3 {
            tx.send_payload(Bytes::from_static(b"x")).unwrap();
        }
        drop(tx);
        drop(_rx);
        server.join().unwrap();
    }

    #[test]
    fn backoff_delays_grow_and_respect_ceiling() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(45),
            jitter: false,
        };
        assert_eq!(p.delay_before(1, 0), Duration::ZERO);
        assert_eq!(p.delay_before(2, 0), Duration::from_millis(10));
        assert_eq!(p.delay_before(3, 0), Duration::from_millis(20));
        assert_eq!(p.delay_before(4, 0), Duration::from_millis(40));
        assert_eq!(p.delay_before(5, 0), Duration::from_millis(45), "ceiling");
        let jittered = RetryPolicy { jitter: true, ..p };
        for attempt in 2..6 {
            let d = jittered.delay_before(attempt, 7);
            let raw = p.delay_before(attempt, 0);
            assert!(d >= raw / 2 && d <= raw, "jitter within [raw/2, raw]: {d:?} vs {raw:?}");
        }
    }

    #[test]
    fn jitter_sequence_is_deterministic_per_seed() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter: true,
        };
        let first: Vec<Duration> = (1..=8).map(|n| p.delay_before(n, 0xFEED)).collect();
        let again: Vec<Duration> = (1..=8).map(|n| p.delay_before(n, 0xFEED)).collect();
        assert_eq!(first, again, "same seed must reproduce the exact sequence");
        assert_eq!(first[0], Duration::ZERO, "attempt 1 never waits");

        let other: Vec<Duration> = (1..=8).map(|n| p.delay_before(n, 0xBEEF)).collect();
        assert_ne!(first, other, "different seeds must decorrelate the sequence");
    }

    #[test]
    fn zero_retry_policy_fails_on_first_refusal() {
        // Bind-then-drop finds a port that is currently refusing
        // connections; no_retry must surface Connect after one attempt.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let config = TcpConfig::new().with_retry(RetryPolicy::no_retry());
        let err = connect_with(addr, &config).err().expect("nothing is listening");
        match err {
            StreamError::Transport { kind, context } => {
                assert_eq!(kind, TransportErrorKind::Connect);
                assert!(context.contains("after 1 attempts"), "names the attempt count: {context}");
            }
            other => panic!("expected Transport/Connect, got {other:?}"),
        }
    }

    #[test]
    fn inflated_length_prefix_rejected_as_transport_before_allocation() {
        // A hostile peer claims a ~4 GiB frame. The receiver must fail
        // with Transport/FrameLimit on the prefix alone — before
        // allocating a payload buffer (the payload is never sent, so a
        // post-allocation guard would hang on the read instead).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut hostile = Vec::new();
            hostile.extend_from_slice(&0u64.to_le_bytes()); // seq
            hostile.extend_from_slice(&crate::link::NO_DEADLINE.to_le_bytes());
            hostile.extend_from_slice(&u32::MAX.to_le_bytes()); // len
            s.write_all(&hostile).unwrap();
            // Hold the socket open: the guard must fire on the prefix,
            // not on a mid-frame EOF.
            std::thread::sleep(Duration::from_millis(200));
        });
        let config = TcpConfig::new().with_timeouts(Duration::from_secs(5), Duration::from_secs(5));
        let (_tx, mut rx) = accept_on(&listener, &config).unwrap();
        let err = rx.recv().err().expect("oversize prefix must be rejected");
        match err {
            StreamError::Transport { kind, context } => {
                assert_eq!(kind, TransportErrorKind::FrameLimit);
                assert!(context.contains("frame ceiling"), "names the ceiling: {context}");
            }
            other => panic!("expected Transport/FrameLimit, got {other:?}"),
        }
        client.join().unwrap();
    }

    #[test]
    fn tightened_ceiling_rejects_frames_the_default_would_accept() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let (mut tx, _rx) = connect(addr).unwrap();
            tx.send(&Frame::new(0, Bytes::from(vec![7u8; 4096]))).unwrap();
            std::thread::sleep(Duration::from_millis(200));
        });
        let config = TcpConfig::new().with_timeouts(Duration::from_secs(5), Duration::from_secs(5));
        let (_tx, mut rx) = accept_on(&listener, &config).unwrap();
        rx.set_max_frame(1024);
        match rx.recv() {
            Err(StreamError::Transport { kind, .. }) => {
                assert_eq!(kind, TransportErrorKind::FrameLimit);
            }
            other => panic!("expected FrameLimit under a 1 KiB ceiling, got {other:?}"),
        }
        client.join().unwrap();
    }

    #[test]
    fn env_max_frame_parses_and_clamps_to_the_handshake_floor() {
        // Parsing, not env mutation (env vars are racy across the
        // parallel test harness): the clamp logic is what matters.
        assert_eq!(parse_max_frame(None), DEFAULT_MAX_FRAME, "unset uses the default");
        assert_eq!(parse_max_frame(Some("junk")), DEFAULT_MAX_FRAME, "garbage uses the default");
        assert_eq!(parse_max_frame(Some("0")), DEFAULT_MAX_FRAME, "zero uses the default");
        assert_eq!(
            parse_max_frame(Some("64")),
            MIN_MAX_FRAME,
            "tiny env ceilings clamp up so handshakes always fit"
        );
        assert_eq!(parse_max_frame(Some("1048576")), 1 << 20);
        let config = TcpConfig::new().with_max_frame(64);
        assert_eq!(config.max_frame, 64, "explicit config ceilings are not clamped");
    }

    #[test]
    fn trait_objects_carry_frames() {
        // The dyn-dispatched path must behave exactly like the concrete
        // one — the networked session holds `Box<dyn Frame{Sender,Receiver}>`.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let (tx, rx) = framed(stream).unwrap();
            let mut tx: Box<dyn FrameSender> = Box::new(tx);
            let mut rx: Box<dyn FrameReceiver> = Box::new(rx);
            while let Some(frame) = rx.recv().unwrap() {
                tx.send(&Frame { seq: frame.seq + 1, deadline_ms: frame.deadline_ms, payload: frame.payload }).unwrap();
            }
        });
        let (tx, rx) = connect(addr).unwrap();
        let mut tx: Box<dyn FrameSender> = Box::new(tx);
        let mut rx: Box<dyn FrameReceiver> = Box::new(rx);
        let seq = tx.send_payload(Bytes::from_static(b"dyn")).unwrap();
        let echoed = rx.recv().unwrap().unwrap();
        assert_eq!(echoed.seq, seq + 1);
        assert_eq!(&echoed.payload[..], b"dyn");
        drop(tx);
        drop(rx);
        server.join().unwrap();
    }
}
