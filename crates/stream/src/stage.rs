//! Typed stage abstraction: every pipeline stage — protocol stages,
//! merged encapsulated stages, test fixtures — implements [`Stage`],
//! a typed `In -> Out` transform executed on the stage's own thread.
//!
//! The [`StageContext`] handed to each invocation carries the stage's
//! [`WorkerPool`] (the `y_i` threads assigned by the load-balanced
//! allocation, Sec. IV-C) and records per-stage runtime metrics that the
//! pipeline aggregates into [`StageReport`]s.

use crate::pool::WorkerPool;
use crate::StreamError;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A typed pipeline stage.
///
/// Co-located stages exchange owned `In`/`Out` values directly (no
/// serialization); only hops explicitly marked as wire boundaries with
/// [`PipelineBuilder::link`](crate::pipeline::PipelineBuilder::link) pay
/// the encode/decode cost.
pub trait Stage: Send + Sync {
    /// Input message type.
    type In: Send + 'static;
    /// Output message type.
    type Out: Send + 'static;

    /// Transforms one message. A returned error stops the pipeline
    /// cleanly: upstream stages drain and the error surfaces from
    /// `process_stream`, naming the stage.
    fn process(&self, msg: Self::In, cx: &mut StageContext) -> Result<Self::Out, StreamError>;
}

/// Stages behind `Arc` are stages too — lets the session share one
/// protocol-stage instance between the pipeline and profiling code.
impl<S: Stage + ?Sized> Stage for Arc<S> {
    type In = S::In;
    type Out = S::Out;

    fn process(&self, msg: Self::In, cx: &mut StageContext) -> Result<Self::Out, StreamError> {
        (**self).process(msg, cx)
    }
}

/// Per-invocation context: the stage's worker pool plus a metrics sink.
pub struct StageContext<'a> {
    pool: &'a WorkerPool,
    metrics: &'a StageMetrics,
}

impl<'a> StageContext<'a> {
    /// Builds a context over a pool and metrics sink. Pipelines construct
    /// this per stage thread; tests and profilers may build their own.
    pub fn new(pool: &'a WorkerPool, metrics: &'a StageMetrics) -> Self {
        StageContext { pool, metrics }
    }

    /// The stage's worker pool (`y_i` threads for tensor parallelism).
    pub fn pool(&self) -> &WorkerPool {
        self.pool
    }

    /// Records bytes the stage serialized internally (e.g. tensor
    /// partitions dispatched to workers, Sec. IV-D). Wire-hop bytes are
    /// recorded by the pipeline itself; this is for intra-stage traffic.
    pub fn record_serialized_bytes(&mut self, n: u64) {
        self.metrics.bytes_serialized.fetch_add(n, Ordering::Relaxed);
    }
}

/// Live per-stage counters, updated by the pipeline's stage threads and
/// via [`StageContext::record_serialized_bytes`].
#[derive(Debug)]
pub struct StageMetrics {
    /// Messages received by the stage.
    pub items_in: AtomicU64,
    /// Messages successfully emitted downstream.
    pub items_out: AtomicU64,
    /// Bytes serialized on behalf of this stage: wire-hop encodes of its
    /// output plus intra-stage dispatch bytes recorded by the stage.
    pub bytes_serialized: AtomicU64,
    /// Nanoseconds spent in decode + `process` + encode.
    pub compute_ns: AtomicU64,
    /// Nanoseconds messages waited in the stage's input queue.
    pub queue_wait_ns: AtomicU64,
    /// Number of failed invocations.
    pub errors: AtomicU64,
    /// Items shed because their end-to-end deadline had already expired
    /// when they reached this stage.
    pub deadline_expired: AtomicU64,
    /// Items dropped by the quarantine boundary after panicking inside
    /// this stage.
    pub quarantined: AtomicU64,
    /// High-water mark of the stage's input queue depth.
    pub max_queue_depth: AtomicU64,
    /// Heartbeat: nanoseconds since `epoch` at the stage's last progress
    /// (item completed or shed). The watchdog compares it against the
    /// live clock to diagnose a stalled stage.
    last_progress_ns: AtomicU64,
    /// Monotonic anchor for the heartbeat.
    epoch: Instant,
}

impl Default for StageMetrics {
    fn default() -> Self {
        StageMetrics {
            items_in: AtomicU64::new(0),
            items_out: AtomicU64::new(0),
            bytes_serialized: AtomicU64::new(0),
            compute_ns: AtomicU64::new(0),
            queue_wait_ns: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            deadline_expired: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            last_progress_ns: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }
}

impl StageMetrics {
    /// Records that the stage just made progress (completed, shed, or
    /// quarantined an item) — resets the watchdog's stall clock.
    pub fn touch(&self) {
        let ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.last_progress_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Time since the stage last made progress (since metrics creation if
    /// it never has) — the watchdog's stall criterion alongside a
    /// non-empty input queue.
    pub fn heartbeat_age(&self) -> Duration {
        self.epoch
            .elapsed()
            .saturating_sub(Duration::from_nanos(self.last_progress_ns.load(Ordering::Relaxed)))
    }

    /// Records an observed input-queue depth, keeping the high-water mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
    }

    /// Snapshots the counters into a report.
    pub fn report(&self, name: impl Into<String>, threads: usize) -> StageReport {
        StageReport {
            name: name.into(),
            threads,
            items_in: self.items_in.load(Ordering::Relaxed),
            items_out: self.items_out.load(Ordering::Relaxed),
            bytes_serialized: self.bytes_serialized.load(Ordering::Relaxed),
            compute: Duration::from_nanos(self.compute_ns.load(Ordering::Relaxed)),
            queue_wait: Duration::from_nanos(self.queue_wait_ns.load(Ordering::Relaxed)),
            errors: self.errors.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
        }
    }
}

/// Aggregated metrics of one stage over one pipeline run.
#[derive(Clone, Debug)]
pub struct StageReport {
    /// Stage name as given to the builder.
    pub name: String,
    /// Worker threads the stage ran with.
    pub threads: usize,
    /// Messages received.
    pub items_in: u64,
    /// Messages emitted downstream.
    pub items_out: u64,
    /// Bytes serialized (wire-hop output encodes + intra-stage dispatch).
    pub bytes_serialized: u64,
    /// Time spent in decode + `process` + encode.
    pub compute: Duration,
    /// Time messages spent queued before this stage.
    pub queue_wait: Duration,
    /// Failed invocations (0 or 1 — the pipeline stops on first error).
    pub errors: u64,
    /// Items shed at this stage because their deadline had expired.
    pub deadline_expired: u64,
    /// Items dropped by the quarantine boundary after panicking here.
    pub quarantined: u64,
    /// High-water mark of the stage's input queue depth.
    pub max_queue_depth: u64,
}

/// A [`Stage`] built from a closure — the quickest way to drop ad-hoc
/// logic (tests, adapters, format shims) into a typed pipeline.
pub struct FnStage<In, Out, F> {
    f: F,
    _marker: PhantomData<fn(In) -> Out>,
}

/// Wraps a closure as a [`Stage`].
pub fn stage_fn<In, Out, F>(f: F) -> FnStage<In, Out, F>
where
    In: Send + 'static,
    Out: Send + 'static,
    F: Fn(In, &mut StageContext) -> Result<Out, StreamError> + Send + Sync,
{
    FnStage { f, _marker: PhantomData }
}

impl<In, Out, F> Stage for FnStage<In, Out, F>
where
    In: Send + 'static,
    Out: Send + 'static,
    F: Fn(In, &mut StageContext) -> Result<Out, StreamError> + Send + Sync,
{
    type In = In;
    type Out = Out;

    fn process(&self, msg: In, cx: &mut StageContext) -> Result<Out, StreamError> {
        (self.f)(msg, cx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_stage_runs_with_context() {
        let pool = WorkerPool::new(2);
        let metrics = StageMetrics::default();
        let mut cx = StageContext::new(&pool, &metrics);
        let s = stage_fn(|v: u64, cx: &mut StageContext| {
            cx.record_serialized_bytes(8);
            Ok(v * 2)
        });
        assert_eq!(s.process(21, &mut cx).unwrap(), 42);
        assert_eq!(metrics.bytes_serialized.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn arc_stage_delegates() {
        let pool = WorkerPool::new(1);
        let metrics = StageMetrics::default();
        let mut cx = StageContext::new(&pool, &metrics);
        let s = Arc::new(stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)));
        assert_eq!(s.process(1, &mut cx).unwrap(), 2);
    }

    #[test]
    fn heartbeat_age_resets_on_touch() {
        let metrics = StageMetrics::default();
        std::thread::sleep(Duration::from_millis(15));
        assert!(metrics.heartbeat_age() >= Duration::from_millis(10), "ages from creation");
        metrics.touch();
        assert!(metrics.heartbeat_age() < Duration::from_millis(10), "touch resets the clock");
    }

    #[test]
    fn queue_depth_high_water_mark_is_sticky() {
        let metrics = StageMetrics::default();
        metrics.observe_queue_depth(3);
        metrics.observe_queue_depth(7);
        metrics.observe_queue_depth(2);
        assert_eq!(metrics.report("s", 1).max_queue_depth, 7);
    }

    #[test]
    fn report_snapshots_counters() {
        let metrics = StageMetrics::default();
        metrics.items_in.store(5, Ordering::Relaxed);
        metrics.compute_ns.store(1_500, Ordering::Relaxed);
        let r = metrics.report("s0", 3);
        assert_eq!(r.name, "s0");
        assert_eq!(r.threads, 3);
        assert_eq!(r.items_in, 5);
        assert_eq!(r.compute, Duration::from_nanos(1_500));
    }
}
