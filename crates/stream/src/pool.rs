//! Intra-stage worker pools: the `y_i` threads PP-Stream's resource
//! allocation assigns to each stage.

use crossbeam::channel::{unbounded, Sender};
use std::any::Any;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of persistent worker threads.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl WorkerPool {
    /// Spawns `size` worker threads (at least one).
    pub fn new(size: usize) -> Self {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("pp-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers, size }
    }

    /// A pool with no worker threads: `map_ranges` runs `f(0..count)`
    /// directly on the calling thread. For code that is *already* on a
    /// pool worker (e.g. per-item execution inside a cross-session
    /// batched dispatch) — a nested `map_ranges` onto the same pool
    /// would deadlock once every worker blocks waiting on a chunk only
    /// another worker could run.
    pub fn inline() -> Self {
        WorkerPool { tx: None, workers: Vec::new(), size: 1 }
    }

    /// Number of worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `f` over `count` items split into one contiguous range per
    /// worker (PP-Stream's output-tensor partitioning: each thread
    /// produces `1/yᵢ` of the output elements). Results are concatenated
    /// in index order. Blocks until all chunks complete.
    ///
    /// A panic inside `f` does not kill the worker thread or hang the
    /// caller: the panic is caught in the job, the remaining chunks
    /// still run, and `map_ranges` re-raises the **first chunk's
    /// original panic payload** on the calling thread once every chunk
    /// has finished — so `catch_unwind` above the pool (e.g. the
    /// poison-item quarantine boundary) sees the real message, not a
    /// generic one. The pool stays usable afterwards.
    pub fn map_ranges<T, F>(&self, count: usize, f: F) -> Vec<T>
    where
        T: Send + 'static,
        F: Fn(Range<usize>) -> Vec<T> + Send + Sync + 'static,
    {
        if count == 0 {
            return Vec::new();
        }
        if self.tx.is_none() {
            // Inline pool: no workers to dispatch to.
            return f(0..count);
        }
        let parts = self.size.min(count);
        let f = Arc::new(f);
        let results: Arc<Vec<parking_lot::Mutex<Option<Vec<T>>>>> =
            Arc::new((0..parts).map(|_| parking_lot::Mutex::new(None)).collect());
        let remaining = Arc::new(AtomicUsize::new(parts));
        let panicked: Arc<parking_lot::Mutex<Option<Box<dyn Any + Send>>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let done = Arc::new((parking_lot::Mutex::new(false), parking_lot::Condvar::new()));

        let chunk = count.div_ceil(parts);
        for p in 0..parts {
            let start = p * chunk;
            let end = ((p + 1) * chunk).min(count);
            let f = Arc::clone(&f);
            let results = Arc::clone(&results);
            let remaining = Arc::clone(&remaining);
            let panicked = Arc::clone(&panicked);
            let done = Arc::clone(&done);
            let job: Job = Box::new(move || {
                // Contain a panicking chunk so the worker survives and
                // the caller is always woken; the first panic payload is
                // kept for re-raising on the calling thread.
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(start..end))) {
                    Ok(out) => *results[p].lock() = Some(out),
                    Err(payload) => {
                        panicked.lock().get_or_insert(payload);
                    }
                }
                if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                    let (lock, cvar) = &*done;
                    *lock.lock() = true;
                    cvar.notify_all();
                }
            });
            self.tx.as_ref().expect("pool alive").send(job).expect("workers alive");
        }

        let (lock, cvar) = &*done;
        let mut finished = lock.lock();
        while !*finished {
            cvar.wait(&mut finished);
        }
        drop(finished);

        if let Some(payload) = panicked.lock().take() {
            std::panic::resume_unwind(payload);
        }

        let mut out = Vec::with_capacity(count);
        for cell in results.iter() {
            out.extend(cell.lock().take().expect("worker stored result"));
        }
        out
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the job channel so workers exit, then join them.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_ranges_preserves_order() {
        let pool = WorkerPool::new(4);
        let out = pool.map_ranges(100, |r| r.map(|i| i * 2).collect());
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_worker_pool() {
        let pool = WorkerPool::new(1);
        let out = pool.map_ranges(10, |r| r.collect());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn zero_items() {
        let pool = WorkerPool::new(3);
        let out: Vec<usize> = pool.map_ranges(0, |r| r.collect());
        assert!(out.is_empty());
    }

    #[test]
    fn more_workers_than_items() {
        let pool = WorkerPool::new(8);
        let out = pool.map_ranges(3, |r| r.collect::<Vec<usize>>());
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn pool_is_reusable() {
        let pool = WorkerPool::new(2);
        for round in 0..5u64 {
            let out = pool.map_ranges(20, move |r| r.map(|i| i as u64 + round).collect());
            assert_eq!(out[0], round);
            assert_eq!(out.len(), 20);
        }
    }

    #[test]
    fn parallel_speedup_smoke() {
        // Not a benchmark — just checks that work actually runs on
        // multiple threads by observing distinct thread ids.
        let pool = WorkerPool::new(4);
        let ids = pool.map_ranges(4, |r| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            r.map(|_| format!("{:?}", std::thread::current().id())).collect()
        });
        let distinct: std::collections::HashSet<_> = ids.iter().collect();
        assert!(distinct.len() >= 2, "expected multiple worker threads");
    }

    #[test]
    fn size_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.size(), 1);
    }

    #[test]
    fn inline_pool_runs_on_the_calling_thread() {
        let pool = WorkerPool::inline();
        assert_eq!(pool.size(), 1);
        let caller = format!("{:?}", std::thread::current().id());
        let out = pool.map_ranges(5, move |r| {
            let here = format!("{:?}", std::thread::current().id());
            r.map(|i| (i, here == caller)).collect()
        });
        assert_eq!(out.len(), 5);
        assert!(out.iter().all(|&(_, same)| same), "inline work must not leave the caller");
        // Nesting inline dispatches is safe — nothing blocks on a queue.
        let nested = pool.map_ranges(2, |r| {
            r.map(|i| WorkerPool::inline().map_ranges(3, move |q| q.map(|j| i * 10 + j).collect()))
                .collect::<Vec<Vec<usize>>>()
        });
        assert_eq!(nested, vec![vec![0, 1, 2], vec![10, 11, 12]]);
    }

    #[test]
    fn panicking_job_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_ranges(8, |r| {
                r.map(|i| if i == 5 { panic!("bad chunk") } else { i }).collect::<Vec<_>>()
            })
        }));
        assert!(caught.is_err(), "panic in a job must reach the caller");
        // Workers caught the panic internally and keep serving jobs.
        let out = pool.map_ranges(10, |r| r.collect::<Vec<usize>>());
        assert_eq!(out, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn panic_payload_survives_propagation() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_ranges(8, |r| {
                r.map(|i| if i == 5 { panic!("poison at index {i}") } else { i })
                    .collect::<Vec<_>>()
            })
        }));
        let payload = caught.expect_err("panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("payload is a string");
        assert_eq!(msg, "poison at index 5", "original payload, not a generic re-panic");
    }

    #[test]
    fn panic_in_every_chunk_still_wakes_caller() {
        let pool = WorkerPool::new(4);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_ranges(4, |_| -> Vec<usize> { panic!("all chunks fail") })
        }));
        assert!(caught.is_err());
        assert_eq!(pool.map_ranges(3, |r| r.collect::<Vec<_>>()), vec![0, 1, 2]);
    }

    #[test]
    fn concurrent_submissions_share_the_pool() {
        // Several threads issue map_ranges on one pool at once, mixing
        // empty (count == 0) and count < size submissions with larger
        // ones; every caller must get its own complete, ordered result.
        let pool = Arc::new(WorkerPool::new(3));
        std::thread::scope(|scope| {
            for t in 0..8usize {
                let pool = Arc::clone(&pool);
                scope.spawn(move || {
                    for round in 0..20usize {
                        let count = match (t + round) % 3 {
                            0 => 0,
                            1 => 2, // fewer items than workers
                            _ => 64,
                        };
                        let out = pool.map_ranges(count, move |r| {
                            r.map(|i| i * 7 + t).collect::<Vec<_>>()
                        });
                        assert_eq!(out, (0..count).map(|i| i * 7 + t).collect::<Vec<_>>());
                    }
                });
            }
        });
    }
}
