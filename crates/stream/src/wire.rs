//! From-scratch binary wire codec.
//!
//! The dependency policy (DESIGN.md §12) allows `bytes` but no serde
//! binary format crate, so framing is hand-rolled: little-endian
//! fixed-width integers, length-prefixed variable-size fields. Every
//! pipeline hop round-trips frames through this codec so that inter-stage
//! communication pays realistic serialization cost.

use crate::{StreamError, TransportErrorKind};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialize into a wire buffer.
pub trait WireEncode {
    /// Appends the encoded form to `enc`.
    fn encode(&self, enc: &mut Encoder);
}

/// Deserialize from a wire buffer.
pub trait WireDecode: Sized {
    /// Reads one value, consuming bytes from `dec`.
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError>;
}

/// Growable encode buffer.
///
/// A length that does not fit the 32-bit wire prefix *poisons* the
/// encoder instead of panicking mid-encode: the first oversize field is
/// recorded (which field, how many bytes) and surfaced when the frame is
/// finished — as `Transport { kind: Send, .. }` from [`try_finish`], or
/// as a panic from the legacy [`finish`].
///
/// [`try_finish`]: Encoder::try_finish
/// [`finish`]: Encoder::finish
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
    overflow: Option<String>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap), overflow: None }
    }

    /// Finishes, returning the frozen frame.
    ///
    /// # Panics
    /// Panics if any length prefix overflowed u32 (see [`Encoder`]);
    /// fallible callers should prefer [`Encoder::try_finish`].
    pub fn finish(self) -> Bytes {
        match self.try_finish() {
            Ok(frame) => frame,
            Err(e) => panic!("{e}"),
        }
    }

    /// Finishes, returning the frozen frame — or, if any length prefix
    /// overflowed the u32 wire format, a `Transport { kind: Send, .. }`
    /// error naming the field and its byte count.
    pub fn try_finish(self) -> Result<Bytes, StreamError> {
        match self.overflow {
            Some(what) => Err(StreamError::transport(
                TransportErrorKind::Send,
                format!("wire encode: {what}"),
            )),
            None => Ok(self.buf.freeze()),
        }
    }

    /// Writes a u32 length prefix for a field of `len` items, poisoning
    /// the encoder when `len` exceeds `u32::MAX` (`what` names the field
    /// in the eventual error). A poisoned prefix encodes as 0 so the
    /// buffer stays structurally sane; the frame is rejected at
    /// [`Encoder::try_finish`] and never reaches the wire.
    pub fn put_len_prefix(&mut self, len: usize, what: &str) {
        match u32::try_from(len) {
            Ok(v) => self.put_u32(v),
            Err(_) => {
                if self.overflow.is_none() {
                    self.overflow = Some(format!(
                        "{what} length {len} exceeds the u32 length prefix (max {})",
                        u32::MAX
                    ));
                }
                self.put_u32(0);
            }
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }
    pub fn put_i128(&mut self, v: i128) {
        self.buf.put_i128_le(v);
    }
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed byte slice. A slice longer than `u32::MAX`
    /// (truncating its prefix would silently corrupt the frame) poisons
    /// the encoder — see [`Encoder`].
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_len_prefix(v.len(), "byte field");
        if self.overflow.is_none() {
            self.buf.put_slice(v);
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw bytes with no length prefix — for payloads that occupy the
    /// rest of the frame (e.g. an already-framed [`Bytes`] value).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }
}

/// Consuming decode cursor over a frame.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps a frame for decoding.
    pub fn new(frame: Bytes) -> Self {
        Decoder { buf: frame }
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), StreamError> {
        if self.buf.remaining() < n {
            return Err(StreamError::Decode(format!(
                "need {n} bytes, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    pub fn get_u8(&mut self) -> Result<u8, StreamError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    pub fn get_u32(&mut self) -> Result<u32, StreamError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }
    pub fn get_u64(&mut self) -> Result<u64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }
    pub fn get_i64(&mut self) -> Result<i64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }
    pub fn get_i128(&mut self) -> Result<i128, StreamError> {
        self.need(16)?;
        Ok(self.buf.get_i128_le())
    }
    pub fn get_f64(&mut self) -> Result<f64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Length-prefixed byte vector.
    ///
    /// The `need(len)` check runs before the allocation, so a hostile
    /// length prefix can never size a buffer beyond the bytes actually
    /// present in the frame — which the transport's frame ceiling bounds
    /// in turn. Keep that ordering when touching this function.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, StreamError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let mut v = vec![0u8; len];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StreamError> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|e| StreamError::Decode(format!("invalid utf8: {e}")))
    }

    /// Takes all remaining bytes, leaving the decoder empty — the
    /// counterpart of [`Encoder::put_raw`].
    pub fn take_remaining(&mut self) -> Bytes {
        std::mem::replace(&mut self.buf, Bytes::new())
    }
}

// Blanket implementations for common shapes.

impl WireEncode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl WireDecode for u64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_u64()
    }
}

impl WireEncode for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
}

impl WireDecode for i64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_i64()
    }
}

impl WireEncode for i128 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i128(*self);
    }
}

impl WireDecode for i128 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_i128()
    }
}

impl WireEncode for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
}

impl WireDecode for f64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_f64()
    }
}

impl WireEncode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl WireDecode for Vec<u8> {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_bytes()
    }
}

impl<T: WireEncode> WireEncode for Vec<T>
where
    T: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        enc.put_len_prefix(self.len(), "vec field");
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        let len = dec.get_u32()? as usize;
        // Guard against hostile lengths: cap the preallocation.
        let mut v = Vec::with_capacity(len.min(65_536));
        for _ in 0..len {
            v.push(T::decode(dec)?);
        }
        Ok(v)
    }
}

impl WireEncode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl WireDecode for String {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_str()
    }
}

/// Raw passthrough: a [`Bytes`] value is written verbatim (no length
/// prefix) and decoded by taking the rest of the frame. This makes
/// `to_frame`/`from_frame` the identity on `Bytes`, so already-framed
/// payloads cross wire hops without re-framing overhead. A `Bytes`
/// field must therefore come last in any composite encoding.
impl WireEncode for Bytes {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(self);
    }
}

impl WireDecode for Bytes {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        Ok(dec.take_remaining())
    }
}

/// Convenience: encode a value into a standalone frame.
///
/// # Panics
/// Panics if any length prefix overflows u32 — the request paths of the
/// networked deployment use [`try_to_frame`] instead, which surfaces the
/// overflow as a `Transport { kind: Send, .. }` error.
pub fn to_frame<T: WireEncode>(value: &T) -> Bytes {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.finish()
}

/// As [`to_frame`], but an oversize length prefix returns
/// `Transport { kind: Send, .. }` (naming the field and byte count)
/// instead of panicking.
pub fn try_to_frame<T: WireEncode>(value: &T) -> Result<Bytes, StreamError> {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.try_finish()
}

/// Convenience: decode a full frame into a value.
pub fn from_frame<T: WireDecode>(frame: Bytes) -> Result<T, StreamError> {
    let mut dec = Decoder::new(frame);
    T::decode(&mut dec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_i64(-42);
        enc.put_i128(-(1i128 << 100));
        enc.put_f64(1.25);
        enc.put_str("hello");
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_i128().unwrap(), -(1i128 << 100));
        assert_eq!(dec.get_f64().unwrap(), 1.25);
        assert_eq!(dec.get_str().unwrap(), "hello");
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<i64> = vec![-5, 0, 7, i64::MAX];
        let frame = to_frame(&v);
        let back: Vec<i64> = from_frame(frame).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_vec_roundtrip() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![255; 100]];
        let back: Vec<Vec<u8>> = from_frame(to_frame(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_frame_is_error() {
        let frame = to_frame(&vec![1u64, 2, 3]);
        let truncated = frame.slice(..frame.len() - 1);
        let res: Result<Vec<u64>, _> = from_frame(truncated);
        assert!(res.is_err());
    }

    #[test]
    fn hostile_length_is_error_not_oom() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX); // claims 4 billion elements
        let res: Result<Vec<u64>, _> = from_frame(enc.finish());
        assert!(res.is_err());
    }

    #[test]
    fn hostile_bytes_prefix_fails_before_allocation() {
        // `get_bytes` must check the claimed length against the bytes
        // actually present before sizing the buffer: a 4 GiB claim over
        // an 8-byte frame is a Decode error, not a 4 GiB allocation.
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX);
        enc.put_u32(0xAAAA_AAAA); // only 4 real payload bytes follow
        let mut dec = Decoder::new(enc.finish());
        let err = dec.get_bytes().expect_err("hostile prefix must fail");
        assert!(matches!(err, StreamError::Decode(_)), "got {err:?}");

        // Same property for nested vec-of-bytes: the inner prefix lies.
        let mut enc = Encoder::new();
        enc.put_u32(1); // one element
        enc.put_u32(u32::MAX - 7); // whose byte length is hostile
        let res: Result<Vec<Vec<u8>>, _> = from_frame(enc.finish());
        assert!(res.is_err());
    }

    #[test]
    fn len_prefix_in_range_does_not_poison() {
        let mut enc = Encoder::new();
        enc.put_len_prefix(0, "empty");
        enc.put_len_prefix(u32::MAX as usize, "huge but legal");
        let frame = enc.try_finish().expect("in-range lengths never poison");
        let mut dec = Decoder::new(frame);
        assert_eq!(dec.get_u32().unwrap(), 0);
        assert_eq!(dec.get_u32().unwrap(), u32::MAX);
    }

    #[test]
    fn oversize_len_surfaces_as_transport_send_error() {
        // Regression: a ≥4 GiB field used to panic mid-encode (and before
        // that, truncate silently). A real 4 GiB buffer is not
        // allocatable in CI; poisoning via the length alone exercises the
        // same path `put_bytes` takes.
        let oversize = u32::MAX as usize + 1;
        let mut enc = Encoder::new();
        enc.put_u64(7); // fields before the poison are irrelevant
        enc.put_len_prefix(oversize, "ciphertext field");
        let err = enc.try_finish().expect_err("oversize length must poison the frame");
        match &err {
            StreamError::Transport { kind, context } => {
                assert_eq!(*kind, TransportErrorKind::Send);
                assert!(context.contains("ciphertext field"), "names the field: {context}");
                assert!(context.contains(&oversize.to_string()), "names the size: {context}");
            }
            other => panic!("expected Transport/Send, got {other:?}"),
        }
        // The protocol stage wrapper composes with the poison error.
        let staged = err.at_stage("linear-0 request");
        assert!(staged.to_string().contains("linear-0 request"));
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 length prefix")]
    fn legacy_finish_still_panics_on_poison() {
        let mut enc = Encoder::new();
        enc.put_len_prefix(u32::MAX as usize + 1, "field");
        let _ = enc.finish();
    }

    #[test]
    fn empty_string_and_bytes() {
        let mut enc = Encoder::new();
        enc.put_str("");
        enc.put_bytes(&[]);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_str().unwrap(), "");
        assert!(dec.get_bytes().unwrap().is_empty());
    }
}
