//! From-scratch binary wire codec.
//!
//! The dependency policy (DESIGN.md §5) allows `bytes` but no serde
//! binary format crate, so framing is hand-rolled: little-endian
//! fixed-width integers, length-prefixed variable-size fields. Every
//! pipeline hop round-trips frames through this codec so that inter-stage
//! communication pays realistic serialization cost.

use crate::StreamError;
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Serialize into a wire buffer.
pub trait WireEncode {
    /// Appends the encoded form to `enc`.
    fn encode(&self, enc: &mut Encoder);
}

/// Deserialize from a wire buffer.
pub trait WireDecode: Sized {
    /// Reads one value, consuming bytes from `dec`.
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError>;
}

/// Growable encode buffer.
#[derive(Default)]
pub struct Encoder {
    buf: BytesMut,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates with a capacity hint.
    pub fn with_capacity(cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap) }
    }

    /// Finishes, returning the frozen frame.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }
    pub fn put_i128(&mut self, v: i128) {
        self.buf.put_i128_le(v);
    }
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Length-prefixed byte slice.
    ///
    /// # Panics
    /// Panics if `v.len()` exceeds `u32::MAX` — the wire format's length
    /// prefix is 32-bit, and truncating would silently corrupt the frame.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(len_to_u32(v.len()));
        self.buf.put_slice(v);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Raw bytes with no length prefix — for payloads that occupy the
    /// rest of the frame (e.g. an already-framed [`Bytes`] value).
    pub fn put_raw(&mut self, v: &[u8]) {
        self.buf.put_slice(v);
    }
}

/// Converts a collection length to the 32-bit wire length prefix.
/// Lengths ≥ 4 GiB used to be truncated by a bare `as u32` cast,
/// corrupting the frame silently; now they abort loudly.
fn len_to_u32(len: usize) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| {
        panic!("wire encode: length {len} exceeds the u32 length prefix (max {})", u32::MAX)
    })
}

/// Consuming decode cursor over a frame.
pub struct Decoder {
    buf: Bytes,
}

impl Decoder {
    /// Wraps a frame for decoding.
    pub fn new(frame: Bytes) -> Self {
        Decoder { buf: frame }
    }

    /// Remaining bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), StreamError> {
        if self.buf.remaining() < n {
            return Err(StreamError::Decode(format!(
                "need {n} bytes, have {}",
                self.buf.remaining()
            )));
        }
        Ok(())
    }

    pub fn get_u8(&mut self) -> Result<u8, StreamError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }
    pub fn get_u32(&mut self) -> Result<u32, StreamError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }
    pub fn get_u64(&mut self) -> Result<u64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }
    pub fn get_i64(&mut self) -> Result<i64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }
    pub fn get_i128(&mut self) -> Result<i128, StreamError> {
        self.need(16)?;
        Ok(self.buf.get_i128_le())
    }
    pub fn get_f64(&mut self) -> Result<f64, StreamError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Length-prefixed byte vector.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>, StreamError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let mut v = vec![0u8; len];
        self.buf.copy_to_slice(&mut v);
        Ok(v)
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, StreamError> {
        String::from_utf8(self.get_bytes()?)
            .map_err(|e| StreamError::Decode(format!("invalid utf8: {e}")))
    }

    /// Takes all remaining bytes, leaving the decoder empty — the
    /// counterpart of [`Encoder::put_raw`].
    pub fn take_remaining(&mut self) -> Bytes {
        std::mem::replace(&mut self.buf, Bytes::new())
    }
}

// Blanket implementations for common shapes.

impl WireEncode for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }
}

impl WireDecode for u64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_u64()
    }
}

impl WireEncode for i64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i64(*self);
    }
}

impl WireDecode for i64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_i64()
    }
}

impl WireEncode for i128 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_i128(*self);
    }
}

impl WireDecode for i128 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_i128()
    }
}

impl WireEncode for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }
}

impl WireDecode for f64 {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_f64()
    }
}

impl WireEncode for Vec<u8> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bytes(self);
    }
}

impl WireDecode for Vec<u8> {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_bytes()
    }
}

impl<T: WireEncode> WireEncode for Vec<T>
where
    T: WireEncode,
{
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(len_to_u32(self.len()));
        for item in self {
            item.encode(enc);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        let len = dec.get_u32()? as usize;
        // Guard against hostile lengths: cap the preallocation.
        let mut v = Vec::with_capacity(len.min(65_536));
        for _ in 0..len {
            v.push(T::decode(dec)?);
        }
        Ok(v)
    }
}

impl WireEncode for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
}

impl WireDecode for String {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        dec.get_str()
    }
}

/// Raw passthrough: a [`Bytes`] value is written verbatim (no length
/// prefix) and decoded by taking the rest of the frame. This makes
/// `to_frame`/`from_frame` the identity on `Bytes`, so already-framed
/// payloads cross wire hops without re-framing overhead. A `Bytes`
/// field must therefore come last in any composite encoding.
impl WireEncode for Bytes {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_raw(self);
    }
}

impl WireDecode for Bytes {
    fn decode(dec: &mut Decoder) -> Result<Self, StreamError> {
        Ok(dec.take_remaining())
    }
}

/// Convenience: encode a value into a standalone frame.
pub fn to_frame<T: WireEncode>(value: &T) -> Bytes {
    let mut enc = Encoder::new();
    value.encode(&mut enc);
    enc.finish()
}

/// Convenience: decode a full frame into a value.
pub fn from_frame<T: WireDecode>(frame: Bytes) -> Result<T, StreamError> {
    let mut dec = Decoder::new(frame);
    T::decode(&mut dec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        let mut enc = Encoder::new();
        enc.put_u8(7);
        enc.put_u32(0xDEAD_BEEF);
        enc.put_u64(u64::MAX);
        enc.put_i64(-42);
        enc.put_i128(-(1i128 << 100));
        enc.put_f64(1.25);
        enc.put_str("hello");
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_u8().unwrap(), 7);
        assert_eq!(dec.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.get_u64().unwrap(), u64::MAX);
        assert_eq!(dec.get_i64().unwrap(), -42);
        assert_eq!(dec.get_i128().unwrap(), -(1i128 << 100));
        assert_eq!(dec.get_f64().unwrap(), 1.25);
        assert_eq!(dec.get_str().unwrap(), "hello");
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn vec_roundtrip() {
        let v: Vec<i64> = vec![-5, 0, 7, i64::MAX];
        let frame = to_frame(&v);
        let back: Vec<i64> = from_frame(frame).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn nested_vec_roundtrip() {
        let v: Vec<Vec<u8>> = vec![vec![1, 2], vec![], vec![255; 100]];
        let back: Vec<Vec<u8>> = from_frame(to_frame(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn truncated_frame_is_error() {
        let frame = to_frame(&vec![1u64, 2, 3]);
        let truncated = frame.slice(..frame.len() - 1);
        let res: Result<Vec<u64>, _> = from_frame(truncated);
        assert!(res.is_err());
    }

    #[test]
    fn hostile_length_is_error_not_oom() {
        let mut enc = Encoder::new();
        enc.put_u32(u32::MAX); // claims 4 billion elements
        let res: Result<Vec<u64>, _> = from_frame(enc.finish());
        assert!(res.is_err());
    }

    #[test]
    fn len_fits_u32_passes_through() {
        assert_eq!(len_to_u32(0), 0);
        assert_eq!(len_to_u32(u32::MAX as usize), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "exceeds the u32 length prefix")]
    fn oversize_len_panics_instead_of_truncating() {
        // A real ≥4 GiB buffer is not allocatable in CI; exercising the
        // guard with the mocked length is equivalent.
        len_to_u32(u32::MAX as usize + 1);
    }

    #[test]
    fn empty_string_and_bytes() {
        let mut enc = Encoder::new();
        enc.put_str("");
        enc.put_bytes(&[]);
        let mut dec = Decoder::new(enc.finish());
        assert_eq!(dec.get_str().unwrap(), "");
        assert!(dec.get_bytes().unwrap().is_empty());
    }
}
