//! Pipelined stage execution (paper Fig. 4): each stage runs on its own
//! thread with a private worker pool; inference requests stream through
//! the chain so consecutive requests overlap across stages.
//!
//! Stages are typed [`Stage`] implementations chained by a typestate
//! [`PipelineBuilder`]: `.stage()` appends a stage whose input type must
//! equal the chain's current message type, `.link()` marks the hop after
//! the latest stage as a **wire boundary** (the message is serialized on
//! the sender thread, its bytes counted, and deserialized on the
//! receiver thread — the cost a real deployment pays between servers).
//! Hops *not* marked with `.link()` hand the owned message over directly,
//! so co-located stages skip serialization entirely.
//!
//! The legacy closure-based [`Pipeline`]/[`StageSpec`] API is kept as a
//! thin shim over the typed engine with every hop a wire boundary,
//! preserving its original byte-accounting semantics.

use crate::pool::WorkerPool;
use crate::stage::{Stage, StageContext, StageMetrics, StageReport};
use crate::wire::{from_frame, to_frame, WireDecode, WireEncode};
use crate::StreamError;
use bytes::Bytes;
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Type-erased message travelling an owned (co-located) hop.
pub type BoxMsg = Box<dyn Any + Send>;

type MsgRunFn = Box<dyn Fn(BoxMsg, &mut StageContext) -> Result<BoxMsg, StreamError> + Send + Sync>;
type MsgEncodeFn = Box<dyn Fn(BoxMsg) -> Bytes + Send + Sync>;
type MsgDecodeFn = Box<dyn Fn(Bytes) -> Result<BoxMsg, StreamError> + Send + Sync>;

/// What travels a hop: an owned message (co-located stages) or a
/// serialized frame (wire boundary).
enum Payload {
    Owned(BoxMsg),
    Wire(Bytes),
}

/// One in-flight message plus the instant it was enqueued, from which the
/// receiving stage derives queue-wait time.
struct Envelope {
    seq: u64,
    sent_at: Instant,
    payload: Payload,
}

/// A type-erased stage plus its hop codecs, as assembled by the builder.
struct StageSlot {
    name: String,
    threads: usize,
    /// Present iff the hop *into* this stage is a wire boundary.
    in_decode: Option<MsgDecodeFn>,
    run: MsgRunFn,
    /// Present iff the hop *out of* this stage is a wire boundary.
    out_encode: Option<MsgEncodeFn>,
}

/// Typestate builder for a [`TypedPipeline`]: `In` is the pipeline input
/// type, `Cur` the message type at the current end of the chain.
pub struct PipelineBuilder<In, Cur> {
    slots: Vec<StageSlot>,
    /// Present iff `.link()` was called before the first stage: the
    /// source serializes inputs before injecting them.
    source_encode: Option<MsgEncodeFn>,
    /// Decode half of the most recent `.link()`, consumed by the next
    /// `.stage()` (or by `.build()` as the sink decoder).
    pending_decode: Option<MsgDecodeFn>,
    capacity: usize,
    _marker: PhantomData<fn(In) -> Cur>,
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts an empty chain whose first stage consumes `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            slots: Vec::new(),
            source_encode: None,
            pending_decode: None,
            capacity: 4,
            _marker: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Appends a stage. Its input type must be the chain's current
    /// message type; the chain advances to the stage's output type.
    pub fn stage<S>(
        mut self,
        name: impl Into<String>,
        threads: usize,
        stage: S,
    ) -> PipelineBuilder<In, S::Out>
    where
        S: Stage<In = Cur> + 'static,
    {
        let run: MsgRunFn = Box::new(move |msg, cx| {
            let input = msg
                .downcast::<Cur>()
                .expect("builder typestate guarantees the hop message type");
            Ok(Box::new(stage.process(*input, cx)?) as BoxMsg)
        });
        self.slots.push(StageSlot {
            name: name.into(),
            threads: threads.max(1),
            in_decode: self.pending_decode.take(),
            run,
            out_encode: None,
        });
        PipelineBuilder {
            slots: self.slots,
            source_encode: self.source_encode,
            pending_decode: None,
            capacity: self.capacity,
            _marker: PhantomData,
        }
    }

    /// Marks the hop after the latest stage (or the source hop, if no
    /// stage has been added yet) as a wire boundary: the current message
    /// type is serialized on the sender thread — bytes counted into the
    /// hop's `link_bytes` entry — and deserialized on the receiver.
    pub fn link(mut self) -> Self
    where
        Cur: WireEncode + WireDecode,
    {
        let encode: MsgEncodeFn = Box::new(|msg| {
            let v = msg
                .downcast::<Cur>()
                .expect("builder typestate guarantees the hop message type");
            to_frame(&*v)
        });
        let decode: MsgDecodeFn =
            Box::new(|bytes| Ok(Box::new(from_frame::<Cur>(bytes)?) as BoxMsg));
        match self.slots.last_mut() {
            Some(last) => last.out_encode = Some(encode),
            None => self.source_encode = Some(encode),
        }
        self.pending_decode = Some(decode);
        self
    }

    /// Overrides the per-hop buffering capacity (default 4).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Finalizes the chain. Fails if no stage was added.
    pub fn build(self) -> Result<TypedPipeline<In, Cur>, StreamError> {
        if self.slots.is_empty() {
            return Err(StreamError::Config("pipeline needs at least one stage".into()));
        }
        Ok(TypedPipeline {
            slots: self.slots,
            source_encode: self.source_encode,
            sink_decode: self.pending_decode,
            capacity: self.capacity,
            _marker: PhantomData,
        })
    }
}

/// Execution statistics of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Per-request latency (source injection → sink arrival), in request
    /// order.
    pub latencies: Vec<Duration>,
    /// Wall-clock time from first injection to last arrival.
    pub makespan: Duration,
    /// Bytes transferred per hop (`n_stages + 1` entries: source → s0,
    /// s0 → s1, …, s_last → sink). Owned hops carry no serialized bytes
    /// and report 0.
    pub link_bytes: Vec<u64>,
    /// Per-stage busy time (sum of handler execution times).
    pub stage_busy: Vec<Duration>,
    /// Per-stage metrics: items in/out, serialized bytes, compute time,
    /// queue wait, errors.
    pub stages: Vec<StageReport>,
}

impl PipelineStats {
    /// Mean request latency; zero when no request completed.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// Total bytes over all hops.
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.iter().sum()
    }
}

/// A built chain of typed stages connected by bounded channels.
pub struct TypedPipeline<In, Out> {
    slots: Vec<StageSlot>,
    source_encode: Option<MsgEncodeFn>,
    sink_decode: Option<MsgDecodeFn>,
    capacity: usize,
    _marker: PhantomData<fn(In) -> Out>,
}

impl<In: Send + 'static, Out: Send + 'static> TypedPipeline<In, Out> {
    /// Starts a builder for a pipeline consuming `In`.
    pub fn builder() -> PipelineBuilder<In, In> {
        PipelineBuilder::new()
    }

    /// Number of stages in the chain.
    pub fn n_stages(&self) -> usize {
        self.slots.len()
    }

    /// Streams `inputs` through the pipeline, returning the outputs in
    /// request order together with run statistics. Fails with the first
    /// stage error, naming the stage.
    ///
    /// Stages run on dedicated threads for the duration of the call;
    /// requests are injected back-to-back, so with `k` stages up to `k`
    /// requests execute concurrently — the pipelining the paper's Exp#2
    /// measures. On a stage error the chain drains cleanly: upstream
    /// senders observe the closed channel and stop, all stage threads
    /// join before this returns.
    pub fn process_stream(
        &self,
        inputs: Vec<In>,
    ) -> Result<(Vec<Out>, PipelineStats), StreamError> {
        let n_stages = self.slots.len();
        let hop_bytes: Vec<Arc<AtomicU64>> =
            (0..=n_stages).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let metrics: Vec<Arc<StageMetrics>> =
            (0..n_stages).map(|_| Arc::new(StageMetrics::default())).collect();

        let mut senders: Vec<Option<crossbeam::channel::Sender<Envelope>>> =
            Vec::with_capacity(n_stages + 1);
        let mut receivers: Vec<Option<crossbeam::channel::Receiver<Envelope>>> =
            Vec::with_capacity(n_stages + 1);
        for _ in 0..=n_stages {
            let (tx, rx) = crossbeam::channel::bounded(self.capacity);
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }

        let start = Instant::now();

        let failure: Arc<parking_lot::Mutex<Option<(String, StreamError)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        std::thread::scope(|scope| {
            // Spawn stage threads.
            let mut busy_handles = Vec::with_capacity(n_stages);
            for (i, slot) in self.slots.iter().enumerate() {
                let rx = receivers[i].take().expect("receiver unused");
                let tx = senders[i + 1].take().expect("sender unused");
                let failure = Arc::clone(&failure);
                let m = Arc::clone(&metrics[i]);
                let out_hop = Arc::clone(&hop_bytes[i + 1]);
                let handle = scope.spawn(move || {
                    let pool = WorkerPool::new(slot.threads);
                    let mut busy = Duration::ZERO;
                    while let Ok(env) = rx.recv() {
                        m.queue_wait_ns
                            .fetch_add(env.sent_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        m.items_in.fetch_add(1, Ordering::Relaxed);
                        let t0 = Instant::now();
                        // Decode (wire hop only) + process + encode (wire
                        // hop only) all count as this stage's compute.
                        let step = (|| -> Result<Payload, StreamError> {
                            let msg: BoxMsg = match env.payload {
                                Payload::Owned(b) => b,
                                Payload::Wire(bytes) => {
                                    let decode = slot
                                        .in_decode
                                        .as_ref()
                                        .expect("wire payload only arrives on linked hops");
                                    decode(bytes)?
                                }
                            };
                            let mut cx = StageContext::new(&pool, &m);
                            let out = (slot.run)(msg, &mut cx)?;
                            Ok(match &slot.out_encode {
                                Some(encode) => {
                                    let bytes = encode(out);
                                    out_hop.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                                    m.bytes_serialized
                                        .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                                    Payload::Wire(bytes)
                                }
                                None => Payload::Owned(out),
                            })
                        })();
                        let elapsed = t0.elapsed();
                        busy += elapsed;
                        m.compute_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                        match step {
                            Ok(payload) => {
                                m.items_out.fetch_add(1, Ordering::Relaxed);
                                let env =
                                    Envelope { seq: env.seq, sent_at: Instant::now(), payload };
                                if tx.send(env).is_err() {
                                    break; // sink gone
                                }
                            }
                            Err(e) => {
                                // Record the first failure and stop this
                                // stage; dropping rx/tx unwinds the chain.
                                m.errors.fetch_add(1, Ordering::Relaxed);
                                failure.lock().get_or_insert((slot.name.clone(), e));
                                break;
                            }
                        }
                    }
                    busy
                });
                busy_handles.push(handle);
            }

            // Source: inject requests from a dedicated thread so the
            // sink below drains concurrently — injecting and collecting
            // on one thread would deadlock once the bounded hops fill.
            let source = senders[0].take().expect("source sender");
            let source_hop = Arc::clone(&hop_bytes[0]);
            let source_encode = &self.source_encode;
            let source_handle = scope.spawn(move || {
                let mut inject_times: HashMap<u64, Instant> = HashMap::new();
                for (seq, input) in inputs.into_iter().enumerate() {
                    let payload = match source_encode {
                        Some(encode) => {
                            let bytes = encode(Box::new(input) as BoxMsg);
                            source_hop.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                            Payload::Wire(bytes)
                        }
                        None => Payload::Owned(Box::new(input)),
                    };
                    inject_times.insert(seq as u64, Instant::now());
                    let env = Envelope { seq: seq as u64, sent_at: Instant::now(), payload };
                    if source.send(env).is_err() {
                        break; // chain collapsed after a stage failure
                    }
                }
                inject_times // sender drops here, closing the chain head
            });

            // Sink: collect everything.
            let sink = receivers[n_stages].take().expect("sink receiver");
            let mut arrived: Vec<(u64, Out, Instant)> = Vec::new();
            while let Ok(env) = sink.recv() {
                let at = Instant::now();
                let msg: BoxMsg = match env.payload {
                    Payload::Owned(b) => b,
                    Payload::Wire(bytes) => {
                        let decode = self
                            .sink_decode
                            .as_ref()
                            .expect("wire payload only arrives on linked hops");
                        match decode(bytes) {
                            Ok(msg) => msg,
                            Err(e) => {
                                failure.lock().get_or_insert(("sink".into(), e));
                                break;
                            }
                        }
                    }
                };
                let out = *msg
                    .downcast::<Out>()
                    .expect("builder typestate guarantees the sink message type");
                arrived.push((env.seq, out, at));
            }
            // Drop the sink receiver before joining: if the loop broke on
            // a decode failure, stages still sending must observe the
            // closed hop rather than block forever.
            drop(sink);

            let makespan = start.elapsed();
            let inject_times = source_handle.join().expect("source thread");
            let stage_busy: Vec<Duration> =
                busy_handles.into_iter().map(|h| h.join().expect("stage thread")).collect();

            if let Some((stage, err)) = failure.lock().take() {
                return Err(StreamError::Config(format!("stage {stage:?} failed: {err}")));
            }

            arrived.sort_by_key(|(seq, _, _)| *seq);
            let latencies =
                arrived.iter().map(|(seq, _, at)| *at - inject_times[seq]).collect();
            let outputs = arrived.into_iter().map(|(_, out, _)| out).collect();
            let link_bytes = hop_bytes.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let stages = self
                .slots
                .iter()
                .zip(&metrics)
                .map(|(s, m)| m.report(s.name.clone(), s.threads))
                .collect();

            Ok((
                outputs,
                PipelineStats { latencies, makespan, link_bytes, stage_busy, stages },
            ))
        })
    }
}

/// A stage handler in the legacy closure API: transforms one serialized
/// frame payload into the next stage's payload, using the stage's worker
/// pool for data parallelism.
pub type StageFn =
    Box<dyn Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static>;

/// Specification of one legacy (frame → frame) pipeline stage. Also a
/// [`Stage`] over `Bytes`, so specs drop into typed chains.
pub struct StageSpec {
    /// Human-readable name (e.g. `"linear-0 @ model-server-1"`).
    pub name: String,
    /// Worker threads for intra-stage tensor parallelism (`y_i`).
    pub threads: usize,
    /// The stage computation.
    pub handler: StageFn,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        threads: usize,
        handler: impl Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static,
    ) -> Self {
        StageSpec { name: name.into(), threads, handler: Box::new(handler) }
    }
}

impl Stage for StageSpec {
    type In = Bytes;
    type Out = Bytes;

    fn process(&self, msg: Bytes, cx: &mut StageContext) -> Result<Bytes, StreamError> {
        (self.handler)(msg, cx.pool())
    }
}

/// Legacy chain of frame → frame stages: a shim over [`TypedPipeline`]
/// with *every* hop a wire boundary, so each of the `n_stages + 1` hops
/// counts its frame bytes exactly as the original link-based runtime did.
pub struct Pipeline {
    stages: Vec<Arc<StageSpec>>,
    /// In-flight frames per hop before backpressure.
    capacity: usize,
}

impl Pipeline {
    /// Builds a pipeline from stage specs.
    pub fn new(stages: Vec<StageSpec>) -> Result<Self, StreamError> {
        if stages.is_empty() {
            return Err(StreamError::Config("pipeline needs at least one stage".into()));
        }
        Ok(Pipeline { stages: stages.into_iter().map(Arc::new).collect(), capacity: 4 })
    }

    /// Overrides the per-hop buffering capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Streams `inputs` through the pipeline; see
    /// [`TypedPipeline::process_stream`].
    pub fn process_stream(
        &mut self,
        inputs: Vec<Bytes>,
    ) -> Result<(Vec<Bytes>, PipelineStats), StreamError> {
        let mut builder =
            PipelineBuilder::<Bytes, Bytes>::new().with_capacity(self.capacity).link();
        for spec in &self.stages {
            builder =
                builder.stage(spec.name.clone(), spec.threads, Arc::clone(spec)).link();
        }
        builder.build()?.process_stream(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::stage_fn;
    use crate::wire::{from_frame, to_frame};

    fn passthrough(name: &str) -> StageSpec {
        StageSpec::new(name, 1, |payload, _| Ok(payload))
    }

    #[test]
    fn identity_pipeline_preserves_frames() {
        let mut p = Pipeline::new(vec![passthrough("a"), passthrough("b")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 5);
        for (i, out) in outputs.iter().enumerate() {
            let v: u64 = from_frame(out.clone()).unwrap();
            assert_eq!(v, i as u64);
        }
        assert_eq!(stats.latencies.len(), 5);
        assert_eq!(stats.link_bytes.len(), 3);
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn stages_transform_in_order() {
        let double = StageSpec::new("double", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v * 2)))
        });
        let inc = StageSpec::new("inc", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v + 1)))
        });
        let mut p = Pipeline::new(vec![double, inc]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&10u64)]).unwrap();
        let v: u64 = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, 21);
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert!(Pipeline::new(vec![]).is_err());
        assert!(PipelineBuilder::<u64, u64>::new().build().is_err());
    }

    #[test]
    fn worker_pool_usable_from_stage() {
        let stage = StageSpec::new("parallel", 4, |payload, pool| {
            let v: Vec<i64> = from_frame(payload)?;
            let n = v.len();
            let v = std::sync::Arc::new(v);
            let out = pool.map_ranges(n, move |r| r.map(|i| v[i] * 3).collect::<Vec<i64>>());
            Ok(to_frame(&out))
        });
        let mut p = Pipeline::new(vec![stage]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&vec![1i64, 2, 3, 4, 5])]).unwrap();
        let v: Vec<i64> = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, vec![3, 6, 9, 12, 15]);
    }

    #[test]
    fn pipelining_overlaps_requests() {
        // Two stages each sleeping 30 ms: serial time for 4 requests would
        // be 240 ms; pipelined it is ~150 ms. Check makespan < serial.
        let slow = |name: &str| {
            StageSpec::new(name, 1, |payload, _| {
                std::thread::sleep(Duration::from_millis(30));
                Ok(payload)
            })
        };
        let mut p = Pipeline::new(vec![slow("s1"), slow("s2")]).unwrap();
        let inputs: Vec<Bytes> = (0..4u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 4);
        assert!(
            stats.makespan < Duration::from_millis(220),
            "makespan {:?} shows no overlap",
            stats.makespan
        );
        assert!(stats.stage_busy.iter().all(|b| *b >= Duration::from_millis(100)));
    }

    #[test]
    fn stage_error_stops_pipeline_cleanly() {
        let ok = StageSpec::new("ok", 1, |payload, _| Ok(payload));
        let failing = StageSpec::new("boom", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            if v == 2 {
                Err(crate::StreamError::Decode("poisoned frame".into()))
            } else {
                Ok(to_frame(&v))
            }
        });
        let mut p = Pipeline::new(vec![ok, failing, passthrough("tail")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let err = p.process_stream(inputs).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("boom"), "error should name the stage: {msg}");
        assert!(msg.contains("poisoned frame"), "{msg}");
    }

    #[test]
    fn per_request_latency_recorded() {
        let mut p = Pipeline::new(vec![StageSpec::new("s", 1, |payload, _| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(payload)
        })])
        .unwrap();
        let (_, stats) = p.process_stream(vec![to_frame(&1u64), to_frame(&2u64)]).unwrap();
        for l in &stats.latencies {
            assert!(*l >= Duration::from_millis(9), "latency {l:?}");
        }
        assert!(stats.mean_latency() >= Duration::from_millis(9));
    }

    #[test]
    fn mean_latency_of_empty_run_is_zero() {
        // Division-by-zero guard: zero completed requests must not panic.
        let stats = PipelineStats {
            latencies: vec![],
            makespan: Duration::ZERO,
            link_bytes: vec![0, 0],
            stage_busy: vec![],
            stages: vec![],
        };
        assert_eq!(stats.mean_latency(), Duration::ZERO);

        // And an actual run with zero inputs takes the same path.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("id", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![]).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.mean_latency(), Duration::ZERO);
    }

    #[test]
    fn typed_owned_hops_move_messages_without_serialization() {
        // u64 → Vec<u64> → String with no .link(): every hop is owned,
        // none of the message types even need a wire codec impl.
        struct Fan;
        impl Stage for Fan {
            type In = u64;
            type Out = Vec<u64>;
            fn process(&self, v: u64, _: &mut StageContext) -> Result<Vec<u64>, StreamError> {
                Ok((0..v).collect())
            }
        }
        let p = TypedPipeline::<u64, String>::builder()
            .stage("fan", 1, Fan)
            .stage(
                "fmt",
                1,
                stage_fn(|v: Vec<u64>, _: &mut StageContext| Ok(v.len().to_string())),
            )
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![3, 7]).unwrap();
        assert_eq!(out, vec!["3".to_string(), "7".to_string()]);
        assert_eq!(stats.link_bytes, vec![0, 0, 0], "owned hops serialize nothing");
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(stats.stages[0].items_in, 2);
        assert_eq!(stats.stages[0].items_out, 2);
        assert_eq!(stats.stages[1].name, "fmt");
    }

    #[test]
    fn typed_wire_hop_counts_bytes_only_at_boundary() {
        // Owned hop into "a", wire boundary between "a" and "b", owned
        // hop to the sink: only the middle hop carries serialized bytes.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("a", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v * 2)))
            .link()
            .stage("b", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![10, 20]).unwrap();
        assert_eq!(out, vec![21, 41]);
        assert_eq!(stats.link_bytes[0], 0);
        assert_eq!(stats.link_bytes[1], 2 * 8, "two u64 frames over the wire hop");
        assert_eq!(stats.link_bytes[2], 0);
        assert_eq!(stats.stages[0].bytes_serialized, 16, "sender pays the encode");
        assert_eq!(stats.stages[1].bytes_serialized, 0);
    }

    #[test]
    fn typed_source_and_sink_links_serialize_ends() {
        let p = TypedPipeline::<u64, u64>::builder()
            .link() // client → first stage
            .stage("id", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .link() // last stage → client
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![1, 2, 3]).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.link_bytes, vec![24, 24]);
    }

    #[test]
    fn stage_reports_record_compute_and_queue_wait() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "slow",
                2,
                stage_fn(|v: u64, _: &mut StageContext| {
                    std::thread::sleep(Duration::from_millis(5));
                    Ok(v)
                }),
            )
            .build()
            .unwrap();
        let (_, stats) = p.process_stream((0..4).collect()).unwrap();
        let r = &stats.stages[0];
        assert_eq!(r.name, "slow");
        assert_eq!(r.threads, 2);
        assert_eq!(r.items_in, 4);
        assert_eq!(r.items_out, 4);
        assert!(r.compute >= Duration::from_millis(4 * 5 - 2), "compute {:?}", r.compute);
        // Requests are injected back-to-back, so later ones queue while
        // the first is in the handler.
        assert!(r.queue_wait > Duration::ZERO, "queue wait {:?}", r.queue_wait);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn mid_pipeline_error_drains_cleanly_under_backpressure() {
        // A failing middle stage with a tiny hop capacity and many
        // in-flight requests: the run must terminate (no deadlock, all
        // scoped threads join), surface the error, and name the stage.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("head", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .stage(
                "mid",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 10 {
                        Err(StreamError::Stage("tensor shape mismatch".into()))
                    } else {
                        Ok(v)
                    }
                }),
            )
            .stage("tail", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .with_capacity(2)
            .build()
            .unwrap();
        let err = p.process_stream((0..50).collect()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mid"), "error should name the stage: {msg}");
        assert!(msg.contains("tensor shape mismatch"), "{msg}");
    }

    #[test]
    fn error_in_first_stage_with_pending_injections_terminates() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "gate",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 0 {
                        Err(StreamError::Stage("rejected".into()))
                    } else {
                        Ok(v)
                    }
                }),
            )
            .with_capacity(1)
            .build()
            .unwrap();
        // First request fails while dozens more wait to be injected; the
        // source must observe the closed channel instead of blocking.
        let err = p.process_stream((0..64).collect()).unwrap_err();
        assert!(err.to_string().contains("gate"), "{err}");
    }

    #[test]
    fn arc_shared_stage_runs_in_pipeline() {
        let shared = Arc::new(stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)));
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("shared", 1, Arc::clone(&shared))
            .build()
            .unwrap();
        let (out, _) = p.process_stream(vec![41]).unwrap();
        assert_eq!(out, vec![42]);
    }
}
