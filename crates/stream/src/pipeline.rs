//! Pipelined stage execution (paper Fig. 4): each stage runs on its own
//! thread with a private worker pool; inference requests stream through
//! the chain so consecutive requests overlap across stages.

use crate::link::{Frame, Link, LinkReceiver, LinkSender, LinkStats};
use crate::pool::WorkerPool;
use crate::StreamError;
use bytes::Bytes;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A stage handler: transforms one serialized frame payload into the next
/// stage's payload, using the stage's worker pool for data parallelism.
/// A returned error stops the pipeline cleanly: upstream stages drain,
/// and [`Pipeline::process_stream`] reports the failing stage.
pub type StageFn =
    Box<dyn Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static>;

/// Specification of one pipeline stage.
pub struct StageSpec {
    /// Human-readable name (e.g. `"linear-0 @ model-server-1"`).
    pub name: String,
    /// Worker threads for intra-stage tensor parallelism (`y_i`).
    pub threads: usize,
    /// The stage computation.
    pub handler: StageFn,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        threads: usize,
        handler: impl Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static,
    ) -> Self {
        StageSpec { name: name.into(), threads, handler: Box::new(handler) }
    }
}

/// Execution statistics of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Per-request latency (source injection → sink arrival), in request
    /// order.
    pub latencies: Vec<Duration>,
    /// Wall-clock time from first injection to last arrival.
    pub makespan: Duration,
    /// Bytes transferred per link (between stage `i` and `i+1`).
    pub link_bytes: Vec<u64>,
    /// Per-stage busy time (sum of handler execution times).
    pub stage_busy: Vec<Duration>,
}

impl PipelineStats {
    /// Mean request latency.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// Total bytes over all links.
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.iter().sum()
    }
}

/// A chain of stages connected by links.
pub struct Pipeline {
    stages: Vec<StageSpec>,
    /// In-flight frames per link before backpressure.
    capacity: usize,
}

impl Pipeline {
    /// Builds a pipeline from stage specs.
    pub fn new(stages: Vec<StageSpec>) -> Result<Self, StreamError> {
        if stages.is_empty() {
            return Err(StreamError::Config("pipeline needs at least one stage".into()));
        }
        Ok(Pipeline { stages, capacity: 4 })
    }

    /// Overrides the per-link buffering capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Streams `inputs` through the pipeline, returning the output frames
    /// in request order together with run statistics. Fails with the
    /// first stage error, naming the stage.
    ///
    /// Stages run on dedicated threads for the duration of the call;
    /// requests are injected back-to-back, so with `k` stages up to `k`
    /// requests execute concurrently — the pipelining the paper's Exp#2
    /// measures.
    pub fn process_stream(
        &mut self,
        inputs: Vec<Bytes>,
    ) -> Result<(Vec<Bytes>, PipelineStats), StreamError> {
        let n_stages = self.stages.len();
        // Build the chain of links: source → s0 → s1 → … → sink.
        let mut links: Vec<Link> = (0..=n_stages).map(|_| Link::new(self.capacity)).collect();
        let link_stats: Vec<Arc<LinkStats>> = links.iter().map(Link::stats).collect();
        let mut senders: Vec<Option<LinkSender>> = Vec::with_capacity(n_stages + 1);
        let mut receivers: Vec<Option<LinkReceiver>> = Vec::with_capacity(n_stages + 1);
        for link in links.drain(..) {
            let (tx, rx) = link.split();
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }

        let start = Instant::now();
        let mut inject_times: HashMap<u64, Instant> = HashMap::new();

        let failure: Arc<parking_lot::Mutex<Option<(String, StreamError)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        std::thread::scope(|scope| {
            // Spawn stage threads.
            let mut busy_handles = Vec::with_capacity(n_stages);
            for (i, spec) in self.stages.iter().enumerate() {
                let rx = receivers[i].take().expect("receiver unused");
                let tx = senders[i + 1].take().expect("sender unused");
                let handler = &spec.handler;
                let threads = spec.threads;
                let name = spec.name.clone();
                let failure = Arc::clone(&failure);
                let handle = scope.spawn(move || {
                    let pool = WorkerPool::new(threads);
                    let mut busy = Duration::ZERO;
                    while let Some(frame) = rx.recv() {
                        let t0 = Instant::now();
                        let out = match handler(frame.payload, &pool) {
                            Ok(out) => out,
                            Err(e) => {
                                // Record the first failure and stop this
                                // stage; dropping tx unwinds the chain.
                                failure.lock().get_or_insert((name.clone(), e));
                                break;
                            }
                        };
                        busy += t0.elapsed();
                        if !tx.send(Frame { seq: frame.seq, payload: out }) {
                            break; // sink gone
                        }
                    }
                    busy
                });
                busy_handles.push(handle);
            }

            // Source: inject all requests (blocking on backpressure).
            let source = senders[0].take().expect("source sender");
            for (seq, payload) in inputs.into_iter().enumerate() {
                inject_times.insert(seq as u64, Instant::now());
                source.send(Frame { seq: seq as u64, payload });
            }
            drop(source); // close the chain head

            // Sink: collect everything.
            let sink = receivers[n_stages].take().expect("sink receiver");
            let mut arrived: Vec<(u64, Bytes, Instant)> = Vec::new();
            while let Some(frame) = sink.recv() {
                arrived.push((frame.seq, frame.payload, Instant::now()));
            }

            let makespan = start.elapsed();
            let stage_busy: Vec<Duration> =
                busy_handles.into_iter().map(|h| h.join().expect("stage thread")).collect();

            if let Some((stage, err)) = failure.lock().take() {
                return Err(StreamError::Config(format!("stage {stage:?} failed: {err}")));
            }

            arrived.sort_by_key(|(seq, _, _)| *seq);
            let latencies = arrived
                .iter()
                .map(|(seq, _, at)| *at - inject_times[seq])
                .collect();
            let outputs = arrived.into_iter().map(|(_, p, _)| p).collect();
            let link_bytes = link_stats.iter().map(|s| s.bytes()).collect();

            Ok((
                outputs,
                PipelineStats { latencies, makespan, link_bytes, stage_busy },
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{from_frame, to_frame};

    fn passthrough(name: &str) -> StageSpec {
        StageSpec::new(name, 1, |payload, _| Ok(payload))
    }

    #[test]
    fn identity_pipeline_preserves_frames() {
        let mut p = Pipeline::new(vec![passthrough("a"), passthrough("b")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 5);
        for (i, out) in outputs.iter().enumerate() {
            let v: u64 = from_frame(out.clone()).unwrap();
            assert_eq!(v, i as u64);
        }
        assert_eq!(stats.latencies.len(), 5);
        assert_eq!(stats.link_bytes.len(), 3);
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn stages_transform_in_order() {
        let double = StageSpec::new("double", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v * 2)))
        });
        let inc = StageSpec::new("inc", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v + 1)))
        });
        let mut p = Pipeline::new(vec![double, inc]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&10u64)]).unwrap();
        let v: u64 = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, 21);
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert!(Pipeline::new(vec![]).is_err());
    }

    #[test]
    fn worker_pool_usable_from_stage() {
        let stage = StageSpec::new("parallel", 4, |payload, pool| {
            let v: Vec<i64> = from_frame(payload)?;
            let n = v.len();
            let v = std::sync::Arc::new(v);
            let out = pool.map_ranges(n, move |r| r.map(|i| v[i] * 3).collect::<Vec<i64>>());
            Ok(to_frame(&out))
        });
        let mut p = Pipeline::new(vec![stage]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&vec![1i64, 2, 3, 4, 5])]).unwrap();
        let v: Vec<i64> = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, vec![3, 6, 9, 12, 15]);
    }

    #[test]
    fn pipelining_overlaps_requests() {
        // Two stages each sleeping 30 ms: serial time for 4 requests would
        // be 240 ms; pipelined it is ~150 ms. Check makespan < serial.
        let slow = |name: &str| {
            StageSpec::new(name, 1, |payload, _| {
                std::thread::sleep(Duration::from_millis(30));
                Ok(payload)
            })
        };
        let mut p = Pipeline::new(vec![slow("s1"), slow("s2")]).unwrap();
        let inputs: Vec<Bytes> = (0..4u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 4);
        assert!(
            stats.makespan < Duration::from_millis(220),
            "makespan {:?} shows no overlap",
            stats.makespan
        );
        assert!(stats.stage_busy.iter().all(|b| *b >= Duration::from_millis(100)));
    }

    #[test]
    fn stage_error_stops_pipeline_cleanly() {
        let ok = StageSpec::new("ok", 1, |payload, _| Ok(payload));
        let failing = StageSpec::new("boom", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            if v == 2 {
                Err(crate::StreamError::Decode("poisoned frame".into()))
            } else {
                Ok(to_frame(&v))
            }
        });
        let mut p = Pipeline::new(vec![ok, failing, passthrough("tail")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let err = p.process_stream(inputs).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("boom"), "error should name the stage: {msg}");
        assert!(msg.contains("poisoned frame"), "{msg}");
    }

    #[test]
    fn per_request_latency_recorded() {
        let mut p = Pipeline::new(vec![StageSpec::new("s", 1, |payload, _| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(payload)
        })])
        .unwrap();
        let (_, stats) = p.process_stream(vec![to_frame(&1u64), to_frame(&2u64)]).unwrap();
        for l in &stats.latencies {
            assert!(*l >= Duration::from_millis(9), "latency {l:?}");
        }
        assert!(stats.mean_latency() >= Duration::from_millis(9));
    }
}
