//! Pipelined stage execution (paper Fig. 4): each stage runs on its own
//! thread with a private worker pool; inference requests stream through
//! the chain so consecutive requests overlap across stages.
//!
//! Stages are typed [`Stage`] implementations chained by a typestate
//! [`PipelineBuilder`]: `.stage()` appends a stage whose input type must
//! equal the chain's current message type, `.link()` marks the hop after
//! the latest stage as a **wire boundary** (the message is serialized on
//! the sender thread, its bytes counted, and deserialized on the
//! receiver thread — the cost a real deployment pays between servers).
//! Hops *not* marked with `.link()` hand the owned message over directly,
//! so co-located stages skip serialization entirely.
//!
//! The legacy closure-based [`Pipeline`]/[`StageSpec`] API is kept as a
//! thin shim over the typed engine with every hop a wire boundary,
//! preserving its original byte-accounting semantics.

use crate::pool::WorkerPool;
use crate::stage::{Stage, StageContext, StageMetrics, StageReport};
use crate::wire::{from_frame, to_frame, WireDecode, WireEncode};
use crate::StreamError;
use bytes::Bytes;
use std::any::Any;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Type-erased message travelling an owned (co-located) hop.
pub type BoxMsg = Box<dyn Any + Send>;

type MsgRunFn = Box<dyn Fn(BoxMsg, &mut StageContext) -> Result<BoxMsg, StreamError> + Send + Sync>;
type MsgEncodeFn = Box<dyn Fn(BoxMsg) -> Bytes + Send + Sync>;
type MsgDecodeFn = Box<dyn Fn(Bytes) -> Result<BoxMsg, StreamError> + Send + Sync>;

/// What travels a hop: an owned message (co-located stages) or a
/// serialized frame (wire boundary).
enum Payload {
    Owned(BoxMsg),
    Wire(Bytes),
}

/// One in-flight message plus the instant it was enqueued, from which the
/// receiving stage derives queue-wait time.
struct Envelope {
    seq: u64,
    sent_at: Instant,
    /// Absolute instant the item's end-to-end budget runs out (stamped by
    /// the source from the builder's deadline); `None` = no deadline.
    deadline: Option<Instant>,
    payload: Payload,
}

/// A type-erased stage plus its hop codecs, as assembled by the builder.
struct StageSlot {
    name: String,
    threads: usize,
    /// Present iff the hop *into* this stage is a wire boundary.
    in_decode: Option<MsgDecodeFn>,
    run: MsgRunFn,
    /// Present iff the hop *out of* this stage is a wire boundary.
    out_encode: Option<MsgEncodeFn>,
}

/// Typestate builder for a [`TypedPipeline`]: `In` is the pipeline input
/// type, `Cur` the message type at the current end of the chain.
pub struct PipelineBuilder<In, Cur> {
    slots: Vec<StageSlot>,
    /// Present iff `.link()` was called before the first stage: the
    /// source serializes inputs before injecting them.
    source_encode: Option<MsgEncodeFn>,
    /// Decode half of the most recent `.link()`, consumed by the next
    /// `.stage()` (or by `.build()` as the sink decoder).
    pending_decode: Option<MsgDecodeFn>,
    capacity: usize,
    deadline: Option<Duration>,
    watchdog: Option<Duration>,
    quarantine: bool,
    _marker: PhantomData<fn(In) -> Cur>,
}

impl<In: Send + 'static> PipelineBuilder<In, In> {
    /// Starts an empty chain whose first stage consumes `In`.
    pub fn new() -> Self {
        PipelineBuilder {
            slots: Vec::new(),
            source_encode: None,
            pending_decode: None,
            capacity: 4,
            deadline: None,
            watchdog: None,
            quarantine: false,
            _marker: PhantomData,
        }
    }
}

impl<In: Send + 'static> Default for PipelineBuilder<In, In> {
    fn default() -> Self {
        Self::new()
    }
}

impl<In: Send + 'static, Cur: Send + 'static> PipelineBuilder<In, Cur> {
    /// Appends a stage. Its input type must be the chain's current
    /// message type; the chain advances to the stage's output type.
    pub fn stage<S>(
        mut self,
        name: impl Into<String>,
        threads: usize,
        stage: S,
    ) -> PipelineBuilder<In, S::Out>
    where
        S: Stage<In = Cur> + 'static,
    {
        let run: MsgRunFn = Box::new(move |msg, cx| {
            let input = msg
                .downcast::<Cur>()
                .expect("builder typestate guarantees the hop message type");
            Ok(Box::new(stage.process(*input, cx)?) as BoxMsg)
        });
        self.slots.push(StageSlot {
            name: name.into(),
            threads: threads.max(1),
            in_decode: self.pending_decode.take(),
            run,
            out_encode: None,
        });
        PipelineBuilder {
            slots: self.slots,
            source_encode: self.source_encode,
            pending_decode: None,
            capacity: self.capacity,
            deadline: self.deadline,
            watchdog: self.watchdog,
            quarantine: self.quarantine,
            _marker: PhantomData,
        }
    }

    /// Marks the hop after the latest stage (or the source hop, if no
    /// stage has been added yet) as a wire boundary: the current message
    /// type is serialized on the sender thread — bytes counted into the
    /// hop's `link_bytes` entry — and deserialized on the receiver.
    pub fn link(mut self) -> Self
    where
        Cur: WireEncode + WireDecode,
    {
        let encode: MsgEncodeFn = Box::new(|msg| {
            let v = msg
                .downcast::<Cur>()
                .expect("builder typestate guarantees the hop message type");
            to_frame(&*v)
        });
        let decode: MsgDecodeFn =
            Box::new(|bytes| Ok(Box::new(from_frame::<Cur>(bytes)?) as BoxMsg));
        match self.slots.last_mut() {
            Some(last) => last.out_encode = Some(encode),
            None => self.source_encode = Some(encode),
        }
        self.pending_decode = Some(decode);
        self
    }

    /// Overrides the per-hop buffering capacity (default 4).
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Gives every item an end-to-end deadline of `budget` from the
    /// moment the source injects it. A stage that dequeues an item whose
    /// deadline has already passed **sheds** it — counts it in the
    /// stage's `deadline_expired` and drops it — instead of spending
    /// compute on an answer nobody is waiting for. Shed items are simply
    /// missing from the output; the run itself still succeeds.
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// Arms a stall watchdog: a monitor thread flags any stage that has
    /// input queued but has made no progress for `window`, aborting the
    /// run with [`StreamError::Stalled`] naming the stage — instead of
    /// the whole call hanging forever behind one wedged stage. (The
    /// watchdog cannot preempt a handler: a stage blocked *inside*
    /// `process` must still return before the call unwinds, but the
    /// error is already recorded and the drain is already underway.)
    pub fn with_watchdog(mut self, window: Duration) -> Self {
        self.watchdog = Some(window.max(Duration::from_millis(1)));
        self
    }

    /// Quarantines poison items: an item whose handler **panics** is
    /// counted in the stage's `quarantined` metric and dropped, and the
    /// stream keeps flowing. Without this (the default), a panicking
    /// item stops the run with a clean [`StreamError::Stage`] carrying
    /// the panic message — in neither mode does the panic unwind through
    /// `process_stream`.
    pub fn with_quarantine(mut self, quarantine: bool) -> Self {
        self.quarantine = quarantine;
        self
    }

    /// Finalizes the chain. Fails if no stage was added.
    pub fn build(self) -> Result<TypedPipeline<In, Cur>, StreamError> {
        if self.slots.is_empty() {
            return Err(StreamError::Config("pipeline needs at least one stage".into()));
        }
        Ok(TypedPipeline {
            slots: self.slots,
            source_encode: self.source_encode,
            sink_decode: self.pending_decode,
            capacity: self.capacity,
            deadline: self.deadline,
            watchdog: self.watchdog,
            quarantine: self.quarantine,
            _marker: PhantomData,
        })
    }
}

/// Execution statistics of one pipeline run.
#[derive(Clone, Debug)]
pub struct PipelineStats {
    /// Per-request latency (source injection → sink arrival), in request
    /// order.
    pub latencies: Vec<Duration>,
    /// Wall-clock time from first injection to last arrival.
    pub makespan: Duration,
    /// Bytes transferred per hop (`n_stages + 1` entries: source → s0,
    /// s0 → s1, …, s_last → sink). Owned hops carry no serialized bytes
    /// and report 0.
    pub link_bytes: Vec<u64>,
    /// Per-stage busy time (sum of handler execution times).
    pub stage_busy: Vec<Duration>,
    /// Per-stage metrics: items in/out, serialized bytes, compute time,
    /// queue wait, errors.
    pub stages: Vec<StageReport>,
}

impl PipelineStats {
    /// Mean request latency; zero when no request completed.
    pub fn mean_latency(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// Total bytes over all hops.
    pub fn total_bytes(&self) -> u64 {
        self.link_bytes.iter().sum()
    }

    /// Items shed across all stages because their deadline had expired.
    pub fn deadline_expired(&self) -> u64 {
        self.stages.iter().map(|s| s.deadline_expired).sum()
    }

    /// Items quarantined across all stages after panicking.
    pub fn quarantined(&self) -> u64 {
        self.stages.iter().map(|s| s.quarantined).sum()
    }

    /// Max observed input-queue depth over all stages — how close the
    /// bounded hops came to saturation during the run.
    pub fn max_queue_depth(&self) -> u64 {
        self.stages.iter().map(|s| s.max_queue_depth).max().unwrap_or(0)
    }
}

/// A built chain of typed stages connected by bounded channels.
pub struct TypedPipeline<In, Out> {
    slots: Vec<StageSlot>,
    source_encode: Option<MsgEncodeFn>,
    sink_decode: Option<MsgDecodeFn>,
    capacity: usize,
    deadline: Option<Duration>,
    watchdog: Option<Duration>,
    quarantine: bool,
    _marker: PhantomData<fn(In) -> Out>,
}

impl<In: Send + 'static, Out: Send + 'static> TypedPipeline<In, Out> {
    /// Starts a builder for a pipeline consuming `In`.
    pub fn builder() -> PipelineBuilder<In, In> {
        PipelineBuilder::new()
    }

    /// Number of stages in the chain.
    pub fn n_stages(&self) -> usize {
        self.slots.len()
    }

    /// Streams `inputs` through the pipeline, returning the outputs in
    /// request order together with run statistics. Fails with the first
    /// stage error, naming the stage.
    ///
    /// Stages run on dedicated threads for the duration of the call;
    /// requests are injected back-to-back, so with `k` stages up to `k`
    /// requests execute concurrently — the pipelining the paper's Exp#2
    /// measures. On a stage error the chain drains cleanly: upstream
    /// senders observe the closed channel and stop, all stage threads
    /// join before this returns.
    pub fn process_stream(
        &self,
        inputs: Vec<In>,
    ) -> Result<(Vec<Out>, PipelineStats), StreamError> {
        let n_stages = self.slots.len();
        let hop_bytes: Vec<Arc<AtomicU64>> =
            (0..=n_stages).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let metrics: Vec<Arc<StageMetrics>> =
            (0..n_stages).map(|_| Arc::new(StageMetrics::default())).collect();

        let mut senders: Vec<Option<crate::chan::Sender<Envelope>>> =
            Vec::with_capacity(n_stages + 1);
        let mut receivers: Vec<Option<crate::chan::Receiver<Envelope>>> =
            Vec::with_capacity(n_stages + 1);
        for _ in 0..=n_stages {
            let (tx, rx) = crate::chan::bounded(self.capacity);
            senders.push(Some(tx));
            receivers.push(Some(rx));
        }

        let start = Instant::now();

        let failure: Arc<parking_lot::Mutex<Option<(String, StreamError)>>> =
            Arc::new(parking_lot::Mutex::new(None));
        let quarantine = self.quarantine;
        // Receiver clones for the watchdog: receivers are multi-consumer
        // and the watchdog only ever calls len() on them. Only cloned
        // when a watchdog is armed — a lingering receiver clone would
        // keep a hop open after its consumer stage exited, so the
        // watchdog must (and does) drop these the moment any failure is
        // recorded.
        let watch_rx: Vec<crate::chan::Receiver<Envelope>> = if self.watchdog.is_some() {
            (0..n_stages)
                .map(|i| receivers[i].as_ref().expect("receiver present").clone())
                .collect()
        } else {
            Vec::new()
        };
        let watchdog_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|scope| {
            // Spawn stage threads.
            let mut busy_handles = Vec::with_capacity(n_stages);
            for (i, slot) in self.slots.iter().enumerate() {
                let rx = receivers[i].take().expect("receiver unused");
                let tx = senders[i + 1].take().expect("sender unused");
                let failure = Arc::clone(&failure);
                let m = Arc::clone(&metrics[i]);
                let out_hop = Arc::clone(&hop_bytes[i + 1]);
                let handle = scope.spawn(move || {
                    let pool = WorkerPool::new(slot.threads);
                    let mut busy = Duration::ZERO;
                    while let Ok(env) = rx.recv() {
                        // Queue depth at the moment of dequeue: the item
                        // in hand plus whatever is still waiting.
                        m.observe_queue_depth(rx.len() as u64 + 1);
                        m.queue_wait_ns
                            .fetch_add(env.sent_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        m.items_in.fetch_add(1, Ordering::Relaxed);
                        let deadline = env.deadline;
                        // Shed before the expensive work: an item whose
                        // budget is already gone gets no compute.
                        if deadline.is_some_and(|d| Instant::now() > d) {
                            m.deadline_expired.fetch_add(1, Ordering::Relaxed);
                            m.touch();
                            continue;
                        }
                        let t0 = Instant::now();
                        // Decode (wire hop only) + process + encode (wire
                        // hop only) all count as this stage's compute.
                        // The catch_unwind is the poison-item boundary:
                        // a panicking item must not tear down the chain.
                        let step = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                            || -> Result<Payload, StreamError> {
                                let msg: BoxMsg = match env.payload {
                                    Payload::Owned(b) => b,
                                    Payload::Wire(bytes) => {
                                        let decode = slot
                                            .in_decode
                                            .as_ref()
                                            .expect("wire payload only arrives on linked hops");
                                        decode(bytes)?
                                    }
                                };
                                let mut cx = StageContext::new(&pool, &m);
                                let out = (slot.run)(msg, &mut cx)?;
                                Ok(match &slot.out_encode {
                                    Some(encode) => {
                                        let bytes = encode(out);
                                        out_hop.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                                        m.bytes_serialized
                                            .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                                        Payload::Wire(bytes)
                                    }
                                    None => Payload::Owned(out),
                                })
                            },
                        ));
                        let elapsed = t0.elapsed();
                        busy += elapsed;
                        m.compute_ns.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
                        match step {
                            Ok(Ok(payload)) => {
                                m.items_out.fetch_add(1, Ordering::Relaxed);
                                m.touch();
                                let env = Envelope {
                                    seq: env.seq,
                                    sent_at: Instant::now(),
                                    deadline,
                                    payload,
                                };
                                if tx.send(env).is_err() {
                                    break; // sink gone
                                }
                            }
                            Ok(Err(e)) => {
                                // Record the first failure and stop this
                                // stage; dropping rx/tx unwinds the chain.
                                m.errors.fetch_add(1, Ordering::Relaxed);
                                failure.lock().get_or_insert((slot.name.clone(), e));
                                break;
                            }
                            Err(payload) => {
                                let msg = panic_message(payload.as_ref());
                                if quarantine {
                                    m.quarantined.fetch_add(1, Ordering::Relaxed);
                                    m.touch();
                                    continue;
                                }
                                m.errors.fetch_add(1, Ordering::Relaxed);
                                failure.lock().get_or_insert((
                                    slot.name.clone(),
                                    StreamError::Stage(format!(
                                        "item {} panicked: {msg}",
                                        env.seq
                                    )),
                                ));
                                break;
                            }
                        }
                    }
                    busy
                });
                busy_handles.push(handle);
            }

            // Stall watchdog: flags a stage with input queued but no
            // progress for the window — an alive-but-stuck diagnosis a
            // plain join could never make.
            if let Some(window) = self.watchdog {
                let failure = Arc::clone(&failure);
                let metrics = metrics.clone();
                let slot_names: Vec<String> =
                    self.slots.iter().map(|s| s.name.clone()).collect();
                let stop = Arc::clone(&watchdog_stop);
                let poll = (window / 8).clamp(Duration::from_millis(1), Duration::from_millis(50));
                scope.spawn(move || {
                    // Returning drops the watch_rx clones so blocked
                    // upstream senders observe the closed hops.
                    let _watch_rx = watch_rx;
                    while !stop.load(Ordering::Relaxed) {
                        if failure.lock().is_some() {
                            return; // some stage already failed; stand down
                        }
                        for (i, name) in slot_names.iter().enumerate() {
                            if !_watch_rx[i].is_empty() && metrics[i].heartbeat_age() > window {
                                failure.lock().get_or_insert((
                                    name.clone(),
                                    StreamError::Stalled { stage: name.clone() },
                                ));
                                return;
                            }
                        }
                        std::thread::sleep(poll);
                    }
                });
            }

            // Source: inject requests from a dedicated thread so the
            // sink below drains concurrently — injecting and collecting
            // on one thread would deadlock once the bounded hops fill.
            let source = senders[0].take().expect("source sender");
            let source_hop = Arc::clone(&hop_bytes[0]);
            let source_encode = &self.source_encode;
            let budget = self.deadline;
            let source_handle = scope.spawn(move || {
                let mut inject_times: HashMap<u64, Instant> = HashMap::new();
                for (seq, input) in inputs.into_iter().enumerate() {
                    let payload = match source_encode {
                        Some(encode) => {
                            let bytes = encode(Box::new(input) as BoxMsg);
                            source_hop.fetch_add(bytes.len() as u64, Ordering::Relaxed);
                            Payload::Wire(bytes)
                        }
                        None => Payload::Owned(Box::new(input)),
                    };
                    let now = Instant::now();
                    inject_times.insert(seq as u64, now);
                    let env = Envelope {
                        seq: seq as u64,
                        sent_at: now,
                        deadline: budget.map(|b| now + b),
                        payload,
                    };
                    if source.send(env).is_err() {
                        break; // chain collapsed after a stage failure
                    }
                }
                inject_times // sender drops here, closing the chain head
            });

            // Sink: collect everything. Polls rather than blocks so a
            // watchdog-detected stall (the wedged stage never closes the
            // sink hop) still aborts the collection loop.
            let sink = receivers[n_stages].take().expect("sink receiver");
            let mut arrived: Vec<(u64, Out, Instant)> = Vec::new();
            loop {
                let env = match sink.recv_timeout(Duration::from_millis(20)) {
                    Ok(env) => env,
                    Err(crate::chan::RecvTimeoutError::Timeout) => {
                        if failure.lock().is_some() {
                            break; // stall or stage error recorded; stop waiting
                        }
                        continue;
                    }
                    Err(crate::chan::RecvTimeoutError::Disconnected) => break,
                };
                let at = Instant::now();
                let msg: BoxMsg = match env.payload {
                    Payload::Owned(b) => b,
                    Payload::Wire(bytes) => {
                        let decode = self
                            .sink_decode
                            .as_ref()
                            .expect("wire payload only arrives on linked hops");
                        match decode(bytes) {
                            Ok(msg) => msg,
                            Err(e) => {
                                failure.lock().get_or_insert(("sink".into(), e));
                                break;
                            }
                        }
                    }
                };
                let out = *msg
                    .downcast::<Out>()
                    .expect("builder typestate guarantees the sink message type");
                arrived.push((env.seq, out, at));
            }
            // Drop the sink receiver before joining: if the loop broke on
            // a decode failure, stages still sending must observe the
            // closed hop rather than block forever. The watchdog is told
            // to stand down for the same reason — joins must not wait on
            // its poll loop.
            drop(sink);
            watchdog_stop.store(true, Ordering::Relaxed);

            let makespan = start.elapsed();
            let inject_times = source_handle.join().expect("source thread");
            let stage_busy: Vec<Duration> =
                busy_handles.into_iter().map(|h| h.join().expect("stage thread")).collect();

            if let Some((stage, err)) = failure.lock().take() {
                // A stall is already a first-class diagnosis naming the
                // stage; every other stage error gets the naming wrapper.
                if matches!(err, StreamError::Stalled { .. }) {
                    return Err(err);
                }
                return Err(StreamError::Config(format!("stage {stage:?} failed: {err}")));
            }

            arrived.sort_by_key(|(seq, _, _)| *seq);
            let latencies =
                arrived.iter().map(|(seq, _, at)| *at - inject_times[seq]).collect();
            let outputs = arrived.into_iter().map(|(_, out, _)| out).collect();
            let link_bytes = hop_bytes.iter().map(|b| b.load(Ordering::Relaxed)).collect();
            let stages = self
                .slots
                .iter()
                .zip(&metrics)
                .map(|(s, m)| m.report(s.name.clone(), s.threads))
                .collect();

            Ok((
                outputs,
                PipelineStats { latencies, makespan, link_bytes, stage_busy, stages },
            ))
        })
    }
}

/// Extracts the human-readable message from a caught panic payload
/// (`panic!` with a literal yields `&str`, with formatting a `String`).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic payload>".into())
}

/// A stage handler in the legacy closure API: transforms one serialized
/// frame payload into the next stage's payload, using the stage's worker
/// pool for data parallelism.
pub type StageFn =
    Box<dyn Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static>;

/// Specification of one legacy (frame → frame) pipeline stage. Also a
/// [`Stage`] over `Bytes`, so specs drop into typed chains.
pub struct StageSpec {
    /// Human-readable name (e.g. `"linear-0 @ model-server-1"`).
    pub name: String,
    /// Worker threads for intra-stage tensor parallelism (`y_i`).
    pub threads: usize,
    /// The stage computation.
    pub handler: StageFn,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        threads: usize,
        handler: impl Fn(Bytes, &WorkerPool) -> Result<Bytes, StreamError> + Send + Sync + 'static,
    ) -> Self {
        StageSpec { name: name.into(), threads, handler: Box::new(handler) }
    }
}

impl Stage for StageSpec {
    type In = Bytes;
    type Out = Bytes;

    fn process(&self, msg: Bytes, cx: &mut StageContext) -> Result<Bytes, StreamError> {
        (self.handler)(msg, cx.pool())
    }
}

/// Legacy chain of frame → frame stages: a shim over [`TypedPipeline`]
/// with *every* hop a wire boundary, so each of the `n_stages + 1` hops
/// counts its frame bytes exactly as the original link-based runtime did.
pub struct Pipeline {
    stages: Vec<Arc<StageSpec>>,
    /// In-flight frames per hop before backpressure.
    capacity: usize,
}

impl Pipeline {
    /// Builds a pipeline from stage specs.
    pub fn new(stages: Vec<StageSpec>) -> Result<Self, StreamError> {
        if stages.is_empty() {
            return Err(StreamError::Config("pipeline needs at least one stage".into()));
        }
        Ok(Pipeline { stages: stages.into_iter().map(Arc::new).collect(), capacity: 4 })
    }

    /// Overrides the per-hop buffering capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Streams `inputs` through the pipeline; see
    /// [`TypedPipeline::process_stream`].
    pub fn process_stream(
        &mut self,
        inputs: Vec<Bytes>,
    ) -> Result<(Vec<Bytes>, PipelineStats), StreamError> {
        let mut builder =
            PipelineBuilder::<Bytes, Bytes>::new().with_capacity(self.capacity).link();
        for spec in &self.stages {
            builder =
                builder.stage(spec.name.clone(), spec.threads, Arc::clone(spec)).link();
        }
        builder.build()?.process_stream(inputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::stage_fn;
    use crate::wire::{from_frame, to_frame};

    fn passthrough(name: &str) -> StageSpec {
        StageSpec::new(name, 1, |payload, _| Ok(payload))
    }

    #[test]
    fn identity_pipeline_preserves_frames() {
        let mut p = Pipeline::new(vec![passthrough("a"), passthrough("b")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 5);
        for (i, out) in outputs.iter().enumerate() {
            let v: u64 = from_frame(out.clone()).unwrap();
            assert_eq!(v, i as u64);
        }
        assert_eq!(stats.latencies.len(), 5);
        assert_eq!(stats.link_bytes.len(), 3);
        assert!(stats.total_bytes() > 0);
    }

    #[test]
    fn stages_transform_in_order() {
        let double = StageSpec::new("double", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v * 2)))
        });
        let inc = StageSpec::new("inc", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            Ok(to_frame(&(v + 1)))
        });
        let mut p = Pipeline::new(vec![double, inc]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&10u64)]).unwrap();
        let v: u64 = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, 21);
    }

    #[test]
    fn empty_pipeline_rejected() {
        assert!(Pipeline::new(vec![]).is_err());
        assert!(PipelineBuilder::<u64, u64>::new().build().is_err());
    }

    #[test]
    fn worker_pool_usable_from_stage() {
        let stage = StageSpec::new("parallel", 4, |payload, pool| {
            let v: Vec<i64> = from_frame(payload)?;
            let n = v.len();
            let v = std::sync::Arc::new(v);
            let out = pool.map_ranges(n, move |r| r.map(|i| v[i] * 3).collect::<Vec<i64>>());
            Ok(to_frame(&out))
        });
        let mut p = Pipeline::new(vec![stage]).unwrap();
        let (outputs, _) = p.process_stream(vec![to_frame(&vec![1i64, 2, 3, 4, 5])]).unwrap();
        let v: Vec<i64> = from_frame(outputs[0].clone()).unwrap();
        assert_eq!(v, vec![3, 6, 9, 12, 15]);
    }

    #[test]
    fn pipelining_overlaps_requests() {
        // Two stages each sleeping 30 ms: serial time for 4 requests would
        // be 240 ms; pipelined it is ~150 ms. Check makespan < serial.
        let slow = |name: &str| {
            StageSpec::new(name, 1, |payload, _| {
                std::thread::sleep(Duration::from_millis(30));
                Ok(payload)
            })
        };
        let mut p = Pipeline::new(vec![slow("s1"), slow("s2")]).unwrap();
        let inputs: Vec<Bytes> = (0..4u64).map(|i| to_frame(&i)).collect();
        let (outputs, stats) = p.process_stream(inputs).unwrap();
        assert_eq!(outputs.len(), 4);
        assert!(
            stats.makespan < Duration::from_millis(220),
            "makespan {:?} shows no overlap",
            stats.makespan
        );
        assert!(stats.stage_busy.iter().all(|b| *b >= Duration::from_millis(100)));
    }

    #[test]
    fn stage_error_stops_pipeline_cleanly() {
        let ok = StageSpec::new("ok", 1, |payload, _| Ok(payload));
        let failing = StageSpec::new("boom", 1, |payload, _| {
            let v: u64 = from_frame(payload)?;
            if v == 2 {
                Err(crate::StreamError::Decode("poisoned frame".into()))
            } else {
                Ok(to_frame(&v))
            }
        });
        let mut p = Pipeline::new(vec![ok, failing, passthrough("tail")]).unwrap();
        let inputs: Vec<Bytes> = (0..5u64).map(|i| to_frame(&i)).collect();
        let err = p.process_stream(inputs).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("boom"), "error should name the stage: {msg}");
        assert!(msg.contains("poisoned frame"), "{msg}");
    }

    #[test]
    fn per_request_latency_recorded() {
        let mut p = Pipeline::new(vec![StageSpec::new("s", 1, |payload, _| {
            std::thread::sleep(Duration::from_millis(10));
            Ok(payload)
        })])
        .unwrap();
        let (_, stats) = p.process_stream(vec![to_frame(&1u64), to_frame(&2u64)]).unwrap();
        for l in &stats.latencies {
            assert!(*l >= Duration::from_millis(9), "latency {l:?}");
        }
        assert!(stats.mean_latency() >= Duration::from_millis(9));
    }

    #[test]
    fn mean_latency_of_empty_run_is_zero() {
        // Division-by-zero guard: zero completed requests must not panic.
        let stats = PipelineStats {
            latencies: vec![],
            makespan: Duration::ZERO,
            link_bytes: vec![0, 0],
            stage_busy: vec![],
            stages: vec![],
        };
        assert_eq!(stats.mean_latency(), Duration::ZERO);

        // And an actual run with zero inputs takes the same path.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("id", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![]).unwrap();
        assert!(out.is_empty());
        assert_eq!(stats.mean_latency(), Duration::ZERO);
    }

    #[test]
    fn typed_owned_hops_move_messages_without_serialization() {
        // u64 → Vec<u64> → String with no .link(): every hop is owned,
        // none of the message types even need a wire codec impl.
        struct Fan;
        impl Stage for Fan {
            type In = u64;
            type Out = Vec<u64>;
            fn process(&self, v: u64, _: &mut StageContext) -> Result<Vec<u64>, StreamError> {
                Ok((0..v).collect())
            }
        }
        let p = TypedPipeline::<u64, String>::builder()
            .stage("fan", 1, Fan)
            .stage(
                "fmt",
                1,
                stage_fn(|v: Vec<u64>, _: &mut StageContext| Ok(v.len().to_string())),
            )
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![3, 7]).unwrap();
        assert_eq!(out, vec!["3".to_string(), "7".to_string()]);
        assert_eq!(stats.link_bytes, vec![0, 0, 0], "owned hops serialize nothing");
        assert_eq!(stats.stages.len(), 2);
        assert_eq!(stats.stages[0].items_in, 2);
        assert_eq!(stats.stages[0].items_out, 2);
        assert_eq!(stats.stages[1].name, "fmt");
    }

    #[test]
    fn typed_wire_hop_counts_bytes_only_at_boundary() {
        // Owned hop into "a", wire boundary between "a" and "b", owned
        // hop to the sink: only the middle hop carries serialized bytes.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("a", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v * 2)))
            .link()
            .stage("b", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![10, 20]).unwrap();
        assert_eq!(out, vec![21, 41]);
        assert_eq!(stats.link_bytes[0], 0);
        assert_eq!(stats.link_bytes[1], 2 * 8, "two u64 frames over the wire hop");
        assert_eq!(stats.link_bytes[2], 0);
        assert_eq!(stats.stages[0].bytes_serialized, 16, "sender pays the encode");
        assert_eq!(stats.stages[1].bytes_serialized, 0);
    }

    #[test]
    fn typed_source_and_sink_links_serialize_ends() {
        let p = TypedPipeline::<u64, u64>::builder()
            .link() // client → first stage
            .stage("id", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .link() // last stage → client
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![1, 2, 3]).unwrap();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(stats.link_bytes, vec![24, 24]);
    }

    #[test]
    fn stage_reports_record_compute_and_queue_wait() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "slow",
                2,
                stage_fn(|v: u64, _: &mut StageContext| {
                    std::thread::sleep(Duration::from_millis(5));
                    Ok(v)
                }),
            )
            .build()
            .unwrap();
        let (_, stats) = p.process_stream((0..4).collect()).unwrap();
        let r = &stats.stages[0];
        assert_eq!(r.name, "slow");
        assert_eq!(r.threads, 2);
        assert_eq!(r.items_in, 4);
        assert_eq!(r.items_out, 4);
        assert!(r.compute >= Duration::from_millis(4 * 5 - 2), "compute {:?}", r.compute);
        // Requests are injected back-to-back, so later ones queue while
        // the first is in the handler.
        assert!(r.queue_wait > Duration::ZERO, "queue wait {:?}", r.queue_wait);
        assert_eq!(r.errors, 0);
    }

    #[test]
    fn mid_pipeline_error_drains_cleanly_under_backpressure() {
        // A failing middle stage with a tiny hop capacity and many
        // in-flight requests: the run must terminate (no deadlock, all
        // scoped threads join), surface the error, and name the stage.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("head", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .stage(
                "mid",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 10 {
                        Err(StreamError::Stage("tensor shape mismatch".into()))
                    } else {
                        Ok(v)
                    }
                }),
            )
            .stage("tail", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .with_capacity(2)
            .build()
            .unwrap();
        let err = p.process_stream((0..50).collect()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("mid"), "error should name the stage: {msg}");
        assert!(msg.contains("tensor shape mismatch"), "{msg}");
    }

    #[test]
    fn error_in_first_stage_with_pending_injections_terminates() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "gate",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 0 {
                        Err(StreamError::Stage("rejected".into()))
                    } else {
                        Ok(v)
                    }
                }),
            )
            .with_capacity(1)
            .build()
            .unwrap();
        // First request fails while dozens more wait to be injected; the
        // source must observe the closed channel instead of blocking.
        let err = p.process_stream((0..64).collect()).unwrap_err();
        assert!(err.to_string().contains("gate"), "{err}");
    }

    #[test]
    fn expired_deadline_sheds_items_but_run_succeeds() {
        // A zero budget expires before the first stage dequeues anything:
        // every item is shed, none reach the output, the run still Oks.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("work", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .with_deadline(Duration::ZERO)
            .build()
            .unwrap();
        let (out, stats) = p.process_stream((0..8).collect()).unwrap();
        assert!(out.is_empty(), "expired items must be shed, got {out:?}");
        assert_eq!(stats.deadline_expired(), 8);
        assert_eq!(stats.stages[0].items_in, 8);
        assert_eq!(stats.stages[0].items_out, 0);
        assert_eq!(stats.stages[0].errors, 0, "shedding is not an error");
    }

    #[test]
    fn generous_deadline_passes_everything_through() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("work", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)))
            .with_deadline(Duration::from_secs(60))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![1, 2, 3]).unwrap();
        assert_eq!(out, vec![2, 3, 4]);
        assert_eq!(stats.deadline_expired(), 0);
    }

    #[test]
    fn deadline_propagates_across_stages() {
        // A slow first stage eats the whole budget, so a later stage does
        // the shedding: deadlines must travel with the item, not reset
        // per hop.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "slow",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    std::thread::sleep(Duration::from_millis(30));
                    Ok(v)
                }),
            )
            .stage("late", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v)))
            .with_deadline(Duration::from_millis(5))
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![1, 2]).unwrap();
        assert!(out.is_empty(), "budget spent upstream, got {out:?}");
        assert_eq!(stats.deadline_expired(), 2, "every item shed somewhere");
        // The first item passes "slow" with budget left, so only the
        // downstream stage can shed it — the deadline travelled the hop.
        assert!(stats.stages[1].deadline_expired >= 1, "the late stage sheds");
    }

    #[test]
    fn watchdog_flags_stalled_stage_by_name() {
        // The first item wedges the stage far longer than the window
        // while more input sits queued behind it — the watchdog must
        // diagnose the stall instead of the call just taking forever.
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "wedged",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 0 {
                        std::thread::sleep(Duration::from_millis(400));
                    }
                    Ok(v)
                }),
            )
            .with_watchdog(Duration::from_millis(60))
            .with_capacity(2)
            .build()
            .unwrap();
        let err = p.process_stream((0..6).collect()).unwrap_err();
        match err {
            StreamError::Stalled { stage } => assert_eq!(stage, "wedged"),
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_stays_quiet_on_a_healthy_run() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "steady",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    std::thread::sleep(Duration::from_millis(2));
                    Ok(v)
                }),
            )
            .with_watchdog(Duration::from_millis(500))
            .build()
            .unwrap();
        let (out, _) = p.process_stream((0..10).collect()).unwrap();
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn quarantine_drops_poison_item_and_stream_survives() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "risky",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 3 {
                        panic!("poison item {v}");
                    }
                    Ok(v * 10)
                }),
            )
            .with_quarantine(true)
            .build()
            .unwrap();
        let (out, stats) = p.process_stream((0..6).collect()).unwrap();
        assert_eq!(out, vec![0, 10, 20, 40, 50], "only the poison item is missing");
        assert_eq!(stats.quarantined(), 1);
        assert_eq!(stats.stages[0].errors, 0, "quarantine is not a stage error");
    }

    #[test]
    fn panic_without_quarantine_is_a_clean_stage_error() {
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "risky",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    if v == 2 {
                        panic!("bad tensor");
                    }
                    Ok(v)
                }),
            )
            .build()
            .unwrap();
        let err = p.process_stream((0..5).collect()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("risky"), "error should name the stage: {msg}");
        assert!(msg.contains("panicked"), "{msg}");
        assert!(msg.contains("bad tensor"), "original payload must survive: {msg}");
    }

    #[test]
    fn quarantine_catches_worker_pool_panics_with_payload() {
        // The panic happens on a pool worker thread; map_ranges re-raises
        // the original payload on the stage thread, where the quarantine
        // boundary catches it.
        let p = TypedPipeline::<Vec<u64>, Vec<u64>>::builder()
            .stage(
                "par",
                2,
                stage_fn(|v: Vec<u64>, cx: &mut StageContext| {
                    let v = Arc::new(v);
                    let n = v.len();
                    let v2 = Arc::clone(&v);
                    Ok(cx.pool().map_ranges(n, move |r| {
                        r.map(|i| {
                            if v2[i] == 99 {
                                panic!("poison element");
                            }
                            v2[i] + 1
                        })
                        .collect()
                    }))
                }),
            )
            .with_quarantine(true)
            .build()
            .unwrap();
        let (out, stats) = p.process_stream(vec![vec![1, 2], vec![99], vec![3]]).unwrap();
        assert_eq!(out, vec![vec![2, 3], vec![4]]);
        assert_eq!(stats.quarantined(), 1);
    }

    #[test]
    fn queue_depth_high_water_mark_reported() {
        // One slow stage with many queued items: max observed depth must
        // exceed 1 (items stack up behind the handler).
        let p = TypedPipeline::<u64, u64>::builder()
            .stage(
                "slow",
                1,
                stage_fn(|v: u64, _: &mut StageContext| {
                    std::thread::sleep(Duration::from_millis(3));
                    Ok(v)
                }),
            )
            .with_capacity(8)
            .build()
            .unwrap();
        let (_, stats) = p.process_stream((0..12).collect()).unwrap();
        assert!(stats.max_queue_depth() >= 2, "depth {}", stats.max_queue_depth());
    }

    #[test]
    fn arc_shared_stage_runs_in_pipeline() {
        let shared = Arc::new(stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)));
        let p = TypedPipeline::<u64, u64>::builder()
            .stage("shared", 1, Arc::clone(&shared))
            .build()
            .unwrap();
        let (out, _) = p.process_stream(vec![41]).unwrap();
        assert_eq!(out, vec![42]);
    }
}
