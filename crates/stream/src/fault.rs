//! Deterministic, seeded fault injection for framed transports.
//!
//! Wraps any [`FrameSender`]/[`FrameReceiver`] pair and injects failures
//! according to a [`FaultPlan`]: connection kills after every N *sent*
//! frames, per-frame send delays, stalled reads, and header-region bit
//! corruption on received frames. Every decision derives from the plan's
//! seed and the running frame counters, so a failing run replays
//! exactly — the chaos tests assert bit-identical inference results
//! under seeded kills.
//!
//! The shared [`FaultState`] **survives reconnects**: the client keeps
//! the `Arc` and wraps each new connection with the same state, so the
//! frame budget keeps counting across connections instead of resetting —
//! a plan of `kill_every: 3` kills every third frame of the whole
//! session, not of each connection. After a kill, [`FaultState::revive`]
//! re-arms the wrapper for the next connection.
//!
//! Kills count **sent** frames only. Counting receives too would let a
//! small budget (`kill_every: 3`) fire mid-item on every replay attempt
//! and livelock the resume loop; counting sends guarantees the window
//! between kills always admits the two linear-round requests an item
//! needs.
//!
//! The module compiles only with the `fault-injection` cargo feature, so
//! release deployments carry none of this code.

use crate::link::Frame;
use crate::tcp::{FrameReceiver, FrameSender};
use crate::{StreamError, TransportErrorKind};
use bytes::Bytes;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// SplitMix64 — the same deterministic mixer the protocol stages use for
/// per-request randomness.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A deterministic fault schedule. The default plan injects nothing.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// Seed for every pseudo-random decision (corruption bit positions).
    pub seed: u64,
    /// Kill the connection on every Nth sent frame: the Nth send fails
    /// with `Transport { kind: Send, .. }`, and both halves refuse all
    /// traffic until [`FaultState::revive`] (i.e. until reconnect).
    pub kill_every: Option<u64>,
    /// Sleep this long before each frame send (a slow sender).
    pub delay: Option<Duration>,
    /// Sleep this long before each frame receive (a stalled read; with a
    /// read deadline configured this surfaces timeouts). By default the
    /// stall applies to *every* receive; see
    /// [`stall_every`](FaultPlan::stall_every) to make it periodic.
    pub stall: Option<Duration>,
    /// Stall only every Nth receive instead of all of them. A periodic
    /// stall is what the watchdog chaos tests need: the client's stall
    /// detector fires, it resumes, and the replayed item's reads sail
    /// through — stalling every read would livelock the resume loop.
    /// `None` preserves the stall-every-read behavior.
    pub stall_every: Option<u64>,
    /// Stall exactly the Nth receive of the whole session (1-based,
    /// counted across reconnects), once — the crash test's freeze
    /// point: the client parks in a known read while the harness
    /// SIGKILLs the server behind it. Takes precedence over
    /// [`stall_every`](FaultPlan::stall_every); still needs
    /// [`stall`](FaultPlan::stall) for the duration.
    pub stall_at: Option<u64>,
    /// Flip one seeded bit in the header region (first 16 bytes) of
    /// every Nth received frame's payload — corrupt framing the decoder
    /// must reject, never silently accept.
    pub corrupt_every: Option<u64>,
    /// Poison item: the *model provider* (not the transport wrappers)
    /// panics while executing the linear stage of the item with this
    /// sequence number — the chaos driver for the server's poison-item
    /// quarantine boundary.
    pub poison_seq: Option<u64>,
}

impl FaultPlan {
    /// True when the plan injects at least one kind of fault.
    pub fn is_active(&self) -> bool {
        self.kill_every.is_some()
            || self.delay.is_some()
            || self.stall.is_some()
            || self.corrupt_every.is_some()
            || self.poison_seq.is_some()
    }

    /// Reads a plan from `PP_FAULT_*` environment variables
    /// (`PP_FAULT_SEED`, `PP_FAULT_KILL_EVERY`, `PP_FAULT_DELAY_MS`,
    /// `PP_FAULT_STALL_MS`, `PP_FAULT_STALL_EVERY`, `PP_FAULT_STALL_AT`,
    /// `PP_FAULT_CORRUPT_EVERY`, `PP_FAULT_POISON_SEQ`); `None` when no
    /// fault variable is set. Lets the example binaries run under
    /// injected faults without recompilation.
    pub fn from_env() -> Option<FaultPlan> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// [`FaultPlan::from_env`] with an injectable variable lookup, so the
    /// parsing is testable without mutating process-global state.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Option<FaultPlan> {
        let num = |k: &str| lookup(k).and_then(|v| v.parse::<u64>().ok());
        let plan = FaultPlan {
            seed: num("PP_FAULT_SEED").unwrap_or(0),
            kill_every: num("PP_FAULT_KILL_EVERY").filter(|&k| k > 0),
            delay: num("PP_FAULT_DELAY_MS").map(Duration::from_millis),
            stall: num("PP_FAULT_STALL_MS").map(Duration::from_millis),
            stall_every: num("PP_FAULT_STALL_EVERY").filter(|&k| k > 0),
            stall_at: num("PP_FAULT_STALL_AT").filter(|&k| k > 0),
            corrupt_every: num("PP_FAULT_CORRUPT_EVERY").filter(|&k| k > 0),
            poison_seq: num("PP_FAULT_POISON_SEQ"),
        };
        plan.is_active().then_some(plan)
    }

    /// Wraps the plan into the shared state a session threads through
    /// its (re)connections.
    pub fn into_state(self) -> Arc<Mutex<FaultState>> {
        Arc::new(Mutex::new(FaultState::new(self)))
    }
}

/// Counters and kill latch shared by the sender and receiver wrappers —
/// and, across reconnects, by every connection of a session.
#[derive(Debug)]
pub struct FaultState {
    plan: FaultPlan,
    frames_sent: u64,
    frames_received: u64,
    recv_gates: u64,
    killed: bool,
    faults_injected: u64,
}

impl FaultState {
    /// Fresh state for a plan: nothing sent, connection alive.
    pub fn new(plan: FaultPlan) -> Self {
        FaultState {
            plan,
            frames_sent: 0,
            frames_received: 0,
            recv_gates: 0,
            killed: false,
            faults_injected: 0,
        }
    }

    /// Total faults injected so far (kills + corruptions).
    pub fn faults_injected(&self) -> u64 {
        self.faults_injected
    }

    /// Whether the current connection has been killed.
    pub fn is_killed(&self) -> bool {
        self.killed
    }

    /// Re-arms a killed connection — called by the client after it
    /// reconnects. Counters keep running; only the kill latch resets.
    pub fn revive(&mut self) {
        self.killed = false;
    }

    fn killed_err(op: &str, kind: TransportErrorKind) -> StreamError {
        StreamError::transport(kind, format!("fault injection: connection killed ({op})"))
    }

    /// Send-side gate: returns the configured delay, or the injected
    /// failure. The Nth send under `kill_every: N` consumes its slot in
    /// the frame count but is never transmitted.
    fn on_send(&mut self) -> Result<Option<Duration>, StreamError> {
        if self.killed {
            return Err(Self::killed_err("send on dead connection", TransportErrorKind::Send));
        }
        self.frames_sent += 1;
        if let Some(k) = self.plan.kill_every {
            if self.frames_sent.is_multiple_of(k) {
                self.killed = true;
                self.faults_injected += 1;
                return Err(Self::killed_err(
                    &format!("kill after frame {}", self.frames_sent),
                    TransportErrorKind::Send,
                ));
            }
        }
        Ok(self.plan.delay)
    }

    /// Receive-side gate, before the read. With `stall_every: Some(k)`
    /// only every kth receive of the whole session stalls (the counter,
    /// like the kill budget, survives reconnects); without it every
    /// receive stalls.
    fn on_recv(&mut self) -> Result<Option<Duration>, StreamError> {
        if self.killed {
            return Err(Self::killed_err("recv on dead connection", TransportErrorKind::Recv));
        }
        let Some(stall) = self.plan.stall else { return Ok(None) };
        self.recv_gates += 1;
        // A monotone counter equals `at` exactly once, so `stall_at`
        // needs no extra latch to be single-shot.
        let due = match (self.plan.stall_at, self.plan.stall_every) {
            (Some(at), _) => self.recv_gates == at,
            (None, Some(k)) => self.recv_gates.is_multiple_of(k),
            (None, None) => true,
        };
        if due {
            self.faults_injected += 1;
            Ok(Some(stall))
        } else {
            Ok(None)
        }
    }

    /// Receive-side mutation, after the read: seeded header-region bit
    /// corruption on every Nth frame.
    fn on_received(&mut self, frame: &mut Frame) {
        self.frames_received += 1;
        if let Some(k) = self.plan.corrupt_every {
            if self.frames_received.is_multiple_of(k) && !frame.payload.is_empty() {
                self.faults_injected += 1;
                let region = frame.payload.len().min(16);
                let bit = mix(self.plan.seed ^ self.frames_received) as usize % (region * 8);
                let mut bytes = frame.payload.to_vec();
                bytes[bit / 8] ^= 1 << (bit % 8);
                frame.payload = Bytes::from(bytes);
            }
        }
    }
}

/// Fault-injecting wrapper around a [`FrameSender`].
pub struct FaultSender<S> {
    inner: S,
    state: Arc<Mutex<FaultState>>,
}

impl<S: FrameSender> FaultSender<S> {
    /// Wraps `inner`, sharing `state` with the paired receiver (and with
    /// future connections of the same session).
    pub fn new(inner: S, state: Arc<Mutex<FaultState>>) -> Self {
        FaultSender { inner, state }
    }

    fn gate(&mut self) -> Result<(), StreamError> {
        let delay = self.state.lock().on_send()?;
        if let Some(d) = delay {
            std::thread::sleep(d);
        }
        Ok(())
    }
}

impl<S: FrameSender> FrameSender for FaultSender<S> {
    fn send(&mut self, frame: &Frame) -> Result<(), StreamError> {
        self.gate()?;
        self.inner.send(frame)
    }

    fn send_payload(&mut self, payload: Bytes) -> Result<u64, StreamError> {
        self.gate()?;
        self.inner.send_payload(payload)
    }

    fn send_payload_deadline(
        &mut self,
        payload: Bytes,
        deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError> {
        self.gate()?;
        self.inner.send_payload_deadline(payload, deadline_ms)
    }
}

/// Fault-injecting wrapper around a [`FrameReceiver`].
pub struct FaultReceiver<R> {
    inner: R,
    state: Arc<Mutex<FaultState>>,
}

impl<R: FrameReceiver> FaultReceiver<R> {
    /// Wraps `inner`; see [`FaultSender::new`].
    pub fn new(inner: R, state: Arc<Mutex<FaultState>>) -> Self {
        FaultReceiver { inner, state }
    }
}

impl<R: FrameReceiver> FrameReceiver for FaultReceiver<R> {
    fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        let stall = self.state.lock().on_recv()?;
        if let Some(d) = stall {
            std::thread::sleep(d);
        }
        match self.inner.recv()? {
            Some(mut frame) => {
                self.state.lock().on_received(&mut frame);
                Ok(Some(frame))
            }
            None => Ok(None),
        }
    }

    fn set_max_frame(&mut self, max_frame: usize) {
        self.inner.set_max_frame(max_frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// In-memory transport for exercising the wrappers without sockets.
    #[derive(Default)]
    struct VecSender {
        sent: Vec<Frame>,
        next_seq: u64,
    }

    impl FrameSender for VecSender {
        fn send(&mut self, frame: &Frame) -> Result<(), StreamError> {
            self.sent.push(frame.clone());
            self.next_seq = self.next_seq.max(frame.seq + 1);
            Ok(())
        }
        fn send_payload(&mut self, payload: Bytes) -> Result<u64, StreamError> {
            let seq = self.next_seq;
            self.send(&Frame::new(seq, payload))?;
            Ok(seq)
        }
        fn send_payload_deadline(
            &mut self,
            payload: Bytes,
            deadline_ms: Option<u64>,
        ) -> Result<u64, StreamError> {
            let seq = self.next_seq;
            self.send(&Frame { seq, deadline_ms, payload })?;
            Ok(seq)
        }
    }

    struct VecReceiver {
        frames: std::vec::IntoIter<Frame>,
    }

    impl FrameReceiver for VecReceiver {
        fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
            Ok(self.frames.next())
        }
    }

    fn frames(n: u64) -> VecReceiver {
        VecReceiver {
            frames: (0..n)
                .map(|i| Frame::new(i, Bytes::from(vec![i as u8; 32])))
                .collect::<Vec<_>>()
                .into_iter(),
        }
    }

    #[test]
    fn kill_every_fires_on_exactly_the_nth_send() {
        let state = FaultPlan { kill_every: Some(3), ..Default::default() }.into_state();
        let mut tx = FaultSender::new(VecSender::default(), Arc::clone(&state));
        assert!(tx.send_payload(Bytes::from_static(b"a")).is_ok());
        assert!(tx.send_payload(Bytes::from_static(b"b")).is_ok());
        let err = tx.send_payload(Bytes::from_static(b"c")).unwrap_err();
        assert!(matches!(err, StreamError::Transport { kind: TransportErrorKind::Send, .. }));
        assert_eq!(tx.inner.sent.len(), 2, "the killed frame is never transmitted");
        assert!(state.lock().is_killed());
        assert_eq!(state.lock().faults_injected(), 1);

        // Dead until revived; the counter does not advance while dead.
        assert!(tx.send_payload(Bytes::from_static(b"d")).is_err());
        state.lock().revive();
        assert!(tx.send_payload(Bytes::from_static(b"e")).is_ok());
        assert!(tx.send_payload(Bytes::from_static(b"f")).is_ok());
        let err = tx.send_payload(Bytes::from_static(b"g")).unwrap_err();
        assert!(err.to_string().contains("frame 6"), "budget spans revives: {err}");
    }

    #[test]
    fn kill_latch_blocks_the_receiver_too() {
        let state = FaultPlan { kill_every: Some(1), ..Default::default() }.into_state();
        let mut tx = FaultSender::new(VecSender::default(), Arc::clone(&state));
        let mut rx = FaultReceiver::new(frames(3), Arc::clone(&state));
        assert!(rx.recv().unwrap().is_some(), "alive before the kill");
        assert!(tx.send_payload(Bytes::new()).is_err());
        let err = rx.recv().unwrap_err();
        assert!(matches!(err, StreamError::Transport { kind: TransportErrorKind::Recv, .. }));
        state.lock().revive();
        assert!(rx.recv().unwrap().is_some());
    }

    #[test]
    fn corruption_is_deterministic_and_confined_to_the_header_region() {
        let run = |seed: u64| -> Vec<Vec<u8>> {
            let state =
                FaultPlan { seed, corrupt_every: Some(2), ..Default::default() }.into_state();
            let mut rx = FaultReceiver::new(frames(4), state);
            std::iter::from_fn(|| rx.recv().unwrap()).map(|f| f.payload.to_vec()).collect()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same seed, same corruption");
        let clean: Vec<Vec<u8>> =
            std::iter::from_fn({
                let mut it = frames(4);
                move || it.recv().unwrap()
            })
            .map(|f| f.payload.to_vec())
            .collect();
        assert_eq!(a[0], clean[0], "odd frames pass untouched");
        assert_eq!(a[2], clean[2]);
        for i in [1usize, 3] {
            let diff: Vec<usize> =
                (0..32).filter(|&j| a[i][j] != clean[i][j]).collect();
            assert_eq!(diff.len(), 1, "exactly one corrupted byte");
            assert!(diff[0] < 16, "corruption stays in the header region");
            assert_eq!(
                (a[i][diff[0]] ^ clean[i][diff[0]]).count_ones(),
                1,
                "exactly one flipped bit"
            );
        }
        let c = run(12);
        assert_ne!(a, c, "different seed, different corruption");
    }

    #[test]
    fn from_lookup_parses_the_env_schema() {
        assert!(FaultPlan::from_lookup(|_| None).is_none(), "no vars, no plan");
        let vars = |k: &str| match k {
            "PP_FAULT_SEED" => Some("9".to_string()),
            "PP_FAULT_KILL_EVERY" => Some("17".to_string()),
            "PP_FAULT_DELAY_MS" => Some("5".to_string()),
            "PP_FAULT_STALL_EVERY" => Some("4".to_string()),
            "PP_FAULT_STALL_AT" => Some("6".to_string()),
            "PP_FAULT_POISON_SEQ" => Some("13".to_string()),
            _ => None,
        };
        let plan = FaultPlan::from_lookup(vars).expect("kill var activates the plan");
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.kill_every, Some(17));
        assert_eq!(plan.delay, Some(Duration::from_millis(5)));
        assert_eq!(plan.stall, None);
        assert_eq!(plan.stall_every, Some(4));
        assert_eq!(plan.stall_at, Some(6));
        assert_eq!(plan.corrupt_every, None);
        assert_eq!(plan.poison_seq, Some(13));
        // A zero interval would fire on every frame forever; filtered out.
        assert!(
            FaultPlan::from_lookup(|k| (k == "PP_FAULT_KILL_EVERY").then(|| "0".into()))
                .is_none()
        );
    }

    #[test]
    fn stall_every_fires_periodically_and_counts_as_a_fault() {
        let state = FaultPlan {
            stall: Some(Duration::from_millis(1)),
            stall_every: Some(3),
            ..Default::default()
        }
        .into_state();
        let mut rx = FaultReceiver::new(frames(6), Arc::clone(&state));
        for _ in 0..6 {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(state.lock().faults_injected(), 2, "receives 3 and 6 stalled");
    }

    #[test]
    fn stall_at_fires_exactly_once_and_overrides_stall_every() {
        let state = FaultPlan {
            stall: Some(Duration::from_millis(1)),
            stall_every: Some(1),
            stall_at: Some(2),
            ..Default::default()
        }
        .into_state();
        let mut rx = FaultReceiver::new(frames(5), Arc::clone(&state));
        for _ in 0..5 {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(state.lock().faults_injected(), 1, "only receive 2 stalled");
    }

    #[test]
    fn stall_without_period_fires_on_every_recv() {
        let state =
            FaultPlan { stall: Some(Duration::from_millis(1)), ..Default::default() }.into_state();
        let mut rx = FaultReceiver::new(frames(3), Arc::clone(&state));
        for _ in 0..3 {
            rx.recv().unwrap().unwrap();
        }
        assert_eq!(state.lock().faults_injected(), 3);
    }

    #[test]
    fn inactive_plan_is_a_transparent_wrapper() {
        let state = FaultPlan::default().into_state();
        let mut tx = FaultSender::new(VecSender::default(), Arc::clone(&state));
        let mut rx = FaultReceiver::new(frames(2), Arc::clone(&state));
        for _ in 0..5 {
            tx.send_payload(Bytes::from_static(b"x")).unwrap();
        }
        assert_eq!(tx.inner.sent.len(), 5);
        assert_eq!(rx.recv().unwrap().unwrap().payload, Bytes::from(vec![0u8; 32]));
        assert_eq!(state.lock().faults_injected(), 0);
    }
}
