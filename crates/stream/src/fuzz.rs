//! Seeded structure-aware wire fuzzing (behind the `fault-injection`
//! feature, like [`crate::fault`]).
//!
//! The decode surface of the deployment — frame headers, length
//! prefixes, message payloads — faces whatever bytes a peer chooses to
//! send. This module turns a *valid recorded* frame stream into hostile
//! variants by applying structure-aware mutations: length-prefix
//! inflation, truncation, bit flips, header field swaps, frame
//! reorder/replay, and mid-handshake garbage frames. The fuzz harness
//! (`tests/fuzz.rs` in the core crate) writes the mutated byte streams
//! at a live server on both serve paths and asserts the process neither
//! panics, nor hangs past a watchdog, nor allocates beyond the resource
//! governor's ceiling.
//!
//! Everything is deterministic from one `u64` seed (SplitMix64, the
//! same generator the fault plan uses), so a CI failure replays exactly
//! with `PP_FUZZ_SEED=<seed>` — no corpus files, no new dependencies.

use crate::link::{Frame, NO_DEADLINE};

/// SplitMix64 — the same mixer the fault layer uses for seeded
/// decisions: cheap, and every output bit depends on every input bit.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One recorded wire frame, owned so mutations can edit it in place.
/// `deadline_ms` stores the raw on-wire value ([`NO_DEADLINE`] = none).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RawFrame {
    pub seq: u64,
    pub deadline_ms: u64,
    pub payload: Vec<u8>,
}

impl RawFrame {
    /// A frame with no deadline, as the transport's `send_payload`
    /// stamps them.
    pub fn new(seq: u64, payload: Vec<u8>) -> Self {
        RawFrame { seq, deadline_ms: NO_DEADLINE, payload }
    }

    /// Records a runtime [`Frame`].
    pub fn from_frame(f: &Frame) -> Self {
        RawFrame {
            seq: f.seq,
            deadline_ms: f.deadline_ms.unwrap_or(NO_DEADLINE),
            payload: f.payload.to_vec(),
        }
    }

    /// Appends this frame's wire encoding —
    /// `seq u64 LE | deadline u64 LE | len u32 LE | payload` — exactly
    /// as `TcpFrameSender::send` writes it. `lie` overrides the length
    /// prefix (the payload bytes stay truthful), which is how the
    /// inflated-prefix mutation is expressed.
    pub fn encode_into(&self, out: &mut Vec<u8>, lie: Option<u32>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.deadline_ms.to_le_bytes());
        let len = lie.unwrap_or(self.payload.len() as u32);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
    }
}

/// The structure-aware mutation classes. Each run applies 1–3 of them,
/// seeded, so streams range from "one subtle lie" to "thorough mangling".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mutation {
    /// One frame's length prefix claims more bytes than follow — the
    /// classic resource-exhaustion probe (up to a 4 GiB claim). The
    /// receiver must reject it at the governor ceiling *before*
    /// allocating, or starve on the missing bytes until EOF.
    InflateLen,
    /// The byte stream is cut short at a seeded offset, usually
    /// mid-frame.
    Truncate,
    /// 1–8 seeded bit flips anywhere in the encoded stream (headers and
    /// payloads alike).
    BitFlip,
    /// One frame's `seq` and `deadline_ms` header fields are swapped —
    /// type-confused but well-formed framing.
    FieldSwap,
    /// Two frames swap positions (breaks seq monotonicity and protocol
    /// order).
    Reorder,
    /// One frame is duplicated verbatim (a replayed seq).
    Replay,
    /// A garbage frame — valid header, seeded junk payload — is
    /// spliced in, possibly before the handshake completes.
    Garbage,
}

/// Every mutation class, in the order the seeded picker indexes them.
pub const ALL_MUTATIONS: [Mutation; 7] = [
    Mutation::InflateLen,
    Mutation::Truncate,
    Mutation::BitFlip,
    Mutation::FieldSwap,
    Mutation::Reorder,
    Mutation::Replay,
    Mutation::Garbage,
];

/// One mutated byte stream plus the mutation classes that produced it
/// (so a harness can assert class-specific counters, e.g. that an
/// inflated prefix showed up as a `FrameLimit` rejection).
#[derive(Clone, Debug)]
pub struct MutatedStream {
    pub bytes: Vec<u8>,
    pub mutations: Vec<Mutation>,
}

impl MutatedStream {
    /// Whether any applied mutation is of `class`.
    pub fn has(&self, class: Mutation) -> bool {
        self.mutations.contains(&class)
    }
}

/// Deterministic structure-aware mutator over recorded frame streams.
/// Same seed ⇒ same sequence of [`MutatedStream`]s, independent of
/// platform or process state.
pub struct WireFuzzer {
    seed: u64,
    counter: u64,
}

impl WireFuzzer {
    pub fn new(seed: u64) -> Self {
        WireFuzzer { seed, counter: 0 }
    }

    /// The seed this fuzzer replays (for failure messages).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn next(&mut self) -> u64 {
        self.counter += 1;
        mix(self.seed ^ self.counter.wrapping_mul(0x517c_c1b7_2722_0a95))
    }

    fn pick(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        (self.next() % n.max(1) as u64) as usize
    }

    /// Produces the next mutated variant of `frames`: applies 1–3
    /// seeded mutation classes, encodes, and returns the hostile byte
    /// stream ready to be written at a server socket.
    pub fn mutate_stream(&mut self, frames: &[RawFrame]) -> MutatedStream {
        let mut frames: Vec<RawFrame> = frames.to_vec();
        let mut mutations = Vec::new();
        let mut lie: Option<(usize, u32)> = None;
        let mut truncate = false;
        let mut bit_flips = 0usize;

        let n_mutations = 1 + self.pick(3);
        for _ in 0..n_mutations {
            let class = ALL_MUTATIONS[self.pick(ALL_MUTATIONS.len())];
            mutations.push(class);
            match class {
                Mutation::InflateLen => {
                    if frames.is_empty() {
                        continue;
                    }
                    let idx = self.pick(frames.len());
                    // Sweep the interesting magnitudes: a 4 GiB claim, a
                    // claim exactly at the 1 GiB legacy guard, and a
                    // plausible small lie the governor's negotiated
                    // ceiling still catches or EOF-starves.
                    let value = match self.pick(3) {
                        0 => u32::MAX,
                        1 => 1 << 30,
                        _ => frames[idx].payload.len() as u32 + 1 + self.pick(1 << 16) as u32,
                    };
                    lie = Some((idx, value));
                }
                Mutation::Truncate => truncate = true,
                Mutation::BitFlip => bit_flips += 1 + self.pick(8),
                Mutation::FieldSwap => {
                    if let Some(i) = self.index_of(&frames) {
                        let f = &mut frames[i];
                        std::mem::swap(&mut f.seq, &mut f.deadline_ms);
                    }
                }
                Mutation::Reorder => {
                    if frames.len() >= 2 {
                        let i = self.pick(frames.len());
                        let j = self.pick(frames.len());
                        frames.swap(i, j);
                    }
                }
                Mutation::Replay => {
                    if let Some(i) = self.index_of(&frames) {
                        let dup = frames[i].clone();
                        frames.insert(i, dup);
                    }
                }
                Mutation::Garbage => {
                    let at = self.pick(frames.len() + 1);
                    let len = 1 + self.pick(256);
                    let mut payload = Vec::with_capacity(len);
                    for k in 0..len {
                        payload.push((self.next() ^ k as u64) as u8);
                    }
                    frames.insert(at, RawFrame::new(self.next(), payload));
                }
            }
        }

        let mut bytes = Vec::new();
        for (i, f) in frames.iter().enumerate() {
            let frame_lie = lie.and_then(|(idx, v)| (idx == i).then_some(v));
            f.encode_into(&mut bytes, frame_lie);
        }
        if truncate && bytes.len() > 1 {
            let keep = 1 + self.pick(bytes.len() - 1);
            bytes.truncate(keep);
        }
        for _ in 0..bit_flips {
            if bytes.is_empty() {
                break;
            }
            let bit = self.pick(bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        MutatedStream { bytes, mutations }
    }

    fn index_of(&mut self, frames: &[RawFrame]) -> Option<usize> {
        (!frames.is_empty()).then(|| self.pick(frames.len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<RawFrame> {
        vec![
            RawFrame::new(0, vec![1, 2, 3, 4]),
            RawFrame::new(1, vec![5; 64]),
            RawFrame::new(2, vec![9; 16]),
        ]
    }

    #[test]
    fn encoding_matches_the_transport_frame_layout() {
        let f = RawFrame { seq: 7, deadline_ms: 1500, payload: vec![0xAB; 3] };
        let mut out = Vec::new();
        f.encode_into(&mut out, None);
        assert_eq!(out.len(), 20 + 3, "20-byte header plus payload");
        assert_eq!(&out[0..8], &7u64.to_le_bytes());
        assert_eq!(&out[8..16], &1500u64.to_le_bytes());
        assert_eq!(&out[16..20], &3u32.to_le_bytes());
        assert_eq!(&out[20..], &[0xAB; 3]);

        let mut lied = Vec::new();
        f.encode_into(&mut lied, Some(u32::MAX));
        assert_eq!(&lied[16..20], &u32::MAX.to_le_bytes(), "the prefix lies");
        assert_eq!(&lied[20..], &[0xAB; 3], "the payload does not");
    }

    #[test]
    fn same_seed_replays_the_exact_stream_sequence() {
        let frames = sample();
        let mut a = WireFuzzer::new(0xFEED);
        let mut b = WireFuzzer::new(0xFEED);
        for _ in 0..32 {
            let (sa, sb) = (a.mutate_stream(&frames), b.mutate_stream(&frames));
            assert_eq!(sa.bytes, sb.bytes);
            assert_eq!(sa.mutations, sb.mutations);
        }
        let mut c = WireFuzzer::new(0xBEEF);
        let diverged = (0..32).any(|_| c.mutate_stream(&frames).bytes != {
            let mut d = WireFuzzer::new(0xFEED);
            d.mutate_stream(&frames).bytes
        });
        assert!(diverged, "different seeds must diverge");
    }

    #[test]
    fn every_mutation_class_is_reachable() {
        let frames = sample();
        let mut fuzzer = WireFuzzer::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..256 {
            for m in fuzzer.mutate_stream(&frames).mutations {
                seen.insert(format!("{m:?}"));
            }
        }
        assert_eq!(seen.len(), ALL_MUTATIONS.len(), "all classes fire within 256 cases: {seen:?}");
    }

    #[test]
    fn mutated_streams_actually_differ_from_the_valid_encoding() {
        let frames = sample();
        let mut valid = Vec::new();
        for f in &frames {
            f.encode_into(&mut valid, None);
        }
        let mut fuzzer = WireFuzzer::new(42);
        let mutated = (0..64).filter(|_| fuzzer.mutate_stream(&frames).bytes != valid).count();
        assert!(mutated >= 60, "mutations must almost always change the bytes ({mutated}/64)");
    }
}
