//! # pp-stream-runtime
//!
//! A from-scratch distributed stream-processing substrate — the
//! workspace's substitute for AF-Stream [36], on which the paper's C++
//! prototype is built.
//!
//! The runtime models PP-Stream's execution architecture (paper Fig. 4):
//!
//! * a [`pipeline::Pipeline`] is an ordered chain of **stages** (one per
//!   AF-Stream worker / merged primitive layer), each running on its own
//!   OS thread, connected by byte-counted **links**;
//! * inference requests flow through the chain as serialized **frames**
//!   (tensors of ciphertexts or obfuscated values) — every hop pays real
//!   serialization/deserialization through the [`wire`] codec, as it
//!   would over the testbed's 10 Gbps NICs;
//! * inside a stage, a [`pool::WorkerPool`] provides the `y_i` threads
//!   that PP-Stream's load-balanced resource allocation assigns to the
//!   stage (Sec. IV-C), over which tensor partitions are parallelized
//!   (Sec. IV-D).
//!
//! Pipelining is where the performance comes from: with `k` stages,
//! request `j+1` occupies stage 1 while request `j` is in stage 2 —
//! the Exp#2 speed-up over the centralized `CipherBase`.
//!
//! ```
//! use pp_stream_runtime::{Pipeline, StageSpec};
//! use pp_stream_runtime::wire::{from_frame, to_frame};
//!
//! let double = StageSpec::new("double", 2, |frame, _pool| {
//!     let v: u64 = from_frame(frame)?;
//!     Ok(to_frame(&(v * 2)))
//! });
//! let mut pipeline = Pipeline::new(vec![double]).unwrap();
//! let (out, stats) = pipeline.process_stream(vec![to_frame(&21u64)]).unwrap();
//! assert_eq!(from_frame::<u64>(out[0].clone()).unwrap(), 42);
//! assert_eq!(stats.latencies.len(), 1);
//! ```

pub mod link;
pub mod pipeline;
pub mod pool;
pub mod tcp;
pub mod wire;

pub use link::{Link, LinkStats};
pub use pipeline::{Pipeline, PipelineStats, StageSpec};
pub use pool::WorkerPool;
pub use wire::{Decoder, Encoder, WireDecode, WireEncode};

/// Errors from the stream runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A frame failed to decode.
    Decode(String),
    /// A link was disconnected unexpectedly.
    Disconnected,
    /// Pipeline construction error.
    Config(String),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Decode(s) => write!(f, "decode error: {s}"),
            StreamError::Disconnected => write!(f, "link disconnected"),
            StreamError::Config(s) => write!(f, "pipeline config error: {s}"),
        }
    }
}

impl std::error::Error for StreamError {}
