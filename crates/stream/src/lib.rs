//! # pp-stream-runtime
//!
//! A from-scratch distributed stream-processing substrate — the
//! workspace's substitute for AF-Stream [36], on which the paper's C++
//! prototype is built.
//!
//! The runtime models PP-Stream's execution architecture (paper Fig. 4):
//!
//! * a [`pipeline::TypedPipeline`] is an ordered chain of typed
//!   [`stage::Stage`]s (one per AF-Stream worker / merged primitive
//!   layer), each running on its own OS thread and connected by bounded
//!   channels;
//! * co-located stages hand **owned messages** straight across the hop;
//!   hops marked with [`pipeline::PipelineBuilder::link`] are **wire
//!   boundaries** that serialize through the [`wire`] codec — bytes
//!   counted per hop, as they would be over the testbed's 10 Gbps NICs;
//! * inside a stage, a [`pool::WorkerPool`] provides the `y_i` threads
//!   that PP-Stream's load-balanced resource allocation assigns to the
//!   stage (Sec. IV-C), over which tensor partitions are parallelized
//!   (Sec. IV-D); the pool plus per-stage metrics reach the stage via a
//!   [`stage::StageContext`].
//!
//! Pipelining is where the performance comes from: with `k` stages,
//! request `j+1` occupies stage 1 while request `j` is in stage 2 —
//! the Exp#2 speed-up over the centralized `CipherBase`.
//!
//! ```
//! use pp_stream_runtime::{stage_fn, StageContext, TypedPipeline};
//!
//! let p = TypedPipeline::<u64, u64>::builder()
//!     .stage("double", 2, stage_fn(|v: u64, _: &mut StageContext| Ok(v * 2)))
//!     .link() // wire boundary: serialize, count bytes, deserialize
//!     .stage("inc", 1, stage_fn(|v: u64, _: &mut StageContext| Ok(v + 1)))
//!     .build()
//!     .unwrap();
//! let (out, stats) = p.process_stream(vec![20u64]).unwrap();
//! assert_eq!(out, vec![41]);
//! assert_eq!(stats.link_bytes, vec![0, 8, 0]);
//! assert_eq!(stats.stages.len(), 2);
//! ```
//!
//! The legacy closure-based [`Pipeline`]/[`StageSpec`] API remains as a
//! shim over the typed engine with every hop a wire boundary.

pub mod chan;
#[cfg(feature = "fault-injection")]
pub mod fault;
#[cfg(feature = "fault-injection")]
pub mod fuzz;
pub mod link;
pub mod pipeline;
pub mod pool;
pub mod stage;
pub mod tcp;
pub mod wire;

#[cfg(feature = "fault-injection")]
pub use fault::{FaultPlan, FaultReceiver, FaultSender, FaultState};
#[cfg(feature = "fault-injection")]
pub use fuzz::{Mutation, RawFrame, WireFuzzer};
pub use link::{Link, LinkStats, SeqValidator};
pub use pipeline::{BoxMsg, Pipeline, PipelineBuilder, PipelineStats, StageSpec, TypedPipeline};
pub use pool::WorkerPool;
pub use stage::{stage_fn, FnStage, Stage, StageContext, StageMetrics, StageReport};
pub use tcp::{FrameReceiver, FrameSender, RetryPolicy, TcpConfig, TcpFrameReceiver, TcpFrameSender};
pub use wire::{Decoder, Encoder, WireDecode, WireEncode};

/// What failed at the transport layer. Distinguishing the operation lets
/// an operator tell a refused connection from a dead peer from a stalled
/// network, without parsing message strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportErrorKind {
    /// Binding the listening socket failed.
    Bind,
    /// Accepting an inbound connection failed.
    Accept,
    /// Connecting to the peer failed (after all retries).
    Connect,
    /// Post-connect socket configuration (nodelay, timeouts, clone) failed.
    Setup,
    /// A socket write failed.
    Send,
    /// A socket read failed.
    Recv,
    /// A configured read/write deadline expired.
    Timeout,
    /// The peer disconnected in the middle of a frame (a clean shutdown
    /// only ever closes *between* frames).
    Eof,
    /// A received frame violated sequence monotonicity (reordered,
    /// duplicated, or replayed).
    Seq,
    /// The deployment handshake failed (version, key, or topology
    /// mismatch).
    Handshake,
    /// A frame's length prefix exceeded the receiver's frame-size
    /// ceiling (the resource governor's negotiated limit, or the
    /// pre-handshake cap). Rejected *before* any payload allocation —
    /// an adversarial prefix can never force the process to reserve
    /// memory it hasn't received.
    FrameLimit,
}

impl std::fmt::Display for TransportErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            TransportErrorKind::Bind => "bind",
            TransportErrorKind::Accept => "accept",
            TransportErrorKind::Connect => "connect",
            TransportErrorKind::Setup => "setup",
            TransportErrorKind::Send => "send",
            TransportErrorKind::Recv => "recv",
            TransportErrorKind::Timeout => "timeout",
            TransportErrorKind::Eof => "eof",
            TransportErrorKind::Seq => "seq",
            TransportErrorKind::Handshake => "handshake",
            TransportErrorKind::FrameLimit => "frame-limit",
        };
        f.write_str(s)
    }
}

/// Errors from the stream runtime.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// A frame failed to decode. Strictly for malformed *bytes* — socket
    /// and connection failures are [`StreamError::Transport`].
    Decode(String),
    /// A link was disconnected unexpectedly.
    Disconnected,
    /// Pipeline construction error.
    Config(String),
    /// A stage failed while processing a message.
    Stage(String),
    /// A transport (socket) operation failed: I/O errors, timeouts,
    /// mid-frame disconnects, sequence violations, handshake failures.
    Transport {
        /// Which transport operation failed.
        kind: TransportErrorKind,
        /// Human-readable context naming the failing protocol stage.
        context: String,
    },
    /// An item's end-to-end deadline expired before a stage started its
    /// expensive work. Per-item, never fatal to the session: overloaded
    /// pipelines shed the item and keep draining.
    DeadlineExceeded(String),
    /// The watchdog observed a stage with input queued but no progress
    /// for longer than the configured window. Unlike a dead socket this
    /// is an *alive-but-stuck* diagnosis, so it names the stage.
    Stalled {
        /// Name of the stage that stopped making progress.
        stage: String,
    },
}

impl StreamError {
    /// Convenience constructor for transport failures.
    pub fn transport(kind: TransportErrorKind, context: impl Into<String>) -> Self {
        StreamError::Transport { kind, context: context.into() }
    }

    /// Prefixes a transport error's context with the protocol stage that
    /// observed it (e.g. `"linear round 2 reply"`); other variants pass
    /// through unchanged.
    pub fn at_stage(self, stage: &str) -> Self {
        match self {
            StreamError::Transport { kind, context } => StreamError::Transport {
                kind,
                context: format!("{stage}: {context}"),
            },
            other => other,
        }
    }
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Decode(s) => write!(f, "decode error: {s}"),
            StreamError::Disconnected => write!(f, "link disconnected"),
            StreamError::Config(s) => write!(f, "pipeline config error: {s}"),
            StreamError::Stage(s) => write!(f, "stage error: {s}"),
            StreamError::Transport { kind, context } => {
                write!(f, "transport error ({kind}): {context}")
            }
            StreamError::DeadlineExceeded(s) => write!(f, "deadline exceeded: {s}"),
            StreamError::Stalled { stage } => {
                write!(f, "pipeline stalled: stage {stage:?} has input queued but made no progress")
            }
        }
    }
}

impl std::error::Error for StreamError {}
