//! Byte-counted inter-stage links — the simulated network between the
//! model provider's and data provider's servers.

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, Sender};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A frame in flight: a request sequence number plus its serialized
/// payload.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Inference-request sequence number (assigned by the pipeline
    /// source).
    pub seq: u64,
    /// Serialized tensor payload.
    pub payload: Bytes,
}

/// Traffic counters for one link.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes: AtomicU64,
    frames: AtomicU64,
}

impl LinkStats {
    /// Total payload bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total frames transferred.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }
}

/// One directed link between pipeline stages. Bounded to provide
/// backpressure, as a real socket's TCP window would.
pub struct Link {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    stats: Arc<LinkStats>,
}

impl Link {
    /// Creates a link with the given in-flight frame capacity.
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity);
        Link { tx, rx, stats: Arc::new(LinkStats::default()) }
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<LinkStats> {
        Arc::clone(&self.stats)
    }

    /// Splits into sender and receiver halves for the two adjacent stages.
    pub fn split(self) -> (LinkSender, LinkReceiver) {
        (
            LinkSender { tx: self.tx, stats: Arc::clone(&self.stats) },
            LinkReceiver { rx: self.rx },
        )
    }
}

/// Sending half of a link.
#[derive(Clone)]
pub struct LinkSender {
    tx: Sender<Frame>,
    stats: Arc<LinkStats>,
}

impl LinkSender {
    /// Sends a frame, blocking when the link is full (backpressure).
    /// Returns `false` if the receiver is gone.
    pub fn send(&self, frame: Frame) -> bool {
        self.stats.bytes.fetch_add(frame.payload.len() as u64, Ordering::Relaxed);
        self.stats.frames.fetch_add(1, Ordering::Relaxed);
        self.tx.send(frame).is_ok()
    }
}

/// Receiving half of a link.
pub struct LinkReceiver {
    rx: Receiver<Frame>,
}

impl LinkReceiver {
    /// Receives the next frame; `None` when the sender side is closed and
    /// drained.
    pub fn recv(&self) -> Option<Frame> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_and_are_counted() {
        let link = Link::new(8);
        let stats = link.stats();
        let (tx, rx) = link.split();
        assert!(tx.send(Frame { seq: 1, payload: Bytes::from_static(b"hello") }));
        assert!(tx.send(Frame { seq: 2, payload: Bytes::from_static(b"world!") }));
        let f1 = rx.recv().unwrap();
        assert_eq!(f1.seq, 1);
        assert_eq!(&f1.payload[..], b"hello");
        let f2 = rx.recv().unwrap();
        assert_eq!(f2.seq, 2);
        assert_eq!(stats.bytes(), 11);
        assert_eq!(stats.frames(), 2);
    }

    #[test]
    fn drop_sender_ends_stream() {
        let link = Link::new(2);
        let (tx, rx) = link.split();
        tx.send(Frame { seq: 0, payload: Bytes::new() });
        drop(tx);
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_none());
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let link = Link::new(1);
        let (tx, rx) = link.split();
        tx.send(Frame { seq: 0, payload: Bytes::new() });
        // Second send would block; do it from another thread and drain.
        let t = std::thread::spawn(move || {
            tx.send(Frame { seq: 1, payload: Bytes::new() });
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap().seq, 0);
        assert_eq!(rx.recv().unwrap().seq, 1);
        t.join().unwrap();
    }
}
