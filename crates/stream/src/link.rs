//! Byte-counted inter-stage links — the simulated network between the
//! model provider's and data provider's servers.

use crate::chan::{bounded, Receiver, SendTimeoutError, Sender};
use crate::{StreamError, TransportErrorKind};
use bytes::Bytes;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wire sentinel for "no deadline" in [`Frame::deadline_ms`]'s on-the-wire
/// encoding (see `tcp`): `u64::MAX` milliseconds is ~584 million years,
/// safely outside any real budget.
pub const NO_DEADLINE: u64 = u64::MAX;

/// A frame in flight: a request sequence number plus its serialized
/// payload.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Inference-request sequence number (assigned by the pipeline
    /// source).
    pub seq: u64,
    /// Remaining end-to-end deadline budget for this item, in
    /// milliseconds, measured at send time. Deadlines are *relative
    /// durations* re-stamped by the sender on every hop — never wall
    /// timestamps — so the two providers' clocks need not agree (only
    /// their clock *rates*, which NTP-free hosts already satisfy).
    /// `None` means the item has no deadline.
    pub deadline_ms: Option<u64>,
    /// Serialized tensor payload.
    pub payload: Bytes,
}

impl Frame {
    /// A frame with no deadline.
    pub fn new(seq: u64, payload: Bytes) -> Self {
        Frame { seq, deadline_ms: None, payload }
    }

    /// A frame carrying `deadline_ms` of remaining budget.
    pub fn with_deadline(seq: u64, deadline_ms: u64, payload: Bytes) -> Self {
        Frame { seq, deadline_ms: Some(deadline_ms), payload }
    }
}

/// Receive-side sequence-monotonicity check, shared by the TCP transport
/// and the in-process link: each direction of a connection must carry
/// strictly increasing `Frame.seq`, so a reordered, duplicated, or
/// replayed frame is rejected instead of silently mis-ordering inference
/// results.
#[derive(Debug, Default)]
pub struct SeqValidator {
    last: Option<u64>,
}

impl SeqValidator {
    /// A fresh validator that accepts any first seq.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accepts `seq` iff it is strictly greater than every seq seen so
    /// far; otherwise returns `Transport { kind: Seq, .. }`.
    pub fn check(&mut self, seq: u64) -> Result<(), StreamError> {
        if let Some(last) = self.last {
            if seq <= last {
                return Err(StreamError::transport(
                    TransportErrorKind::Seq,
                    format!("frame seq {seq} not after {last} (reordered or duplicated frame)"),
                ));
            }
        }
        self.last = Some(seq);
        Ok(())
    }
}

/// Traffic counters for one link.
#[derive(Debug, Default)]
pub struct LinkStats {
    bytes: AtomicU64,
    frames: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
}

impl LinkStats {
    /// Total payload bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total frames transferred.
    pub fn frames(&self) -> u64 {
        self.frames.load(Ordering::Relaxed)
    }

    /// Frames currently queued in the link (sent, not yet received).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// High-water mark of [`depth`](LinkStats::depth) over the link's
    /// lifetime — how close the queue came to its capacity.
    pub fn max_depth(&self) -> u64 {
        self.max_depth.load(Ordering::Relaxed)
    }

    fn on_enqueue(&self, payload_len: usize) {
        self.bytes.fetch_add(payload_len as u64, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
        let depth = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(depth, Ordering::Relaxed);
    }

    fn on_dequeue(&self) {
        // Saturating: a frame counted at enqueue is always in flight, but
        // guard against underflow if halves are driven independently.
        let _ = self.depth.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
            Some(d.saturating_sub(1))
        });
    }
}

/// One directed link between pipeline stages. Bounded to provide
/// backpressure, as a real socket's TCP window would.
pub struct Link {
    tx: Sender<Frame>,
    rx: Receiver<Frame>,
    stats: Arc<LinkStats>,
}

impl Link {
    /// Creates a link with the given in-flight frame capacity.
    pub fn new(capacity: usize) -> Self {
        let (tx, rx) = bounded(capacity);
        Link { tx, rx, stats: Arc::new(LinkStats::default()) }
    }

    /// The shared traffic counters.
    pub fn stats(&self) -> Arc<LinkStats> {
        Arc::clone(&self.stats)
    }

    /// Splits into sender and receiver halves for the two adjacent stages.
    pub fn split(self) -> (LinkSender, LinkReceiver) {
        (
            LinkSender { tx: self.tx, stats: Arc::clone(&self.stats) },
            LinkReceiver { rx: self.rx, stats: self.stats, validator: SeqValidator::new() },
        )
    }
}

/// Sending half of a link.
#[derive(Clone)]
pub struct LinkSender {
    tx: Sender<Frame>,
    stats: Arc<LinkStats>,
}

impl LinkSender {
    /// Sends a frame, blocking when the link is full (backpressure).
    /// Returns `false` if the receiver is gone.
    pub fn send(&self, frame: Frame) -> bool {
        let len = frame.payload.len();
        match self.tx.send(frame) {
            Ok(()) => {
                self.stats.on_enqueue(len);
                true
            }
            Err(_) => false,
        }
    }

    /// As [`send`](LinkSender::send), but blocks at most `timeout` when
    /// the link is full. A full link that stays full past the timeout is
    /// an overload signal — the caller gets `Transport { kind: Timeout }`
    /// and can shed the item instead of wedging the whole pipeline behind
    /// one stalled consumer.
    pub fn send_timeout(&self, frame: Frame, timeout: Duration) -> Result<(), StreamError> {
        let len = frame.payload.len();
        match self.tx.send_timeout(frame, timeout) {
            Ok(()) => {
                self.stats.on_enqueue(len);
                Ok(())
            }
            Err(SendTimeoutError::Timeout(_)) => Err(StreamError::transport(
                TransportErrorKind::Timeout,
                format!("link full for {timeout:?} (receiver not draining)"),
            )),
            Err(SendTimeoutError::Disconnected(_)) => Err(StreamError::Disconnected),
        }
    }
}

/// Receiving half of a link.
pub struct LinkReceiver {
    rx: Receiver<Frame>,
    stats: Arc<LinkStats>,
    validator: SeqValidator,
}

impl LinkReceiver {
    /// Receives the next frame; `None` when the sender side is closed and
    /// drained. Performs no sequence validation — see [`recv_strict`].
    ///
    /// [`recv_strict`]: LinkReceiver::recv_strict
    pub fn recv(&self) -> Option<Frame> {
        let frame = self.rx.recv().ok();
        if frame.is_some() {
            self.stats.on_dequeue();
        }
        frame
    }

    /// As [`recv`], but additionally enforces strict seq monotonicity
    /// across all frames received through this method: a reordered or
    /// duplicated frame yields `Transport { kind: Seq, .. }` instead of a
    /// silently mis-ordered inference.
    ///
    /// [`recv`]: LinkReceiver::recv
    pub fn recv_strict(&mut self) -> Result<Option<Frame>, StreamError> {
        match self.rx.recv() {
            Ok(frame) => {
                self.stats.on_dequeue();
                self.validator.check(frame.seq)?;
                Ok(Some(frame))
            }
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_flow_and_are_counted() {
        let link = Link::new(8);
        let stats = link.stats();
        let (tx, rx) = link.split();
        assert!(tx.send(Frame::new(1, Bytes::from_static(b"hello"))));
        assert!(tx.send(Frame::new(2, Bytes::from_static(b"world!"))));
        let f1 = rx.recv().unwrap();
        assert_eq!(f1.seq, 1);
        assert_eq!(&f1.payload[..], b"hello");
        let f2 = rx.recv().unwrap();
        assert_eq!(f2.seq, 2);
        assert_eq!(stats.bytes(), 11);
        assert_eq!(stats.frames(), 2);
    }

    #[test]
    fn drop_sender_ends_stream() {
        let link = Link::new(2);
        let (tx, rx) = link.split();
        tx.send(Frame::new(0, Bytes::new()));
        drop(tx);
        assert!(rx.recv().is_some());
        assert!(rx.recv().is_none());
    }

    #[test]
    fn seq_validator_rejects_reorder_and_duplicate() {
        let mut v = SeqValidator::new();
        v.check(3).unwrap(); // any first seq is fine
        v.check(4).unwrap();
        v.check(10).unwrap(); // gaps are fine; only ordering matters
        let dup = v.check(10).unwrap_err();
        assert!(matches!(
            dup,
            StreamError::Transport { kind: TransportErrorKind::Seq, .. }
        ));
        let reorder = v.check(5).unwrap_err();
        assert!(reorder.to_string().contains("not after 10"));
    }

    #[test]
    fn seq_validator_rejects_wraparound() {
        // u64::MAX → 0 is numerically a wraparound but semantically a
        // replay from the validator's point of view: seqs must be
        // strictly increasing, full stop.
        let mut v = SeqValidator::new();
        v.check(u64::MAX).unwrap();
        let err = v.check(0).unwrap_err();
        assert!(matches!(err, StreamError::Transport { kind: TransportErrorKind::Seq, .. }));
        assert!(err.to_string().contains("not after"), "{err}");
        // And the validator stays poisoned at the high-water mark.
        assert!(v.check(u64::MAX - 1).is_err());
    }

    #[test]
    fn seq_validator_accepts_any_first_seq() {
        // A connection resumed mid-stream legitimately starts above 0;
        // zero itself is also fine. Only the *relative* order matters.
        let mut nonzero = SeqValidator::new();
        nonzero.check(1_000_000).unwrap();
        let mut zero = SeqValidator::new();
        zero.check(0).unwrap();
        let mut max = SeqValidator::new();
        max.check(u64::MAX).unwrap();
    }

    #[test]
    fn seq_validator_rejects_immediate_duplicate_of_first_seq() {
        let mut v = SeqValidator::new();
        v.check(7).unwrap();
        let err = v.check(7).unwrap_err();
        assert!(matches!(err, StreamError::Transport { kind: TransportErrorKind::Seq, .. }));
    }

    #[test]
    fn recv_strict_flags_out_of_order_frames() {
        let link = Link::new(4);
        let (tx, mut rx) = link.split();
        tx.send(Frame::new(1, Bytes::new()));
        tx.send(Frame::new(2, Bytes::new()));
        tx.send(Frame::new(2, Bytes::new())); // duplicate
        drop(tx);
        assert_eq!(rx.recv_strict().unwrap().unwrap().seq, 1);
        assert_eq!(rx.recv_strict().unwrap().unwrap().seq, 2);
        let err = rx.recv_strict().unwrap_err();
        assert!(matches!(
            err,
            StreamError::Transport { kind: TransportErrorKind::Seq, .. }
        ));
    }

    #[test]
    fn send_timeout_flags_full_link_as_timeout() {
        let link = Link::new(1);
        let (tx, rx) = link.split();
        tx.send_timeout(Frame::new(0, Bytes::new()), Duration::from_millis(5)).unwrap();
        let err = tx
            .send_timeout(Frame::new(1, Bytes::new()), Duration::from_millis(5))
            .unwrap_err();
        assert!(matches!(
            err,
            StreamError::Transport { kind: TransportErrorKind::Timeout, .. }
        ));
        // Draining unsticks it; the timed-out frame was never counted.
        assert_eq!(rx.recv().unwrap().seq, 0);
        tx.send_timeout(Frame::new(1, Bytes::new()), Duration::from_millis(5)).unwrap();
    }

    #[test]
    fn send_timeout_on_closed_link_is_disconnected() {
        let link = Link::new(1);
        let (tx, rx) = link.split();
        drop(rx);
        let err = tx.send_timeout(Frame::new(0, Bytes::new()), Duration::from_millis(1));
        assert_eq!(err.unwrap_err(), StreamError::Disconnected);
    }

    #[test]
    fn stats_track_queue_depth_high_water_mark() {
        let link = Link::new(4);
        let stats = link.stats();
        let (tx, rx) = link.split();
        for seq in 0..3 {
            assert!(tx.send(Frame::new(seq, Bytes::new())));
        }
        assert_eq!(stats.depth(), 3);
        assert_eq!(stats.max_depth(), 3);
        rx.recv().unwrap();
        rx.recv().unwrap();
        assert_eq!(stats.depth(), 1);
        // The high-water mark is sticky.
        assert_eq!(stats.max_depth(), 3);
    }

    #[test]
    fn frame_deadline_constructors() {
        let plain = Frame::new(7, Bytes::new());
        assert_eq!(plain.deadline_ms, None);
        let tight = Frame::with_deadline(7, 250, Bytes::new());
        assert_eq!(tight.deadline_ms, Some(250));
    }

    #[test]
    fn backpressure_blocks_until_drained() {
        let link = Link::new(1);
        let (tx, rx) = link.split();
        tx.send(Frame::new(0, Bytes::new()));
        // Second send would block; do it from another thread and drain.
        let t = std::thread::spawn(move || {
            tx.send(Frame::new(1, Bytes::new()));
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap().seq, 0);
        assert_eq!(rx.recv().unwrap().seq, 1);
        t.join().unwrap();
    }
}
