//! Bounded MPMC channels with timeout-aware send/recv and queue-depth
//! inspection — the hop primitive under [`crate::link`] and
//! [`crate::pipeline`].
//!
//! The overload-protection machinery needs three things a plain blocking
//! channel cannot give it: a **send that gives up** after a bounded wait
//! (so a producer can shed load instead of wedging behind a stalled
//! consumer), a **recv that wakes up** periodically (so the sink can
//! notice a recorded failure while the wedged stage still holds the
//! hop open), and **queue-depth inspection** (the watchdog's "input
//! queued but no progress" stall criterion).
//!
//! Every lock/wait here recovers from mutex poisoning
//! (`PoisonError::into_inner`): a stage thread that panics while
//! holding the queue lock leaves a structurally intact `VecDeque`
//! (push/pop never partially mutate it), and wedging every later
//! sender/receiver behind the poison flag would turn one isolated
//! panic into a whole-pipeline deadlock.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The receiver side is gone; the unsent value is returned.
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

/// Outcome of [`Sender::send_timeout`] when the value was not enqueued.
pub enum SendTimeoutError<T> {
    /// The queue stayed full for the whole timeout; the value is returned.
    Timeout(T),
    /// The receiver side is gone; the value is returned.
    Disconnected(T),
}

/// The sender side is gone and the queue is drained.
#[derive(Debug, PartialEq, Eq)]
pub struct RecvError;

/// Outcome of [`Receiver::recv_timeout`] when no value arrived.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Nothing arrived within the timeout; senders are still connected.
    Timeout,
    /// The sender side is gone and the queue is drained.
    Disconnected,
}

/// Outcome of [`Receiver::try_recv`] when no value was ready.
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// The queue is momentarily empty; senders are still connected.
    Empty,
    /// The sender side is gone and the queue is drained.
    Disconnected,
}

struct Inner<T> {
    queue: Mutex<VecDeque<T>>,
    cap: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
    not_empty: Condvar,
    not_full: Condvar,
}

/// Sending half; cloneable for multi-producer use.
pub struct Sender<T> {
    inner: Arc<Inner<T>>,
}

/// Receiving half; cloneable for multi-consumer use.
pub struct Receiver<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.senders.fetch_add(1, Ordering::SeqCst);
        Sender { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.inner.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver { inner: Arc::clone(&self.inner) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Wake receivers blocked on an empty queue so they observe
            // the disconnect. The lock orders the wake after any racing
            // waiter has actually started waiting.
            let _guard = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            self.inner.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
            self.inner.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send; waits for space while the queue is at capacity.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match self.inner.cap {
                Some(cap) if q.len() >= cap => {
                    q = self.inner.not_full.wait(q).unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        q.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// As [`send`](Sender::send), but waits for space at most `timeout`.
    pub fn send_timeout(&self, value: T, timeout: Duration) -> Result<(), SendTimeoutError<T>> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendTimeoutError::Disconnected(value));
            }
            match self.inner.cap {
                Some(cap) if q.len() >= cap => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(SendTimeoutError::Timeout(value));
                    }
                    let (guard, _) =
                        self.inner.not_full.wait_timeout(q, deadline - now).unwrap_or_else(PoisonError::into_inner);
                    q = guard;
                }
                _ => break,
            }
        }
        q.push_back(value);
        self.inner.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocking receive; `Err` once all senders are gone and the queue is
    /// drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            q = self.inner.not_empty.wait(q).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// As [`recv`](Receiver::recv), but waits at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(v) = q.pop_front() {
                self.inner.not_full.notify_one();
                return Ok(v);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self.inner.not_empty.wait_timeout(q, deadline - now).unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = q.pop_front() {
            self.inner.not_full.notify_one();
            return Ok(v);
        }
        if self.inner.senders.load(Ordering::SeqCst) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// Number of values currently queued.
    pub fn len(&self) -> usize {
        self.inner.queue.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let inner = Arc::new(Inner {
        queue: Mutex::new(VecDeque::new()),
        cap,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
}

/// A channel with unlimited buffering (sends never block).
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    make(None)
}

/// A channel holding at most `cap` (≥ 1) in-flight values.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    make(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_flow_in_order() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn send_timeout_times_out_on_full_queue() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        match tx.send_timeout(2, Duration::from_millis(10)) {
            Err(SendTimeoutError::Timeout(v)) => assert_eq!(v, 2, "value handed back"),
            _ => panic!("expected timeout"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.send_timeout(2, Duration::from_millis(10)).map_err(|_| ()).unwrap();
    }

    #[test]
    fn send_timeout_disconnected_when_receiver_gone() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert!(matches!(
            tx.send_timeout(1, Duration::from_millis(1)),
            Err(SendTimeoutError::Disconnected(1))
        ));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn len_tracks_queued_values() {
        let (tx, rx) = bounded(8);
        assert!(rx.is_empty());
        tx.send(1u8).unwrap();
        tx.send(2u8).unwrap();
        assert_eq!(rx.len(), 2);
        rx.recv().unwrap();
        assert_eq!(rx.len(), 1);
    }

    #[test]
    fn cloned_receiver_keeps_channel_open_for_senders() {
        let (tx, rx) = bounded(1);
        let rx2 = rx.clone();
        drop(rx);
        tx.send(5u8).unwrap();
        assert_eq!(rx2.recv().unwrap(), 5);
        drop(rx2);
        assert!(tx.send(6u8).is_err(), "all receivers gone");
    }

    #[test]
    fn blocked_sender_wakes_when_last_receiver_drops() {
        let (tx, rx) = bounded(1);
        tx.send(0u8).unwrap();
        let t = std::thread::spawn(move || tx.send(1u8));
        std::thread::sleep(Duration::from_millis(20));
        drop(rx);
        assert!(t.join().unwrap().is_err(), "send must fail, not hang");
    }
}
