//! Property tests for the crash-recovery journal: record round-trips
//! and torn/corrupt-tail recovery (ISSUE 8 satellite). Replay must
//! always yield a *prefix* of the appended records and never panic, no
//! matter where a crash or disk corruption lands.

use pp_stream::journal::{FsyncPolicy, Journal, JournalRecord, JOURNAL_MAGIC};
use pp_stream_runtime::wire::{from_frame, to_frame};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Unique scratch path per case (no tempfile crate in the dependency
/// policy — DESIGN.md §12).
fn scratch(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "pp-journal-prop-{}-{}-{}",
        std::process::id(),
        tag,
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir.join("sessions.journal")
}

fn sample_records() -> Vec<JournalRecord> {
    vec![
        JournalRecord::Created {
            session: 1,
            pk_n: vec![0xAB; 32],
            pk_fingerprint: 0xFEED_F00D,
            topology: 0x1234_5678_9ABC_DEF0,
            pack: Some((17, 8, 16)),
        },
        JournalRecord::Started { session: 1, started: 3 },
        JournalRecord::Acked { session: 1, acked: 2 },
        JournalRecord::Quarantined { session: 1, seq: 2 },
        JournalRecord::Created {
            session: 2,
            pk_n: vec![1, 2, 3],
            pk_fingerprint: 7,
            topology: 9,
            pack: None,
        },
        JournalRecord::Removed { session: 1 },
    ]
}

fn write_sample(path: &PathBuf) -> Vec<JournalRecord> {
    let records = sample_records();
    let (mut j, _) = Journal::open(path, FsyncPolicy::Never).expect("open");
    for r in &records {
        j.append(r).expect("append");
    }
    records
}

proptest! {
    /// Any record round-trips through the wire codec.
    #[test]
    fn record_roundtrip(
        session in any::<u64>(),
        pk_n in proptest::collection::vec(any::<u8>(), 0..64),
        fp in any::<u64>(),
        topo in any::<u64>(),
        pack in proptest::option::of((any::<u32>(), any::<u32>(), any::<u64>())),
        a in any::<u64>(),
        which in 0u8..5,
    ) {
        let record = match which {
            0 => JournalRecord::Created {
                session, pk_n, pk_fingerprint: fp, topology: topo, pack,
            },
            1 => JournalRecord::Acked { session, acked: a },
            2 => JournalRecord::Started { session, started: a },
            3 => JournalRecord::Quarantined { session, seq: a },
            _ => JournalRecord::Removed { session },
        };
        let back: JournalRecord = from_frame(to_frame(&record)).expect("decode");
        prop_assert_eq!(back, record);
    }

    /// Truncating a valid journal anywhere never panics and yields a
    /// prefix of the original records — the shape of a SIGKILL landing
    /// mid-append.
    #[test]
    fn truncation_recovers_a_prefix(cut_back in 1usize..200) {
        let path = scratch("trunc");
        let records = write_sample(&path);
        let full = std::fs::read(&path).expect("read");
        let cut = full.len().saturating_sub(cut_back).max(JOURNAL_MAGIC.len());
        std::fs::write(&path, &full[..cut]).expect("truncate");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open torn");
        prop_assert!(replay.records.len() <= records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
    }

    /// Flipping any single byte after the magic never panics and still
    /// yields a prefix: corruption at byte k fails record k's checksum
    /// (or framing) and replay stops there.
    #[test]
    fn bitflip_recovers_a_prefix(at in 0usize..400, xor in 1u8..=255) {
        let path = scratch("flip");
        let records = write_sample(&path);
        let mut raw = std::fs::read(&path).expect("read");
        let at = JOURNAL_MAGIC.len() + at % (raw.len() - JOURNAL_MAGIC.len());
        raw[at] ^= xor;
        std::fs::write(&path, &raw).expect("corrupt");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open corrupt");
        prop_assert!(replay.records.len() <= records.len());
        prop_assert_eq!(&replay.records[..], &records[..replay.records.len()]);
    }

    /// Garbage appended after a valid journal is discarded; every real
    /// record survives.
    #[test]
    fn garbage_tail_is_discarded(tail in proptest::collection::vec(any::<u8>(), 1..64)) {
        let path = scratch("garbage");
        let records = write_sample(&path);
        let mut raw = std::fs::read(&path).expect("read");
        raw.extend_from_slice(&tail);
        std::fs::write(&path, &raw).expect("extend");
        let (_, replay) = Journal::open(&path, FsyncPolicy::Never).expect("open");
        // A garbage tail can only *lose* bytes, never fabricate records
        // beyond the real ones... unless the garbage happens to frame a
        // valid record, which a 64-bit checksum makes vanishingly
        // unlikely — and proptest inputs here are adversarial only by
        // chance, so assert the strong form.
        prop_assert_eq!(&replay.records[..], &records[..]);
    }
}
