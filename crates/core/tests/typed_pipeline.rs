//! Integration tests for the typed-stage runtime: the full protocol
//! (encrypt → merged linear/non-linear stages → final decrypt) running
//! on `TypedPipeline`, checked against plaintext inference, with the
//! per-stage instrumentation and allocator-driven pool sizes the
//! session promises.

use pp_stream::{PpStream, PpStreamConfig, PlanSource};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn pp_stream_infer_matches_plain_infer_with_merged_stages() {
    let mut rng = StdRng::seed_from_u64(11);
    let model = pp_nn::zoo::small_convnet("c", (1, 5, 5), 2, 3, &mut rng).unwrap();
    let scaled = pp_nn::ScaledModel::from_model(&model, 100);
    let config = PpStreamConfig::small_test(128); // merge_stages: true
    let session = PpStream::new(scaled.clone(), config).unwrap();

    // Operation encapsulation produced at least one *merged* stage
    // (several primitive ops behind a single Stage impl).
    assert!(
        session.stages().iter().any(|s| s.ops.len() > 1),
        "expected a merged encapsulated stage in the convnet pipeline"
    );

    let inputs: Vec<Tensor<f64>> = (0..3)
        .map(|k| {
            Tensor::from_vec(
                vec![1, 5, 5],
                (0..25).map(|i| (((i * 13 + k * 7) % 10) as f64) / 10.0 - 0.5).collect(),
            )
            .unwrap()
        })
        .collect();

    let (outputs, report) = session.infer_stream(&inputs).unwrap();
    for (input, output) in inputs.iter().zip(&outputs) {
        let want = scaled.forward_scaled(&scaled.scale_input(input)).unwrap();
        assert_eq!(output.data(), want.data(), "pp_stream_infer(x) != plain_infer(x)");
    }

    // ---- Per-stage instrumentation (tentpole acceptance criteria). ----
    let n_stages = session.stages().len() + 1;
    assert_eq!(report.stages.len(), n_stages);
    assert_eq!(report.stage_names.len(), n_stages);
    for (stage, name) in report.stages.iter().zip(&report.stage_names) {
        assert_eq!(&stage.name, name);
        assert_eq!(stage.items_in, inputs.len() as u64, "{name} items in");
        assert_eq!(stage.items_out, inputs.len() as u64, "{name} items out");
        assert_eq!(stage.errors, 0, "{name} errors");
        assert!(stage.compute > std::time::Duration::ZERO, "{name} compute time");
    }

    // Owned hops at both ends: the source and the sink live inside the
    // data provider, so no serialization there …
    assert_eq!(report.link_bytes.len(), n_stages + 1);
    assert_eq!(report.link_bytes[0], 0, "source hop is co-located (owned)");
    assert_eq!(*report.link_bytes.last().unwrap(), 0, "sink hop is co-located (owned)");
    // … while provider-crossing hops do serialize.
    assert!(
        report.link_bytes.iter().any(|&b| b > 0),
        "at least one provider-crossing hop carries wire bytes"
    );
    // The serializing stages account for those bytes.
    let wire_total: u64 = report.link_bytes.iter().sum();
    let stage_serialized: u64 = report.stages.iter().map(|s| s.bytes_serialized).sum();
    assert!(stage_serialized >= wire_total, "stages record at least the link bytes");
    // Linear stages partition tensors across their pools (Sec. IV-D).
    assert!(report.intra_stage_bytes > 0);

    // ---- Allocator-driven pool sizing. ----
    let plan = session.plan();
    assert!(matches!(plan.source(), PlanSource::Solver | PlanSource::EvenSplit));
    assert_eq!(plan.threads(), &report.stage_threads[..]);
    assert_eq!(plan.n_stages(), n_stages);
    for (stage, &threads) in report.stages.iter().zip(plan.threads()) {
        assert_eq!(stage.threads, threads, "{} pool size follows the plan", stage.name);
    }
}

#[test]
fn classification_matches_on_typed_runtime() {
    let mut rng = StdRng::seed_from_u64(12);
    let model = pp_nn::zoo::mlp("m", &[6, 9, 4], &mut rng).unwrap();
    let scaled = pp_nn::ScaledModel::from_model(&model, 100);
    let session = PpStream::new(scaled, PpStreamConfig::small_test(128)).unwrap();

    let inputs: Vec<Tensor<f64>> = (0..5)
        .map(|k| {
            Tensor::from_flat(
                (0..6).map(|i| ((i as f64 + k as f64 * 1.3) * 0.37).sin()).collect::<Vec<_>>(),
            )
        })
        .collect();
    let (classes, report) = session.classify_stream(&inputs).unwrap();
    for (input, &got) in inputs.iter().zip(&classes) {
        assert_eq!(got, model.classify(input).unwrap());
    }
    // Queue-wait is recorded per stage (zero is fine on an idle machine,
    // but the report must cover every stage).
    assert_eq!(report.stages.len(), session.stages().len() + 1);
    assert_eq!(report.latencies.len(), inputs.len());
    assert!(report.mean_latency > std::time::Duration::ZERO);
}
