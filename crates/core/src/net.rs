//! Two-process networked deployment: the model provider and data
//! provider as separate processes exchanging [`pp_stream_runtime::link::Frame`]s
//! over real TCP sockets — the paper's testbed topology (model and data
//! providers on separate hosts), versus the in-process pipeline of
//! [`crate::PpStream`].
//!
//! ## Roles
//!
//! * [`ModelProvider`] — the server. Holds the scaled weights, executes
//!   the **linear** stages homomorphically under the data provider's
//!   public key, and manages obfuscation (permutation draw/invert),
//!   exactly as [`crate::protocol::LinearStage`] does in-process.
//! * [`NetworkedSession`] — the client (data provider). Holds the
//!   Paillier keypair and the inputs, runs the encrypt stage and the
//!   **non-linear** stages locally, and round-trips every linear stage
//!   through the server.
//!
//! ## Handshake and sessions
//!
//! Before any ciphertext flows the client sends a
//! [`HelloMsg`](crate::messages::HelloMsg): protocol version, public-key
//! bytes + fingerprint, and a digest of the merged-stage topology. The
//! server answers [`AcceptMsg`](crate::messages::AcceptMsg) (echoing the
//! agreed parameters plus a server-assigned **session ID**) or
//! [`RejectMsg`](crate::messages::RejectMsg) naming the mismatch, so a
//! client built against a different model layout fails fast with
//! `Transport { kind: Handshake, .. }` instead of corrupting an
//! inference mid-stream.
//!
//! ## Fault tolerance (DESIGN.md §5)
//!
//! The server keeps a bounded, TTL-evicting session table. When a
//! connection dies mid-stream the client transparently reconnects (with
//! the configured [`RetryPolicy`](pp_stream_runtime::RetryPolicy)),
//! presents [`ResumeMsg`](crate::messages::ResumeMsg) with its count of
//! fully completed items, and replays only the in-flight item. After
//! each completed item the client sends a fire-and-forget
//! [`AckMsg`](crate::messages::AckMsg) raising the server's exactly-once
//! floor: a round-0 request below the floor is a protocol violation, so
//! a delivered item's Paillier evaluations are never silently repeated.
//! A deliberate [`ByeMsg`](crate::messages::ByeMsg) ends the session;
//! a bare EOF leaves it resumable until the TTL expires.
//!
//! Replay is sound because every stage derives its randomness
//! deterministically from `(seed, seq)` — re-running an item from round
//! 0 regenerates bit-identical ciphertexts and permutations, which the
//! chaos tests assert.
//!
//! ## Frame exchange
//!
//! Each inference request runs the in-process protocol's rounds over the
//! socket: the client serializes the current
//! [`EncTensorMsg`](crate::messages::EncTensorMsg) through the wire
//! codec and ships it in a frame whose transport `seq` is stamped by
//! [`TcpFrameSender::send_payload`] (strictly increasing per direction,
//! validated by the receiving side); the request's own `seq` travels
//! inside the message, decoupled from transport framing. Requests are
//! processed sequentially in this version — cross-request pipelining
//! over the socket is future work; the in-process pipeline remains the
//! throughput path.

use crate::encapsulate::{encapsulate_with, MergedStage, StageRole};
use crate::messages::{
    AcceptMsg, AckMsg, ByeMsg, EncTensorMsg, HelloMsg, ItemErrorKind, ItemErrorMsg, MsgTag,
    PackedTensorMsg, PlainTensorMsg, RejectCode, RejectMsg, ResumeMsg, PROTOCOL_VERSION,
};
use crate::packed::{self, PACKED_PERM_BIT};
use crate::protocol::{EncryptStage, LinearStage, NonLinearStage, PartitionMode, PermStore};
use crate::session::RunReport;
use crate::CoreError;
use bytes::Bytes;
use parking_lot::Mutex;
use pp_bigint::BigUint;
use pp_nn::scaling::{ScaledModel, ScaledOp};
use pp_paillier::packing::PackingSpec;
use pp_paillier::{Keypair, PublicKey, RandomnessPool};
#[cfg(feature = "fault-injection")]
use pp_stream_runtime::fault::{FaultPlan, FaultReceiver, FaultSender, FaultState};
use pp_stream_runtime::link::Frame;
use pp_stream_runtime::wire::{from_frame, to_frame};
use pp_stream_runtime::{
    tcp, FrameReceiver, FrameSender, StreamError, TcpConfig, TcpFrameReceiver, TcpFrameSender,
    TransportErrorKind, WorkerPool,
};
use pp_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Configuration shared by both ends of a deployment.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Paillier key size in bits (client-side keygen).
    pub key_bits: usize,
    /// Determinism seed for keys, permutations, and encryption
    /// randomness.
    pub seed: u64,
    /// Worker threads per side.
    pub threads: usize,
    /// Merge adjacent same-type primitive layers (Sec. IV-B). Must match
    /// between peers — it shapes the topology digest.
    pub merge_stages: bool,
    /// Socket knobs: connect retry/backoff, read/write timeouts, seq
    /// validation.
    pub tcp: TcpConfig,
    /// How many reconnect-and-resume cycles a client survives per
    /// request before giving up with the underlying transport error.
    pub max_resumes: u32,
    /// Server-side: how long a dropped session stays resumable.
    pub session_ttl: Duration,
    /// Server-side: resumable-session table bound; beyond it the
    /// least-recently-seen session is evicted.
    pub session_capacity: usize,
    /// Server-side: per-session cap on items with linear rounds in
    /// flight. An item whose round 0 arrives while the session is at the
    /// cap is **shed** with a per-item [`ItemErrorKind::Shed`] reply
    /// instead of queueing unboundedly. A zero cap sheds every item —
    /// a drain mode useful for overload drills.
    pub max_inflight_items: usize,
    /// Client-side: per-item end-to-end deadline budget. Stamped into
    /// every linear-round frame as the *remaining* budget in
    /// milliseconds (relative durations, never wall timestamps, so
    /// client/server clock skew is irrelevant); the server sheds an item
    /// whose budget has run out with an
    /// [`ItemErrorKind::DeadlineExpired`] reply. `None` disables
    /// deadlines entirely.
    pub item_deadline: Option<Duration>,
    /// Client-side stall watchdog: if a linear-round reply takes longer
    /// than this window, the item is treated as stalled
    /// ([`StreamError::Stalled`]) and recovered by reconnect-and-resume,
    /// instead of waiting out the full TCP read timeout. `None` disables
    /// the watchdog.
    pub stall_window: Option<Duration>,
    /// Client-side deterministic fault injection (tests and chaos
    /// drills); `None` leaves the transport untouched. The server reads
    /// [`FaultPlan::poison_seq`] from its own config to drive the
    /// poison-item quarantine boundary.
    #[cfg(feature = "fault-injection")]
    pub fault: Option<FaultPlan>,
    /// Client-side: slot width (bits) for **batch-packed ciphertexts**
    /// (DESIGN.md §8). Non-zero proposes packing in the handshake; the
    /// server accepts only when the layout fits its model's op budget,
    /// and either side's `0` keeps the stream on the per-item protocol.
    /// The `data_provider` example exposes this as `PP_PACK_BITS`.
    pub pack_slot_bits: usize,
    /// Client-side: requests gathered per packed batch. `0` means "fill
    /// every slot the negotiated layout offers"; values above the slot
    /// count are clamped to it. The `data_provider` example exposes this
    /// as `PP_PACK_BATCH`.
    pub pack_batch: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            key_bits: 512,
            seed: 0x9950_57EA,
            threads: 2,
            merge_stages: true,
            tcp: TcpConfig::new(),
            max_resumes: 8,
            session_ttl: Duration::from_secs(300),
            session_capacity: 1024,
            max_inflight_items: 256,
            item_deadline: None,
            stall_window: None,
            #[cfg(feature = "fault-injection")]
            fault: None,
            pack_slot_bits: 0,
            pack_batch: 0,
        }
    }
}

impl NetConfig {
    /// A fast configuration for tests: tiny key, bounded timeouts, quick
    /// reconnect backoff.
    pub fn small_test(key_bits: usize) -> Self {
        NetConfig {
            key_bits,
            seed: 42,
            tcp: TcpConfig::new()
                .with_timeouts(Duration::from_secs(30), Duration::from_secs(30))
                .with_retry(pp_stream_runtime::RetryPolicy {
                    max_attempts: 3,
                    base_delay: Duration::from_millis(5),
                    max_delay: Duration::from_millis(40),
                    jitter: true,
                }),
            ..Default::default()
        }
    }
}

/// Client-side transport statistics, surfaced through
/// [`RunReport::transport`] and returned by
/// [`NetworkedSession::shutdown`].
#[derive(Clone, Debug, Default)]
pub struct TransportReport {
    /// Frames sent to the model provider.
    pub frames_sent: u64,
    /// Frames received from the model provider.
    pub frames_received: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Connection attempts the retry loops used (1 = first try, with no
    /// reconnects).
    pub connect_attempts: u32,
    /// Successful reconnect-and-resume cycles after a mid-stream
    /// transport failure.
    pub reconnects: u64,
    /// Items whose linear rounds had partially run before a failure and
    /// were replayed from round 0 after a resume.
    pub items_replayed: u64,
    /// Faults the injection layer fired (0 without a
    /// [`NetConfig::fault`] plan).
    pub faults_injected: u64,
    /// Busy rejections absorbed by the admission-control backoff loops
    /// (at connect and at resume).
    pub rejected_busy: u64,
    /// Linear-round replies that arrived later than
    /// [`NetConfig::stall_window`] and were recovered by
    /// reconnect-and-resume.
    pub stalls: u64,
    /// Items that failed with an expired end-to-end deadline — shed
    /// client-side before a send, or reported by the server via
    /// [`ItemErrorKind::DeadlineExpired`].
    pub deadline_expired: u64,
    /// Items the server quarantined after a poison panic
    /// ([`ItemErrorKind::Quarantined`] replies received).
    pub quarantined: u64,
    /// Items the server shed at its per-session in-flight cap
    /// ([`ItemErrorKind::Shed`] replies received).
    pub shed: u64,
    /// Packed linear rounds completed (one per batch per linear stage).
    pub packed_rounds: u64,
    /// Items served inside packed batches end-to-end (no fallback).
    pub packed_items: u64,
    /// Packed batches that fell back to per-item requests — a server
    /// [`ItemErrorKind::PackedAbort`], a transport failure mid-batch, or
    /// a client-side packing error. Each member is then replayed
    /// unpacked, so fallbacks cost latency, never results.
    pub packed_fallbacks: u64,
    /// Whether the connection ended without a transport error.
    pub clean_shutdown: bool,
}

/// Server-side statistics, aggregated over every connection a
/// [`ModelProvider::serve_listener`] or [`ModelProvider::serve_forever`]
/// call handled.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Inference request streams completed (a replayed item counts each
    /// time its last linear round finishes).
    pub requests: u64,
    /// Frames received from data providers (handshakes included).
    pub frames_in: u64,
    /// Frames sent to data providers.
    pub frames_out: u64,
    /// Payload bytes received.
    pub bytes_in: u64,
    /// Payload bytes sent.
    pub bytes_out: u64,
    /// Connections accepted (handshaken or not).
    pub connections: u64,
    /// Connections that opened with a valid [`ResumeMsg`].
    pub resumed_sessions: u64,
    /// Handshakes rejected or never completed (bad hello, unknown
    /// session, EOF before the first frame). The server keeps serving.
    pub rejected_handshakes: u64,
    /// Connections that died with a transport/protocol error after the
    /// handshake. The session stays resumable; the server keeps serving.
    pub failed_connections: u64,
    /// Worker threads that panicked while serving a connection
    /// (isolated; the server keeps serving).
    pub panicked_connections: u64,
    /// Items whose round 0 arrived again after a resume (the client
    /// replaying in-flight work — never below the acked floor).
    pub replayed_items: u64,
    /// Connections refused at the admission-control session cap with a
    /// [`RejectCode::Busy`] reply ([`ServeOptions::max_sessions`]).
    pub rejected_busy: u64,
    /// Items answered with [`ItemErrorKind::DeadlineExpired`]: their
    /// end-to-end budget ran out before the linear stage started.
    pub deadline_expired: u64,
    /// [`ItemErrorKind::Quarantined`] replies sent: a poison item's
    /// first panic plus every refused replay of it.
    pub quarantined: u64,
    /// Items answered with [`ItemErrorKind::Shed`] at the per-session
    /// in-flight cap ([`NetConfig::max_inflight_items`]).
    pub shed: u64,
    /// Packed linear rounds executed (one per batch per linear stage).
    pub packed_rounds: u64,
    /// Packed batches aborted with [`ItemErrorKind::PackedAbort`]
    /// (deadline, shed, quarantined member, panic, or a packing error);
    /// the client replays the members unpacked.
    pub packed_aborts: u64,
    /// The most recent per-connection error, for operator visibility.
    pub last_error: Option<String>,
    /// True when at least one client ended its session deliberately
    /// ([`ByeMsg`]) rather than by dropping the connection.
    pub clean_shutdown: bool,
}

impl ServeReport {
    /// Folds another report (e.g. one worker's connection) into this one.
    pub fn merge(&mut self, other: &ServeReport) {
        self.requests += other.requests;
        self.frames_in += other.frames_in;
        self.frames_out += other.frames_out;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.connections += other.connections;
        self.resumed_sessions += other.resumed_sessions;
        self.rejected_handshakes += other.rejected_handshakes;
        self.failed_connections += other.failed_connections;
        self.panicked_connections += other.panicked_connections;
        self.replayed_items += other.replayed_items;
        self.rejected_busy += other.rejected_busy;
        self.deadline_expired += other.deadline_expired;
        self.quarantined += other.quarantined;
        self.shed += other.shed;
        self.packed_rounds += other.packed_rounds;
        self.packed_aborts += other.packed_aborts;
        if other.last_error.is_some() {
            self.last_error = other.last_error.clone();
        }
        self.clean_shutdown |= other.clean_shutdown;
    }
}

/// FNV-1a 64-bit — stable, dependency-free fingerprint for handshake
/// digests (not cryptographic; the handshake detects misconfiguration,
/// not adversaries).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a public key's modulus bytes.
pub fn pk_fingerprint(pk_n: &[u8]) -> u64 {
    fnv1a64(pk_n)
}

/// Digest of the merged-stage topology: stage roles, shapes, op kinds
/// and their cheap structural parameters (window sizes, rescales, weight
/// element counts) — **not** the weight values, which never leave the
/// model provider. Two peers agree on this digest iff they encapsulated
/// the same model architecture at the same scaling factor.
pub fn topology_digest(stages: &[MergedStage], factor: i64) -> u64 {
    let mut buf = Vec::new();
    buf.extend_from_slice(&factor.to_le_bytes());
    buf.extend_from_slice(&(stages.len() as u64).to_le_bytes());
    for stage in stages {
        buf.push(match stage.role {
            StageRole::Linear => 1,
            StageRole::NonLinear => 2,
        });
        for shape in [&stage.input_shape, &stage.output_shape] {
            buf.extend_from_slice(&(shape.dims().len() as u64).to_le_bytes());
            for &d in shape.dims() {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
        }
        buf.extend_from_slice(&(stage.ops.len() as u64).to_le_bytes());
        for op in &stage.ops {
            match op {
                ScaledOp::Conv2d { weights, bias, .. } => {
                    buf.push(1);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Dense { weights, bias } => {
                    buf.push(2);
                    buf.extend_from_slice(&(weights.len() as u64).to_le_bytes());
                    buf.extend_from_slice(&(bias.len() as u64).to_le_bytes());
                }
                ScaledOp::Affine { scale, .. } => {
                    buf.push(3);
                    buf.extend_from_slice(&(scale.len() as u64).to_le_bytes());
                }
                ScaledOp::ScaleMul { alpha } => {
                    buf.push(4);
                    buf.extend_from_slice(&alpha.to_le_bytes());
                }
                ScaledOp::ReLU { rescale } => {
                    buf.push(5);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::Sigmoid { rescale } => {
                    buf.push(6);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SoftMax { rescale } => {
                    buf.push(7);
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::MaxPool { window, stride, rescale } => {
                    buf.push(8);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                    buf.extend_from_slice(&rescale.to_le_bytes());
                }
                ScaledOp::SumPool { window, stride } => {
                    buf.push(9);
                    buf.extend_from_slice(&(*window as u64).to_le_bytes());
                    buf.extend_from_slice(&(*stride as u64).to_le_bytes());
                }
                ScaledOp::Flatten => buf.push(10),
            }
        }
    }
    fnv1a64(&buf)
}

fn handshake_err(context: impl Into<String>) -> StreamError {
    StreamError::transport(TransportErrorKind::Handshake, context)
}

/// Best-effort extraction of a panic payload's message for the
/// quarantine reply.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

// ---------------------------------------------------------------------------
// Fault-injection hook (compiled out without the feature)
// ---------------------------------------------------------------------------

/// Client-side handle on the shared fault state; `()` when the
/// `fault-injection` feature is off, so the session struct and the
/// reconnect path carry zero cost in release deployments.
#[cfg(feature = "fault-injection")]
type FaultHook = Option<Arc<Mutex<FaultState>>>;
#[cfg(not(feature = "fault-injection"))]
type FaultHook = ();

#[cfg(feature = "fault-injection")]
fn fault_hook(config: &NetConfig) -> FaultHook {
    config.fault.clone().filter(FaultPlan::is_active).map(FaultPlan::into_state)
}
#[cfg(not(feature = "fault-injection"))]
fn fault_hook(_config: &NetConfig) -> FaultHook {}

/// Boxes the freshly handshaken halves, wrapping them in the fault
/// injectors when a plan is active. Handshake and resume frames travel
/// on the raw halves *before* this call, so injected kills never starve
/// the recovery path itself.
#[cfg(feature = "fault-injection")]
fn wrap_transport(
    tx: TcpFrameSender,
    rx: TcpFrameReceiver,
    hook: &FaultHook,
) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
    match hook {
        Some(state) => (
            Box::new(FaultSender::new(tx, Arc::clone(state))),
            Box::new(FaultReceiver::new(rx, Arc::clone(state))),
        ),
        None => (Box::new(tx), Box::new(rx)),
    }
}
#[cfg(not(feature = "fault-injection"))]
fn wrap_transport(
    tx: TcpFrameSender,
    rx: TcpFrameReceiver,
    _hook: &FaultHook,
) -> (Box<dyn FrameSender>, Box<dyn FrameReceiver>) {
    (Box::new(tx), Box::new(rx))
}

#[cfg(feature = "fault-injection")]
fn revive_fault(hook: &FaultHook) {
    if let Some(state) = hook {
        state.lock().revive();
    }
}
#[cfg(not(feature = "fault-injection"))]
fn revive_fault(_hook: &FaultHook) {}

#[cfg(feature = "fault-injection")]
fn fault_count(hook: &FaultHook) -> u64 {
    hook.as_ref().map(|s| s.lock().faults_injected()).unwrap_or(0)
}
#[cfg(not(feature = "fault-injection"))]
fn fault_count(_hook: &FaultHook) -> u64 {
    0
}

// ---------------------------------------------------------------------------
// Session table (server side)
// ---------------------------------------------------------------------------

/// Per-session resume state the server retains across connections.
#[derive(Clone, Debug)]
struct SessionEntry {
    pk_n: Vec<u8>,
    pk_fingerprint: u64,
    topology: u64,
    /// Items `0..acked` are client-confirmed delivered — the
    /// exactly-once floor. Round 0 below it is a protocol violation.
    acked: u64,
    /// Items `0..started` have begun round 0 at least once; round 0 in
    /// `acked..started` is a legitimate post-resume replay.
    started: u64,
    /// Seqs whose linear execution panicked. Outlives the connection:
    /// replaying a quarantined item after a resume is refused with a
    /// fresh [`ItemErrorKind::Quarantined`] reply, never re-executed.
    quarantined: HashSet<u64>,
    last_seen: Instant,
}

/// Bounded, TTL-evicting table of resumable sessions, shared by every
/// connection a provider serves.
struct SessionTable {
    ttl: Duration,
    capacity: usize,
    next_id: AtomicU64,
    inner: Mutex<HashMap<u64, SessionEntry>>,
}

impl SessionTable {
    fn new(ttl: Duration, capacity: usize) -> Self {
        SessionTable {
            ttl,
            capacity: capacity.max(1),
            // Session 0 is never issued, so a zeroed client can't
            // accidentally resume a real stream.
            next_id: AtomicU64::new(1),
            inner: Mutex::new(HashMap::new()),
        }
    }

    fn evict_expired(map: &mut HashMap<u64, SessionEntry>, ttl: Duration) {
        let now = Instant::now();
        map.retain(|_, e| now.duration_since(e.last_seen) <= ttl);
    }

    /// Registers a fresh session, evicting expired entries and — at
    /// capacity — the least-recently-seen live one.
    fn create(&self, pk_n: Vec<u8>, pk_fingerprint: u64, topology: u64) -> u64 {
        let mut map = self.inner.lock();
        Self::evict_expired(&mut map, self.ttl);
        if map.len() >= self.capacity {
            if let Some(oldest) = map.iter().min_by_key(|(_, e)| e.last_seen).map(|(&id, _)| id) {
                map.remove(&oldest);
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(
            id,
            SessionEntry {
                pk_n,
                pk_fingerprint,
                topology,
                acked: 0,
                started: 0,
                quarantined: HashSet::new(),
                last_seen: Instant::now(),
            },
        );
        id
    }

    /// Validates a resume and syncs the ack floor to the client's count.
    fn resume(&self, session: u64, items_done: u64, topology: u64) -> Result<SessionEntry, String> {
        let mut map = self.inner.lock();
        Self::evict_expired(&mut map, self.ttl);
        let entry = map
            .get_mut(&session)
            .ok_or_else(|| format!("resume rejected: session {session} is unknown or expired"))?;
        if entry.topology != topology {
            return Err(format!(
                "resume rejected: topology digest {topology:#018x} does not match session \
                 {session}'s {:#018x}",
                entry.topology
            ));
        }
        if items_done < entry.acked {
            return Err(format!(
                "resume rejected: client reports {items_done} items done but {} are already \
                 acked — replaying them would break exactly-once delivery",
                entry.acked
            ));
        }
        entry.acked = items_done;
        entry.started = entry.started.max(entry.acked);
        entry.last_seen = Instant::now();
        Ok(entry.clone())
    }

    /// Raises the exactly-once floor from a client ack.
    fn ack(&self, session: u64, items_done: u64) {
        if let Some(e) = self.inner.lock().get_mut(&session) {
            e.acked = e.acked.max(items_done);
            e.started = e.started.max(e.acked);
            e.last_seen = Instant::now();
        }
    }

    /// Gate for an item's first linear round. `Ok(true)` means the item
    /// is a post-resume replay; `Err` means the floor was violated.
    fn on_round0(&self, session: u64, seq: u64) -> Result<bool, String> {
        let mut map = self.inner.lock();
        let e = map
            .get_mut(&session)
            .ok_or_else(|| format!("session {session} vanished mid-connection"))?;
        if seq < e.acked {
            return Err(format!(
                "exactly-once violation: request {seq} restarted below the acked floor {}",
                e.acked
            ));
        }
        let replayed = seq < e.started;
        e.started = e.started.max(seq + 1);
        e.last_seen = Instant::now();
        Ok(replayed)
    }

    /// Marks an item as poison: its execution panicked, and no replay of
    /// it will ever be executed again.
    fn quarantine(&self, session: u64, seq: u64) {
        if let Some(e) = self.inner.lock().get_mut(&session) {
            e.quarantined.insert(seq);
            e.last_seen = Instant::now();
        }
    }

    /// Whether an item is quarantined (its replay must be refused).
    fn is_quarantined(&self, session: u64, seq: u64) -> bool {
        self.inner.lock().get(&session).is_some_and(|e| e.quarantined.contains(&seq))
    }

    /// Ends a session deliberately (client Bye).
    fn remove(&self, session: u64) {
        self.inner.lock().remove(&session);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

// ---------------------------------------------------------------------------
// Model provider (server)
// ---------------------------------------------------------------------------

/// How one served connection ended.
enum ConnOutcome {
    /// The client ended the session with [`ByeMsg`]; its state is gone.
    Clean,
    /// The socket closed without a Bye; the session stays resumable.
    Dropped,
    /// The handshake was rejected (or never arrived).
    Rejected,
}

/// The model-provider server: serves the linear stages of one scaled
/// model over framed TCP connections, with resumable sessions.
pub struct ModelProvider {
    stages: Vec<MergedStage>,
    topology: u64,
    factor: i64,
    seed: u64,
    pool: WorkerPool,
    tcp: TcpConfig,
    sessions: SessionTable,
    /// Per-session cap on items with linear rounds in flight; round-0
    /// arrivals beyond it are shed ([`NetConfig::max_inflight_items`]).
    max_inflight: usize,
    /// Chaos driver: the linear execution of this seq panics once, so
    /// tests can exercise the quarantine boundary deterministically.
    #[cfg(feature = "fault-injection")]
    poison_seq: Option<u64>,
}

impl ModelProvider {
    /// Encapsulates the model into merged stages and prepares the server.
    pub fn new(model: &ScaledModel, config: &NetConfig) -> Result<Self, CoreError> {
        let stages = encapsulate_with(model, config.merge_stages)?;
        let topology = topology_digest(&stages, model.factor());
        Ok(ModelProvider {
            stages,
            topology,
            factor: model.factor(),
            seed: config.seed,
            pool: WorkerPool::new(config.threads.max(1)),
            tcp: config.tcp.clone(),
            sessions: SessionTable::new(config.session_ttl, config.session_capacity),
            max_inflight: config.max_inflight_items,
            #[cfg(feature = "fault-injection")]
            poison_seq: config.fault.as_ref().and_then(|f| f.poison_seq),
        })
    }

    /// The topology digest clients must present.
    pub fn topology(&self) -> u64 {
        self.topology
    }

    /// Binds `addr` and serves client connections until one ends its
    /// session cleanly (Bye). Returns the bound address alongside the
    /// report so `127.0.0.1:0` callers can learn the assigned port —
    /// though for that pattern [`ModelProvider::serve_listener`] with a
    /// pre-bound listener avoids the race entirely.
    pub fn serve_once(
        &self,
        addr: impl ToSocketAddrs,
    ) -> Result<(ServeReport, SocketAddr), CoreError> {
        let listener = TcpListener::bind(addr).map_err(|e| {
            CoreError::from(StreamError::transport(TransportErrorKind::Bind, format!("bind: {e}")))
        })?;
        let local = listener.local_addr().map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Bind,
                format!("local addr: {e}"),
            ))
        })?;
        let report = self.serve_listener(&listener)?;
        Ok((report, local))
    }

    /// Serves connections on a pre-bound listener, sequentially, until a
    /// client ends its session with a Bye. A dropped connection leaves
    /// its session resumable and the loop accepts the reconnect; a
    /// rejected or failed handshake is counted and the loop keeps
    /// serving — one misconfigured client cannot take the server down.
    pub fn serve_listener(&self, listener: &TcpListener) -> Result<ServeReport, CoreError> {
        let mut report = ServeReport::default();
        loop {
            let (mut tx, mut rx) = tcp::accept_on(listener, &self.tcp)?;
            report.connections += 1;
            match self.handle_conn(&mut tx, &mut rx, &mut report) {
                Ok(ConnOutcome::Clean) => {
                    report.clean_shutdown = true;
                    return Ok(report);
                }
                Ok(ConnOutcome::Dropped) | Ok(ConnOutcome::Rejected) => continue,
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(e.to_string());
                    continue;
                }
            }
        }
    }

    /// Supervised multi-client serving: accepts connections on
    /// `listener` until [`ServerHandle::shutdown`], dispatching each to
    /// a bounded pool of worker threads. A worker panic or per-connection
    /// error is isolated and counted — the accept loop keeps serving.
    /// Shutdown stops accepting and drains in-flight connections (it
    /// blocks until their clients close or time out, so configure read
    /// timeouts for unattended deployments).
    pub fn serve_forever(
        self: &Arc<Self>,
        listener: TcpListener,
        options: ServeOptions,
    ) -> Result<ServerHandle, CoreError> {
        let addr = listener.local_addr().map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Bind,
                format!("local addr: {e}"),
            ))
        })?;
        listener.set_nonblocking(true).map_err(|e| {
            CoreError::from(StreamError::transport(
                TransportErrorKind::Setup,
                format!("nonblocking listener: {e}"),
            ))
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let provider = Arc::clone(self);
        let thread = std::thread::spawn(move || provider.supervise(listener, options, stop_flag));
        Ok(ServerHandle { stop, addr, thread })
    }

    /// The accept/supervise loop behind [`ModelProvider::serve_forever`].
    fn supervise(
        self: Arc<Self>,
        listener: TcpListener,
        options: ServeOptions,
        stop: Arc<AtomicBool>,
    ) -> ServeReport {
        let mut report = ServeReport::default();
        let (done_tx, done_rx) = mpsc::channel::<WorkerDone>();
        let mut active = 0usize;
        let max_workers = options.max_workers.max(1);
        while !stop.load(Ordering::Relaxed) {
            while let Ok(done) = done_rx.try_recv() {
                active -= 1;
                absorb_worker(&mut report, done);
            }
            // Admission control: at the session cap, refuse newcomers
            // with a Busy reply instead of queueing them for a slot.
            if options.max_sessions.is_some_and(|cap| active >= cap) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        report.connections += 1;
                        report.rejected_busy += 1;
                        self.reject_busy(stream, active, options.retry_after);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(options.poll_interval);
                    }
                    Err(e) => {
                        report.failed_connections += 1;
                        report.last_error = Some(format!("accept: {e}"));
                        std::thread::sleep(options.poll_interval);
                    }
                }
                continue;
            }
            if active >= max_workers {
                std::thread::sleep(options.poll_interval);
                continue;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    report.connections += 1;
                    active += 1;
                    let provider = Arc::clone(&self);
                    let done_tx = done_tx.clone();
                    std::thread::spawn(move || {
                        let done = catch_unwind(AssertUnwindSafe(|| {
                            let mut local = ServeReport::default();
                            let outcome = match tcp::framed_with(stream, &provider.tcp) {
                                Ok((mut ctx, mut crx)) => {
                                    provider.handle_conn(&mut ctx, &mut crx, &mut local)
                                }
                                Err(e) => Err(CoreError::from(e)),
                            };
                            (outcome, local)
                        }));
                        let _ = done_tx.send(done);
                    });
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(options.poll_interval);
                }
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(format!("accept: {e}"));
                    std::thread::sleep(options.poll_interval);
                }
            }
        }
        // Graceful drain: no new connections, wait out the in-flight ones.
        drop(done_tx);
        while active > 0 {
            match done_rx.recv() {
                Ok(done) => {
                    active -= 1;
                    absorb_worker(&mut report, done);
                }
                Err(_) => break,
            }
        }
        report
    }

    /// Answers an over-capacity connection with a Busy rejection on a
    /// detached thread (so a slow client can't wedge the accept loop),
    /// then closes it. The client's opening hello is drained first: the
    /// socket closes with unread data otherwise, and the resulting RST
    /// could destroy the rejection before the client reads it.
    fn reject_busy(self: &Arc<Self>, stream: TcpStream, active: usize, retry_after: Duration) {
        let provider = Arc::clone(self);
        std::thread::spawn(move || {
            if let Ok((mut tx, mut rx)) = tcp::framed_with(stream, &provider.tcp) {
                let _ = rx.recv();
                let reject = RejectMsg::busy(
                    format!("server at capacity ({active} active sessions)"),
                    retry_after.as_millis() as u64,
                );
                let _ = tx.send_payload(to_frame(&reject));
            }
        });
    }

    /// Serves one accepted connection: opening Hello/Resume, then the
    /// EncTensor/Ack/Bye loop. Counts into `report`; transport and
    /// protocol failures return `Err` (the caller isolates them).
    fn handle_conn(
        &self,
        tx: &mut TcpFrameSender,
        rx: &mut TcpFrameReceiver,
        report: &mut ServeReport,
    ) -> Result<ConnOutcome, CoreError> {
        // --- Opening frame: Hello (fresh session) or Resume ----------------
        let first = match rx.recv().map_err(|e| e.at_stage("handshake"))? {
            Some(f) => f,
            None => {
                report.rejected_handshakes += 1;
                return Ok(ConnOutcome::Rejected);
            }
        };
        report.frames_in += 1;
        report.bytes_in += first.payload.len() as u64;

        let (session, pk, packing) = match crate::messages::peek_tag(&first.payload) {
            Some(MsgTag::Hello) => {
                let hello: HelloMsg = match from_frame(first.payload) {
                    Ok(h) => h,
                    Err(_) => return self.reject(tx, report, "malformed hello frame"),
                };
                if let Some(reason) = self.validate_hello(&hello) {
                    return self.reject(tx, report, &reason);
                }
                let pk = PublicKey::from_n(BigUint::from_bytes_be(&hello.pk_n));
                // Packing is negotiated, never assumed: the client's
                // proposed layout must fit the key and cover this model's
                // op budget, else the stream stays per-item.
                let packing = self.negotiate_packing(&hello, &pk);
                let session =
                    self.sessions.create(hello.pk_n, hello.pk_fingerprint, hello.topology);
                self.send_accept(
                    tx,
                    report,
                    hello.pk_fingerprint,
                    session,
                    packing.map_or(0, |s| s.slot_bits as u32),
                )?;
                (session, pk, packing)
            }
            Some(MsgTag::Resume) => {
                let resume: ResumeMsg = match from_frame(first.payload) {
                    Ok(r) => r,
                    Err(_) => return self.reject(tx, report, "malformed resume frame"),
                };
                if resume.version != PROTOCOL_VERSION {
                    return self.reject(
                        tx,
                        report,
                        &format!(
                            "protocol version mismatch: server speaks {PROTOCOL_VERSION}, \
                             client {}",
                            resume.version
                        ),
                    );
                }
                let entry =
                    match self.sessions.resume(resume.session, resume.items_done, resume.topology)
                    {
                        Ok(entry) => entry,
                        Err(reason) => return self.reject(tx, report, &reason),
                    };
                report.resumed_sessions += 1;
                let pk = PublicKey::from_n(BigUint::from_bytes_be(&entry.pk_n));
                // Resumed connections run unpacked: replay bookkeeping is
                // per-item, and a resume already signals a degraded path.
                self.send_accept(tx, report, entry.pk_fingerprint, resume.session, 0)?;
                (resume.session, pk, None)
            }
            _ => return self.reject(tx, report, "first frame was neither hello nor resume"),
        };

        // --- Serve linear rounds ------------------------------------------
        let execs = self.build_linear_execs(&pk);
        let n_linear = execs.len();
        // Requests arrive with their linear rounds in order; track each
        // request's next round index (per connection: a replay after a
        // reconnect legitimately restarts at round 0).
        let mut next_round: HashMap<u64, usize> = HashMap::new();
        // Packed batches, keyed by their first member's seq: the full
        // member list (pinned at round 0) and the next round index.
        let mut next_packed: HashMap<u64, (Vec<u64>, usize)> = HashMap::new();

        loop {
            let frame = match rx.recv().map_err(|e| e.at_stage("linear request"))? {
                Some(f) => f,
                None => return Ok(ConnOutcome::Dropped),
            };
            report.frames_in += 1;
            report.bytes_in += frame.payload.len() as u64;

            match crate::messages::peek_tag(&frame.payload) {
                Some(MsgTag::Ack) => {
                    let ack: AckMsg = from_frame(frame.payload).map_err(CoreError::from)?;
                    self.sessions.ack(session, ack.items_done);
                    continue;
                }
                Some(MsgTag::Bye) => {
                    self.sessions.remove(session);
                    return Ok(ConnOutcome::Clean);
                }
                _ => {}
            }
            let budget_ms = frame.deadline_ms;
            let arrival = Instant::now();

            // Packed batches take their own serving path: one frame per
            // linear round serves every member at once, and any failure
            // aborts the batch (client falls back per-item) instead of
            // poisoning the connection.
            if crate::messages::peek_tag(&frame.payload) == Some(MsgTag::PackedTensor) {
                let msg: PackedTensorMsg = from_frame(frame.payload).map_err(CoreError::from)?;
                self.serve_packed_round(
                    tx,
                    report,
                    session,
                    packing,
                    &execs,
                    next_round.len(),
                    &mut next_packed,
                    msg,
                    budget_ms,
                    arrival,
                )?;
                continue;
            }

            let msg: EncTensorMsg = from_frame(frame.payload).map_err(CoreError::from)?;
            let seq = msg.seq;

            // A quarantined item is refused before any bookkeeping: a
            // replay (e.g. after a resume) must never execute again.
            if self.sessions.is_quarantined(session, seq) {
                report.quarantined += 1;
                self.send_item_error(
                    tx,
                    report,
                    seq,
                    ItemErrorKind::Quarantined,
                    "replay refused: item is quarantined after a panic",
                )?;
                continue;
            }

            let round = match next_round.get(&seq) {
                Some(&r) => r,
                // Item-level admission control: at the in-flight cap,
                // shedding the newcomer beats queueing without bound.
                None if next_round.len() >= self.max_inflight => {
                    report.shed += 1;
                    self.send_item_error(
                        tx,
                        report,
                        seq,
                        ItemErrorKind::Shed,
                        &format!("session at its in-flight cap ({})", self.max_inflight),
                    )?;
                    continue;
                }
                None => 0,
            };
            if round >= n_linear {
                let err = StreamError::Stage(format!(
                    "request {seq} sent more linear rounds than the model has ({n_linear})"
                ));
                return Err(CoreError::from(err));
            }
            if round == 0 {
                match self.sessions.on_round0(session, seq) {
                    Ok(true) => report.replayed_items += 1,
                    Ok(false) => {}
                    Err(reason) => return Err(CoreError::from(StreamError::Stage(reason))),
                }
            }
            // The stage would panic on a shape/count mismatch; turn
            // attacker-reachable malformed input into an error instead.
            let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
            if elems.map(|n| n as usize) != Some(msg.cts.len()) {
                let err = StreamError::Stage(format!(
                    "request {seq} round {round}: shape {:?} does not match {} ciphertexts",
                    msg.shape,
                    msg.cts.len()
                ));
                return Err(CoreError::from(err));
            }
            // Deadline gate before the expensive Paillier work. The frame
            // carries the *remaining* budget in milliseconds relative to
            // its arrival, so clock skew between the hosts is irrelevant.
            if let Some(ms) = budget_ms {
                if arrival.elapsed() >= Duration::from_millis(ms) {
                    report.deadline_expired += 1;
                    next_round.remove(&seq);
                    self.send_item_error(
                        tx,
                        report,
                        seq,
                        ItemErrorKind::DeadlineExpired,
                        &format!("budget of {ms} ms ran out before linear round {round}"),
                    )?;
                    continue;
                }
            }
            // Poison-item boundary: a panic inside the linear execution
            // quarantines the item instead of killing the connection.
            #[cfg(feature = "fault-injection")]
            let poison = self.poison_seq == Some(seq);
            let exec = &execs[round];
            let pool = &self.pool;
            let executed = catch_unwind(AssertUnwindSafe(move || {
                #[cfg(feature = "fault-injection")]
                if poison {
                    panic!("injected poison item {seq}");
                }
                exec.execute(msg, pool)
            }));
            let out = match executed {
                Ok(res) => res.map_err(CoreError::from)?,
                Err(panic_payload) => {
                    let detail = panic_message(panic_payload.as_ref());
                    self.sessions.quarantine(session, seq);
                    next_round.remove(&seq);
                    report.quarantined += 1;
                    self.send_item_error(
                        tx,
                        report,
                        seq,
                        ItemErrorKind::Quarantined,
                        &format!("item {seq} panicked: {detail}"),
                    )?;
                    continue;
                }
            };
            if round + 1 == n_linear {
                next_round.remove(&seq);
                report.requests += 1;
            } else {
                next_round.insert(seq, round + 1);
            }

            let payload = to_frame(&out);
            report.bytes_out += payload.len() as u64;
            report.frames_out += 1;
            tx.send_payload(payload)
                .map_err(|e| e.at_stage(&format!("linear-{round} reply for request {seq}")))?;
        }
    }

    /// Sends a Reject naming `reason` (best-effort — the client may be
    /// gone) and counts the rejection. The caller keeps serving.
    fn reject(
        &self,
        tx: &mut TcpFrameSender,
        report: &mut ServeReport,
        reason: &str,
    ) -> Result<ConnOutcome, CoreError> {
        report.rejected_handshakes += 1;
        report.last_error = Some(format!("rejected client: {reason}"));
        let payload = to_frame(&RejectMsg::mismatch(reason));
        if tx.send_payload(payload.clone()).is_ok() {
            report.bytes_out += payload.len() as u64;
            report.frames_out += 1;
        }
        Ok(ConnOutcome::Rejected)
    }

    /// Sends a per-item error reply: the item fails, the session and the
    /// connection survive.
    fn send_item_error(
        &self,
        tx: &mut TcpFrameSender,
        report: &mut ServeReport,
        seq: u64,
        kind: ItemErrorKind,
        detail: &str,
    ) -> Result<(), CoreError> {
        let payload = to_frame(&ItemErrorMsg { seq, kind, detail: detail.to_string() });
        report.bytes_out += payload.len() as u64;
        report.frames_out += 1;
        tx.send_payload(payload).map_err(|e| {
            CoreError::from(e.at_stage(&format!("item-error reply for request {seq}")))
        })?;
        Ok(())
    }

    fn send_accept(
        &self,
        tx: &mut TcpFrameSender,
        report: &mut ServeReport,
        pk_fingerprint: u64,
        session: u64,
        pack_slot_bits: u32,
    ) -> Result<(), CoreError> {
        let accept = to_frame(&AcceptMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint,
            topology: self.topology,
            session,
            pack_slot_bits,
        });
        report.bytes_out += accept.len() as u64;
        report.frames_out += 1;
        tx.send_payload(accept).map_err(|e| e.at_stage("handshake accept"))?;
        Ok(())
    }

    /// Accepts the client's proposed packing layout only when it fits
    /// the key's capacity and covers this model's accumulated op budget
    /// (`None` declines — the stream stays on the per-item protocol).
    fn negotiate_packing(&self, hello: &HelloMsg, pk: &PublicKey) -> Option<PackingSpec> {
        if hello.pack_slot_bits == 0 || hello.pack_slots == 0 {
            return None;
        }
        let max = PackingSpec::for_key(pk, hello.pack_slot_bits as usize).ok()?;
        if hello.pack_slots as usize > max.slots {
            return None;
        }
        let spec = PackingSpec {
            slot_bits: hello.pack_slot_bits as usize,
            slots: hello.pack_slots as usize,
            op_budget: hello.pack_budget,
        };
        spec.check().ok()?;
        if hello.pack_budget < packed::required_budget(&self.stages) {
            return None;
        }
        Some(spec)
    }

    /// One linear round of a packed batch. All failure modes short of a
    /// dead socket answer with a single [`ItemErrorKind::PackedAbort`]
    /// (batch state dropped, perms released) so the client can replay
    /// the members unpacked over the same connection.
    #[allow(clippy::too_many_arguments)]
    fn serve_packed_round(
        &self,
        tx: &mut TcpFrameSender,
        report: &mut ServeReport,
        session: u64,
        packing: Option<PackingSpec>,
        execs: &[LinearStage],
        unpacked_inflight: usize,
        next_packed: &mut HashMap<u64, (Vec<u64>, usize)>,
        msg: PackedTensorMsg,
        budget_ms: Option<u64>,
        arrival: Instant,
    ) -> Result<(), CoreError> {
        let n_linear = execs.len();
        let Some(&key) = msg.seqs.first() else {
            return Err(CoreError::from(StreamError::Stage(
                "packed frame with an empty batch".into(),
            )));
        };
        let Some(spec) = packing else {
            return self.send_packed_abort(
                tx,
                report,
                execs,
                next_packed,
                key,
                "packing was not negotiated for this connection",
            );
        };
        if msg.slot_bits as usize != spec.slot_bits
            || msg.slots as usize != spec.slots
            || msg.op_budget != spec.op_budget
            || msg.seqs.len() > spec.slots
        {
            return self.send_packed_abort(
                tx,
                report,
                execs,
                next_packed,
                key,
                "packed layout differs from the negotiated spec",
            );
        }
        let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
        if elems.map(|n| n as usize) != Some(msg.cts.len()) {
            return self.send_packed_abort(
                tx,
                report,
                execs,
                next_packed,
                key,
                "packed shape does not match the ciphertext count",
            );
        }

        let round = match next_packed.get(&key) {
            Some((seqs, round)) => {
                if *seqs != msg.seqs {
                    return self.send_packed_abort(
                        tx,
                        report,
                        execs,
                        next_packed,
                        key,
                        "packed batch membership changed between rounds",
                    );
                }
                *round
            }
            None => {
                // Round 0: admission control and per-member exactly-once
                // bookkeeping, mirroring the unpacked path.
                if msg.seqs.iter().any(|&s| self.sessions.is_quarantined(session, s)) {
                    return self.send_packed_abort(
                        tx,
                        report,
                        execs,
                        next_packed,
                        key,
                        "batch contains a quarantined item",
                    );
                }
                let packed_inflight: usize =
                    next_packed.values().map(|(seqs, _)| seqs.len()).sum();
                if unpacked_inflight + packed_inflight + msg.seqs.len() > self.max_inflight {
                    report.shed += 1;
                    return self.send_packed_abort(
                        tx,
                        report,
                        execs,
                        next_packed,
                        key,
                        &format!("session at its in-flight cap ({})", self.max_inflight),
                    );
                }
                for &s in &msg.seqs {
                    match self.sessions.on_round0(session, s) {
                        Ok(true) => report.replayed_items += 1,
                        Ok(false) => {}
                        Err(reason) => {
                            return Err(CoreError::from(StreamError::Stage(reason)))
                        }
                    }
                }
                0
            }
        };
        if round >= n_linear {
            return Err(CoreError::from(StreamError::Stage(format!(
                "packed batch {key} sent more linear rounds than the model has ({n_linear})"
            ))));
        }
        if let Some(ms) = budget_ms {
            if arrival.elapsed() >= Duration::from_millis(ms) {
                report.deadline_expired += 1;
                return self.send_packed_abort(
                    tx,
                    report,
                    execs,
                    next_packed,
                    key,
                    &format!("budget of {ms} ms ran out before packed linear round {round}"),
                );
            }
        }

        // A panic (op-budget violation, poison member) aborts the batch;
        // the per-item replay re-establishes item-level quarantine.
        #[cfg(feature = "fault-injection")]
        let poison =
            self.poison_seq.is_some_and(|p| msg.seqs.contains(&p));
        let used = msg.seqs.len() as u64;
        let exec = &execs[round];
        let executed = catch_unwind(AssertUnwindSafe(move || {
            #[cfg(feature = "fault-injection")]
            if poison {
                panic!("injected poison item in packed batch {key}");
            }
            packed::execute_packed_linear(exec, msg)
        }));
        let out = match executed {
            Ok(Ok(out)) => out,
            Ok(Err(e)) => {
                return self.send_packed_abort(
                    tx,
                    report,
                    execs,
                    next_packed,
                    key,
                    &format!("packed round {round} failed: {e}"),
                );
            }
            Err(panic_payload) => {
                let detail = panic_message(panic_payload.as_ref());
                return self.send_packed_abort(
                    tx,
                    report,
                    execs,
                    next_packed,
                    key,
                    &format!("packed round {round} panicked: {detail}"),
                );
            }
        };
        if round + 1 == n_linear {
            next_packed.remove(&key);
            report.requests += used;
        } else {
            next_packed.insert(key, (out.seqs.clone(), round + 1));
        }
        report.packed_rounds += 1;

        let payload = to_frame(&out);
        report.bytes_out += payload.len() as u64;
        report.frames_out += 1;
        tx.send_payload(payload)
            .map_err(|e| e.at_stage(&format!("packed linear-{round} reply for batch {key}")))?;
        Ok(())
    }

    /// Aborts a packed batch: drops its round tracking and any stored
    /// permutations, and answers with one [`ItemErrorKind::PackedAbort`]
    /// keyed by the batch's first member. The connection survives; the
    /// client replays every unresolved member unpacked.
    fn send_packed_abort(
        &self,
        tx: &mut TcpFrameSender,
        report: &mut ServeReport,
        execs: &[LinearStage],
        next_packed: &mut HashMap<u64, (Vec<u64>, usize)>,
        key: u64,
        detail: &str,
    ) -> Result<(), CoreError> {
        next_packed.remove(&key);
        if let Some(exec0) = execs.first() {
            let packed_key = key | PACKED_PERM_BIT;
            for idx in 0..execs.len() {
                let _ = exec0.perms.take(packed_key, idx);
            }
        }
        report.packed_aborts += 1;
        self.send_item_error(tx, report, key, ItemErrorKind::PackedAbort, detail)
    }

    /// `None` when the hello is acceptable, otherwise the rejection
    /// reason sent back to the client.
    fn validate_hello(&self, hello: &HelloMsg) -> Option<String> {
        if hello.version != PROTOCOL_VERSION {
            return Some(format!(
                "protocol version mismatch: server speaks {PROTOCOL_VERSION}, client {}",
                hello.version
            ));
        }
        if hello.pk_n.is_empty() || hello.pk_n.len() > 4096 {
            return Some(format!(
                "public key size {} bytes is outside the accepted range (1..=4096)",
                hello.pk_n.len()
            ));
        }
        if pk_fingerprint(&hello.pk_n) != hello.pk_fingerprint {
            return Some("public-key fingerprint does not match the key bytes".into());
        }
        if hello.factor != self.factor {
            return Some(format!(
                "scaling factor mismatch: server {}, client {}",
                self.factor, hello.factor
            ));
        }
        if hello.n_stages as usize != self.stages.len() || hello.topology != self.topology {
            return Some(format!(
                "model topology mismatch: server digest {:#018x} ({} stages), \
                 client digest {:#018x} ({} stages)",
                self.topology,
                self.stages.len(),
                hello.topology,
                hello.n_stages
            ));
        }
        None
    }

    fn build_linear_execs(&self, pk: &PublicKey) -> Vec<LinearStage> {
        let perms = Arc::new(PermStore::default());
        let n_linear = self.stages.iter().filter(|s| s.role == StageRole::Linear).count();
        let mut linear_idx = 0usize;
        let mut execs = Vec::with_capacity(n_linear);
        for (i, stage) in self.stages.iter().enumerate() {
            if stage.role != StageRole::Linear {
                continue;
            }
            execs.push(LinearStage {
                pk: pk.clone(),
                stage: stage.clone(),
                linear_idx,
                is_first: linear_idx == 0,
                is_last: linear_idx == n_linear - 1,
                perms: Arc::clone(&perms),
                mode: PartitionMode::Partitioned,
                seed: self.seed ^ 0x11AE ^ (i as u64) << 8,
                intra_bytes: Arc::new(AtomicU64::new(0)),
            });
            linear_idx += 1;
        }
        execs
    }
}

/// Knobs for [`ModelProvider::serve_forever`].
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Concurrent connection workers; further accepts wait for a slot.
    pub max_workers: usize,
    /// Idle accept-loop poll interval (the listener is non-blocking so
    /// the stop flag is observed promptly).
    pub poll_interval: Duration,
    /// Admission control: with `Some(cap)`, a connection arriving while
    /// `cap` sessions are already being served is answered with a
    /// [`RejectCode::Busy`] reply (carrying [`retry_after`] as the
    /// backoff hint) and closed, instead of waiting for a worker slot.
    /// `None` keeps the legacy queue-for-a-slot behavior.
    ///
    /// [`retry_after`]: ServeOptions::retry_after
    pub max_sessions: Option<usize>,
    /// Backoff hint sent with every busy rejection.
    pub retry_after: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            max_workers: 4,
            poll_interval: Duration::from_millis(10),
            max_sessions: None,
            retry_after: Duration::from_millis(25),
        }
    }
}

/// One worker's outcome: its connection result and local counters, or
/// the panic payload `catch_unwind` trapped.
type WorkerDone = std::thread::Result<(Result<ConnOutcome, CoreError>, ServeReport)>;

fn absorb_worker(report: &mut ServeReport, done: WorkerDone) {
    match done {
        Ok((outcome, local)) => {
            report.merge(&local);
            match outcome {
                Ok(ConnOutcome::Clean) => report.clean_shutdown = true,
                Ok(ConnOutcome::Dropped) | Ok(ConnOutcome::Rejected) => {}
                Err(e) => {
                    report.failed_connections += 1;
                    report.last_error = Some(e.to_string());
                }
            }
        }
        Err(_) => report.panicked_connections += 1,
    }
}

/// Handle on a running [`ModelProvider::serve_forever`] loop.
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
    thread: std::thread::JoinHandle<ServeReport>,
}

impl ServerHandle {
    /// The bound listening address (useful with `127.0.0.1:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains in-flight connections, and returns the
    /// aggregated report.
    pub fn shutdown(self) -> ServeReport {
        self.stop.store(true, Ordering::Relaxed);
        self.thread.join().unwrap_or_else(|_| ServeReport {
            last_error: Some("serve_forever supervisor panicked".into()),
            ..Default::default()
        })
    }
}

// ---------------------------------------------------------------------------
// Data provider (client)
// ---------------------------------------------------------------------------

/// One protocol step as seen from the client: a socket round trip to the
/// server's next linear stage, or a local non-linear stage.
enum ClientStep {
    Linear { round: usize },
    NonLinear(Box<NonLinearStage>),
}

/// Transient transport failures the resume loop recovers from; protocol
/// violations (handshake, seq, decode, stage) stay fatal.
fn is_transient(e: &StreamError) -> bool {
    matches!(
        e,
        StreamError::Transport {
            kind: TransportErrorKind::Send
                | TransportErrorKind::Recv
                | TransportErrorKind::Timeout
                | TransportErrorKind::Eof
                | TransportErrorKind::Connect,
            ..
        }
    )
}

/// Backoff before retrying a Busy-rejected connect: the server's
/// `retry_after_ms` hint, clamped into the retry policy's delay range.
fn busy_backoff(retry: &pp_stream_runtime::RetryPolicy, hint_ms: u64) -> Duration {
    let floor = retry.base_delay.min(retry.max_delay);
    Duration::from_millis(hint_ms).clamp(floor, retry.max_delay.max(floor))
}

/// Placeholder halves installed while a reconnect is in flight, so the
/// dead socket drops (and the server sees its EOF) *before* the resume
/// handshake waits on a reply.
struct DeadHalf;

fn dead_err() -> StreamError {
    StreamError::transport(TransportErrorKind::Eof, "connection torn down for reconnect")
}

impl FrameSender for DeadHalf {
    fn send(&mut self, _frame: &Frame) -> Result<(), StreamError> {
        Err(dead_err())
    }
    fn send_payload(&mut self, _payload: Bytes) -> Result<u64, StreamError> {
        Err(dead_err())
    }
    fn send_payload_deadline(
        &mut self,
        _payload: Bytes,
        _deadline_ms: Option<u64>,
    ) -> Result<u64, StreamError> {
        Err(dead_err())
    }
}

impl FrameReceiver for DeadHalf {
    fn recv(&mut self) -> Result<Option<Frame>, StreamError> {
        Err(dead_err())
    }
}

/// The data-provider client: a connected, handshaken session against a
/// [`ModelProvider`], with transparent reconnect-and-resume.
pub struct NetworkedSession {
    tx: Box<dyn FrameSender>,
    rx: Box<dyn FrameReceiver>,
    addrs: Vec<SocketAddr>,
    tcp: TcpConfig,
    scaled: ScaledModel,
    steps: Vec<ClientStep>,
    encrypt: EncryptStage,
    /// Precomputed `r^n` blinding factors, refilled per stream off the
    /// request path (shared with `encrypt`).
    rand_pool: Arc<Mutex<RandomnessPool>>,
    pool: WorkerPool,
    transport: TransportReport,
    session: u64,
    /// Items fully delivered to the caller; doubles as the next item's
    /// request seq, so a second `infer_stream` call keeps seqs unique
    /// and the exactly-once floor intact.
    items_done: u64,
    topology: u64,
    fingerprint: u64,
    max_resumes: u32,
    /// Per-item end-to-end budget ([`NetConfig::item_deadline`]).
    item_deadline: Option<Duration>,
    /// Stall-watchdog window on linear replies
    /// ([`NetConfig::stall_window`]).
    stall_window: Option<Duration>,
    /// The packed-ciphertext layout negotiated at connect, or `None`
    /// when the stream runs per-item (declined, disabled, or dropped
    /// after a resume — resumed connections are always unpacked).
    packing: Option<PackingSpec>,
    /// Requested members per packed batch ([`NetConfig::pack_batch`];
    /// 0 fills every slot the negotiated layout offers).
    pack_batch: usize,
    fault: FaultHook,
}

/// How one item of a partial stream ended — see
/// [`NetworkedSession::infer_stream_partial`].
#[derive(Clone, Debug)]
pub enum ItemOutcome {
    /// The item completed; the scaled output tensor.
    Done(Tensor<i64>),
    /// The item failed individually (shed, expired, or quarantined)
    /// while the session survived. The item was **resolved**: its seq is
    /// acked and it will never be retried by this session.
    Failed {
        /// Which overload outcome failed the item.
        kind: ItemErrorKind,
        /// Human-readable detail from the failing side.
        detail: String,
    },
}

impl ItemOutcome {
    /// The output tensor, if the item completed.
    pub fn output(&self) -> Option<&Tensor<i64>> {
        match self {
            ItemOutcome::Done(t) => Some(t),
            ItemOutcome::Failed { .. } => None,
        }
    }
}

/// Internal per-item result: completed output, or a per-item failure
/// that resolves the item without failing the session.
enum ItemResult {
    Output(PlainTensorMsg),
    Failed { kind: ItemErrorKind, detail: String },
}

/// How one packed round set ended: every member's plaintext output, or
/// an instruction to replay the members unpacked. `reset` asks for a
/// reconnect first — the server may still hold batch round state (and
/// stored permutations) that only a connection teardown releases.
enum PackedRoundOutcome {
    Done(Vec<PlainTensorMsg>),
    Fallback { reset: bool },
}

/// Converts a resolved item into the caller-facing outcome. In strict
/// mode a per-item failure errors the whole call.
fn outcome_from(result: ItemResult, seq: u64, strict: bool) -> Result<ItemOutcome, CoreError> {
    match result {
        ItemResult::Output(out) => {
            let shape: Vec<usize> = out.shape.iter().map(|&d| d as usize).collect();
            let values = out
                .values
                .iter()
                .map(|&v| {
                    i64::try_from(v).map_err(|_| {
                        CoreError::Runtime(format!(
                            "final logit {v} for request {seq} does not fit i64"
                        ))
                    })
                })
                .collect::<Result<Vec<i64>, CoreError>>()?;
            Ok(ItemOutcome::Done(
                Tensor::from_vec(shape, values).map_err(|e| CoreError::Runtime(e.to_string()))?,
            ))
        }
        ItemResult::Failed { kind, detail } => {
            if strict {
                return Err(CoreError::Runtime(format!(
                    "request {seq} failed ({kind:?}): {detail}"
                )));
            }
            Ok(ItemOutcome::Failed { kind, detail })
        }
    }
}

impl NetworkedSession {
    /// Connects (with the configured retry/backoff), generates the
    /// Paillier keypair, and performs the deployment handshake. A server
    /// rejection or a version/echo mismatch surfaces as
    /// `Transport { kind: Handshake, .. }`.
    pub fn connect(
        addr: impl ToSocketAddrs,
        scaled: ScaledModel,
        config: &NetConfig,
    ) -> Result<Self, CoreError> {
        // Resolve once so reconnects don't depend on the generic addr.
        let addrs: Vec<SocketAddr> = addr
            .to_socket_addrs()
            .map_err(|e| {
                CoreError::from(StreamError::transport(
                    TransportErrorKind::Connect,
                    format!("resolve peer address: {e}"),
                ))
            })?
            .collect();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let keypair = Keypair::generate(config.key_bits, &mut rng);
        let stages = encapsulate_with(&scaled, config.merge_stages)?;
        let topology = topology_digest(&stages, scaled.factor());

        let pk_n = keypair.public().n().to_bytes_be();
        let fingerprint = pk_fingerprint(&pk_n);
        // Propose a packed-ciphertext layout sized for this key and
        // model (the op budget covers the worst linear stage). An
        // infeasible proposal silently degrades to per-item streaming.
        let packing = if config.pack_slot_bits > 0 {
            PackingSpec::for_key(&keypair.public(), config.pack_slot_bits)
                .map(|s| s.with_budget(packed::required_budget(&stages)))
                .and_then(|s| s.check().map(|()| s))
                .ok()
        } else {
            None
        };
        let hello = to_frame(&HelloMsg {
            version: PROTOCOL_VERSION,
            pk_n,
            pk_fingerprint: fingerprint,
            topology,
            n_stages: stages.len() as u32,
            factor: scaled.factor(),
            pack_slot_bits: packing.map_or(0, |s| s.slot_bits as u32),
            pack_slots: packing.map_or(0, |s| s.slots as u32),
            pack_budget: packing.map_or(0, |s| s.op_budget),
        });

        let mut transport = TransportReport::default();
        // Busy-rejection backoff: an admission-controlled server answers
        // the hello with `Reject { code: Busy, retry_after_ms }`. Honor
        // the hint and retry within the connect retry budget instead of
        // treating the rejection as fatal.
        let mut attempt = 0u32;
        let (tx, rx, session, accepted_slot_bits) = loop {
            attempt += 1;
            let connected = tcp::connect_with(&addrs[..], &config.tcp)?;
            let (mut tx, mut rx) = (connected.tx, connected.rx);
            transport.connect_attempts += connected.attempts;
            transport.bytes_sent += hello.len() as u64;
            transport.frames_sent += 1;
            tx.send_payload(hello.clone()).map_err(|e| e.at_stage("handshake hello"))?;

            let reply = rx
                .recv()
                .map_err(|e| e.at_stage("handshake reply"))?
                .ok_or_else(|| handshake_err("server closed without answering hello"))?;
            transport.bytes_received += reply.payload.len() as u64;
            transport.frames_received += 1;
            match crate::messages::peek_tag(&reply.payload) {
                Some(MsgTag::Accept) => {
                    let accept: AcceptMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                    if accept.version != PROTOCOL_VERSION
                        || accept.pk_fingerprint != fingerprint
                        || accept.topology != topology
                    {
                        return Err(CoreError::from(handshake_err(
                            "server accept did not echo the agreed parameters",
                        )));
                    }
                    break (tx, rx, accept.session, accept.pack_slot_bits);
                }
                Some(MsgTag::Reject) => {
                    let reject: RejectMsg = from_frame(reply.payload).map_err(CoreError::from)?;
                    if reject.code == RejectCode::Busy
                        && attempt < config.tcp.retry.max_attempts.max(1)
                    {
                        transport.rejected_busy += 1;
                        std::thread::sleep(busy_backoff(
                            &config.tcp.retry,
                            reject.retry_after_ms,
                        ));
                        continue;
                    }
                    return Err(CoreError::from(handshake_err(format!(
                        "server rejected handshake: {}",
                        reject.reason
                    ))));
                }
                _ => {
                    return Err(CoreError::from(handshake_err(
                        "unexpected reply to hello (neither accept nor reject)",
                    )));
                }
            }
        };

        // The proposal stands only if the server echoed its slot width;
        // an echo of 0 (or anything else) declines packing.
        let packing = packing.filter(|s| accepted_slot_bits as usize == s.slot_bits);

        // Client-side execution plan: socket round trips for linear
        // stages, local executors for the rest (same construction as the
        // in-process session, so results match bit-for-bit).
        let n = stages.len();
        let mut round = 0usize;
        let steps = stages
            .iter()
            .enumerate()
            .map(|(i, stage)| match stage.role {
                StageRole::Linear => {
                    let step = ClientStep::Linear { round };
                    round += 1;
                    step
                }
                StageRole::NonLinear => ClientStep::NonLinear(Box::new(NonLinearStage {
                    keypair: keypair.clone(),
                    stage: stage.clone(),
                    factor: scaled.factor(),
                    is_last: i == n - 1,
                    seed: config.seed ^ 0x2020 ^ (i as u64) << 8,
                })),
            })
            .collect();

        // Fault injection (when configured) wraps only the post-handshake
        // traffic — the recovery path itself stays un-faulted.
        let fault = fault_hook(config);
        let (tx, rx) = wrap_transport(tx, rx, &fault);

        let rand_pool = Arc::new(Mutex::new(RandomnessPool::new(keypair.public())));
        Ok(NetworkedSession {
            tx,
            rx,
            addrs,
            tcp: config.tcp.clone(),
            scaled,
            steps,
            encrypt: EncryptStage {
                pk: keypair.public(),
                seed: config.seed ^ 0x0E2C,
                rand_pool: Some(Arc::clone(&rand_pool)),
            },
            rand_pool,
            pool: WorkerPool::new(config.threads.max(1)),
            transport,
            session,
            items_done: 0,
            topology,
            fingerprint,
            max_resumes: config.max_resumes,
            item_deadline: config.item_deadline,
            stall_window: config.stall_window,
            packing,
            pack_batch: config.pack_batch,
            fault,
        })
    }

    /// Transport statistics so far.
    pub fn transport(&self) -> &TransportReport {
        &self.transport
    }

    /// The server-assigned session ID.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Streams inference requests through the deployment (sequentially,
    /// one socket round trip per linear stage), returning the scaled
    /// output tensors and a run report whose
    /// [`transport`](RunReport::transport) field carries the socket-level
    /// statistics. Transient transport failures are absorbed by the
    /// reconnect-and-resume loop; only exhausted retries or protocol
    /// violations surface as errors.
    pub fn infer_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Tensor<i64>>, RunReport), CoreError> {
        let (outcomes, report) = self.run_stream(inputs, true)?;
        let outputs = outcomes
            .into_iter()
            .map(|o| match o {
                ItemOutcome::Done(t) => t,
                ItemOutcome::Failed { .. } => unreachable!("strict mode errors on failed items"),
            })
            .collect();
        Ok((outputs, report))
    }

    /// As [`infer_stream`](NetworkedSession::infer_stream), but per-item
    /// overload failures (shed, deadline-expired, quarantined) are
    /// returned as [`ItemOutcome::Failed`] entries instead of failing
    /// the whole call — the session keeps streaming the remaining items.
    /// Every item, failed or not, is resolved and acked: a failed item
    /// is never silently retried (a quarantined one must not be).
    pub fn infer_stream_partial(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<ItemOutcome>, RunReport), CoreError> {
        self.run_stream(inputs, false)
    }

    /// Partial-tolerant classification: `None` for items that failed
    /// individually, the predicted class otherwise.
    pub fn classify_stream_partial(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<Option<usize>>, RunReport), CoreError> {
        let (outcomes, report) = self.run_stream(inputs, false)?;
        let classes =
            outcomes.iter().map(|o| o.output().map(pp_nn::activation::argmax_i64)).collect();
        Ok((classes, report))
    }

    /// The shared per-item loop behind the strict and partial streaming
    /// APIs. In strict mode the first per-item failure errors the call;
    /// in partial mode it becomes an [`ItemOutcome::Failed`] entry.
    fn run_stream(
        &mut self,
        inputs: &[Tensor<f64>],
        strict: bool,
    ) -> Result<(Vec<ItemOutcome>, RunReport), CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::Runtime("no inputs".into()));
        }
        let t_run = Instant::now();
        // Precompute the stream's worth of `r^n` blinding factors in
        // parallel before the first request, so per-item encryption is a
        // cheap multiply on the request path.
        {
            let need = inputs.len() * self.scaled.input_shape().len();
            self.rand_pool.lock().refill_parallel(need, &self.pool, self.encrypt.seed ^ 0x5EED);
        }
        let mut latencies = Vec::with_capacity(inputs.len());
        let mut outcomes = Vec::with_capacity(inputs.len());

        let mut idx = 0usize;
        while idx < inputs.len() {
            let remaining = inputs.len() - idx;
            // Chunk size under the negotiated packing (1 = per-item): a
            // lone trailing item always travels unpacked — packing it
            // would cost the batch protocol for no amortization.
            let batch = match self.packing {
                Some(spec) => {
                    let want =
                        if self.pack_batch == 0 { spec.slots } else { self.pack_batch.min(spec.slots) };
                    want.min(remaining)
                }
                None => 1,
            };
            if batch >= 2 {
                let t0 = Instant::now();
                let base = self.items_done;
                let plains: Vec<PlainTensorMsg> = inputs[idx..idx + batch]
                    .iter()
                    .enumerate()
                    .map(|(j, input)| {
                        let scaled_in = self.scaled.scale_input(input);
                        PlainTensorMsg {
                            seq: base + j as u64,
                            shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                            values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                        }
                    })
                    .collect();
                // One budget spans the whole batch: its members travel
                // together, so they expire together.
                let deadline = self.item_deadline.map(|budget| Instant::now() + budget);
                match self.run_packed_batch(&plains, deadline) {
                    PackedRoundOutcome::Done(results) => {
                        self.items_done += batch as u64;
                        self.send_ack();
                        let per_item = t0.elapsed();
                        self.transport.packed_items += batch as u64;
                        for out in results {
                            let seq = out.seq;
                            latencies.push(per_item);
                            outcomes.push(outcome_from(ItemResult::Output(out), seq, strict)?);
                        }
                        idx += batch;
                        continue;
                    }
                    PackedRoundOutcome::Fallback { reset } => {
                        self.transport.packed_fallbacks += 1;
                        if reset {
                            // The server may still track this batch (and
                            // its stored permutations); reconnecting
                            // clears both, and drops packing for the
                            // rest of the stream (resumed connections
                            // run unpacked).
                            self.reconnect_and_resume().map_err(CoreError::from)?;
                        }
                        // Fall through: replay every member per-item.
                    }
                }
            }
            for input in &inputs[idx..idx + batch] {
                let t0 = Instant::now();
                let seq = self.items_done;
                let scaled_in = self.scaled.scale_input(input);
                let plain = PlainTensorMsg {
                    seq,
                    shape: input.shape().dims().iter().map(|&d| d as u64).collect(),
                    values: scaled_in.data().iter().map(|&v| v as i128).collect(),
                };
                // The end-to-end budget is stamped once per item and spans
                // every hop, resume, and replay of it.
                let deadline = self.item_deadline.map(|budget| Instant::now() + budget);
                let result = self.run_request(plain, deadline)?;
                // Success and per-item failure both *resolve* the item: the
                // seq is consumed and acked, so a failed item is never
                // retried (a quarantined one must not be).
                self.items_done += 1;
                self.send_ack();
                latencies.push(t0.elapsed());
                outcomes.push(outcome_from(result, seq, strict)?);
            }
            idx += batch;
        }

        let makespan = t_run.elapsed();
        let mean_latency = latencies.iter().sum::<Duration>() / latencies.len() as u32;
        self.transport.faults_injected = fault_count(&self.fault);
        let mut transport = self.transport.clone();
        transport.clean_shutdown = true; // no transport error reached here
        let report = RunReport {
            latencies,
            makespan,
            mean_latency,
            // One physical link: request and reply directions.
            link_bytes: vec![transport.bytes_sent, transport.bytes_received],
            intra_stage_bytes: 0, // linear dispatch happens server-side
            stage_names: self.stage_names(),
            stage_busy: vec![],
            stage_threads: vec![],
            stages: vec![],
            transport: Some(transport),
            pool_misses: self.rand_pool.lock().misses(),
        };
        Ok((outcomes, report))
    }

    /// Streams requests and returns the predicted class per input.
    pub fn classify_stream(
        &mut self,
        inputs: &[Tensor<f64>],
    ) -> Result<(Vec<usize>, RunReport), CoreError> {
        let (outputs, report) = self.infer_stream(inputs)?;
        let classes = outputs.iter().map(pp_nn::activation::argmax_i64).collect();
        Ok((classes, report))
    }

    /// Ends the session deliberately (Bye, so the server frees its
    /// resume state and observes a clean shutdown) and returns the final
    /// transport statistics. Best-effort: if the connection is dead, one
    /// reconnect is attempted to deliver the Bye.
    pub fn shutdown(mut self) -> TransportReport {
        let bye = to_frame(&ByeMsg);
        let len = bye.len() as u64;
        let mut sent = self.tx.send_payload(bye.clone()).is_ok();
        if !sent && self.reconnect_and_resume().is_ok() {
            sent = self.tx.send_payload(bye).is_ok();
        }
        if sent {
            self.transport.bytes_sent += len;
            self.transport.frames_sent += 1;
        }
        self.transport.clean_shutdown = sent;
        self.transport.faults_injected = fault_count(&self.fault);
        self.transport
    }

    /// Runs one item to completion (or a per-item failure), absorbing
    /// transient transport failures and watchdog-diagnosed stalls via
    /// reconnect-and-resume (up to `max_resumes` cycles).
    fn run_request(
        &mut self,
        plain: PlainTensorMsg,
        deadline: Option<Instant>,
    ) -> Result<ItemResult, CoreError> {
        let mut resumes = 0u32;
        loop {
            let mut progressed = false;
            let err = match self.try_request(&plain, deadline, &mut progressed) {
                Ok(out) => return Ok(out),
                Err(e) => e,
            };
            let recoverable = is_transient(&err) || matches!(err, StreamError::Stalled { .. });
            if !recoverable || resumes >= self.max_resumes {
                return Err(CoreError::from(err));
            }
            resumes += 1;
            match self.reconnect_and_resume() {
                Ok(()) => {
                    if progressed {
                        // The server saw at least round 0 of this
                        // attempt; the retry is a true replay.
                        self.transport.items_replayed += 1;
                    }
                }
                Err(resume_err) => {
                    // Surface the original failure; the failed recovery
                    // is context, not the headline.
                    return Err(CoreError::from(
                        err.at_stage(&format!("after failed resume ({resume_err})")),
                    ));
                }
            }
        }
    }

    /// One attempt at a whole batch's round set as packed ciphertexts.
    /// Never fails the call: anything short of full success asks the
    /// caller to fall back to per-item replay (`reset` when the server
    /// may still hold batch state that a reconnect must clear).
    fn run_packed_batch(
        &mut self,
        plains: &[PlainTensorMsg],
        deadline: Option<Instant>,
    ) -> PackedRoundOutcome {
        let Some(spec) = self.packing else {
            return PackedRoundOutcome::Fallback { reset: false };
        };
        let Some(first) = plains.first() else {
            return PackedRoundOutcome::Fallback { reset: false };
        };
        let key = first.seq;
        let expected: Vec<u64> = plains.iter().map(|p| p.seq).collect();
        let packed = {
            let mut pool = self.rand_pool.lock();
            packed::pack_plain_batch(&self.encrypt.pk, spec, plains, &mut pool, self.encrypt.seed)
        };
        let mut msg = match packed {
            Ok(m) => m,
            Err(_) => return PackedRoundOutcome::Fallback { reset: false },
        };
        let last = self.steps.len() - 1;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ClientStep::Linear { round } => {
                    let budget_ms = match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                // Expired mid-flight: replay unpacked
                                // (with fresh per-item budgets). Past
                                // round 0 the server tracks the batch,
                                // so the fallback must reconnect.
                                return PackedRoundOutcome::Fallback { reset: *round > 0 };
                            }
                            Some((d - now).as_millis() as u64)
                        }
                        None => None,
                    };
                    let payload = to_frame(&msg);
                    let len = payload.len() as u64;
                    if self.tx.send_payload_deadline(payload, budget_ms).is_err() {
                        // Dead socket: the per-item replay reconnects.
                        return PackedRoundOutcome::Fallback { reset: false };
                    }
                    self.transport.bytes_sent += len;
                    self.transport.frames_sent += 1;
                    let t_recv = Instant::now();
                    let frame = match self.rx.recv() {
                        Ok(Some(frame)) => frame,
                        Ok(None) | Err(_) => {
                            return PackedRoundOutcome::Fallback { reset: false };
                        }
                    };
                    self.transport.bytes_received += frame.payload.len() as u64;
                    self.transport.frames_received += 1;
                    if let Some(window) = self.stall_window {
                        if t_recv.elapsed() > window {
                            self.transport.stalls += 1;
                            return PackedRoundOutcome::Fallback { reset: true };
                        }
                    }
                    match crate::messages::peek_tag(&frame.payload) {
                        Some(MsgTag::ItemError) => {
                            // A PackedAbort already released the server's
                            // batch state; any other error reply is a
                            // protocol surprise worth a clean slate.
                            let reset = match from_frame::<ItemErrorMsg>(frame.payload) {
                                Ok(ie) => ie.kind != ItemErrorKind::PackedAbort || ie.seq != key,
                                Err(_) => true,
                            };
                            return PackedRoundOutcome::Fallback { reset };
                        }
                        Some(MsgTag::PackedTensor) => {
                            msg = match from_frame(frame.payload) {
                                Ok(m) => m,
                                Err(_) => return PackedRoundOutcome::Fallback { reset: true },
                            };
                            let elems =
                                msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
                            if msg.seqs != expected
                                || elems.map(|n| n as usize) != Some(msg.cts.len())
                            {
                                return PackedRoundOutcome::Fallback { reset: true };
                            }
                            self.transport.packed_rounds += 1;
                        }
                        _ => return PackedRoundOutcome::Fallback { reset: true },
                    }
                }
                ClientStep::NonLinear(nl) => {
                    if i == last {
                        return match packed::unpack_final(nl, msg) {
                            Ok(outputs) => PackedRoundOutcome::Done(outputs),
                            Err(_) => PackedRoundOutcome::Fallback { reset: true },
                        };
                    }
                    msg = match packed::repack_nonlinear(nl, msg) {
                        Ok(m) => m,
                        Err(_) => return PackedRoundOutcome::Fallback { reset: true },
                    };
                }
            }
        }
        PackedRoundOutcome::Fallback { reset: true }
    }

    /// One attempt at an item's full round set over the current
    /// connection. `progressed` flips once the server has seen round 0,
    /// so the caller can count true replays.
    fn try_request(
        &mut self,
        plain: &PlainTensorMsg,
        deadline: Option<Instant>,
        progressed: &mut bool,
    ) -> Result<ItemResult, StreamError> {
        let seq = plain.seq;
        let mut msg = self.encrypt.encrypt(plain.clone(), &self.pool);
        let last = self.steps.len() - 1;
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                ClientStep::Linear { round } => {
                    let stage_name = format!("linear-{round}@model (request {seq})");
                    // Remaining budget for this hop, re-stamped as a
                    // relative duration (never a wall timestamp, so the
                    // peers' clocks need not agree). An exhausted budget
                    // sheds the item client-side before the send.
                    let budget_ms = match deadline {
                        Some(d) => {
                            let now = Instant::now();
                            if now >= d {
                                self.transport.deadline_expired += 1;
                                return Ok(ItemResult::Failed {
                                    kind: ItemErrorKind::DeadlineExpired,
                                    detail: format!(
                                        "budget exhausted before the {stage_name} send"
                                    ),
                                });
                            }
                            Some((d - now).as_millis() as u64)
                        }
                        None => None,
                    };
                    let payload = to_frame(&msg);
                    let len = payload.len() as u64;
                    self.tx
                        .send_payload_deadline(payload, budget_ms)
                        .map_err(|e| e.at_stage(&format!("{stage_name} send")))?;
                    *progressed = true;
                    self.transport.bytes_sent += len;
                    self.transport.frames_sent += 1;
                    let t_recv = Instant::now();
                    let frame = self
                        .rx
                        .recv()
                        .map_err(|e| e.at_stage(&format!("{stage_name} reply")))?
                        .ok_or_else(|| {
                            StreamError::transport(
                                TransportErrorKind::Eof,
                                format!("server closed before the {stage_name} reply"),
                            )
                        })?;
                    self.transport.bytes_received += frame.payload.len() as u64;
                    self.transport.frames_received += 1;
                    // Stall watchdog: a reply that took longer than the
                    // window marks the connection as alive-but-stuck.
                    // The late frame is discarded and the item recovered
                    // by reconnect-and-resume — replay is bit-identical,
                    // so dropping a valid reply is safe.
                    if let Some(window) = self.stall_window {
                        if t_recv.elapsed() > window {
                            self.transport.stalls += 1;
                            return Err(StreamError::Stalled { stage: stage_name });
                        }
                    }
                    // A per-item error reply fails this item and leaves
                    // the session streaming.
                    if matches!(
                        crate::messages::peek_tag(&frame.payload),
                        Some(MsgTag::ItemError)
                    ) {
                        let ie: ItemErrorMsg = from_frame(frame.payload)?;
                        if ie.seq != seq {
                            return Err(StreamError::Stage(format!(
                                "{stage_name}: item-error reply carries seq {} (misrouted)",
                                ie.seq
                            )));
                        }
                        match ie.kind {
                            ItemErrorKind::DeadlineExpired => {
                                self.transport.deadline_expired += 1
                            }
                            ItemErrorKind::Quarantined => self.transport.quarantined += 1,
                            ItemErrorKind::Shed => self.transport.shed += 1,
                            // Only packed rounds are answered with an
                            // abort; for an unpacked item it still
                            // resolves the item like any other failure.
                            ItemErrorKind::PackedAbort => {}
                        }
                        return Ok(ItemResult::Failed { kind: ie.kind, detail: ie.detail });
                    }
                    msg = from_frame(frame.payload)?;
                    // A corrupted-but-decodable reply must die here, not
                    // flow into a stage that would panic on it.
                    if msg.seq != seq {
                        return Err(StreamError::Stage(format!(
                            "{stage_name}: reply carries seq {} (corrupt or misrouted)",
                            msg.seq
                        )));
                    }
                    let elems = msg.shape.iter().try_fold(1u64, |acc, &d| acc.checked_mul(d));
                    if elems.map(|n| n as usize) != Some(msg.cts.len()) {
                        return Err(StreamError::Stage(format!(
                            "{stage_name}: reply shape {:?} does not match {} ciphertexts",
                            msg.shape,
                            msg.cts.len()
                        )));
                    }
                }
                ClientStep::NonLinear(nl) => {
                    if i == last {
                        return Ok(ItemResult::Output(nl.execute_final(msg, &self.pool)));
                    }
                    msg = nl.execute(msg, &self.pool);
                }
            }
        }
        Err(StreamError::Stage("pipeline must end with a final non-linear stage".into()))
    }

    /// Tears down the dead connection, reconnects with the configured
    /// retry policy, and re-syncs the session via Resume. On success the
    /// new (fault-wrapped) halves are installed.
    fn reconnect_and_resume(&mut self) -> Result<(), StreamError> {
        // Drop the dead socket *first*: a sequential server is still
        // blocked reading it and will only accept the new connection
        // after seeing its EOF.
        self.tx = Box::new(DeadHalf);
        self.rx = Box::new(DeadHalf);
        revive_fault(&self.fault);

        let resume = to_frame(&ResumeMsg {
            version: PROTOCOL_VERSION,
            session: self.session,
            items_done: self.items_done,
            topology: self.topology,
        });

        // Busy rejections of the resume are backed off and retried, like
        // at connect: an at-capacity server has *not* forgotten the
        // session — giving up would orphan its resumable state.
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let connected = tcp::connect_with(&self.addrs[..], &self.tcp)
                .map_err(|e| e.at_stage("reconnect"))?;
            let (mut tx, mut rx) = (connected.tx, connected.rx);
            self.transport.connect_attempts += connected.attempts;

            self.transport.bytes_sent += resume.len() as u64;
            self.transport.frames_sent += 1;
            tx.send_payload(resume.clone()).map_err(|e| e.at_stage("resume"))?;

            let reply = rx
                .recv()
                .map_err(|e| e.at_stage("resume reply"))?
                .ok_or_else(|| handshake_err("server closed without answering resume"))?;
            self.transport.bytes_received += reply.payload.len() as u64;
            self.transport.frames_received += 1;
            match crate::messages::peek_tag(&reply.payload) {
                Some(MsgTag::Accept) => {
                    let accept: AcceptMsg = from_frame(reply.payload)?;
                    if accept.version != PROTOCOL_VERSION
                        || accept.pk_fingerprint != self.fingerprint
                        || accept.session != self.session
                    {
                        return Err(handshake_err(
                            "server resume-accept did not echo the session parameters",
                        ));
                    }
                }
                Some(MsgTag::Reject) => {
                    let reject: RejectMsg = from_frame(reply.payload)?;
                    if reject.code == RejectCode::Busy
                        && attempt < self.tcp.retry.max_attempts.max(1)
                    {
                        self.transport.rejected_busy += 1;
                        std::thread::sleep(busy_backoff(&self.tcp.retry, reject.retry_after_ms));
                        continue;
                    }
                    return Err(handshake_err(format!(
                        "server rejected resume: {}",
                        reject.reason
                    )));
                }
                _ => {
                    return Err(handshake_err(
                        "unexpected reply to resume (neither accept nor reject)",
                    ));
                }
            }

            let (tx, rx) = wrap_transport(tx, rx, &self.fault);
            self.tx = tx;
            self.rx = rx;
            self.transport.reconnects += 1;
            // Resumed connections run unpacked: the replacement server
            // connection negotiated no packing (Resume has no proposal)
            // and its fresh PermStore has no packed permutations.
            self.packing = None;
            return Ok(());
        }
    }

    /// Fire-and-forget delivery confirmation after a completed item. A
    /// lost ack is harmless: the next operation's failure triggers a
    /// resume, which re-syncs the floor from `items_done`.
    fn send_ack(&mut self) {
        let payload = to_frame(&AckMsg { items_done: self.items_done });
        let len = payload.len() as u64;
        if self.tx.send_payload(payload).is_ok() {
            self.transport.bytes_sent += len;
            self.transport.frames_sent += 1;
        }
    }

    fn stage_names(&self) -> Vec<String> {
        let mut names = vec!["encrypt@data".to_string()];
        let mut ni = 0;
        for step in &self.steps {
            match step {
                ClientStep::Linear { round } => names.push(format!("linear-{round}@model")),
                ClientStep::NonLinear(_) => {
                    names.push(format!("nonlinear-{ni}@data"));
                    ni += 1;
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_nn::zoo;

    fn model(seed: u64) -> ScaledModel {
        let mut rng = StdRng::seed_from_u64(seed);
        ScaledModel::from_model(&zoo::mlp("m", &[4, 6, 3], &mut rng).unwrap(), 100)
    }

    #[test]
    fn topology_digest_is_stable_and_discriminating() {
        let m = model(1);
        let stages = encapsulate_with(&m, true).unwrap();
        let d1 = topology_digest(&stages, m.factor());
        let d2 = topology_digest(&stages, m.factor());
        assert_eq!(d1, d2, "digest must be deterministic");
        assert_ne!(d1, topology_digest(&stages, m.factor() + 1), "factor changes digest");

        let other = model(1); // same weights, same architecture
        let other_stages = encapsulate_with(&other, true).unwrap();
        assert_eq!(d1, topology_digest(&other_stages, other.factor()));

        let mut rng = StdRng::seed_from_u64(1);
        let wider = ScaledModel::from_model(&zoo::mlp("m", &[4, 7, 3], &mut rng).unwrap(), 100);
        let wider_stages = encapsulate_with(&wider, true).unwrap();
        assert_ne!(
            d1,
            topology_digest(&wider_stages, wider.factor()),
            "different architecture must change the digest"
        );
    }

    #[test]
    fn fingerprint_differs_for_different_keys() {
        assert_ne!(pk_fingerprint(&[1, 2, 3]), pk_fingerprint(&[1, 2, 4]));
        assert_eq!(pk_fingerprint(b"same"), pk_fingerprint(b"same"));
    }

    #[test]
    fn hello_validation_names_each_mismatch() {
        let m = model(2);
        let provider = ModelProvider::new(&m, &NetConfig::small_test(128)).unwrap();
        let pk_n = vec![7u8; 16];
        let good = HelloMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: pk_fingerprint(&pk_n),
            pk_n,
            topology: provider.topology(),
            n_stages: provider.stages.len() as u32,
            factor: m.factor(),
            pack_slot_bits: 0,
            pack_slots: 0,
            pack_budget: 0,
        };
        assert_eq!(provider.validate_hello(&good), None);

        let mut bad = good.clone();
        bad.version += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("version"));

        let mut bad = good.clone();
        bad.pk_n = vec![0u8; 5000];
        bad.pk_fingerprint = pk_fingerprint(&bad.pk_n);
        assert!(provider.validate_hello(&bad).unwrap().contains("key size"));

        let mut bad = good.clone();
        bad.pk_n = vec![];
        bad.pk_fingerprint = pk_fingerprint(&bad.pk_n);
        assert!(provider.validate_hello(&bad).unwrap().contains("key size"));

        let mut bad = good.clone();
        bad.pk_fingerprint ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("fingerprint"));

        let mut bad = good.clone();
        bad.factor += 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("factor"));

        let mut bad = good;
        bad.topology ^= 1;
        assert!(provider.validate_hello(&bad).unwrap().contains("topology"));
    }

    #[test]
    fn packing_negotiation_accepts_fitting_layouts_and_declines_the_rest() {
        let m = model(2);
        let provider = ModelProvider::new(&m, &NetConfig::small_test(128)).unwrap();
        let pk = Keypair::generate(128, &mut StdRng::seed_from_u64(5)).public();
        let budget = packed::required_budget(&provider.stages);
        let max = PackingSpec::for_key(&pk, 32).unwrap();
        let hello = |bits: u32, slots: u32, budget: u64| HelloMsg {
            version: PROTOCOL_VERSION,
            pk_fingerprint: 0,
            pk_n: vec![],
            topology: provider.topology(),
            n_stages: provider.stages.len() as u32,
            factor: m.factor(),
            pack_slot_bits: bits,
            pack_slots: slots,
            pack_budget: budget,
        };

        let good = hello(32, max.slots as u32, budget);
        let spec = provider.negotiate_packing(&good, &pk).expect("fitting layout accepted");
        assert_eq!(
            spec,
            PackingSpec { slot_bits: 32, slots: max.slots, op_budget: budget },
            "the accepted spec is exactly the client's proposal"
        );

        // No proposal → per-item protocol.
        assert_eq!(provider.negotiate_packing(&hello(0, 0, budget), &pk), None);
        // More slots than the key's plaintext space holds.
        assert_eq!(provider.negotiate_packing(&hello(32, max.slots as u32 + 1, budget), &pk), None);
        // Slot width outside the key's usable bits.
        assert_eq!(provider.negotiate_packing(&hello(200, 1, budget), &pk), None);
        // Budget too small for this model's linear stages.
        assert_eq!(
            provider.negotiate_packing(&hello(32, max.slots as u32, budget - 1), &pk),
            None,
            "a proposal that under-provisions the op budget is declined"
        );
        // Slot too narrow to hold the offset guard bits for this budget.
        assert_eq!(provider.negotiate_packing(&hello(4, 1, budget), &pk), None);
    }

    #[test]
    fn session_table_enforces_exactly_once() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![1, 2, 3], 99, 0x70B0);
        assert!(s >= 1, "session 0 is never issued");

        // Fresh item, then a legitimate post-resume replay of the same.
        assert_eq!(table.on_round0(s, 0), Ok(false));
        assert_eq!(table.on_round0(s, 0), Ok(true), "restart before ack is a replay");

        // Ack raises the floor; restarting below it is a violation.
        table.ack(s, 1);
        let err = table.on_round0(s, 0).unwrap_err();
        assert!(err.contains("exactly-once"), "{err}");
        assert_eq!(table.on_round0(s, 1), Ok(false), "the floor itself is fair game");
    }

    #[test]
    fn session_table_resume_validates_and_syncs() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![9], pk_fingerprint(&[9]), 0xABCD);

        let missing = table.resume(s + 1, 0, 0xABCD).unwrap_err();
        assert!(missing.contains("unknown or expired"), "{missing}");

        let wrong_topo = table.resume(s, 0, 0xDCBA).unwrap_err();
        assert!(wrong_topo.contains("topology"), "{wrong_topo}");

        // Resume syncs the ack floor from the client's completed count.
        let entry = table.resume(s, 5, 0xABCD).unwrap();
        assert_eq!(entry.acked, 5);
        assert_eq!(entry.started, 5);

        // A client claiming *less* done than the server has acked lost
        // state — replaying delivered items is refused.
        let behind = table.resume(s, 3, 0xABCD).unwrap_err();
        assert!(behind.contains("exactly-once"), "{behind}");
    }

    #[test]
    fn session_table_evicts_by_ttl_and_capacity() {
        // TTL: a zero-TTL table expires entries as soon as wall time
        // advances past their last touch.
        let table = SessionTable::new(Duration::ZERO, 8);
        let s = table.create(vec![1], 1, 1);
        std::thread::sleep(Duration::from_millis(2));
        let err = table.resume(s, 0, 1).unwrap_err();
        assert!(err.contains("unknown or expired"), "{err}");

        // Capacity: the least-recently-seen session is evicted.
        let table = SessionTable::new(Duration::from_secs(60), 2);
        let a = table.create(vec![1], 1, 7);
        std::thread::sleep(Duration::from_millis(2));
        let b = table.create(vec![2], 2, 7);
        std::thread::sleep(Duration::from_millis(2));
        table.ack(a, 0); // touch a, making b the LRU entry
        std::thread::sleep(Duration::from_millis(2));
        let c = table.create(vec![3], 3, 7);
        assert_eq!(table.len(), 2);
        assert!(table.resume(b, 0, 7).unwrap_err().contains("unknown"));
        assert!(table.resume(a, 0, 7).is_ok());
        assert!(table.resume(c, 0, 7).is_ok());
    }

    #[test]
    fn serve_report_merge_accumulates() {
        let mut total = ServeReport { requests: 1, connections: 1, ..Default::default() };
        let worker = ServeReport {
            requests: 3,
            frames_in: 10,
            replayed_items: 2,
            rejected_handshakes: 1,
            rejected_busy: 5,
            deadline_expired: 4,
            quarantined: 1,
            shed: 2,
            clean_shutdown: true,
            last_error: Some("boom".into()),
            ..Default::default()
        };
        total.merge(&worker);
        assert_eq!(total.requests, 4);
        assert_eq!(total.frames_in, 10);
        assert_eq!(total.connections, 1, "merge only sums what the worker counted");
        assert_eq!(total.replayed_items, 2);
        assert_eq!(total.rejected_handshakes, 1);
        assert_eq!(total.rejected_busy, 5);
        assert_eq!(total.deadline_expired, 4);
        assert_eq!(total.quarantined, 1);
        assert_eq!(total.shed, 2);
        assert!(total.clean_shutdown);
        assert_eq!(total.last_error.as_deref(), Some("boom"));
    }

    #[test]
    fn session_table_quarantine_survives_resume() {
        let table = SessionTable::new(Duration::from_secs(60), 8);
        let s = table.create(vec![1], 1, 7);
        assert!(!table.is_quarantined(s, 3));
        table.quarantine(s, 3);
        assert!(table.is_quarantined(s, 3));
        // The poison marker outlives the connection: a resume sees it.
        let entry = table.resume(s, 0, 7).unwrap();
        assert!(entry.quarantined.contains(&3));
        assert!(table.is_quarantined(s, 3));
        assert!(!table.is_quarantined(s, 4), "only the poison seq is marked");
    }

    #[test]
    fn busy_backoff_honors_and_clamps_the_hint() {
        let retry = pp_stream_runtime::RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(80),
            jitter: false,
        };
        assert_eq!(busy_backoff(&retry, 0), Duration::from_millis(10), "no hint -> base delay");
        assert_eq!(busy_backoff(&retry, 25), Duration::from_millis(25), "hint in range");
        assert_eq!(busy_backoff(&retry, 10_000), Duration::from_millis(80), "hint capped");
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let p = catch_unwind(|| panic!("static str")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static str");
        let p = catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }
}
